"""The paper's contribution: the 1.2 V wide-band reconfigurable mixer.

The sub-modules mirror the building blocks of the paper's Fig. 2-7:

* :mod:`repro.core.config` — design parameters, operating modes and the
  paper's reported targets;
* :mod:`repro.core.switches` — PMOS / NMOS / transmission-gate switches
  (Fig. 5) with on-resistances derived from the 65 nm device models;
* :mod:`repro.core.transconductance` — the fully differential
  transconductance amplifier (Fig. 3) with bias-derived gm, nonlinearity
  and noise;
* :mod:`repro.core.switching_quad` — the LO-commutated switching quad
  (Fig. 4) in both current-commutating (passive) and Gilbert (active) use;
* :mod:`repro.core.tia` — the two-stage Miller OTA and the transimpedance
  stage with its R_F C_F feedback (Fig. 7, equation 4);
* :mod:`repro.core.load` — the transmission-gate resistive load with C_c
  (Fig. 5b) used in active mode;
* :mod:`repro.core.reconfigurable_mixer` — the mode-switchable mixer that
  ties the blocks together and exposes the measured quantities (conversion
  gain, NF, IIP3, P1dB, power);
* :mod:`repro.core.frontend` — the wide-band receiver front end of Fig. 2
  (balun, LNA, mixer, LO chain);
* :mod:`repro.core.power` — the per-mode power budget.
"""

from repro.core.config import (
    MixerMode,
    MixerDesign,
    PaperTargets,
    PAPER_TARGETS_ACTIVE,
    PAPER_TARGETS_PASSIVE,
    default_design,
)
from repro.core.switches import PmosSwitch, NmosSwitch, TransmissionGate, SwitchState
from repro.core.transconductance import TransconductanceAmplifier
from repro.core.switching_quad import SwitchingQuad
from repro.core.tia import TwoStageOTA, TransimpedanceAmplifier
from repro.core.load import TransmissionGateLoad
from repro.core.reconfigurable_mixer import (
    ReconfigurableMixer,
    MixerSpecs,
    SpecIntermediates,
)
from repro.core.frontend import WidebandReceiverFrontEnd, LowNoiseAmplifier, Balun
from repro.core.power import PowerBudget

__all__ = [
    "MixerMode",
    "MixerDesign",
    "PaperTargets",
    "PAPER_TARGETS_ACTIVE",
    "PAPER_TARGETS_PASSIVE",
    "default_design",
    "PmosSwitch",
    "NmosSwitch",
    "TransmissionGate",
    "SwitchState",
    "TransconductanceAmplifier",
    "SwitchingQuad",
    "TwoStageOTA",
    "TransimpedanceAmplifier",
    "TransmissionGateLoad",
    "ReconfigurableMixer",
    "MixerSpecs",
    "SpecIntermediates",
    "WidebandReceiverFrontEnd",
    "LowNoiseAmplifier",
    "Balun",
    "PowerBudget",
]
