"""The fully differential transconductance amplifier (TCA, Fig. 3).

The TCA converts the differential RF voltage into a differential current
that the switching quad commutates.  Its behavioural description is derived
from the 65 nm device model:

* the device width is solved so that the target ``gm`` is reached at the
  allotted bias current (the paper tunes the active-mode gain through this
  bias voltage);
* the third-order nonlinearity comes from a numerical Taylor expansion of
  the device I-V around the bias point — mobility degradation (``theta``)
  is the physical mechanism — and source degeneration improves it the way
  the passive mode exploits;
* thermal and flicker noise densities come straight from the device model;
* the wide-band frequency response is set by the input coupling network
  (lower band edge) and the parasitic capacitance C_PAR at the output node
  (upper band edge), which the paper explicitly minimises.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import cached_property
from typing import Sequence

import numpy as np

from repro.devices.mosfet import Mosfet, MosfetArray, MosfetOperatingPoint
from repro.devices.noise import FlickerNoise, ThermalNoise
from repro.devices.technology import Technology
from repro.units import REFERENCE_IMPEDANCE, dbm_from_vpeak
from repro.core.config import MixerDesign

#: Process-wide count of width-bisection sizing solves (one per device
#: sized, whether it went through the scalar or the batched path).  The
#: on-disk spec cache exists to avoid these; tests and benchmarks read the
#: counter to prove a warm-cache run performs none.
_SIZING_SOLVES = 0

#: Process-wide count of batched :func:`solve_widths` calls.  One call sizes
#: a whole design block, so the batched counter grows by 1 where
#: ``_SIZING_SOLVES`` grows by the block length.
_BATCHED_SIZING_SOLVES = 0


def sizing_solve_count() -> int:
    """How many device sizing bisections this process has performed.

    Counts per *device*: a batched :func:`solve_widths` over N designs adds
    N, exactly what the equivalent scalar loop would have added — so the
    warm-cache "zero bisections" gates hold regardless of which solver a
    cold run used.
    """
    return _SIZING_SOLVES


def batched_sizing_solve_count() -> int:
    """How many batched :func:`solve_widths` calls this process has made."""
    return _BATCHED_SIZING_SOLVES


def solve_widths(designs: Sequence[MixerDesign],
                 labels: Sequence[str] | None = None) -> np.ndarray:
    """Batch-solve the Gm-device width for a whole block of designs.

    The array twin of :meth:`TransconductanceAmplifier._size_device`: one
    80-step geometric-mean bisection on width steps every design together
    through a :class:`~repro.devices.mosfet.MosfetArray`, with the inner
    bias solve (:meth:`MosfetArray.vgs_for_current`) masking converged
    elements so each design retraces the scalar solver's iterate sequence
    exactly.  The returned widths are **bit-identical** to N scalar solves
    (same bracket ``[2e-6, 2000e-6]``, same ``sqrt(lo * hi)`` midpoint, same
    comparison outcomes), which is what keeps the golden spec pins unchanged
    when the sweep engine pre-sizes design blocks through this path.

    ``labels`` (optional, one per design) names offending designs in the
    ``target gm unreachable`` error; unlabeled designs are named by index
    and fingerprint.  Raises :class:`ValueError` listing every unreachable
    element.  Counts ``len(designs)`` device solves and one batched solve.
    """
    global _SIZING_SOLVES, _BATCHED_SIZING_SOLVES
    records = list(designs)
    if labels is not None and len(labels) != len(records):
        raise ValueError(
            f"got {len(labels)} labels for {len(records)} designs")
    if not records:
        return np.empty(0, dtype=float)

    lengths = np.array([r.gm_device_length for r in records], dtype=float)
    technologies = [r.technology for r in records]
    targets = np.array([r.tca_gm for r in records], dtype=float)
    bias = np.array([r.tca_bias_current / 2.0 for r in records], dtype=float)
    vds = np.array([r.technology.mid_rail for r in records], dtype=float)

    def gm_at_widths(widths: np.ndarray) -> np.ndarray:
        bank = MosfetArray.nmos(widths, lengths, technologies)
        vgs = bank.vgs_for_current(bias, vds)
        return bank.operating_point(vgs, vds).gm

    lo = np.full(len(records), 2e-6)
    hi = np.full(len(records), 2000e-6)
    unreachable = gm_at_widths(hi) < targets
    if np.any(unreachable):
        def name(index: int) -> str:
            if labels is not None:
                return str(labels[index])
            return (f"design[{index}] "
                    f"(fingerprint {records[index].fingerprint()[:12]})")
        offenders = ", ".join(name(int(i))
                              for i in np.flatnonzero(unreachable))
        raise ValueError(
            "target gm unreachable within the width search range for: "
            + offenders)
    for _ in range(80):
        mid = np.sqrt(lo * hi)
        below = gm_at_widths(mid) < targets
        lo = np.where(below, mid, lo)
        hi = np.where(below, hi, mid)
    _SIZING_SOLVES += len(records)
    _BATCHED_SIZING_SOLVES += 1
    return np.sqrt(lo * hi)


@dataclass(frozen=True)
class TaylorCoefficients:
    """Taylor expansion of the drain current around the bias point.

    ``i(v) ~= g1*v + g2*v^2 + g3*v^3`` for a small gate excursion ``v``.
    """

    g1: float
    g2: float
    g3: float

    def iip3_vpeak(self) -> float:
        """Input-referred third-order intercept amplitude (V peak)."""
        if self.g3 == 0.0:
            return math.inf
        return math.sqrt((4.0 / 3.0) * abs(self.g1 / self.g3))

    def iip3_dbm(self, impedance: float = REFERENCE_IMPEDANCE) -> float:
        """Input-referred IIP3 in dBm into ``impedance``."""
        amplitude = self.iip3_vpeak()
        if math.isinf(amplitude):
            return math.inf
        return float(dbm_from_vpeak(amplitude, impedance))


class TransconductanceAmplifier:
    """Behavioural model of the TCA / active-mode Gm stage.

    Parameters
    ----------
    design:
        The mixer design point (bias current, target gm, component values).
    degeneration_resistance:
        Source degeneration seen by each Gm device (0 for the plain active
        configuration; the PMOS switch resistance in passive mode).
    """

    def __init__(self, design: MixerDesign,
                 degeneration_resistance: float = 0.0) -> None:
        if degeneration_resistance < 0:
            raise ValueError("degeneration resistance cannot be negative")
        self.design = design
        self.degeneration_resistance = degeneration_resistance
        self.technology: Technology = design.technology
        self._bias_per_side = design.tca_bias_current / 2.0
        self._taylor_cache: dict[float, TaylorCoefficients] = {}

    # -- device sizing --------------------------------------------------------

    @cached_property
    def device(self) -> Mosfet:
        """The Gm MOSFET, sized so the target gm is met at the bias current."""
        return self._size_device()

    @property
    def device_sized(self) -> bool:
        """Whether the Gm device is already solved (or seeded) — no solve."""
        return "device" in self.__dict__

    def seed_device(self, device: Mosfet) -> None:
        """Install an externally solved Gm device (the batched sizing path).

        The width solve depends only on the design record — length, target
        gm, bias current, technology — never on the degeneration, so one
        :func:`solve_widths` result seeds every TCA configuration of the
        same design.  The caller is responsible for the device matching what
        :meth:`_size_device` would return; :func:`solve_widths` guarantees
        that bit-for-bit.
        """
        if not isinstance(device, Mosfet):
            raise TypeError("seed_device() needs a Mosfet")
        # cached_property stores through the instance __dict__, so seeding
        # is exactly the state a lazy solve would have left behind.
        self.__dict__["device"] = device

    def _size_device(self) -> Mosfet:
        """Solve the width that delivers ``tca_gm`` at the per-side bias current."""
        global _SIZING_SOLVES
        _SIZING_SOLVES += 1
        design = self.design
        length = design.gm_device_length
        target_gm = design.tca_gm
        bias = self._bias_per_side
        vds = self.technology.mid_rail  # drain sits near mid-rail

        def gm_at_width(width: float) -> float:
            device = Mosfet.nmos(width, length, self.technology)
            vgs = device.vgs_for_current(bias, vds)
            return device.operating_point(vgs, vds).gm

        # Bisection on width: gm at fixed current grows with W (smaller Vov).
        lo, hi = 2e-6, 2000e-6
        if gm_at_width(hi) < target_gm:
            raise ValueError("target gm unreachable within the width search range")
        for _ in range(80):
            mid = math.sqrt(lo * hi)
            if gm_at_width(mid) < target_gm:
                lo = mid
            else:
                hi = mid
        return Mosfet.nmos(math.sqrt(lo * hi), length, self.technology)

    @cached_property
    def bias_point(self) -> MosfetOperatingPoint:
        """Operating point of one Gm device at the design bias."""
        vds = self.technology.mid_rail
        vgs = self.device.vgs_for_current(self._bias_per_side, vds)
        return self.device.operating_point(vgs, vds)

    @property
    def bias_voltage(self) -> float:
        """Gate bias voltage of the Gm devices (V)."""
        return self.bias_point.vgs

    # -- small-signal quantities ----------------------------------------------

    @property
    def raw_gm(self) -> float:
        """Undegenerate device transconductance (S)."""
        return self.bias_point.gm

    @property
    def effective_gm(self) -> float:
        """Transconductance including source degeneration (S)."""
        gm = self.raw_gm
        return gm / (1.0 + gm * self.degeneration_resistance)

    def gm_for_bias_voltage(self, vgs: float) -> float:
        """Effective gm at an arbitrary gate bias (the paper's gain tuning knob)."""
        op = self.device.operating_point(vgs, self.technology.mid_rail)
        return op.gm / (1.0 + op.gm * self.degeneration_resistance)

    # -- nonlinearity -----------------------------------------------------------

    def taylor_coefficients(self, delta: float = 1e-3) -> TaylorCoefficients:
        """Numerical Taylor expansion of the (degenerated) I-V around bias.

        Central differences on the large-signal transfer (including the
        series feedback of the degeneration resistor, solved per point)
        produce g1..g3; g3 is what sets the IIP3.  The expansion depends only
        on the (frozen) design and ``delta``, so results are memoized — the
        sweep engine hits this from every linearity spec it evaluates.
        """
        cached = self._taylor_cache.get(delta)
        if cached is not None:
            return cached
        coefficients = self._compute_taylor_coefficients(delta)
        self._taylor_cache[delta] = coefficients
        return coefficients

    def _compute_taylor_coefficients(self, delta: float) -> TaylorCoefficients:
        vgs0 = self.bias_point.vgs
        vds = self.technology.mid_rail
        r_s = self.degeneration_resistance

        def current(v_in: float) -> float:
            """Drain current for an input excursion v_in with degeneration."""
            if r_s == 0.0:
                return self.device.drain_current(vgs0 + v_in, vds)
            # Solve i = f(vgs0 + v_in - i * r_s) by damped fixed-point
            # iteration; the damping converges the loop for gm * r_s < ~3,
            # which covers every realistic degeneration value.
            i = self.device.drain_current(vgs0 + v_in, vds)
            for _ in range(60):
                i_new = self.device.drain_current(vgs0 + v_in - i * r_s, vds)
                if abs(i_new - i) < 1e-15:
                    return i_new
                i = 0.5 * (i + i_new)
            raise RuntimeError(
                "degenerated bias point failed to converge within 60 "
                f"fixed-point iterations (residual {abs(i_new - i):.3g} A "
                f"at v_in={v_in:.3g} V, r_s={r_s:.3g} ohm); the damped "
                "iteration diverges once gm * r_s exceeds ~3")

        i0 = current(0.0)
        ip1, im1 = current(delta), current(-delta)
        ip2, im2 = current(2.0 * delta), current(-2.0 * delta)
        g1 = (ip1 - im1) / (2.0 * delta)
        g2 = (ip1 - 2.0 * i0 + im1) / (2.0 * delta ** 2)
        # Third derivative by central differences, divided by 3! for the
        # Taylor coefficient.
        third_derivative = (ip2 - 2.0 * ip1 + 2.0 * im1 - im2) / (2.0 * delta ** 3)
        g3 = third_derivative / 6.0
        return TaylorCoefficients(g1=g1, g2=g2, g3=g3)

    def iip3_dbm(self) -> float:
        """Input-referred IIP3 of the (possibly degenerated) Gm stage, in dBm."""
        return self.taylor_coefficients().iip3_dbm()

    # -- noise ------------------------------------------------------------------

    def input_noise_sources(self) -> tuple[ThermalNoise, FlickerNoise]:
        """Input-referred thermal and flicker noise of the differential pair."""
        gm = self.raw_gm
        gamma = self.technology.gamma_noise
        # Two devices contribute; each has 4kT*gamma/gm input-referred, and the
        # degeneration resistors add their own thermal noise.
        equivalent_resistance = 2.0 * gamma / gm + 2.0 * self.degeneration_resistance
        thermal = ThermalNoise(resistance=equivalent_resistance,
                               temperature=self.technology.temperature)
        flicker_psd_at_1hz = 2.0 * self.device.params.kf / \
            self.device.params.gate_capacitance
        flicker = FlickerNoise(k_flicker=flicker_psd_at_1hz)
        return thermal, flicker

    def flicker_corner(self) -> float:
        """1/f corner frequency of the stand-alone Gm stage (Hz)."""
        thermal, flicker = self.input_noise_sources()
        return flicker.corner_with(thermal)

    # -- wide-band response ------------------------------------------------------

    def band_edges(self, coupling_capacitance: float,
                   output_node_resistance: float) -> tuple[float, float]:
        """(low, high) -3 dB band edges of the RF path in Hz.

        The low edge comes from the series coupling capacitance working
        against the 50 ohm source and gate impedance; the high edge from the
        parasitic capacitance C_PAR at the transconductor output node working
        against the impedance presented by that node (the transmission-gate
        load in active mode, the TIA feedback impedance reflected through the
        quad in passive mode).  Minimising C_PAR is what the paper credits
        for the wide band.
        """
        if coupling_capacitance <= 0:
            raise ValueError("coupling capacitance must be positive")
        if output_node_resistance <= 0:
            raise ValueError("output node resistance must be positive")
        source_resistance = 2.0 * REFERENCE_IMPEDANCE
        low_edge = 1.0 / (2.0 * math.pi * source_resistance * coupling_capacitance)
        high_edge = 1.0 / (2.0 * math.pi * output_node_resistance *
                           self.design.parasitic_capacitance)
        return low_edge, high_edge

    def band_response(self, rf_frequency: float | np.ndarray,
                      coupling_capacitance: float,
                      output_node_resistance: float) -> float | np.ndarray:
        """Magnitude response (linear, <= 1) of the RF path at ``rf_frequency``.

        First-order high-pass at the low edge and second-order low-pass at
        the high edge; the product reproduces the band-pass shape of Fig. 8.
        ``rf_frequency`` may be a scalar or an array of any shape — this is
        the vectorized hot path the sweep engine evaluates whole RF grids
        through in one call.
        """
        low_edge, high_edge = self.band_edges(coupling_capacitance,
                                              output_node_resistance)
        f = np.asarray(rf_frequency, dtype=float)
        highpass = (f / low_edge) / np.sqrt(1.0 + (f / low_edge) ** 2)
        lowpass = 1.0 / np.sqrt(1.0 + (f / high_edge) ** 4)
        response = highpass * lowpass
        return response if np.ndim(rf_frequency) else float(response)
