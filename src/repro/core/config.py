"""Design parameters, operating modes and paper-reported targets.

:class:`MixerDesign` is the single source of truth for the circuit-level
quantities every block derives its behaviour from — bias currents, device
sizes, feedback and load component values, supply voltage.  The defaults are
chosen so that the *derived* behavioural specs land on the paper's reported
numbers (Table I); DESIGN.md documents how each default maps back to a
statement in the paper.

:class:`PaperTargets` records the numbers the paper itself reports, so the
benchmark harness can print paper-vs-measured tables without hard-coding the
values in multiple places.
"""

from __future__ import annotations

import enum
import hashlib
import json
from dataclasses import asdict, dataclass, fields, replace

from repro.devices.technology import Technology, UMC65_LIKE
from repro.units import ghz, mhz


class MixerMode(enum.Enum):
    """The two configurations of the reconfigurable mixer.

    ``ACTIVE``  — common-source Gilbert cell, transmission-gate load, TIA off.
    ``PASSIVE`` — current-commutating quad with PMOS degeneration, TIA on.
    """

    ACTIVE = "active"
    PASSIVE = "passive"

    @property
    def vlogic(self) -> int:
        """Logic level applied to the PMOS mode switches Mp1/Mp2 (Fig. 5a).

        The paper sets ``Vlogic`` low (0) in passive mode so the TCA current
        flows straight into the quad, and high (1) in active mode.
        """
        return 1 if self is MixerMode.ACTIVE else 0


@dataclass(frozen=True)
class MixerDesign:
    """Circuit-level parameters of the reconfigurable mixer.

    Every attribute corresponds to a quantity the paper names explicitly or
    that is required to realise a quantity it reports.  Blocks never invent
    their own constants — they derive everything from an instance of this
    class (plus the :class:`~repro.devices.technology.Technology`).

    Attributes
    ----------
    technology:
        Process constants (65 nm-class, 1.2 V).
    lo_frequency:
        Nominal LO frequency used by the headline measurements (2.4 GHz).
    if_frequency:
        Nominal IF at which Table I quantities are quoted (5 MHz).
    tca_bias_current:
        Total bias current of the fully differential transconductor (A).
    tca_gm:
        Target single-ended transconductance of the TCA / active-mode Gm MOS
        (S); the device widths are solved from this and the bias current.
    gm_device_length:
        Channel length of the Gm devices (m); slightly above minimum for
        lower flicker noise.
    active_core_current:
        Additional bias current drawn by the Gilbert core in active mode (A).
    lo_chain_current:
        Bias current of the LO buffers / common-mode feedback shared by both
        modes (A).
    tia_supply_current:
        TIA current in passive mode (the paper: "The TIA draws a total of
        3.3 mA from the supply").
    degeneration_resistance:
        On-resistance of the PMOS switches Sw1-2 acting as source
        degeneration in passive mode (ohms).
    quad_switch_width / quad_switch_length:
        Geometry of the four NMOS switching devices.
    feedback_resistance / feedback_capacitance:
        TIA feedback network R_F, C_F (equation 3 / 4).
    load_resistance / load_capacitance:
        Transmission-gate load resistance and C_c low-pass capacitor used in
        active mode.
    ota_dc_gain_db / ota_gain_bandwidth:
        Open-loop characteristics of the two-stage Miller OTA.
    output_swing_limit:
        Peak *differential* output swing before hard limiting (V); the paper
        attributes the low-IF compression point to the OTA output swing.
        Each single-ended output swings half of this around mid-rail.
    parasitic_capacitance:
        C_PAR at the transconductor output node; sets the upper RF band edge.
    coupling_capacitance_active / coupling_capacitance_passive:
        Effective series coupling capacitances of the two signal paths; they
        set the lower RF band edges (1 GHz active, 0.5 GHz passive).
    band_node_resistance_active / band_node_resistance_passive:
        Impedance presented at the transconductor output node in each mode
        (the load reflected through the switching quad); together with
        C_PAR it sets the upper RF band edge (5.5 GHz / 5.1 GHz).
    active_output_ip3_factor:
        Output third-order intercept voltage of the active-mode load network,
        expressed as a multiple of VDD (models the triode TG load and the
        finite Gilbert-core headroom).
    passive_quad_iip3_dbm:
        Input-referred IIP3 of the passive quad's on-resistance modulation
        (the mechanism analysed in the paper's reference [6]).
    switching_noise_excess:
        Excess noise factor contributed by the commutating quad (LO-edge
        noise folding), added on top of the analytic device noise.
    active_flicker_corner / passive_flicker_corner:
        1/f corner frequencies of the two modes; the passive corner must be
        below 100 kHz per the paper.
    differential_mismatch:
        Fractional mismatch between the two differential half-circuits; it
        sets the residual IIP2 (the paper reports > 65 dBm for both modes).
    """

    technology: Technology = UMC65_LIKE
    lo_frequency: float = ghz(2.4)
    if_frequency: float = mhz(5.0)

    # Bias plan (section III: 9.36 mW active / 9.24 mW passive at 1.2 V).
    tca_bias_current: float = 3.4e-3
    tca_gm: float = 15.0e-3
    gm_device_length: float = 100e-9
    active_core_current: float = 3.4e-3
    lo_chain_current: float = 1.0e-3
    tia_supply_current: float = 3.3e-3

    # Passive-mode path.
    degeneration_resistance: float = 50.0
    quad_switch_width: float = 40e-6
    quad_switch_length: float = 65e-9
    feedback_resistance: float = 3.735e3
    feedback_capacitance: float = 2.3e-12

    # Active-mode path.
    load_resistance: float = 3.45e3
    load_capacitance: float = 2.6e-12

    # TIA / OTA.
    ota_dc_gain_db: float = 62.0
    ota_gain_bandwidth: float = 900e6
    output_swing_limit: float = 1.25

    # Wide-band response.
    parasitic_capacitance: float = 9.6e-15
    coupling_capacitance_active: float = 1.59e-12
    coupling_capacitance_passive: float = 3.18e-12
    band_node_resistance_active: float = 3.0e3
    band_node_resistance_passive: float = 3.25e3

    # Calibrated behavioural excess terms (documented in DESIGN.md §2).
    active_output_ip3_factor: float = 2.21
    passive_quad_iip3_dbm: float = 10.2
    switching_noise_excess: float = 1.1
    active_flicker_corner: float = 700e3
    passive_flicker_corner: float = 60e3
    differential_mismatch: float = 0.0005

    def __post_init__(self) -> None:
        if self.lo_frequency <= 0 or self.if_frequency <= 0:
            raise ValueError("LO and IF frequencies must be positive")
        if self.if_frequency >= self.lo_frequency:
            raise ValueError("IF frequency must be far below the LO frequency")
        for attribute in ("tca_bias_current", "tca_gm", "active_core_current",
                          "lo_chain_current", "tia_supply_current",
                          "feedback_resistance", "feedback_capacitance",
                          "load_resistance", "load_capacitance",
                          "output_swing_limit", "parasitic_capacitance"):
            if getattr(self, attribute) <= 0:
                raise ValueError(f"{attribute} must be positive")
        if self.degeneration_resistance < 0:
            raise ValueError("degeneration resistance cannot be negative")

    # -- derived convenience quantities --------------------------------------

    @property
    def vdd(self) -> float:
        """Supply voltage (V)."""
        return self.technology.vdd

    @property
    def rf_frequency(self) -> float:
        """Nominal RF frequency (LO + IF, low-side LO injection)."""
        return self.lo_frequency + self.if_frequency

    # -- identity -------------------------------------------------------------

    def canonical_dict(self) -> dict:
        """Every design parameter (technology included) as plain JSON types.

        The mapping is the canonical content of the record: two designs are
        interchangeable for any derived spec exactly when their canonical
        dictionaries are equal.  Keys are the dataclass field names; the
        nested :class:`~repro.devices.technology.Technology` appears under
        ``technology``.
        """
        return asdict(self)

    def fingerprint(self) -> str:
        """Stable content hash of the design record (hex SHA-256).

        Unlike ``hash()``, the fingerprint is identical across processes and
        interpreter runs (string hashing is salted per process), so it can
        key on-disk artefacts such as the sweep engine's spec cache.  Any
        parameter change — including technology-corner shifts — changes it.
        """
        payload = json.dumps(self.canonical_dict(), sort_keys=True,
                             separators=(",", ":"))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def to_dict(self) -> dict:
        """JSON-ready design payload (the API's wire format for designs).

        Identical content to :meth:`canonical_dict`; the separate name marks
        the serialization contract: ``to_dict() -> json -> from_dict()``
        round-trips the record exactly, fingerprint included.
        """
        return self.canonical_dict()

    @classmethod
    def from_dict(cls, payload: dict) -> "MixerDesign":
        """Rebuild a design record from :meth:`to_dict` output.

        Every design field is a float and the nested technology round-trips
        through :meth:`Technology.from_dict`, so the rebuilt record compares
        equal to the original and ``fingerprint()`` is preserved bit-exactly
        — the property the request-level caches key on.  Unknown keys raise
        ``ValueError``; missing keys fall back to the defaults so older
        payloads keep deserializing after a new parameter grows a default.
        """
        if not isinstance(payload, dict):
            raise TypeError("design payload must be a mapping")
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ValueError(f"unknown design fields: {unknown}")
        values: dict = {}
        for name, value in payload.items():
            if name == "technology":
                values[name] = Technology.from_dict(value)
            else:
                if isinstance(value, bool) or not isinstance(value, (int, float)):
                    raise TypeError(f"design field {name!r} must be a number, "
                                    f"got {type(value).__name__}")
                values[name] = float(value)
        return cls(**values)

    def with_lo(self, lo_frequency: float) -> "MixerDesign":
        """Copy of the design tuned to a different LO frequency."""
        return replace(self, lo_frequency=lo_frequency)

    def with_if(self, if_frequency: float) -> "MixerDesign":
        """Copy of the design with a different nominal IF."""
        return replace(self, if_frequency=if_frequency)

    def with_gain_setting(self, load_scale: float) -> "MixerDesign":
        """Copy with the load / feedback resistances scaled by ``load_scale``.

        The paper notes both modes offer gain tuning: the active mode through
        the transmission-gate resistance, the passive mode through R_F.
        """
        if load_scale <= 0:
            raise ValueError("load_scale must be positive")
        return replace(
            self,
            load_resistance=self.load_resistance * load_scale,
            feedback_resistance=self.feedback_resistance * load_scale,
        )


@dataclass(frozen=True)
class PaperTargets:
    """Numbers the paper reports for one mode (Table I plus body text)."""

    mode: MixerMode
    conversion_gain_db: float
    noise_figure_db: float
    iip3_dbm: float
    p1db_dbm: float
    power_mw: float
    band_low_ghz: float
    band_high_ghz: float
    iip2_dbm_min: float = 65.0
    supply_v: float = 1.2
    technology: str = "65nm"


PAPER_TARGETS_ACTIVE = PaperTargets(
    mode=MixerMode.ACTIVE,
    conversion_gain_db=29.2,
    noise_figure_db=7.6,
    iip3_dbm=-11.9,
    p1db_dbm=-24.5,
    power_mw=9.36,
    band_low_ghz=1.0,
    band_high_ghz=5.5,
)

PAPER_TARGETS_PASSIVE = PaperTargets(
    mode=MixerMode.PASSIVE,
    conversion_gain_db=25.5,
    noise_figure_db=10.2,
    iip3_dbm=6.57,
    p1db_dbm=-14.0,
    power_mw=9.24,
    band_low_ghz=0.5,
    band_high_ghz=5.1,
)


def paper_targets(mode: MixerMode) -> PaperTargets:
    """The paper's reported numbers for ``mode``."""
    return PAPER_TARGETS_ACTIVE if mode is MixerMode.ACTIVE else PAPER_TARGETS_PASSIVE


def default_design() -> MixerDesign:
    """The default design point used by examples, tests and benchmarks."""
    return MixerDesign()
