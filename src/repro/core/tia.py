"""The transimpedance amplifier: two-stage Miller OTA with R_F C_F feedback.

In passive mode the TIA converts the commutated RF current back into an IF
voltage.  Three properties matter to the system (section II.C of the paper):

* its closed-loop input impedance is very low — equation (4),
  ``Z_in(f) = (2 / A(f)) * R_F / (1 + j 2 pi f R_F C_F)`` — which gives the
  Gm stage a virtual ground and hence high linearity;
* its feedback network ``R_F || C_F`` is the mixer load Z_F of equation (3)
  and the first-order anti-aliasing filter;
* it burns 3.3 mA, which is why the active mode powers it down through the
  PMOS switch p3.

:class:`TwoStageOTA` captures the op-amp core (DC gain, GBW, swing,
input-referred noise); :class:`TransimpedanceAmplifier` wraps it with the
feedback network and exposes the closed-loop quantities.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.config import MixerDesign
from repro.devices.passives import Capacitor, Resistor, feedback_impedance
from repro.rf.filters import FirstOrderLowPass
from repro.units import db_from_voltage_ratio, voltage_ratio_from_db


@dataclass(frozen=True)
class TwoStageOTA:
    """A two-stage Miller-compensated operational transconductance amplifier.

    The first stage provides the gain, the second the swing (the paper's
    stated design intent).  The behavioural description keeps the four
    quantities the rest of the system consumes.

    Attributes
    ----------
    dc_gain_db:
        Open-loop DC gain in dB.
    gain_bandwidth:
        Unity-gain bandwidth in Hz.
    output_swing:
        Peak output swing in volts (differential).
    supply_current:
        Total supply current in amperes.
    input_noise_density:
        Input-referred white noise density in V/sqrt(Hz).
    """

    dc_gain_db: float = 62.0
    gain_bandwidth: float = 900e6
    output_swing: float = 1.0
    supply_current: float = 3.3e-3
    input_noise_density: float = 3.0e-9

    def __post_init__(self) -> None:
        if self.dc_gain_db <= 0:
            raise ValueError("OTA DC gain must be positive (in dB)")
        if self.gain_bandwidth <= 0 or self.output_swing <= 0:
            raise ValueError("gain-bandwidth and swing must be positive")
        if self.supply_current < 0 or self.input_noise_density < 0:
            raise ValueError("current and noise density must be non-negative")

    @property
    def dc_gain(self) -> float:
        """Open-loop DC gain as a linear ratio."""
        return float(voltage_ratio_from_db(self.dc_gain_db))

    @property
    def dominant_pole(self) -> float:
        """Dominant (Miller) pole frequency in Hz."""
        return self.gain_bandwidth / self.dc_gain

    def open_loop_gain(self, frequency: float | np.ndarray) -> complex | np.ndarray:
        """Single-pole open-loop gain A(f)."""
        f = np.asarray(frequency, dtype=float)
        gain = self.dc_gain / (1.0 + 1j * f / self.dominant_pole)
        return gain if np.ndim(frequency) else complex(gain)

    def open_loop_gain_db(self, frequency: float | np.ndarray) -> float | np.ndarray:
        """Open-loop gain magnitude in dB."""
        gain = np.abs(self.open_loop_gain(frequency))
        result = 20.0 * np.log10(gain)
        return result if np.ndim(frequency) else float(result)

    def phase_margin_degrees(self, load_pole: float | None = None) -> float:
        """Phase margin at unity gain, assuming one optional non-dominant pole."""
        margin = 90.0
        if load_pole is not None and load_pole > 0:
            margin -= math.degrees(math.atan(self.gain_bandwidth / load_pole))
        return margin

    @classmethod
    def from_design(cls, design: MixerDesign) -> "TwoStageOTA":
        """Build the OTA from the mixer design record."""
        return cls(
            dc_gain_db=design.ota_dc_gain_db,
            gain_bandwidth=design.ota_gain_bandwidth,
            output_swing=design.output_swing_limit,
            supply_current=design.tia_supply_current,
        )


class TransimpedanceAmplifier:
    """The closed-loop TIA: OTA plus R_F / C_F feedback (Fig. 7a)."""

    def __init__(self, design: MixerDesign, ota: TwoStageOTA | None = None) -> None:
        self.design = design
        self.ota = ota if ota is not None else TwoStageOTA.from_design(design)
        self.feedback_resistor = Resistor(design.feedback_resistance)
        self.feedback_capacitor = Capacitor(design.feedback_capacitance)

    # -- feedback network -------------------------------------------------------

    def feedback_impedance(self, frequency: float) -> complex:
        """Z_F = R_F || C_F at ``frequency`` — the mixer load of equation (3)."""
        return feedback_impedance(self.design.feedback_resistance,
                                  self.design.feedback_capacitance, frequency)

    @property
    def if_bandwidth(self) -> float:
        """-3 dB IF bandwidth set by the R_F C_F pole (Hz)."""
        return self.feedback_capacitor.pole_frequency(
            self.design.feedback_resistance)

    def if_response(self) -> FirstOrderLowPass:
        """The first-order IF low-pass response (anti-aliasing filter)."""
        return FirstOrderLowPass(dc_gain=1.0, pole_frequency=self.if_bandwidth)

    def if_magnitude(self, frequency: float | np.ndarray) -> float | np.ndarray:
        """Magnitude of the IF low-pass at ``frequency`` (scalar or array).

        Array inputs are evaluated in one vectorized pass — the sweep engine
        uses this to shape whole Fig. 9 IF grids without per-point calls.
        """
        return self.if_response().magnitude(frequency)

    # -- closed-loop quantities ----------------------------------------------------

    def transimpedance(self, frequency: float) -> complex:
        """Closed-loop transimpedance (V/A) at ``frequency``.

        With a high-gain OTA the transimpedance is simply -Z_F; the finite
        open-loop gain reduces it by the factor A/(1+A).
        """
        a = self.ota.open_loop_gain(frequency)
        z_f = self.feedback_impedance(frequency)
        return z_f * (a / (1.0 + a))

    def input_impedance(self, frequency: float | np.ndarray) -> complex | np.ndarray:
        """Closed-loop input impedance — the paper's equation (4).

        ``Z_in(f) = (2 / A(f)) * R_F / (1 + j 2 pi f R_F C_F)``.  The low
        value (a few ohms at the IF) is the virtual ground that linearises
        the passive mixer.
        """
        f = np.asarray(frequency, dtype=float)
        a = np.abs(self.ota.open_loop_gain(f))
        r_f = self.design.feedback_resistance
        c_f = self.design.feedback_capacitance
        z = (2.0 / a) * r_f / (1.0 + 1j * 2.0 * math.pi * f * r_f * c_f)
        return z if np.ndim(frequency) else complex(z)

    def output_noise_density(self, frequency: float) -> float:
        """Output-referred noise voltage density of the TIA (V/sqrt(Hz)).

        Feedback-resistor thermal noise appears directly at the output; the
        OTA input noise is amplified by the (near-unity at low frequency)
        noise gain.
        """
        if frequency <= 0:
            raise ValueError("frequency must be positive")
        r_noise = self.feedback_resistor.noise_voltage_density()
        ota_noise = self.ota.input_noise_density
        return math.sqrt(r_noise ** 2 + ota_noise ** 2)

    @property
    def power_mw(self) -> float:
        """Power drawn from the supply when enabled (mW)."""
        return self.ota.supply_current * self.design.vdd * 1e3

    def enabled_in_mode(self, mode) -> bool:
        """The TIA is powered only in passive mode (switch p3, section II.C)."""
        from repro.core.config import MixerMode

        return mode is MixerMode.PASSIVE

    def gain_tuning_range_db(self, resistance_scale_min: float = 0.5,
                             resistance_scale_max: float = 2.0) -> float:
        """Gain tuning range obtained by varying R_F (dB).

        The paper: "The gain of the TIA can be tuned by changing the value of
        RF and it provides another degree of freedom to configure the gain of
        the downconverter."
        """
        if resistance_scale_min <= 0 or resistance_scale_max <= resistance_scale_min:
            raise ValueError("need 0 < min scale < max scale")
        return float(db_from_voltage_ratio(resistance_scale_max /
                                           resistance_scale_min))
