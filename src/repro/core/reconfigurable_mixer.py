"""The reconfigurable active/passive down-conversion mixer (Fig. 4-6).

:class:`ReconfigurableMixer` ties the building blocks together and switches
between the two configurations the paper describes:

* **active mode** — the common-source Gm devices drive a double-balanced
  Gilbert cell loaded by the transmission gate (Fig. 6b); the TIA is powered
  down; high gain and low noise figure, modest linearity;
* **passive mode** — the PMOS switches Sw1-2 route the TCA current straight
  into the quad (path 1 of Fig. 4) and double as degeneration resistance;
  the quad carries no DC current and the TIA converts the commutated current
  to the IF voltage (Fig. 6a); lower gain and higher NF, much better IIP3.

The class exposes both:

* **analytic spec accessors** (`conversion_gain_db`, `noise_figure_db`,
  `iip3_dbm`, `p1db_dbm`, `power_mw`, `band_edges`) derived from the device
  models and the design record — these regenerate the *curves* of Fig. 8 and
  Fig. 9 quickly; and
* a **waveform-level device** (:meth:`waveform_device`) that applies the same
  nonlinearities, LO commutation, IF filtering and swing limiting to sampled
  waveforms — this is what the two-tone (Fig. 10) and compression benches
  actually measure, so the headline numbers come out of spectra, not out of
  closed-form shortcuts.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import cached_property
from typing import Callable

import numpy as np

from repro.core.config import (
    MixerDesign,
    MixerMode,
    PaperTargets,
    paper_targets,
)
from repro.core.load import TransmissionGateLoad
from repro.core.switches import PmosSwitch
from repro.core.switching_quad import LoDrive, SwitchingQuad
from repro.core.tia import TransimpedanceAmplifier
from repro.core.transconductance import TransconductanceAmplifier
from repro.devices.mosfet import Mosfet
from repro.rf.conversion_gain import SWITCHING_FACTOR
from repro.rf.filters import FirstOrderLowPass
from repro.rf.noise_figure import nf_with_flicker, noise_figure_from_factor
from repro.units import (
    BOLTZMANN,
    REFERENCE_IMPEDANCE,
    db_from_voltage_ratio,
    dbm_from_vpeak,
    vpeak_from_dbm,
)


@dataclass(frozen=True)
class SpecIntermediates:
    """Memoized per-(design, mode) scalars behind the spec accessors.

    Everything here depends only on the frozen design record and the mode —
    not on the swept RF/IF frequencies — so the sweep engine computes it once
    per (design, mode) cell and then evaluates whole frequency grids through
    the vectorized accessors.  The scalar accessors read the same cache, so
    repeated point queries stop re-deriving the operating point too.
    """

    mode: MixerMode
    peak_gain_db: float
    band_low_hz: float
    band_high_hz: float
    white_nf_db: float
    flicker_corner_hz: float
    iip3_dbm: float
    iip2_dbm: float
    p1db_dbm: float
    power_mw: float

    #: Float fields, in declaration order; shared by (de)serialization.
    FLOAT_FIELDS = ("peak_gain_db", "band_low_hz", "band_high_hz",
                    "white_nf_db", "flicker_corner_hz", "iip3_dbm",
                    "iip2_dbm", "p1db_dbm", "power_mw")

    def to_dict(self) -> dict:
        """JSON-ready mapping (the on-disk spec cache's payload format)."""
        payload: dict = {"mode": self.mode.value}
        for name in self.FLOAT_FIELDS:
            payload[name] = float(getattr(self, name))
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "SpecIntermediates":
        """Rebuild from :meth:`to_dict` output.

        Raises ``KeyError``/``ValueError``/``TypeError`` on malformed input;
        the spec cache treats any of those as a corrupt entry and recomputes.
        """
        values = {}
        for name in cls.FLOAT_FIELDS:
            value = payload[name]
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise TypeError(f"field {name!r} must be a number, "
                                f"got {type(value).__name__}")
            values[name] = float(value)
        return cls(mode=MixerMode(payload["mode"]), **values)


@dataclass(frozen=True)
class MixerSpecs:
    """Headline specifications of one mixer configuration."""

    mode: MixerMode
    conversion_gain_db: float
    noise_figure_db: float
    iip3_dbm: float
    iip2_dbm: float
    p1db_dbm: float
    power_mw: float
    band_low_hz: float
    band_high_hz: float
    flicker_corner_hz: float

    @property
    def bandwidth_ghz(self) -> tuple[float, float]:
        """RF band edges in GHz."""
        return self.band_low_hz / 1e9, self.band_high_hz / 1e9

    def as_table_row(self) -> dict[str, float | str]:
        """Row for the Table I comparison harness."""
        return {
            "design": f"This work ({self.mode.value})",
            "gain_db": round(self.conversion_gain_db, 1),
            "nf_db": round(self.noise_figure_db, 1),
            "iip3_dbm": round(self.iip3_dbm, 1),
            "p1db_dbm": round(self.p1db_dbm, 1),
            "power_mw": round(self.power_mw, 2),
            "band_low_ghz": round(self.band_low_hz / 1e9, 2),
            "band_high_ghz": round(self.band_high_hz / 1e9, 2),
            "technology": "65nm (behavioural)",
            "supply_v": 1.2,
        }


class ReconfigurableMixer:
    """The paper's mode-switchable down-conversion mixer."""

    def __init__(self, design: MixerDesign | None = None,
                 mode: MixerMode = MixerMode.ACTIVE) -> None:
        self.design = design if design is not None else MixerDesign()
        self._mode = mode
        # Per-mode memo of the frequency-independent spec scalars; the design
        # is frozen, so entries never go stale and survive mode flips.
        self._intermediates: dict[MixerMode, SpecIntermediates] = {}

    # -- mode control ---------------------------------------------------------

    @property
    def mode(self) -> MixerMode:
        """Current configuration."""
        return self._mode

    def set_mode(self, mode: MixerMode) -> None:
        """Reconfigure the mixer (flips Vlogic on Mp1/Mp2, the TIA switch p3...)."""
        if not isinstance(mode, MixerMode):
            raise TypeError("mode must be a MixerMode")
        self._mode = mode

    def reconfigure(self) -> MixerMode:
        """Toggle between active and passive mode; returns the new mode."""
        self.set_mode(MixerMode.PASSIVE if self._mode is MixerMode.ACTIVE
                      else MixerMode.ACTIVE)
        return self._mode

    @property
    def vlogic(self) -> int:
        """Logic level currently applied to the PMOS mode switches."""
        return self._mode.vlogic

    # -- building blocks --------------------------------------------------------

    @cached_property
    def degeneration_switch(self) -> PmosSwitch:
        """Sw1-2: the PMOS switch sized to provide the degeneration resistance."""
        return PmosSwitch.sized_for_degeneration(
            self.design.degeneration_resistance,
            technology=self.design.technology)

    @cached_property
    def _tca_active(self) -> TransconductanceAmplifier:
        return TransconductanceAmplifier(self.design, degeneration_resistance=0.0)

    @cached_property
    def _tca_passive(self) -> TransconductanceAmplifier:
        return TransconductanceAmplifier(
            self.design,
            degeneration_resistance=self.design.degeneration_resistance)

    @property
    def transconductor(self) -> TransconductanceAmplifier:
        """The Gm stage as configured for the current mode."""
        return self._tca_active if self._mode is MixerMode.ACTIVE \
            else self._tca_passive

    def gm_device_sized(self) -> bool:
        """Whether both TCA configurations already hold a solved Gm device."""
        return self._tca_active.device_sized and self._tca_passive.device_sized

    def seed_gm_width(self, width: float) -> None:
        """Install an externally solved Gm-device width (batched sizing).

        The width solve depends only on the design record — not on the mode
        or the degeneration — so one :func:`~repro.core.transconductance.\
solve_widths` element seeds both TCA configurations with one shared
        (immutable) device instance, exactly the device each lazy scalar
        solve would have produced.
        """
        device = Mosfet.nmos(float(width), self.design.gm_device_length,
                             self.design.technology)
        self._tca_active.seed_device(device)
        self._tca_passive.seed_device(device)

    @cached_property
    def switching_quad(self) -> SwitchingQuad:
        """The LO-commutated switching core."""
        return SwitchingQuad(self.design, LoDrive(self.design.lo_frequency))

    @cached_property
    def tia(self) -> TransimpedanceAmplifier:
        """The transimpedance stage (powered only in passive mode)."""
        return TransimpedanceAmplifier(self.design)

    @cached_property
    def load(self) -> TransmissionGateLoad:
        """The transmission-gate load (used only in active mode)."""
        return TransmissionGateLoad(self.design)

    # -- per-mode derived quantities ----------------------------------------------

    def _effective_gm(self, mode: MixerMode | None = None) -> float:
        mode = mode or self._mode
        tca = self._tca_active if mode is MixerMode.ACTIVE else self._tca_passive
        return tca.effective_gm

    def _load_resistance(self, mode: MixerMode | None = None) -> float:
        mode = mode or self._mode
        if mode is MixerMode.ACTIVE:
            return self.design.load_resistance
        return self.design.feedback_resistance

    def _if_filter(self, mode: MixerMode | None = None) -> FirstOrderLowPass:
        mode = mode or self._mode
        if mode is MixerMode.ACTIVE:
            return self.load.if_response()
        return self.tia.if_response()

    def _if_magnitude(self, if_frequency: float | np.ndarray) -> float | np.ndarray:
        """IF roll-off magnitude of the current mode's output network."""
        if self._mode is MixerMode.ACTIVE:
            return self.load.if_magnitude(if_frequency)
        return self.tia.if_magnitude(if_frequency)

    def _coupling_capacitance(self, mode: MixerMode | None = None) -> float:
        mode = mode or self._mode
        if mode is MixerMode.ACTIVE:
            return self.design.coupling_capacitance_active
        return self.design.coupling_capacitance_passive

    def _band_node_resistance(self, mode: MixerMode | None = None) -> float:
        mode = mode or self._mode
        if mode is MixerMode.ACTIVE:
            return self.design.band_node_resistance_active
        return self.design.band_node_resistance_passive

    # -- memoized spec intermediates ----------------------------------------------

    def spec_intermediates(self) -> SpecIntermediates:
        """The frequency-independent spec scalars of the current mode.

        Computed once per mode and cached for the lifetime of the mixer
        (the design record is frozen, so nothing can invalidate the entry).
        Both the scalar spec accessors and the vectorized array variants read
        this cache; the sweep engine relies on it to keep per-grid-cell work
        down to pure NumPy array maths.
        """
        cached = self._intermediates.get(self._mode)
        if cached is not None:
            return cached
        intermediates = self._compute_intermediates()
        self._intermediates[self._mode] = intermediates
        return intermediates

    def seed_intermediates(self, intermediates: SpecIntermediates) -> None:
        """Install externally solved intermediates (the on-disk spec cache).

        Seeding the per-mode memo is what lets a warm-cache sweep skip the
        device sizing bisection entirely: every spec accessor reads
        :meth:`spec_intermediates` first, and with the entry present nothing
        ever touches the sized device.  The caller is responsible for the
        entry matching this mixer's design record; the mode is taken from the
        record itself.
        """
        if not isinstance(intermediates, SpecIntermediates):
            raise TypeError("seed_intermediates() needs a SpecIntermediates")
        self._intermediates[intermediates.mode] = intermediates

    def peek_intermediates(self, mode: MixerMode) -> SpecIntermediates | None:
        """The memoized intermediates for ``mode``, or ``None`` if unsolved.

        A pure read: unlike :meth:`spec_intermediates` this never computes,
        so the sweep engine's pre-sizing pass can test cache coverage
        without triggering the very solves it is trying to batch.
        """
        return self._intermediates.get(mode)

    def _compute_intermediates(self) -> SpecIntermediates:
        iip3 = self._compute_iip3_dbm()
        band_low, band_high = self.transconductor.band_edges(
            self._coupling_capacitance(), self._band_node_resistance())
        gain = SWITCHING_FACTOR * self._effective_gm() * self._load_resistance()
        return SpecIntermediates(
            mode=self._mode,
            peak_gain_db=float(db_from_voltage_ratio(gain)),
            band_low_hz=band_low,
            band_high_hz=band_high,
            white_nf_db=self._compute_white_noise_figure_db(),
            flicker_corner_hz=self.switching_quad.flicker_corner(self._mode),
            iip3_dbm=iip3,
            iip2_dbm=self._compute_iip2_dbm(),
            p1db_dbm=self._compute_p1db_dbm(iip3),
            power_mw=self._compute_power_mw(),
        )

    # -- conversion gain -------------------------------------------------------------

    def peak_conversion_gain_db(self) -> float:
        """In-band, low-IF conversion gain (dB): ``(2/pi) * gm_eff * R_load``."""
        return self.spec_intermediates().peak_gain_db

    def conversion_gain_db_array(self, rf_frequency: float | np.ndarray,
                                 if_frequency: float | np.ndarray) -> np.ndarray:
        """Vectorized conversion gain (dB) over RF/IF frequency arrays.

        ``rf_frequency`` and ``if_frequency`` broadcast against each other
        under the usual NumPy rules, so a full Fig. 8 x Fig. 9 plane is one
        call with ``rf[:, None]`` against ``if_[None, :]``.  The scalar
        :meth:`conversion_gain_db` is a thin wrapper around this method, so
        both paths are numerically identical.
        """
        rf = np.asarray(rf_frequency, dtype=float)
        if_freq = np.asarray(if_frequency, dtype=float)
        if np.any(rf <= 0) or np.any(if_freq <= 0):
            raise ValueError("frequencies must be positive")
        gain_db = self.spec_intermediates().peak_gain_db
        band = self.transconductor.band_response(
            rf, self._coupling_capacitance(), self._band_node_resistance())
        if_mag = self._if_magnitude(if_freq)
        return np.asarray(gain_db + db_from_voltage_ratio(band)
                          + db_from_voltage_ratio(if_mag))

    def conversion_gain_db(self, rf_frequency: float | None = None,
                           if_frequency: float | None = None) -> float:
        """Conversion gain (dB) at an RF and IF frequency.

        ``rf_frequency`` applies the wide-band response of Fig. 8;
        ``if_frequency`` applies the IF roll-off of the load / TIA feedback
        pole that shapes Fig. 9.  Omitted arguments default to the design's
        nominal operating point (2.405 GHz RF, 5 MHz IF).  Thin scalar
        wrapper over :meth:`conversion_gain_db_array`.
        """
        rf = rf_frequency if rf_frequency is not None else self.design.rf_frequency
        if_freq = if_frequency if if_frequency is not None \
            else self.design.if_frequency
        return float(self.conversion_gain_db_array(rf, if_freq))

    def band_edges(self) -> tuple[float, float]:
        """-3 dB RF band edges (Hz) of the current mode."""
        intermediates = self.spec_intermediates()
        return intermediates.band_low_hz, intermediates.band_high_hz

    # -- noise figure -------------------------------------------------------------------

    def white_noise_figure_db(self) -> float:
        """DSB noise figure well above the flicker corner (dB); memoized."""
        return self.spec_intermediates().white_nf_db

    def _compute_white_noise_figure_db(self) -> float:
        """DSB noise figure well above the flicker corner (dB).

        The noise factor is a sum of physically identifiable terms referred
        to the 50 ohm source:

        * the Gm-device channel noise ``2 gamma / (gm Rs)``;
        * the degeneration resistance (passive mode only);
        * the quad switch on-resistances (passive mode only — in active mode
          their cyclostationary contribution is folded into the switching
          excess term);
        * the commutation excess (LO noise folding, calibrated);
        * the load / TIA noise referred through the conversion gain.
        """
        design = self.design
        technology = design.technology
        rs = REFERENCE_IMPEDANCE
        gamma = technology.gamma_noise
        gm = self.transconductor.raw_gm
        gm_eff = self._effective_gm()

        factor = 1.0
        factor += 2.0 * gamma / (gm * rs)
        factor += self.switching_quad.noise_excess_factor(self._mode)

        if self._mode is MixerMode.PASSIVE:
            factor += 2.0 * design.degeneration_resistance / rs
            factor += 4.0 * self.switching_quad.switch_on_resistance / rs
            conversion = SWITCHING_FACTOR * gm_eff
            # R_F thermal noise referred to the RF input.
            factor += 2.0 / (conversion ** 2 * design.feedback_resistance * rs)
            # OTA input noise referred to the RF input through the voltage gain.
            gain_voltage = conversion * design.feedback_resistance
            ota_psd = 2.0 * self.tia.ota.input_noise_density ** 2
            source_psd = 4.0 * BOLTZMANN * technology.temperature * rs
            factor += ota_psd / (source_psd * gain_voltage ** 2)
        else:
            conversion = SWITCHING_FACTOR * gm_eff
            factor += 2.0 / (conversion ** 2 * design.load_resistance * rs)

        return float(noise_figure_from_factor(factor))

    def flicker_corner_hz(self) -> float:
        """1/f corner frequency of the current mode (Hz)."""
        return self.spec_intermediates().flicker_corner_hz

    def noise_figure_db_array(self, if_frequency: float | np.ndarray) -> np.ndarray:
        """Vectorized DSB noise figure (dB) over an IF frequency array.

        One call evaluates the whole Fig. 9 NF curve; the scalar
        :meth:`noise_figure_db` wraps this method, so both paths agree
        exactly.
        """
        intermediates = self.spec_intermediates()
        return np.asarray(nf_with_flicker(intermediates.white_nf_db,
                                          intermediates.flicker_corner_hz,
                                          np.asarray(if_frequency, dtype=float)))

    def noise_figure_db(self, if_frequency: float | None = None) -> float:
        """DSB noise figure (dB) at an IF frequency, including the 1/f rise."""
        if_freq = if_frequency if if_frequency is not None \
            else self.design.if_frequency
        return float(self.noise_figure_db_array(if_freq))

    # -- linearity ----------------------------------------------------------------------

    def gm_stage_iip3_dbm(self) -> float:
        """IIP3 of the (possibly degenerated) Gm stage alone (dBm)."""
        return self.transconductor.iip3_dbm()

    def output_stage_iip3_dbm(self) -> float:
        """Input-referred IIP3 contribution of the output network (dBm).

        Active mode: the transmission-gate load / Gilbert-core headroom
        intercept referred through the conversion gain.  Passive mode: the
        TIA feedback suppresses the OTA's weak nonlinearity, so this term is
        effectively absent (returned as +inf).
        """
        if self._mode is MixerMode.PASSIVE:
            return math.inf
        output_intercept = self.load.output_intercept_vpeak()
        gain = SWITCHING_FACTOR * self._effective_gm() * self._load_resistance()
        return float(dbm_from_vpeak(output_intercept / gain))

    def iip3_dbm(self) -> float:
        """Composite input-referred IIP3 (dBm) of the current mode; memoized.

        The contributions (Gm stage, quad on-resistance modulation, output
        network) are combined with the standard voltage-domain rule
        ``1/A_total^2 = sum(1/A_k^2)`` since all are referred to the same
        input port.
        """
        return self.spec_intermediates().iip3_dbm

    def _compute_iip3_dbm(self) -> float:
        contributions_dbm = [self.gm_stage_iip3_dbm(),
                             self.switching_quad.iip3_dbm(self._mode),
                             self.output_stage_iip3_dbm()]
        inverse_sum = 0.0
        for value in contributions_dbm:
            if math.isinf(value):
                continue
            amplitude = float(vpeak_from_dbm(value))
            inverse_sum += 1.0 / (amplitude ** 2)
        if inverse_sum == 0.0:
            return math.inf
        total_amplitude = math.sqrt(1.0 / inverse_sum)
        return float(dbm_from_vpeak(total_amplitude))

    def iip2_dbm(self) -> float:
        """Input-referred IIP2 (dBm), limited by differential mismatch.

        A perfectly balanced differential circuit cancels even-order
        products; the residue is the single-ended second-order term of the
        Gm device scaled by the fractional mismatch.
        """
        return self.spec_intermediates().iip2_dbm

    def _compute_iip2_dbm(self) -> float:
        coefficients = self.transconductor.taylor_coefficients()
        mismatch = self.design.differential_mismatch
        if mismatch <= 0 or coefficients.g2 == 0.0:
            return math.inf
        single_ended_aiip2 = abs(coefficients.g1 / coefficients.g2)
        balanced_aiip2 = single_ended_aiip2 / mismatch
        return float(dbm_from_vpeak(balanced_aiip2))

    def p1db_dbm(self) -> float:
        """Analytic estimate of the input 1 dB compression point (dBm).

        The smaller of the third-order estimate (IIP3 - 9.6 dB) and the
        output-swing-limited value; the paper attributes the low-IF
        compression to the OTA output swing.
        """
        return self.spec_intermediates().p1db_dbm

    def _compute_p1db_dbm(self, iip3_dbm: float) -> float:
        candidates = [iip3_dbm - 9.6]
        gain = SWITCHING_FACTOR * self._effective_gm() * self._load_resistance()
        # The output limiter used by the waveform model is a hard (6th-order)
        # clip, which reaches 1 dB of compression when the ideal output is at
        # about 98 % of the swing limit.
        swing_limited_input = 0.98 * self.design.output_swing_limit / gain
        candidates.append(float(dbm_from_vpeak(swing_limited_input)))
        return min(candidates)

    # -- power -----------------------------------------------------------------------------

    def power_mw(self) -> float:
        """Supply power of the current mode (mW); see :mod:`repro.core.power`."""
        return self.spec_intermediates().power_mw

    def _compute_power_mw(self) -> float:
        from repro.core.power import PowerBudget

        return PowerBudget(self.design).total_mw(self._mode)

    # -- aggregate -----------------------------------------------------------------------------

    def specs(self) -> MixerSpecs:
        """All headline specs of the current mode at the nominal operating point."""
        band_low, band_high = self.band_edges()
        return MixerSpecs(
            mode=self._mode,
            conversion_gain_db=self.conversion_gain_db(),
            noise_figure_db=self.noise_figure_db(),
            iip3_dbm=self.iip3_dbm(),
            iip2_dbm=self.iip2_dbm(),
            p1db_dbm=self.p1db_dbm(),
            power_mw=self.power_mw(),
            band_low_hz=band_low,
            band_high_hz=band_high,
            flicker_corner_hz=self.flicker_corner_hz(),
        )

    def paper_targets(self) -> PaperTargets:
        """The paper's reported numbers for the current mode."""
        return paper_targets(self._mode)

    # -- waveform-level model ----------------------------------------------------------------

    def waveform_device(self, sample_rate: float,
                        lo_frequency: float | None = None,
                        rf_band_frequency: float | None = None,
                        assume_periodic: bool = False
                        ) -> Callable[[np.ndarray], np.ndarray]:
        """Build a waveform-in/waveform-out model of the current configuration.

        The returned callable maps a sampled differential RF voltage to the
        sampled differential IF output voltage:

        1. the Gm-stage polynomial nonlinearity (third-order coefficient from
           the device Taylor expansion, scaled by the wide-band response at
           ``rf_band_frequency``);
        2. the passive quad's on-resistance nonlinearity (passive mode only);
        3. LO commutation by the band-limited switching function;
        4. scaling by ``gm_eff * R_load`` (the 2/pi factor is produced by the
           commutation itself);
        5. the IF low-pass of the load / TIA feedback network;
        6. the output-network third-order term (active mode) and a hard
           output-swing limiter.

        The same callable is what the IIP3, IIP2, P1dB and spot conversion
        gain benches measure, so those numbers are read off spectra exactly
        like the paper's simulations.

        Time runs along the **last** axis: a ``(powers, samples)`` block is
        processed in one call with every row identical to a solo evaluation,
        which is how the batched waveform engine (:mod:`repro.waveform`)
        evaluates a whole input-power sweep without a Python loop.

        ``assume_periodic=True`` declares that every input record is exactly
        one period of the waveform (true by construction on the coherently
        sampled grids the benches build): the cyclic prefix is then dropped
        and the IF filter applied as its steady-state periodic response
        (:meth:`~repro.rf.filters.FirstOrderLowPass.apply_periodic`), which
        matches the prefixed evaluation to double precision at half the
        samples — the batched engine's fast path.  Leave it ``False`` for
        arbitrary (aperiodic) records.
        """
        if sample_rate <= 0:
            raise ValueError("sample rate must be positive")
        lo = lo_frequency if lo_frequency is not None else self.design.lo_frequency
        if lo >= sample_rate / 2.0:
            raise ValueError("sample rate must be more than twice the LO frequency")
        rf_band = rf_band_frequency if rf_band_frequency is not None \
            else self.design.rf_frequency

        mode = self._mode
        tca = self.transconductor
        coefficients = tca.taylor_coefficients()
        gm_ratio_a3 = coefficients.g3 / coefficients.g1 if coefficients.g1 else 0.0
        # Residual even-order term: the differential topology cancels the
        # device's g2 except for the fractional mismatch between the two
        # half-circuits; this is what bounds the measured IIP2.
        gm_ratio_a2 = 0.0
        if coefficients.g1:
            gm_ratio_a2 = self.design.differential_mismatch * \
                coefficients.g2 / coefficients.g1
        band = float(tca.band_response(rf_band, self._coupling_capacitance(),
                                       self._band_node_resistance()))
        gm_eff = self._effective_gm()
        load_resistance = self._load_resistance()
        if_filter = self._if_filter()
        quad = SwitchingQuad(self.design, LoDrive(lo))
        swing = self.design.output_swing_limit

        quad_a3 = 0.0
        quad_iip3 = quad.iip3_dbm(mode)
        if not math.isinf(quad_iip3):
            amplitude = float(vpeak_from_dbm(quad_iip3))
            quad_a3 = -4.0 / (3.0 * amplitude ** 2)

        output_a3 = 0.0
        if mode is MixerMode.ACTIVE:
            output_intercept = self.load.output_intercept_vpeak()
            output_a3 = -4.0 / (3.0 * output_intercept ** 2)

        gain = gm_eff * load_resistance
        # Per-record-length memo of the time grid and LO switching function
        # for the periodic (engine) path: the batched engine evaluates many
        # cache-sized chunks of identical length through one device, and
        # these waveforms depend only on the length.  The general-purpose
        # path recomputes them per call, as a point bench always has.
        periodic_state: dict[int, np.ndarray] = {}

        def _switching(length: int) -> np.ndarray:
            switching = periodic_state.get(length)
            if switching is None:
                times = np.arange(length) / sample_rate
                switching = quad.commutate(np.ones(length), times)
                periodic_state[length] = switching
            return switching

        def _periodic_device(original: np.ndarray) -> np.ndarray:
            # The engine's fast path: same model, written with in-place
            # array maths on the un-prefixed record (the steady-state
            # filter replaces the cyclic prefix, see
            # FirstOrderLowPass.apply_periodic) — agreement with the
            # general-purpose path is pinned well below measurement
            # resolution.
            v = original * band
            squared = v * v
            even_order = np.multiply(squared, gm_ratio_a2)
            cube = np.multiply(squared, v, out=squared)
            v += np.multiply(cube, gm_ratio_a3, out=cube)
            if quad_a3 != 0.0:
                squared = v * v
                cube = np.multiply(squared, v, out=squared)
                v += np.multiply(cube, quad_a3, out=cube)
            v *= _switching(original.shape[-1])
            v += even_order
            v *= gain
            out = if_filter.apply_periodic(v, sample_rate)
            if output_a3 != 0.0:
                squared = out * out
                cube = np.multiply(squared, out, out=squared)
                out += np.multiply(cube, output_a3, out=cube)
            out /= swing
            squared = out * out
            sixth = np.multiply(squared, squared)
            np.multiply(sixth, squared, out=sixth)
            sixth += 1.0
            np.sqrt(sixth, out=sixth)
            np.cbrt(sixth, out=sixth)
            np.divide(out, sixth, out=out)
            out *= swing
            return out

        def device(waveform: np.ndarray) -> np.ndarray:
            original = np.asarray(waveform, dtype=float)
            if assume_periodic:
                return _periodic_device(original)
            # Prepend one full copy of the record as a cyclic prefix so the
            # IF filter reaches its periodic steady state before the
            # measured block starts; measurement grids are coherently
            # sampled, so the record is exactly periodic and the prefix is
            # free of artefacts.
            v = np.concatenate([original, original], axis=-1) * band
            # Gm-stage nonlinearity (voltage-normalised: unity linear term).
            # The residual even-order product (mismatch-scaled) reaches the IF
            # port without frequency conversion — the classic IM2 feedthrough
            # mechanism of an imperfectly balanced quad — so it is added after
            # the commutation rather than inside the converted path.  Odd
            # powers are spelled as products: np.power falls back to the slow
            # libm path on signed bases, and these run per sample per sweep
            # point.
            even_order = gm_ratio_a2 * (v * v)
            v = v + gm_ratio_a3 * (v * v * v)
            if quad_a3 != 0.0:
                v = v + quad_a3 * (v * v * v)
            times = np.arange(v.shape[-1]) / sample_rate
            commutated = quad.commutate(v, times) + even_order
            scaled = commutated * gain
            filtered = if_filter.apply(scaled, sample_rate)
            if output_a3 != 0.0:
                out = filtered + output_a3 * (filtered * filtered * filtered)
            else:
                out = filtered
            # Hard-ish swing limit: negligible odd-order distortion until the
            # signal approaches the rail, then compression (models the OTA /
            # output-stage clipping the paper blames for the low-IF P1dB).
            # x^(1/6) as cbrt(sqrt(x)): hardware sqrt + libm cbrt beat pow.
            ratio = out / swing
            ratio_squared = ratio * ratio
            sixth = ratio_squared * ratio_squared * ratio_squared
            out = swing * ratio / np.cbrt(np.sqrt(1.0 + sixth))
            return out[..., original.shape[-1]:]

        return device

    def downconvert(self, waveform: np.ndarray, sample_rate: float,
                    lo_frequency: float | None = None) -> np.ndarray:
        """Down-convert a sampled RF waveform with the current configuration."""
        return self.waveform_device(sample_rate, lo_frequency)(waveform)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ReconfigurableMixer(mode={self._mode.value})"
