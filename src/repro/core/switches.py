"""MOS switches used for reconfiguration (Fig. 5 of the paper).

Three switch styles appear in the design:

* **PMOS switches** (Sw1-2, Mp1/Mp2 and the TIA power switch p3): driven by
  ``Vlogic``; in passive mode Sw1-2 stay *on* and their triode resistance
  doubles as the source degeneration that linearises the passive mixer;
* **NMOS switches** (Sw5-7): route the active-mode bias and implement the
  tail current source;
* **transmission gates** (Sw3-4 and the resistive load of Fig. 5b): a PMOS
  and NMOS in parallel, ``R_tot = R_PMOS || R_NMOS``, giving a usable
  resistance across the whole 0..VDD signal range at 1.2 V supply — the
  "optimum headroom" argument of the abstract.

All on-resistances are derived from the behavioural 65 nm device models, so
sizing decisions (width for a target resistance) go through real device
physics rather than magic constants.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

from repro.devices.mosfet import Mosfet
from repro.devices.technology import Technology, UMC65_LIKE
from repro.units import parallel


class SwitchState(enum.Enum):
    """Logical state of a switch."""

    ON = "on"
    OFF = "off"


@dataclass(frozen=True)
class _MosSwitchBase:
    """Shared behaviour of single-device MOS switches."""

    width: float
    length: float
    technology: Technology = UMC65_LIKE

    def _device(self) -> Mosfet:
        raise NotImplementedError

    def _gate_drive(self, control_high: bool) -> float:
        raise NotImplementedError

    def state(self, control_high: bool) -> SwitchState:
        """Switch state for a given logic level on the control input."""
        vgs = self._gate_drive(control_high)
        return SwitchState.ON if self._device().is_on(vgs) else SwitchState.OFF

    def on_resistance(self, signal_voltage: float | None = None) -> float:
        """Triode on-resistance at a signal (source) voltage.

        ``signal_voltage`` defaults to the mid-rail common mode the paper
        designs the signal path around.
        """
        vs = self.technology.mid_rail if signal_voltage is None else signal_voltage
        device = self._device()
        vgs = self._gate_voltage_on() - vs
        resistance = device.on_resistance(vgs)
        return resistance

    def off_resistance(self) -> float:
        """Off-state resistance (ideal open: infinity)."""
        return math.inf

    def resistance(self, control_high: bool,
                   signal_voltage: float | None = None) -> float:
        """Resistance presented for a control level (on-resistance or open)."""
        if self.state(control_high) is SwitchState.ON:
            return self.on_resistance(signal_voltage)
        return self.off_resistance()

    def _gate_voltage_on(self) -> float:
        raise NotImplementedError


@dataclass(frozen=True)
class NmosSwitch(_MosSwitchBase):
    """An NMOS pass switch: on when its gate is driven to VDD."""

    def _device(self) -> Mosfet:
        return Mosfet.nmos(self.width, self.length, self.technology)

    def _gate_voltage_on(self) -> float:
        return self.technology.vdd

    def _gate_drive(self, control_high: bool) -> float:
        gate = self.technology.vdd if control_high else 0.0
        return gate - self.technology.mid_rail

    def conducts_when(self) -> str:
        """Human-readable control sense."""
        return "control high"


@dataclass(frozen=True)
class PmosSwitch(_MosSwitchBase):
    """A PMOS pass switch: on when its gate is driven to ground.

    In passive mode the paper drives ``Vlogic`` low so Mp1/Mp2 conduct and
    their on-resistance acts as the degeneration resistance R_deg.
    """

    def _device(self) -> Mosfet:
        return Mosfet.pmos(self.width, self.length, self.technology)

    def _gate_voltage_on(self) -> float:
        return 0.0

    def _gate_drive(self, control_high: bool) -> float:
        gate = self.technology.vdd if control_high else 0.0
        # PMOS vgs measured gate-to-source with the source at mid-rail.
        return gate - self.technology.mid_rail

    def state(self, control_high: bool) -> SwitchState:
        vgs = self._gate_drive(control_high)
        return SwitchState.ON if self._device().is_on(vgs) else SwitchState.OFF

    def conducts_when(self) -> str:
        """Human-readable control sense."""
        return "control low"

    @classmethod
    def sized_for_degeneration(cls, target_resistance: float,
                               length: float = 65e-9,
                               technology: Technology = UMC65_LIKE) -> "PmosSwitch":
        """Size the PMOS so its on-resistance equals a target degeneration value.

        The paper: "Width of PMOS is chosen to provide degeneration
        resistance, thus turning the overall mixer topology into a passive
        mode."
        """
        probe = Mosfet.pmos(1e-6, length, technology)
        vgs_on = 0.0 - technology.mid_rail
        width = probe.width_for_resistance(target_resistance, vgs_on, length)
        return cls(width=width, length=length, technology=technology)


@dataclass(frozen=True)
class TransmissionGate:
    """A CMOS transmission gate: NMOS and PMOS in parallel (Fig. 5b).

    Used both as the series resistive switches Sw3-4 and, connected to VDD,
    as the resistive load of the active mixer.  Its total resistance is
    ``R_PMOS || R_NMOS`` and stays comparatively flat across the signal
    range — with only one device the resistance would blow up as the signal
    approaches one rail, which is exactly the headroom problem the paper's
    abstract calls out at 1.2 V.
    """

    nmos_width: float
    pmos_width: float
    length: float
    technology: Technology = UMC65_LIKE

    def __post_init__(self) -> None:
        if self.nmos_width <= 0 or self.pmos_width <= 0 or self.length <= 0:
            raise ValueError("transmission-gate dimensions must be positive")

    def _nmos(self) -> Mosfet:
        return Mosfet.nmos(self.nmos_width, self.length, self.technology)

    def _pmos(self) -> Mosfet:
        return Mosfet.pmos(self.pmos_width, self.length, self.technology)

    def state(self, enabled: bool) -> SwitchState:
        """Both gates are driven complementarily; ``enabled`` turns the TG on."""
        return SwitchState.ON if enabled else SwitchState.OFF

    def on_resistance(self, signal_voltage: float | None = None) -> float:
        """Parallel on-resistance at a signal voltage (defaults to mid-rail)."""
        vs = self.technology.mid_rail if signal_voltage is None else signal_voltage
        vdd = self.technology.vdd
        r_nmos = self._nmos().on_resistance(vdd - vs)
        r_pmos = self._pmos().on_resistance(0.0 - vs)
        finite = [r for r in (r_nmos, r_pmos) if math.isfinite(r)]
        if not finite:
            return math.inf
        if len(finite) == 1:
            return finite[0]
        return float(parallel(r_nmos, r_pmos))

    def resistance(self, enabled: bool,
                   signal_voltage: float | None = None) -> float:
        """Resistance presented for an enable level."""
        if enabled:
            return self.on_resistance(signal_voltage)
        return math.inf

    def resistance_flatness(self, points: int = 21) -> float:
        """Max/min on-resistance ratio across the 10-90 % signal range.

        A figure of merit for the headroom argument: a value close to 1 means
        the load resistance (and therefore the active-mode gain) barely moves
        with the output swing.
        """
        vdd = self.technology.vdd
        voltages = [0.1 * vdd + 0.8 * vdd * i / (points - 1) for i in range(points)]
        resistances = [self.on_resistance(v) for v in voltages]
        finite = [r for r in resistances if math.isfinite(r)]
        if not finite:
            return math.inf
        return max(finite) / min(finite)

    @classmethod
    def sized_for_load(cls, target_resistance: float, length: float = 130e-9,
                       technology: Technology = UMC65_LIKE) -> "TransmissionGate":
        """Size a transmission gate for a target mid-rail resistance.

        Each device is sized for twice the target so the parallel combination
        lands on it; the paper tunes the active-mode gain through exactly
        this resistance.
        """
        if target_resistance <= 0:
            raise ValueError("target resistance must be positive")
        mid = technology.mid_rail
        nmos_probe = Mosfet.nmos(1e-6, length, technology)
        pmos_probe = Mosfet.pmos(1e-6, length, technology)
        nmos_width = nmos_probe.width_for_resistance(
            2.0 * target_resistance, technology.vdd - mid, length)
        pmos_width = pmos_probe.width_for_resistance(
            2.0 * target_resistance, 0.0 - mid, length)
        return cls(nmos_width=nmos_width, pmos_width=pmos_width, length=length,
                   technology=technology)
