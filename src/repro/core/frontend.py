"""The wide-band receiver front end of Fig. 2.

The mixer does not live alone: the paper's block diagram places it behind an
RF balun (50 ohm termination) and a wide-band LNA, and in front of the
first-order RC low-pass that delivers the IF to the baseband.  This module
provides behavioural models of those surrounding blocks and a
:class:`WidebandReceiverFrontEnd` that cascades them, so system-level
questions (total NF via Friis, total IIP3, which mode suits which standard)
can be answered with the same library.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.config import MixerDesign, MixerMode
from repro.core.reconfigurable_mixer import ReconfigurableMixer
from repro.rf.blocks import BehavioralBlock, CascadeResult, cascade
from repro.rf.network import balun_output_amplitudes
from repro.units import REFERENCE_IMPEDANCE, ghz


@dataclass(frozen=True)
class Balun:
    """The input balun: single-ended 50 ohm RF in, differential out.

    A passive balun is lossy and slightly imbalanced; both effects are
    carried as behavioural parameters.
    """

    insertion_loss_db: float = 0.8
    imbalance_db: float = 0.3
    input_impedance: float = REFERENCE_IMPEDANCE

    def __post_init__(self) -> None:
        if self.insertion_loss_db < 0:
            raise ValueError("insertion loss cannot be negative")

    def as_block(self) -> BehavioralBlock:
        """Behavioural-block view (loss shows up as negative gain and as NF)."""
        return BehavioralBlock(
            name="balun",
            gain_db=-self.insertion_loss_db,
            nf_db=self.insertion_loss_db,
            iip3_dbm=math.inf,
            input_impedance=self.input_impedance,
        )

    def split(self, waveform: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Split a single-ended waveform into the differential pair."""
        scale_p, scale_n = balun_output_amplitudes(
            1.0, self.insertion_loss_db, self.imbalance_db)
        v = np.asarray(waveform, dtype=float)
        return scale_p * v, -scale_n * v


@dataclass(frozen=True)
class LowNoiseAmplifier:
    """A wide-band LNA placed before the mixer (Fig. 2).

    The defaults describe a typical 65 nm wide-band resistive-feedback LNA:
    moderate gain, sub-3 dB NF, around -5 dBm IIP3.
    """

    gain_db: float = 15.0
    nf_db: float = 2.8
    iip3_dbm: float = -5.0
    band_low_hz: float = ghz(0.5)
    band_high_hz: float = ghz(6.0)
    supply_current: float = 6.0e-3

    def __post_init__(self) -> None:
        if self.band_low_hz >= self.band_high_hz:
            raise ValueError("LNA band edges out of order")

    def as_block(self) -> BehavioralBlock:
        """Behavioural-block view for cascade calculations."""
        return BehavioralBlock(
            name="lna",
            gain_db=self.gain_db,
            nf_db=self.nf_db,
            iip3_dbm=self.iip3_dbm,
        )

    def gain_at(self, rf_frequency: float) -> float:
        """Gain (dB) including a simple band-pass roll-off outside the band."""
        if rf_frequency <= 0:
            raise ValueError("frequency must be positive")
        low_ratio = rf_frequency / self.band_low_hz
        high_ratio = rf_frequency / self.band_high_hz
        highpass = low_ratio / math.sqrt(1.0 + low_ratio ** 2)
        lowpass = 1.0 / math.sqrt(1.0 + high_ratio ** 4)
        return self.gain_db + 20.0 * math.log10(highpass * lowpass)


@dataclass(frozen=True)
class LocalOscillator:
    """The LO chain driving the switching quad."""

    frequency: float = ghz(2.4)
    amplitude: float = 0.6
    phase_noise_dbc_hz: float = -110.0
    supply_current: float = 1.0e-3

    def __post_init__(self) -> None:
        if self.frequency <= 0 or self.amplitude <= 0:
            raise ValueError("LO frequency and amplitude must be positive")

    def reciprocal_mixing_floor_dbm(self, blocker_dbm: float,
                                    offset_hz: float,
                                    channel_bandwidth_hz: float) -> float:
        """Noise floor created by a blocker through LO phase noise (dBm).

        ``blocker + L(offset) + 10 log10(BW)`` — a standard system-level
        budget the multi-standard receiver example uses.
        """
        if offset_hz <= 0 or channel_bandwidth_hz <= 0:
            raise ValueError("offset and bandwidth must be positive")
        return blocker_dbm + self.phase_noise_dbc_hz \
            + 10.0 * math.log10(channel_bandwidth_hz)


class WidebandReceiverFrontEnd:
    """Balun + LNA + reconfigurable mixer + LO chain (Fig. 2)."""

    def __init__(self, design: MixerDesign | None = None,
                 mode: MixerMode = MixerMode.ACTIVE,
                 balun: Balun | None = None,
                 lna: LowNoiseAmplifier | None = None,
                 lo: LocalOscillator | None = None,
                 include_lna: bool = True) -> None:
        self.design = design if design is not None else MixerDesign()
        self.mixer = ReconfigurableMixer(self.design, mode)
        self.balun = balun if balun is not None else Balun()
        self.lna = lna if lna is not None else LowNoiseAmplifier()
        self.lo = lo if lo is not None else LocalOscillator(
            frequency=self.design.lo_frequency)
        self.include_lna = include_lna

    @property
    def mode(self) -> MixerMode:
        """Current mixer configuration."""
        return self.mixer.mode

    def set_mode(self, mode: MixerMode) -> None:
        """Reconfigure the mixer inside the front end."""
        self.mixer.set_mode(mode)

    def mixer_block(self, rf_frequency: float | None = None) -> BehavioralBlock:
        """The mixer reduced to a behavioural block at an RF frequency."""
        specs = self.mixer.specs()
        gain = self.mixer.conversion_gain_db(rf_frequency) \
            if rf_frequency is not None else specs.conversion_gain_db
        return BehavioralBlock(
            name=f"mixer-{self.mode.value}",
            gain_db=gain,
            nf_db=specs.noise_figure_db,
            iip3_dbm=specs.iip3_dbm,
            iip2_dbm=specs.iip2_dbm,
            output_swing_limit=self.design.output_swing_limit,
        )

    def blocks(self, rf_frequency: float | None = None) -> list[BehavioralBlock]:
        """The behavioural cascade from the antenna to the IF output."""
        chain = [self.balun.as_block()]
        if self.include_lna:
            chain.append(self.lna.as_block())
        chain.append(self.mixer_block(rf_frequency))
        return chain

    def cascade(self, rf_frequency: float | None = None) -> CascadeResult:
        """Total gain / NF / IIP3 of the front end (Friis and IIP3 cascade)."""
        return cascade(self.blocks(rf_frequency))

    def sensitivity_dbm(self, channel_bandwidth_hz: float,
                        required_snr_db: float,
                        rf_frequency: float | None = None) -> float:
        """Receiver sensitivity: ``-174 dBm/Hz + 10log10(BW) + NF + SNR_req``."""
        if channel_bandwidth_hz <= 0:
            raise ValueError("channel bandwidth must be positive")
        total = self.cascade(rf_frequency)
        return -174.0 + 10.0 * math.log10(channel_bandwidth_hz) \
            + total.nf_db + required_snr_db

    def total_power_mw(self) -> float:
        """Supply power of the whole front end (mW)."""
        power = self.mixer.power_mw()
        power += self.lo.supply_current * self.design.vdd * 1e3 * 0.0  # LO already
        # counted inside the mixer budget; the LNA adds its own branch.
        if self.include_lna:
            power += self.lna.supply_current * self.design.vdd * 1e3
        return power
