"""Per-mode power budget of the reconfigurable mixer.

The paper quotes 9.36 mW in active mode and 9.24 mW in passive mode from the
1.2 V supply, with the TIA alone drawing 3.3 mA (switched off in active
mode).  :class:`PowerBudget` reconstructs those totals from the bias plan in
the design record so the benchmark can print a branch-by-branch breakdown.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import MixerDesign, MixerMode


@dataclass(frozen=True)
class PowerBreakdown:
    """Branch currents (A) and the resulting power for one mode."""

    mode: MixerMode
    transconductor_a: float
    gilbert_core_a: float
    lo_chain_a: float
    tia_a: float
    supply_v: float

    @property
    def total_current_a(self) -> float:
        """Total supply current (A)."""
        return (self.transconductor_a + self.gilbert_core_a
                + self.lo_chain_a + self.tia_a)

    @property
    def total_power_w(self) -> float:
        """Total power (W)."""
        return self.total_current_a * self.supply_v

    @property
    def total_power_mw(self) -> float:
        """Total power (mW)."""
        return self.total_power_w * 1e3

    def as_rows(self) -> list[tuple[str, float]]:
        """(branch, mW) rows for reporting."""
        v = self.supply_v
        return [
            ("transconductance amplifier", self.transconductor_a * v * 1e3),
            ("gilbert core (active only)", self.gilbert_core_a * v * 1e3),
            ("LO chain / bias", self.lo_chain_a * v * 1e3),
            ("TIA (passive only)", self.tia_a * v * 1e3),
        ]


class PowerBudget:
    """Computes the power drawn in each configuration."""

    def __init__(self, design: MixerDesign | None = None) -> None:
        self.design = design if design is not None else MixerDesign()

    def breakdown(self, mode: MixerMode) -> PowerBreakdown:
        """Branch-by-branch budget for ``mode``.

        Active mode: TCA + Gilbert core + LO chain (TIA powered down via
        switch p3).  Passive mode: TCA + LO chain + TIA (no DC current in the
        quad).
        """
        design = self.design
        if mode is MixerMode.ACTIVE:
            return PowerBreakdown(
                mode=mode,
                transconductor_a=design.tca_bias_current,
                gilbert_core_a=design.active_core_current,
                lo_chain_a=design.lo_chain_current,
                tia_a=0.0,
                supply_v=design.vdd,
            )
        return PowerBreakdown(
            mode=mode,
            transconductor_a=design.tca_bias_current,
            gilbert_core_a=0.0,
            lo_chain_a=design.lo_chain_current,
            tia_a=design.tia_supply_current,
            supply_v=design.vdd,
        )

    def total_mw(self, mode: MixerMode) -> float:
        """Total power (mW) for ``mode``."""
        return self.breakdown(mode).total_power_mw

    def tia_power_mw(self) -> float:
        """Power of the TIA branch alone (the paper's 3.3 mA at 1.2 V)."""
        return self.design.tia_supply_current * self.design.vdd * 1e3

    def saving_when_active_mw(self) -> float:
        """Power saved in active mode by switching the TIA off."""
        return self.tia_power_mw()
