"""The LO-driven switching quad (Fig. 4) shared by both mixer modes.

Four NMOS devices commutate the differential RF current at the LO rate.  In
active mode they sit on top of the common-source Gm devices (a classic
double-balanced Gilbert cell); in passive mode they carry no DC current and
behave as resistive switches characterised by ``R_on`` — the paper's
"frequency mixer ... simply composed of four NMOS transistors characterized
by resistance (Ron) when switched on".

The class provides both the analytic quantities (conversion factor, switch
resistance, noise excess) and the waveform-level commutation used by the
measurement benches.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import cached_property

import numpy as np

from repro.core.config import MixerDesign, MixerMode
from repro.devices.mosfet import Mosfet
from repro.rf.conversion_gain import SWITCHING_FACTOR


@dataclass(frozen=True)
class LoDrive:
    """Description of the local-oscillator drive applied to the quad."""

    frequency: float
    amplitude: float = 0.6
    duty_cycle: float = 0.5

    def __post_init__(self) -> None:
        if self.frequency <= 0:
            raise ValueError("LO frequency must be positive")
        if not 0.0 < self.duty_cycle < 1.0:
            raise ValueError("duty cycle must be in (0, 1)")
        if self.amplitude <= 0:
            raise ValueError("LO amplitude must be positive")


class SwitchingQuad:
    """Behavioural model of the four-transistor switching core."""

    def __init__(self, design: MixerDesign, lo: LoDrive | None = None) -> None:
        self.design = design
        self.lo = lo if lo is not None else LoDrive(frequency=design.lo_frequency)

    # -- devices -----------------------------------------------------------

    @cached_property
    def switch_device(self) -> Mosfet:
        """One of the four identical NMOS switching devices."""
        return Mosfet.nmos(self.design.quad_switch_width,
                           self.design.quad_switch_length,
                           self.design.technology)

    @property
    def switch_on_resistance(self) -> float:
        """On-resistance of one switch at full LO drive (ohms)."""
        technology = self.design.technology
        # The switch source rides near mid-rail; the LO swings the gate to VDD.
        vgs = technology.vdd - technology.mid_rail
        return self.switch_device.on_resistance(vgs)

    # -- conversion behaviour -------------------------------------------------

    @property
    def conversion_factor(self) -> float:
        """Fundamental voltage/current conversion factor of the commutation.

        An ideal hard-switched quad multiplies the signal by a +-1 square
        wave; the component at the IF is ``2/pi`` of the input amplitude.
        Finite rise/fall (soft switching) would reduce this slightly; the
        behavioural model treats the quad as hard-switched, matching the
        assumption behind the paper's equation (3).
        """
        return SWITCHING_FACTOR

    def conversion_loss_db(self) -> float:
        """Conversion loss of the bare quad in dB (a positive number)."""
        return -20.0 * math.log10(self.conversion_factor)

    def commutate(self, waveform: np.ndarray, times: np.ndarray,
                  nyquist: float | None = None) -> np.ndarray:
        """Multiply a sampled waveform by the band-limited LO switching function.

        The switching function is the Fourier series of a +-1 square wave
        truncated to the odd harmonics that fit below ``nyquist`` (defaulting
        to the sample-rate Nyquist implied by ``times``); truncation keeps
        the sampled simulation free of aliased LO harmonics while preserving
        the 2/pi fundamental behaviour.

        ``waveform`` may carry leading batch axes (shape ``(..., samples)``
        with time on the last axis, ``times`` one-dimensional): the switching
        function is computed once and broadcast across the batch, which is
        what lets the batched waveform engine commutate a whole power sweep
        in one call.
        """
        samples = np.asarray(waveform, dtype=float)
        t = np.asarray(times, dtype=float)
        if t.ndim != 1 or samples.shape[-1:] != t.shape:
            raise ValueError("waveform and times must have the same shape "
                             "(times 1-D, waveform (..., len(times)))")
        if nyquist is None:
            if t.size < 2:
                raise ValueError("need at least two time points")
            sample_rate = 1.0 / (t[1] - t[0])
            nyquist = sample_rate / 2.0
        switching = np.zeros_like(t)
        harmonic = 1
        while harmonic * self.lo.frequency < nyquist:
            coefficient = 4.0 / (math.pi * harmonic)
            if harmonic % 4 == 3:
                coefficient = -coefficient
            switching += coefficient * np.cos(
                2.0 * math.pi * harmonic * self.lo.frequency * t)
            harmonic += 2
        if harmonic == 1:
            raise ValueError("sample rate too low to represent the LO fundamental")
        return samples * switching

    # -- noise -----------------------------------------------------------------

    def noise_excess_factor(self, mode: MixerMode) -> float:
        """Excess noise factor added by the commutation.

        Switching folds noise from LO harmonics into the IF band and the
        switch devices add their own thermal noise; the active mode also has
        DC current flowing through the switches at the LO zero crossings
        (the classic active-mixer flicker/white penalty).  The calibrated
        base value comes from the design record.
        """
        base = self.design.switching_noise_excess
        if mode is MixerMode.ACTIVE:
            return base
        # Passive quad: no DC current, only the switch resistance thermal noise.
        return 0.35 * base

    def flicker_corner(self, mode: MixerMode) -> float:
        """1/f corner frequency contributed by the quad in a given mode (Hz).

        In passive mode no DC current flows through the switches, so their
        flicker noise barely appears at the output — the reason the paper can
        claim a corner below 100 kHz.  In active mode the commutated bias
        current translates switch flicker to the output.
        """
        if mode is MixerMode.ACTIVE:
            return self.design.active_flicker_corner
        return self.design.passive_flicker_corner

    # -- linearity ---------------------------------------------------------------

    def iip3_dbm(self, mode: MixerMode) -> float:
        """Input-referred IIP3 contribution of the quad itself (dBm).

        In active mode the quad is current-driven and contributes little
        odd-order distortion compared with the Gm stage and the output load,
        so it is treated as linear.  In passive mode the signal swings across
        the switch on-resistance, whose modulation is the dominant
        nonlinearity (see the paper's reference [6]); the calibrated value
        lives in the design record.
        """
        if mode is MixerMode.ACTIVE:
            return math.inf
        return self.design.passive_quad_iip3_dbm
