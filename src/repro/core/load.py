"""The active-mode load: a transmission gate to VDD with the C_c low-pass.

In active mode the commutated current develops the IF voltage across a
transmission gate connected to VDD (Fig. 5b): its on-resistance
``R_tot = R_PMOS || R_NMOS`` is the load resistance that sets the gain, and
``C_c`` filters the up-converted component.  Gain tuning in active mode works
by changing this resistance (the paper's section II.B).
"""

from __future__ import annotations

from functools import cached_property

import numpy as np

from repro.core.config import MixerDesign
from repro.core.switches import TransmissionGate
from repro.devices.passives import Capacitor, feedback_impedance
from repro.rf.filters import FirstOrderLowPass
from repro.units import db_from_voltage_ratio


class TransmissionGateLoad:
    """The transmission-gate resistive load plus C_c of the active mixer."""

    def __init__(self, design: MixerDesign,
                 transmission_gate: TransmissionGate | None = None) -> None:
        self.design = design
        self._gate = transmission_gate

    @cached_property
    def transmission_gate(self) -> TransmissionGate:
        """The sized transmission gate realising the load resistance."""
        if self._gate is not None:
            return self._gate
        return TransmissionGate.sized_for_load(self.design.load_resistance,
                                               technology=self.design.technology)

    @property
    def resistance(self) -> float:
        """Nominal (design-value) load resistance in ohms."""
        return self.design.load_resistance

    @property
    def realised_resistance(self) -> float:
        """Mid-rail resistance of the actual sized transmission gate (ohms)."""
        return self.transmission_gate.on_resistance()

    @property
    def capacitor(self) -> Capacitor:
        """The C_c low-pass capacitor."""
        return Capacitor(self.design.load_capacitance)

    @property
    def if_bandwidth(self) -> float:
        """-3 dB IF bandwidth of the R_load C_c network (Hz)."""
        return self.capacitor.pole_frequency(self.resistance)

    def if_response(self) -> FirstOrderLowPass:
        """First-order low-pass response applied to the IF output."""
        return FirstOrderLowPass(dc_gain=1.0, pole_frequency=self.if_bandwidth)

    def if_magnitude(self, frequency: float | np.ndarray) -> float | np.ndarray:
        """Magnitude of the R_load C_c low-pass at ``frequency`` (scalar or array).

        Vectorized counterpart of ``if_response().magnitude`` for sweep-engine
        callers that evaluate whole IF grids at once.
        """
        return self.if_response().magnitude(frequency)

    def impedance(self, frequency: float) -> complex:
        """Load impedance R || C_c at ``frequency``."""
        return feedback_impedance(self.resistance, self.design.load_capacitance,
                                  frequency)

    def resistance_flatness(self) -> float:
        """Max/min resistance ratio across the signal range (headroom metric)."""
        return self.transmission_gate.resistance_flatness()

    def gain_step_db(self, resistance_scale: float) -> float:
        """Gain change (dB) obtained by scaling the load resistance.

        Active-mode gain tuning: ``Gain of active mixer can be tuned by
        changing the resistance of transmission gate``.
        """
        if resistance_scale <= 0:
            raise ValueError("resistance_scale must be positive")
        return float(db_from_voltage_ratio(resistance_scale))

    def output_intercept_vpeak(self) -> float:
        """Output third-order intercept voltage of the load network (V peak).

        The transmission-gate resistance is weakly signal-dependent (that is
        what :meth:`resistance_flatness` quantifies) and the Gilbert core has
        finite headroom below the 1.2 V rail; together they limit the
        large-signal behaviour at the output node.  The behavioural model
        expresses this as an output intercept proportional to the supply,
        with the factor calibrated in the design record.
        """
        return self.design.active_output_ip3_factor * self.design.vdd
