"""A parameterised passive current-commutating mixer baseline.

The family the paper's passive mode belongs to (and that references [5] and
[6] exemplify): a Gm stage, a DC-current-free switching quad and a
transimpedance load.  Unlike :class:`repro.core.ReconfigurableMixer` this
baseline cannot switch modes — it is the "dedicated passive mixer" a system
designer would otherwise have to instantiate next to a dedicated active one,
which is exactly the duplication the paper's reconfigurable circuit avoids.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.baselines.base import BaselineMixer, BaselineSpec
from repro.rf.conversion_gain import SWITCHING_FACTOR
from repro.units import db_from_voltage_ratio, dbm_from_vpeak


@dataclass(frozen=True)
class PassiveCurrentCommutatingMixer:
    """A dedicated passive current-commutating mixer with a TIA load.

    Attributes
    ----------
    gm:
        Transconductance of the input stage (S).
    degeneration_resistance:
        Source/series degeneration (ohms) — the linearity knob.
    feedback_resistance:
        TIA feedback resistance Z_F (ohms) — the gain knob.
    switch_on_resistance:
        Quad switch on-resistance (ohms) — a noise contributor.
    gm_bias_current / tia_current:
        Supply currents (A).
    supply_voltage:
        Supply (V).
    gamma:
        Channel-noise factor.
    """

    gm: float = 15e-3
    degeneration_resistance: float = 50.0
    feedback_resistance: float = 3.7e3
    switch_on_resistance: float = 40.0
    gm_bias_current: float = 4.4e-3
    tia_current: float = 3.3e-3
    supply_voltage: float = 1.8
    gamma: float = 1.1

    def __post_init__(self) -> None:
        if min(self.gm, self.feedback_resistance, self.gm_bias_current,
               self.tia_current, self.supply_voltage) <= 0:
            raise ValueError("all parameters must be positive")
        if self.degeneration_resistance < 0 or self.switch_on_resistance < 0:
            raise ValueError("resistances cannot be negative")

    @property
    def effective_gm(self) -> float:
        """Degenerated transconductance (S)."""
        return self.gm / (1.0 + self.gm * self.degeneration_resistance)

    def conversion_gain_db(self) -> float:
        """Voltage conversion gain ``(2/pi) gm_eff R_F`` in dB (equation 3)."""
        return float(db_from_voltage_ratio(
            SWITCHING_FACTOR * self.effective_gm * self.feedback_resistance))

    def noise_figure_db(self, source_resistance: float = 50.0) -> float:
        """DSB NF estimate (dB) including switch and degeneration noise."""
        conversion = SWITCHING_FACTOR * self.effective_gm
        factor = 1.0 \
            + 2.0 * self.gamma / (self.gm * source_resistance) \
            + 2.0 * self.degeneration_resistance / source_resistance \
            + 4.0 * self.switch_on_resistance / source_resistance \
            + 0.5 \
            + 2.0 / (conversion ** 2 * self.feedback_resistance * source_resistance)
        return 10.0 * math.log10(factor)

    def iip3_dbm(self) -> float:
        """IIP3 estimate (dBm): degenerated input stage plus switch modulation."""
        base_amplitude = 2.0 * math.sqrt(0.2)  # undegenerated device estimate
        improved = base_amplitude * (1.0 + self.gm * self.degeneration_resistance)
        switch_amplitude = 1.0  # ~ +10 dBm switch-limited ceiling
        total = 1.0 / math.sqrt(1.0 / improved ** 2 + 1.0 / switch_amplitude ** 2)
        return float(dbm_from_vpeak(total))

    def power_mw(self) -> float:
        """Supply power (mW)."""
        return (self.gm_bias_current + self.tia_current) * self.supply_voltage * 1e3

    def as_spec(self, reference: str = "passive-baseline") -> BaselineSpec:
        """Freeze the derived numbers into a :class:`BaselineSpec`."""
        return BaselineSpec(
            reference=reference,
            description="dedicated passive current-commutating mixer with TIA",
            gain_db=self.conversion_gain_db(),
            nf_db=self.noise_figure_db(),
            iip3_dbm=self.iip3_dbm(),
            p1db_dbm=self.iip3_dbm() - 9.6,
            power_mw=self.power_mw(),
            band_low_ghz=0.5,
            band_high_ghz=5.0,
            technology="65nm (behavioural)",
            supply_v=self.supply_voltage,
        )

    def as_baseline(self) -> BaselineMixer:
        """Behavioural baseline mixer with the derived specification."""
        return BaselineMixer(self.as_spec())
