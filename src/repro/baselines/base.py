"""Common interface for baseline (comparison) mixers.

A baseline is described by its published specification and behaves, for
measurement purposes, like any other mixer in this library: it can report
its specs as a Table I row and can be turned into a waveform-level device
whose measured conversion gain / IIP3 / compression match the published
numbers.  That keeps the comparison harness honest — it runs the same
measurement code on "this work" and on every reference row.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.rf.blocks import BehavioralBlock
from repro.rf.filters import FirstOrderLowPass
from repro.units import vpeak_from_dbm


@dataclass(frozen=True)
class BaselineSpec:
    """Published operating point of a comparison design.

    ``None`` fields correspond to "NA" entries in the paper's table.
    Range-valued publications (e.g. gain 9-24 dB) are represented by their
    midpoint with the range kept in ``notes``.
    """

    reference: str
    description: str
    gain_db: float
    nf_db: float | None
    iip3_dbm: float | None
    p1db_dbm: float | None
    power_mw: float
    band_low_ghz: float
    band_high_ghz: float
    technology: str
    supply_v: float
    notes: str = ""

    def __post_init__(self) -> None:
        if self.band_low_ghz <= 0 or self.band_high_ghz <= self.band_low_ghz:
            raise ValueError(f"{self.reference}: band edges out of order")
        if self.power_mw <= 0:
            raise ValueError(f"{self.reference}: power must be positive")

    def as_table_row(self) -> dict[str, float | str | None]:
        """Row for the Table I comparison harness."""
        return {
            "design": self.reference,
            "gain_db": self.gain_db,
            "nf_db": self.nf_db,
            "iip3_dbm": self.iip3_dbm,
            "p1db_dbm": self.p1db_dbm,
            "power_mw": self.power_mw,
            "band_low_ghz": self.band_low_ghz,
            "band_high_ghz": self.band_high_ghz,
            "technology": self.technology,
            "supply_v": self.supply_v,
        }


class BaselineMixer:
    """A behavioural mixer reconstructed from a published specification."""

    def __init__(self, spec: BaselineSpec,
                 if_bandwidth_hz: float = 20e6) -> None:
        if if_bandwidth_hz <= 0:
            raise ValueError("IF bandwidth must be positive")
        self.spec = spec
        self.if_bandwidth_hz = if_bandwidth_hz

    # -- spec accessors (same names as ReconfigurableMixer where sensible) ----

    def conversion_gain_db(self, rf_frequency: float | None = None,
                           if_frequency: float | None = None) -> float:
        """Conversion gain (dB), with simple band-edge roll-off when RF given."""
        gain = self.spec.gain_db
        if rf_frequency is not None:
            low = self.spec.band_low_ghz * 1e9
            high = self.spec.band_high_ghz * 1e9
            ratio_low = rf_frequency / low
            ratio_high = rf_frequency / high
            highpass = ratio_low / math.sqrt(1.0 + ratio_low ** 2)
            lowpass = 1.0 / math.sqrt(1.0 + ratio_high ** 4)
            gain += 20.0 * math.log10(highpass * lowpass)
        if if_frequency is not None:
            roll = 1.0 / math.sqrt(1.0 + (if_frequency / self.if_bandwidth_hz) ** 2)
            gain += 20.0 * math.log10(roll)
        return gain

    def noise_figure_db(self, if_frequency: float | None = None) -> float:
        """Published noise figure (dB); raises if the paper did not report one."""
        if self.spec.nf_db is None:
            raise ValueError(f"{self.spec.reference} does not report a noise figure")
        return self.spec.nf_db

    def iip3_dbm(self) -> float:
        """Published IIP3 (dBm); +inf when not reported."""
        return self.spec.iip3_dbm if self.spec.iip3_dbm is not None else math.inf

    def p1db_dbm(self) -> float:
        """Published (or IIP3-derived) input compression point (dBm)."""
        if self.spec.p1db_dbm is not None:
            return self.spec.p1db_dbm
        if self.spec.iip3_dbm is not None:
            return self.spec.iip3_dbm - 9.6
        return math.inf

    def power_mw(self) -> float:
        """Published power consumption (mW)."""
        return self.spec.power_mw

    def band_edges(self) -> tuple[float, float]:
        """Published RF band edges (Hz)."""
        return self.spec.band_low_ghz * 1e9, self.spec.band_high_ghz * 1e9

    def figure_of_merit(self) -> float:
        """A standard mixer FoM: gain + IIP3 - NF - 10 log10(P/1mW).

        Used by the comparison experiment to rank designs; rows missing IIP3
        or NF are scored with conservative substitutes (0 dBm / 15 dB).
        """
        iip3 = self.spec.iip3_dbm if self.spec.iip3_dbm is not None else 0.0
        nf = self.spec.nf_db if self.spec.nf_db is not None else 15.0
        return self.spec.gain_db + iip3 - nf - 10.0 * math.log10(self.spec.power_mw)

    # -- behavioural views -------------------------------------------------------

    def as_block(self) -> BehavioralBlock:
        """Behavioural-block view for cascade studies."""
        return BehavioralBlock(
            name=self.spec.reference,
            gain_db=self.spec.gain_db,
            nf_db=self.spec.nf_db if self.spec.nf_db is not None else 15.0,
            iip3_dbm=self.spec.iip3_dbm,
        )

    def waveform_device(self, sample_rate: float, lo_frequency: float,
                        ) -> Callable[[np.ndarray], np.ndarray]:
        """Waveform-level model: polynomial nonlinearity + ideal commutation.

        Enough to let the comparison harness measure the published gain and
        IIP3 back out of a spectrum, confirming the row is internally
        consistent with the measurement pipeline used for "this work".
        """
        if sample_rate <= 0 or lo_frequency <= 0:
            raise ValueError("sample rate and LO frequency must be positive")
        if lo_frequency >= sample_rate / 2.0:
            raise ValueError("LO must be below Nyquist")
        gain_linear = 10.0 ** (self.spec.gain_db / 20.0)
        a3 = 0.0
        if self.spec.iip3_dbm is not None:
            amplitude = float(vpeak_from_dbm(self.spec.iip3_dbm))
            a3 = -4.0 / (3.0 * amplitude ** 2)
        if_filter = FirstOrderLowPass(dc_gain=1.0,
                                      pole_frequency=self.if_bandwidth_hz)

        def device(waveform: np.ndarray) -> np.ndarray:
            # Last axis is time (the WaveformTransfer contract), so the
            # batched benches can feed a whole (powers, samples) block.
            original = np.asarray(waveform, dtype=float)
            v = np.concatenate([original, original], axis=-1)
            v = v + a3 * (v * v * v)
            times = np.arange(v.shape[-1]) / sample_rate
            # Fundamental-only switching function (2/pi built into the 4/pi
            # coefficient times the 1/2 from the product-to-sum identity).
            lo_wave = (4.0 / math.pi) * np.cos(2.0 * math.pi * lo_frequency * times)
            mixed = v * lo_wave * (gain_linear / (2.0 / math.pi))
            out = if_filter.apply(mixed, sample_rate)
            return out[..., original.shape[-1]:]

        return device

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BaselineMixer({self.spec.reference!r})"
