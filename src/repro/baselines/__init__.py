"""Behavioural models of the comparison designs in the paper's Table I.

The paper compares its reconfigurable mixer against eight published mixers
(references [2]-[6], [10]-[12]).  We obviously cannot re-simulate those
transistor-level designs, but the comparison itself is reproducible: each
baseline is a :class:`~repro.baselines.base.BaselineMixer` carrying the
published operating point (gain, NF, IIP3, P1dB, power, bandwidth, process,
supply) and exposing the same behavioural interface as our mixer — a
waveform-level transfer built from those numbers — so the Table I harness
exercises one code path for every row.

* :mod:`repro.baselines.base` — the common baseline interface;
* :mod:`repro.baselines.published` — the spec database for refs [2]-[12];
* :mod:`repro.baselines.gilbert` — a parameterised active Gilbert-cell
  mixer (the family refs [3], [4] belong to);
* :mod:`repro.baselines.passive_current_commutating` — a parameterised
  passive current-commutating mixer with TIA (the family of refs [5], [6]);
* :mod:`repro.baselines.variable_gain` — variable-conversion-gain mixers
  (refs [10], [11], [12]).
"""

from repro.baselines.base import BaselineMixer, BaselineSpec
from repro.baselines.published import (
    PUBLISHED_BASELINES,
    published_baseline,
    published_references,
)
from repro.baselines.gilbert import GilbertCellMixer
from repro.baselines.passive_current_commutating import PassiveCurrentCommutatingMixer
from repro.baselines.variable_gain import VariableGainMixer

__all__ = [
    "BaselineMixer",
    "BaselineSpec",
    "PUBLISHED_BASELINES",
    "published_baseline",
    "published_references",
    "GilbertCellMixer",
    "PassiveCurrentCommutatingMixer",
    "VariableGainMixer",
]
