"""Variable-conversion-gain mixer baselines (refs [10]-[12] family).

These designs reconfigure *gain only* (through current steering or digital
load control); the paper's point is that multi-standard IoT receivers also
need the noise/linearity trade to be reconfigurable, which gain-only designs
cannot provide.  :class:`VariableGainMixer` models that family: it exposes a
set of gain settings whose NF and IIP3 move the way a current-steered
topology moves them (NF degrades as gain is stepped down, IIP3 barely
improves), so the multi-standard example can show quantitatively why
gain-only reconfiguration fails the linearity-hungry standards.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.base import BaselineMixer, BaselineSpec


@dataclass(frozen=True)
class VariableGainMixer:
    """A gain-programmable (but mode-fixed) active mixer.

    Attributes
    ----------
    max_gain_db / min_gain_db:
        The published gain-control range.
    nf_at_max_gain_db:
        NF at the highest gain setting; stepping the gain down degrades the
        NF roughly dB-for-dB (the classic current-steering penalty).
    iip3_at_max_gain_dbm:
        IIP3 at the highest gain setting; it improves only by a fraction of
        the gain reduction because the input stage still sees the full swing.
    iip3_recovery_fraction:
        dB of IIP3 gained per dB of gain given up (0.3 is typical).
    power_mw / band / technology / supply:
        Published envelope numbers.
    """

    reference: str = "[10]"
    max_gain_db: float = 24.0
    min_gain_db: float = 9.0
    nf_at_max_gain_db: float = 12.0
    iip3_at_max_gain_dbm: float = -12.0
    iip3_recovery_fraction: float = 0.3
    power_mw: float = 10.2
    band_low_ghz: float = 2.0
    band_high_ghz: float = 10.0
    technology: str = "130nm"
    supply_v: float = 1.2

    def __post_init__(self) -> None:
        if self.min_gain_db >= self.max_gain_db:
            raise ValueError("min gain must be below max gain")
        if not 0.0 <= self.iip3_recovery_fraction <= 1.0:
            raise ValueError("iip3_recovery_fraction must be within [0, 1]")

    def gain_settings(self, steps: int = 4) -> list[float]:
        """Evenly spaced gain settings across the published range (dB)."""
        if steps < 2:
            raise ValueError("need at least two gain settings")
        span = self.max_gain_db - self.min_gain_db
        return [self.min_gain_db + span * i / (steps - 1) for i in range(steps)]

    def nf_at(self, gain_db: float) -> float:
        """NF at a gain setting: degrades dB-for-dB as gain is reduced."""
        self._check_setting(gain_db)
        return self.nf_at_max_gain_db + (self.max_gain_db - gain_db)

    def iip3_at(self, gain_db: float) -> float:
        """IIP3 at a gain setting: recovers only partially as gain is reduced."""
        self._check_setting(gain_db)
        return self.iip3_at_max_gain_dbm \
            + self.iip3_recovery_fraction * (self.max_gain_db - gain_db)

    def _check_setting(self, gain_db: float) -> None:
        if not self.min_gain_db - 1e-9 <= gain_db <= self.max_gain_db + 1e-9:
            raise ValueError(
                f"gain setting {gain_db} dB outside the published range "
                f"[{self.min_gain_db}, {self.max_gain_db}] dB")

    def spec_at(self, gain_db: float) -> BaselineSpec:
        """A :class:`BaselineSpec` snapshot at one gain setting."""
        return BaselineSpec(
            reference=f"{self.reference}@{gain_db:.0f}dB",
            description="gain-only reconfigurable mixer at one gain setting",
            gain_db=gain_db,
            nf_db=self.nf_at(gain_db),
            iip3_dbm=self.iip3_at(gain_db),
            p1db_dbm=self.iip3_at(gain_db) - 9.6,
            power_mw=self.power_mw,
            band_low_ghz=self.band_low_ghz,
            band_high_ghz=self.band_high_ghz,
            technology=self.technology,
            supply_v=self.supply_v,
        )

    def as_baseline(self, gain_db: float | None = None) -> BaselineMixer:
        """Behavioural baseline at a gain setting (default: maximum gain)."""
        setting = gain_db if gain_db is not None else self.max_gain_db
        return BaselineMixer(self.spec_at(setting))

    def best_iip3_dbm(self) -> float:
        """The best IIP3 the design can reach at its lowest gain setting."""
        return self.iip3_at(self.min_gain_db)

    def linearity_shortfall_vs(self, required_iip3_dbm: float) -> float:
        """How far (dB) the design falls short of a required IIP3 at best."""
        return max(0.0, required_iip3_dbm - self.best_iip3_dbm())
