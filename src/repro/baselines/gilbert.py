"""A parameterised active Gilbert-cell mixer baseline.

This is the canonical *non-reconfigurable* active mixer the paper's active
mode should be compared against when the comparison needs a design-level
(rather than published-number) baseline — e.g. the ablation benchmark that
asks "what does the reconfiguration machinery cost relative to a plain
Gilbert cell of the same bias?".
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.baselines.base import BaselineMixer, BaselineSpec
from repro.rf.conversion_gain import SWITCHING_FACTOR
from repro.units import db_from_voltage_ratio, dbm_from_vpeak


@dataclass(frozen=True)
class GilbertCellMixer:
    """A plain double-balanced Gilbert cell described by circuit parameters.

    Attributes
    ----------
    gm:
        Transconductance of each input device (S).
    load_resistance:
        Resistive load per side (ohms).
    bias_current:
        Total supply current (A).
    supply_voltage:
        Supply (V).
    gamma:
        Channel-noise factor used for the NF estimate.
    overdrive:
        Input-device overdrive voltage (V); sets the IIP3 estimate.
    """

    gm: float = 15e-3
    load_resistance: float = 3.3e3
    bias_current: float = 7.8e-3
    supply_voltage: float = 1.2
    gamma: float = 1.1
    overdrive: float = 0.2

    def __post_init__(self) -> None:
        if min(self.gm, self.load_resistance, self.bias_current,
               self.supply_voltage, self.overdrive) <= 0:
            raise ValueError("all Gilbert-cell parameters must be positive")

    def conversion_gain_db(self) -> float:
        """Voltage conversion gain ``(2/pi) gm R_L`` in dB."""
        return float(db_from_voltage_ratio(
            SWITCHING_FACTOR * self.gm * self.load_resistance))

    def noise_figure_db(self, source_resistance: float = 50.0) -> float:
        """Single-ended-source DSB NF estimate (dB)."""
        factor = 1.0 + 2.0 * self.gamma / (self.gm * source_resistance) \
            + 1.0 \
            + 2.0 / ((SWITCHING_FACTOR * self.gm) ** 2
                     * self.load_resistance * source_resistance)
        return 10.0 * math.log10(factor)

    def iip3_dbm(self) -> float:
        """IIP3 estimate (dBm): input-device term plus output-swing limiting.

        The input device contributes roughly ``2 * sqrt(Vov)`` volts of
        intercept (the usual engineering rule for a square-law device with
        moderate mobility degradation); at ~30 dB of conversion gain the
        dominant term is instead the load/core headroom, modelled as an
        output intercept of twice the supply referred back through the gain —
        the same mechanism that limits the paper's active mode to about
        -12 dBm.
        """
        input_amplitude = 2.0 * math.sqrt(self.overdrive)
        gain = SWITCHING_FACTOR * self.gm * self.load_resistance
        output_amplitude_at_input = 2.0 * self.supply_voltage / gain
        total = 1.0 / math.sqrt(1.0 / input_amplitude ** 2
                                + 1.0 / output_amplitude_at_input ** 2)
        return float(dbm_from_vpeak(total))

    def power_mw(self) -> float:
        """Supply power (mW)."""
        return self.bias_current * self.supply_voltage * 1e3

    def as_spec(self, reference: str = "gilbert-baseline") -> BaselineSpec:
        """Freeze the derived numbers into a :class:`BaselineSpec`."""
        return BaselineSpec(
            reference=reference,
            description="parameterised double-balanced Gilbert cell",
            gain_db=self.conversion_gain_db(),
            nf_db=self.noise_figure_db(),
            iip3_dbm=self.iip3_dbm(),
            p1db_dbm=self.iip3_dbm() - 9.6,
            power_mw=self.power_mw(),
            band_low_ghz=0.5,
            band_high_ghz=6.0,
            technology="65nm (behavioural)",
            supply_v=self.supply_voltage,
        )

    def as_baseline(self) -> BaselineMixer:
        """Behavioural baseline mixer with the derived specification."""
        return BaselineMixer(self.as_spec())
