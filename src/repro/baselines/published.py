"""Published specifications of the comparison designs (Table I columns).

The numbers are transcribed from the paper's Table I.  Range entries keep
the range in ``notes`` and use the midpoint as the scalar value; "NA"
entries become ``None``.
"""

from __future__ import annotations

from repro.baselines.base import BaselineMixer, BaselineSpec

#: All comparison designs from Table I, keyed by the reference tag used in
#: the paper.
PUBLISHED_BASELINES: dict[str, BaselineSpec] = {
    "[2]": BaselineSpec(
        reference="[2]",
        description="Hampel et al., low-voltage inductorless folded mixer (RFIC 2009)",
        gain_db=14.5,
        nf_db=6.5,
        iip3_dbm=None,
        p1db_dbm=-13.8,
        power_mw=14.4,
        band_low_ghz=1.0,
        band_high_ghz=10.5,
        technology="65nm",
        supply_v=1.2,
    ),
    "[3]": BaselineSpec(
        reference="[3]",
        description="Chen et al., low power multi-mode SDR mixer (ISCAS 2013)",
        gain_db=13.0,
        nf_db=13.7,
        iip3_dbm=10.8,
        p1db_dbm=None,
        power_mw=8.04,
        band_low_ghz=0.9,
        band_high_ghz=2.5,
        technology="65nm",
        supply_v=1.2,
        notes="0.9 GHz plus 1.8-2.5 GHz bands; IIP3 quoted as >= 10.8 dBm",
    ),
    "[5]": BaselineSpec(
        reference="[5]",
        description="Kuan et al., wideband current-commutating passive mixer (JoS 2013)",
        gain_db=21.0,
        nf_db=10.6,
        iip3_dbm=9.0,
        p1db_dbm=None,
        power_mw=9.9,
        band_low_ghz=0.7,
        band_high_ghz=2.3,
        technology="180nm",
        supply_v=1.8,
    ),
    "[6]": BaselineSpec(
        reference="[6]",
        description="Kim et al., resistively degenerated wideband passive mixer (TMTT 2010)",
        gain_db=23.75,
        nf_db=8.6,
        iip3_dbm=7.0,
        p1db_dbm=-12.0,
        power_mw=10.0,
        band_low_ghz=1.55,
        band_high_ghz=2.3,
        technology="180nm",
        supply_v=2.0,
        notes="gain 22.5-25 dB, NF 7.7-9.5 dB, IIP3 >= 7 dBm; power includes TIA",
    ),
    "[4]": BaselineSpec(
        reference="[4]",
        description="Poobuapheun et al., 1.5V quadrature demodulator (CICC 2006)",
        gain_db=35.0,
        nf_db=10.0,
        iip3_dbm=11.0,
        p1db_dbm=-25.8,
        power_mw=20.25,
        band_low_ghz=0.7,
        band_high_ghz=2.5,
        technology="130nm",
        supply_v=1.5,
        notes="P1dB quoted at 0.1 MHz IF",
    ),
    "[10]": BaselineSpec(
        reference="[10]",
        description="Wang & Saavedra, reconfigurable broadband variable-gain mixer (IMS 2011)",
        gain_db=16.5,
        nf_db=None,
        iip3_dbm=-4.25,
        p1db_dbm=-11.5,
        power_mw=10.2,
        band_low_ghz=2.0,
        band_high_ghz=10.0,
        technology="130nm",
        supply_v=1.2,
        notes="gain 9-24 dB, IIP3 3.5 to -12 dBm, P1dB -4 to -19 dBm, power 2.4-18 mW",
    ),
    "[11]": BaselineSpec(
        reference="[11]",
        description="Xu et al., 12 GHz-bandwidth variable-conversion-gain mixer (MWCL 2011)",
        gain_db=9.1,
        nf_db=11.0,
        iip3_dbm=8.6,
        p1db_dbm=-3.7,
        power_mw=5.9,
        band_low_ghz=1.0,
        band_high_ghz=12.0,
        technology="130nm",
        supply_v=1.2,
        notes="gain 1.2-17 dB, NF >= 11 dB",
    ),
    "[12]": BaselineSpec(
        reference="[12]",
        description="Ba et al., reconfigurable passive mixer with digital gain control (RFIT 2014)",
        gain_db=12.0,
        nf_db=8.0,
        iip3_dbm=8.5,
        p1db_dbm=None,
        power_mw=7.6,
        band_low_ghz=0.7,
        band_high_ghz=2.3,
        technology="180nm",
        supply_v=1.8,
        notes="gain 3.5-20.5 dB, NF >= 8 dB, IIP3 <= 8.5 dBm, power 5.6-9.6 mW",
    ),
}

#: Column order used by the paper's Table I.
TABLE_I_ORDER = ["[2]", "[3]", "[5]", "[6]", "[4]", "[10]", "[11]", "[12]"]


def published_references() -> list[str]:
    """Reference tags in the order Table I prints them."""
    return list(TABLE_I_ORDER)


def published_baseline(reference: str) -> BaselineMixer:
    """A behavioural :class:`BaselineMixer` for a Table I reference tag."""
    if reference not in PUBLISHED_BASELINES:
        raise KeyError(
            f"unknown baseline {reference!r}; known: {sorted(PUBLISHED_BASELINES)}")
    return BaselineMixer(PUBLISHED_BASELINES[reference])


def all_published_baselines() -> list[BaselineMixer]:
    """Every Table I baseline, in table order."""
    return [published_baseline(tag) for tag in TABLE_I_ORDER]
