"""Vectorized sweep engine for the mixer's spec curves.

The paper's headline artifacts — Fig. 8 (gain vs RF), Fig. 9 (NF/gain vs
IF), Fig. 10 (IIP3) and Table I — are all parameter sweeps.  This package
evaluates them (and any grid you invent) through NumPy array paths instead
of per-point Python loops:

* :mod:`repro.sweep.grid` — labelled axes (design / mode / RF / IF) with
  nearest-point and exact-label selection;
* :mod:`repro.sweep.result` — the :class:`SweepResult` container: labelled
  axes, ``curve()`` / ``value()`` slicing helpers, ``to_dict()`` export;
* :mod:`repro.sweep.runner` — :class:`SweepRunner`, which memoizes per-design
  mixers and per-(design, mode) spec intermediates, then evaluates whole
  RF x IF planes in single broadcast calls;
* :mod:`repro.sweep.parallel` — :class:`ParallelSweepRunner`, sharding the
  design axis across a process pool and stitching shard outputs back with
  :meth:`SweepResult.concat` (bit-identical to the single-process run);
* :mod:`repro.sweep.cache` — :class:`SpecCache`, a content-addressed on-disk
  cache of solved per-(design, mode) intermediates keyed on the design
  record's stable fingerprint, so warm re-runs skip every sizing bisection;
* :mod:`repro.sweep.montecarlo` — random device-parameter spread across a
  design axis, the first scenario only the vectorized path can afford (and
  the canonical consumer of ``workers=`` / ``cache=``).

How to add a new sweep scenario
-------------------------------

1. Build the grids: a designs mapping (``{label: MixerDesign}``; derive
   variants with ``dataclasses.replace``), the modes, and RF/IF arrays.
2. Run them: ``SweepRunner(design, specs=(...)).run(rf_frequencies=...,
   if_frequencies=..., modes=..., designs=...)``.
3. Read labelled results: ``sweep.curve("conversion_gain_db",
   "rf_frequency_hz", mode=MixerMode.ACTIVE)``, ``sweep.value("iip3_dbm",
   mode="passive", design="mc-004")``, or ``sweep.to_dict()`` for export.

Keep per-point work out of Python: anything frequency-independent belongs in
:class:`~repro.core.reconfigurable_mixer.SpecIntermediates` (computed once
per design x mode), anything frequency-shaped belongs in an array accessor.
"""

from repro.sweep.cache import (
    CACHE_VERSION,
    SpecCache,
    default_cache_dir,
    resolve_cache,
)
from repro.sweep.grid import (
    DESIGN_AXIS,
    IF_AXIS,
    MODE_AXIS,
    RF_AXIS,
    SweepAxis,
)
from repro.sweep.parallel import ParallelSweepRunner, make_runner
from repro.sweep.montecarlo import (
    DeviceSpread,
    MonteCarloResult,
    SpecStatistics,
    run_monte_carlo,
    sample_design,
)
from repro.sweep.result import SweepResult
from repro.sweep.runner import (
    ALL_SPECS,
    DEFAULT_SPECS,
    FLAT_SPECS,
    FREQUENCY_SHAPED_SPECS,
    SweepRunner,
)

__all__ = [
    "ALL_SPECS",
    "CACHE_VERSION",
    "DEFAULT_SPECS",
    "DESIGN_AXIS",
    "DeviceSpread",
    "FLAT_SPECS",
    "FREQUENCY_SHAPED_SPECS",
    "IF_AXIS",
    "MODE_AXIS",
    "MonteCarloResult",
    "ParallelSweepRunner",
    "RF_AXIS",
    "SpecCache",
    "SpecStatistics",
    "SweepAxis",
    "SweepResult",
    "SweepRunner",
    "default_cache_dir",
    "make_runner",
    "resolve_cache",
    "run_monte_carlo",
    "sample_design",
]
