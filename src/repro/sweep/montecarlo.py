"""Monte-Carlo process/device spread — a sweep scenario scalar loops can't afford.

The paper reports one design point per corner; silicon ships a distribution.
This module samples many perturbed design records (threshold voltage shifts,
mobility scaling, passive-component tolerance — the classic local + global
variation knobs of a 65 nm flow), runs them all through the vectorized
:class:`~repro.sweep.runner.SweepRunner` as one design axis, and summarises
the resulting spec distributions: mean/spread, percentiles, and yield
against limits such as the paper's Table I targets.

Every sampled design re-solves device sizing and bias from scratch, so a
point-by-point Python loop over specs would multiply that cost by every
frequency of interest; the sweep engine pays it once per sample and
amortises the rest into array maths.  ``run_monte_carlo(workers=N)`` shards
the sampled design axis across N processes, and ``cache=`` persists the
per-sample solutions on disk so repeat runs skip them — see
:mod:`repro.sweep.parallel` and :mod:`repro.sweep.cache`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Sequence

import numpy as np

from repro.core.config import MixerDesign, MixerMode
from repro.sweep.cache import SpecCache
from repro.sweep.parallel import make_runner
from repro.sweep.result import SweepResult
from repro.sweep.runner import DEFAULT_SPECS

#: Axis/selector label pattern for sampled designs.
_SAMPLE_LABEL = "mc-{index:03d}"


@dataclass(frozen=True)
class DeviceSpread:
    """1-sigma spreads applied to the device and passive parameters.

    The defaults are representative of a 65 nm flow: ~10 mV threshold
    sigma, a few percent mobility sigma, and passive tolerances of a
    couple of percent for poly resistors / MIM capacitors.
    """

    vth_sigma_v: float = 0.010
    mobility_sigma: float = 0.03
    resistor_sigma: float = 0.02
    capacitor_sigma: float = 0.02

    def __post_init__(self) -> None:
        for name in ("vth_sigma_v", "mobility_sigma", "resistor_sigma",
                     "capacitor_sigma"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")


def _positive_scale(rng: np.random.Generator, sigma: float) -> float:
    """A multiplicative perturbation, kept strictly positive.

    Normal in the log domain so that scale factors are symmetric in ratio
    (a +5 % pull is as likely as a -5 % one) and can never go negative.
    """
    if sigma == 0.0:
        return 1.0
    return float(math.exp(rng.normal(0.0, sigma)))


def sample_design(design: MixerDesign, rng: np.random.Generator,
                  spread: DeviceSpread, label: str) -> MixerDesign:
    """One random design record drawn around ``design`` with ``spread``."""
    technology = design.technology
    perturbed_technology = replace(
        technology,
        name=f"{technology.name}-{label}",
        vth_n=technology.vth_n + float(rng.normal(0.0, spread.vth_sigma_v)),
        vth_p=technology.vth_p + float(rng.normal(0.0, spread.vth_sigma_v)),
        u_cox_n=technology.u_cox_n * _positive_scale(rng, spread.mobility_sigma),
        u_cox_p=technology.u_cox_p * _positive_scale(rng, spread.mobility_sigma),
    )
    return replace(
        design,
        technology=perturbed_technology,
        degeneration_resistance=design.degeneration_resistance
        * _positive_scale(rng, spread.resistor_sigma),
        feedback_resistance=design.feedback_resistance
        * _positive_scale(rng, spread.resistor_sigma),
        load_resistance=design.load_resistance
        * _positive_scale(rng, spread.resistor_sigma),
        feedback_capacitance=design.feedback_capacitance
        * _positive_scale(rng, spread.capacitor_sigma),
        load_capacitance=design.load_capacitance
        * _positive_scale(rng, spread.capacitor_sigma),
    )


@dataclass(frozen=True)
class SpecStatistics:
    """Distribution summary of one spec in one mode."""

    spec: str
    mode: MixerMode
    mean: float
    std: float
    minimum: float
    maximum: float
    p05: float
    p95: float


@dataclass
class MonteCarloResult:
    """Sampled sweep plus the summary accessors the corner study reads."""

    sweep: SweepResult
    num_samples: int
    seed: int
    spread: DeviceSpread

    def samples(self, spec: str, mode: MixerMode) -> np.ndarray:
        """Per-sample values of ``spec`` in ``mode`` (shape: num_samples)."""
        series = self.sweep.values(spec, mode=mode)
        # Remaining axes: design x rf x if with singleton frequency axes.
        return series.reshape(self.num_samples)

    def statistics(self, spec: str, mode: MixerMode) -> SpecStatistics:
        """Mean/std/extremes/percentiles of one spec distribution."""
        values = self.samples(spec, mode)
        return SpecStatistics(
            spec=spec,
            mode=mode,
            mean=float(np.mean(values)),
            std=float(np.std(values)),
            minimum=float(np.min(values)),
            maximum=float(np.max(values)),
            p05=float(np.percentile(values, 5.0)),
            p95=float(np.percentile(values, 95.0)),
        )

    def yield_fraction(self, spec: str, mode: MixerMode,
                       minimum: float | None = None,
                       maximum: float | None = None) -> float:
        """Fraction of samples with ``minimum <= value <= maximum``."""
        if minimum is None and maximum is None:
            raise ValueError("give at least one of minimum/maximum")
        values = self.samples(spec, mode)
        passing = np.ones(values.shape, dtype=bool)
        if minimum is not None:
            passing &= values >= minimum
        if maximum is not None:
            passing &= values <= maximum
        return float(np.mean(passing))


def run_monte_carlo(design: MixerDesign | None = None,
                    num_samples: int = 64, seed: int = 20150901,
                    spread: DeviceSpread | None = None,
                    modes: Sequence[MixerMode] | None = None,
                    specs: Sequence[str] = DEFAULT_SPECS,
                    workers: int | None = None,
                    cache: SpecCache | str | bool | None = None,
                    shared_memory: bool = False
                    ) -> MonteCarloResult:
    """Sample ``num_samples`` perturbed designs and sweep their specs.

    The evaluation happens at the nominal operating point (the paper's
    2.405 GHz RF / 5 MHz IF) for every sample; pass the result's underlying
    :class:`SweepResult` to downstream tooling for anything fancier.

    ``workers`` > 1 shards the sampled design axis across that many worker
    processes (:class:`~repro.sweep.parallel.ParallelSweepRunner`); the
    result is bit-identical to the single-process run for the same seed.
    ``cache`` persists each sample's sizing/bias solution on disk
    (:mod:`repro.sweep.cache`), so re-running the same seed — or any grid
    containing previously solved samples — skips the bisections entirely.
    ``shared_memory`` opts a sharded run into the shared-memory hand-off
    (see :class:`~repro.sweep.parallel.ParallelSweepRunner`).
    """
    if num_samples < 2:
        raise ValueError("a Monte-Carlo run needs at least 2 samples")
    design = design if design is not None else MixerDesign()
    spread = spread if spread is not None else DeviceSpread()
    rng = np.random.default_rng(seed)
    designs = {}
    for index in range(num_samples):
        label = _SAMPLE_LABEL.format(index=index)
        designs[label] = sample_design(design, rng, spread, label)
    runner = make_runner(design, specs=specs, workers=workers, cache=cache,
                         shared_memory=shared_memory)
    sweep = runner.run(modes=modes, designs=designs)
    return MonteCarloResult(sweep=sweep, num_samples=num_samples, seed=seed,
                            spread=spread)


def format_report(result: MonteCarloResult) -> str:
    """Text rendering of the Monte-Carlo spec distributions."""
    lines = [f"Monte-Carlo device spread — {result.num_samples} samples "
             f"(seed {result.seed})"]
    mode_axis = result.sweep.axis("mode")
    for mode_label in mode_axis.values:
        mode = MixerMode(mode_label)
        for spec in result.sweep.spec_names:
            stats = result.statistics(spec, mode)
            lines.append(
                f"  {mode_label:>7} {spec:<18} mean {stats.mean:8.2f}  "
                f"sigma {stats.std:6.3f}  [p05 {stats.p05:8.2f}, "
                f"p95 {stats.p95:8.2f}]")
    return "\n".join(lines)
