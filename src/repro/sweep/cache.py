"""Content-addressed on-disk cache of solved spec intermediates.

The expensive part of every sweep cell is frequency-independent: sizing the
Gm devices (an 80-step width bisection per transconductor), solving the bias
point, and deriving the linearity/noise/power scalars — everything bundled
into :class:`~repro.core.reconfigurable_mixer.SpecIntermediates`.  This
module persists those solutions to disk, keyed on a stable content hash of
the ``(MixerDesign, MixerMode)`` pair, so a re-run of a Monte-Carlo grid, a
refined frequency sweep, or a parallel shard in another process skips the
bisections entirely.

Key properties:

* **content-addressed** — the key is derived from
  :meth:`MixerDesign.fingerprint` (a SHA-256 over the canonical parameter
  dictionary), the mode, and :data:`CACHE_VERSION`; any design parameter
  change, however small, maps to a different entry;
* **versioned invalidation** — bump :data:`CACHE_VERSION` whenever the
  meaning of a cached field changes (new spec model, changed units): old
  entries stop matching and are recomputed, never reinterpreted;
* **corruption-safe** — entries are written atomically (temp file +
  ``os.replace``) and any unreadable/malformed entry is treated as a miss
  and overwritten by the recomputed solution;
* **switchable** — pass ``cache=None``/``False`` (the default everywhere)
  for no caching, or set ``REPRO_SWEEP_CACHE=off`` in the environment to
  force-disable caching even where code requests it;
  ``REPRO_SWEEP_CACHE_DIR`` overrides the default directory.

Cache instances are cheap handles around a directory; separate processes
(the shards of :class:`~repro.sweep.parallel.ParallelSweepRunner`) can share
one directory safely because entries are immutable once written and writes
are atomic.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from pathlib import Path

from repro.core.config import MixerDesign, MixerMode
from repro.core.reconfigurable_mixer import SpecIntermediates

#: Schema/semantics version of the cached payloads.  Bump on any change to
#: what the cached numbers mean; old entries then miss and are recomputed.
CACHE_VERSION = 1

#: Environment variable that force-disables caching when set to one of
#: ``off``/``0``/``false``/``no`` (case-insensitive).
DISABLE_ENV = "REPRO_SWEEP_CACHE"

#: Environment variable overriding the default cache directory.
DIRECTORY_ENV = "REPRO_SWEEP_CACHE_DIR"

_DISABLE_VALUES = {"off", "0", "false", "no"}


def atomic_write_json(path: Path, payload: dict) -> None:
    """Write a JSON payload so readers never observe a partial entry.

    The bytes go to a temp file unique to this process *and thread* (the
    threaded HTTP server writes cache entries from concurrent handler
    threads, where a pid-only suffix would race), then move into place with
    ``os.replace`` — atomic on POSIX.  Concurrent writers of the same entry
    at worst race to install identical content.  Shared by
    :class:`SpecCache` and the API layer's response cache.
    """
    path.parent.mkdir(parents=True, exist_ok=True)
    temp = path.with_name(
        f"{path.name}.tmp-{os.getpid()}-{threading.get_ident()}")
    temp.write_text(json.dumps(payload, sort_keys=True), encoding="utf-8")
    os.replace(temp, path)


def cache_disabled_by_env() -> bool:
    """True when the environment force-disables the spec cache."""
    return os.environ.get(DISABLE_ENV, "").strip().lower() in _DISABLE_VALUES


def default_cache_dir() -> Path:
    """The directory used when caching is requested without an explicit path."""
    override = os.environ.get(DIRECTORY_ENV, "").strip()
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro-mixer" / "sweep-intermediates"


class SpecCache:
    """Directory-backed store of :class:`SpecIntermediates` solutions.

    Parameters
    ----------
    directory:
        Where entries live; created lazily on the first store.

    The per-instance ``hits`` / ``misses`` / ``stores`` / ``corrupt``
    counters cover this process only — the directory itself may be shared
    with other processes.
    """

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory)
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.corrupt = 0

    # -- keys -----------------------------------------------------------------

    def _key(self, fingerprint: str, mode: MixerMode) -> str:
        payload = json.dumps(
            {"cache_version": CACHE_VERSION,
             "design": fingerprint,
             "mode": mode.value},
            sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def _path(self, fingerprint: str, mode: MixerMode) -> Path:
        return self.directory / f"{self._key(fingerprint, mode)}.json"

    def entry_key(self, design: MixerDesign, mode: MixerMode) -> str:
        """Content hash naming the entry for one (design, mode) cell."""
        return self._key(design.fingerprint(), mode)

    def entry_path(self, design: MixerDesign, mode: MixerMode) -> Path:
        """Filesystem path of the entry for one (design, mode) cell."""
        return self._path(design.fingerprint(), mode)

    # -- load / store ---------------------------------------------------------

    def load(self, design: MixerDesign,
             mode: MixerMode) -> SpecIntermediates | None:
        """The cached solution for a cell, or ``None`` on miss/corruption.

        Every failure mode — missing file, unreadable file, malformed JSON,
        wrong version, wrong fingerprint, missing or non-numeric fields —
        degrades to a miss so the caller recomputes (and the subsequent
        :meth:`store` replaces the bad entry).
        """
        fingerprint = design.fingerprint()
        path = self._path(fingerprint, mode)
        try:
            text = path.read_text(encoding="utf-8")
        except FileNotFoundError:
            self.misses += 1
            return None
        except OSError:
            self.corrupt += 1
            self.misses += 1
            return None
        try:
            payload = json.loads(text)
            if payload["cache_version"] != CACHE_VERSION:
                raise ValueError("cache version mismatch")
            if payload["design_fingerprint"] != fingerprint:
                raise ValueError("design fingerprint mismatch")
            intermediates = SpecIntermediates.from_dict(payload["intermediates"])
            if intermediates.mode is not mode:
                raise ValueError("cached mode mismatch")
        except (KeyError, TypeError, ValueError):
            self.corrupt += 1
            self.misses += 1
            return None
        self.hits += 1
        return intermediates

    def store(self, design: MixerDesign, mode: MixerMode,
              intermediates: SpecIntermediates) -> None:
        """Persist one solved cell, atomically (see :func:`atomic_write_json`).

        Concurrent shards or server threads never observe a half-written
        entry — at worst they race to write identical content.
        """
        if intermediates.mode is not mode:
            raise ValueError(
                f"intermediates are for mode {intermediates.mode.value!r}, "
                f"not {mode.value!r}")
        fingerprint = design.fingerprint()
        atomic_write_json(self._path(fingerprint, mode), {
            "cache_version": CACHE_VERSION,
            "design_fingerprint": fingerprint,
            "intermediates": intermediates.to_dict(),
        })
        self.stores += 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"SpecCache({str(self.directory)!r}, hits={self.hits}, "
                f"misses={self.misses}, stores={self.stores})")


def resolve_cache(cache) -> SpecCache | None:
    """Normalise a user-facing ``cache=`` option into a cache (or ``None``).

    Accepted values: ``None``/``False`` (caching off — the default
    everywhere), ``True`` (cache under :func:`default_cache_dir`), a
    string/``Path`` (cache under that directory), or an existing
    :class:`SpecCache` (used as-is).  Whatever the caller asked for,
    ``REPRO_SWEEP_CACHE=off`` in the environment wins and disables caching.
    """
    if cache is None or cache is False:
        return None
    if cache_disabled_by_env():
        return None
    if isinstance(cache, SpecCache):
        return cache
    if cache is True:
        return SpecCache(default_cache_dir())
    if isinstance(cache, (str, Path)):
        return SpecCache(cache)
    raise TypeError(
        "cache must be None/False, True, a directory path, or a SpecCache; "
        f"got {type(cache).__name__}")
