"""Labelled sweep axes for the vectorized sweep engine.

A sweep is a dense grid over up to four axes — design variant, mixer mode,
RF frequency and IF frequency.  :class:`SweepAxis` is the labelled axis the
result container indexes by: it knows its name, its values, and how a user
selector (a frequency in Hz, a :class:`~repro.core.config.MixerMode`, a
design label) maps onto an integer index.

Numeric axes resolve selectors to the *nearest* grid point, which is what
figure-reading helpers want ("the gain at 2.45 GHz" on a logarithmic grid);
categorical axes (mode, design) require an exact match and raise a
``KeyError`` naming the known values otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator

import numpy as np

#: Canonical axis names, in storage order, used by :class:`SweepRunner`.
DESIGN_AXIS = "design"
MODE_AXIS = "mode"
RF_AXIS = "rf_frequency_hz"
IF_AXIS = "if_frequency_hz"

#: Input-power axis of the waveform engine (:mod:`repro.waveform`).
POWER_AXIS = "input_power_dbm"


def _normalise(value: Any) -> Any:
    """Map enum-like selector values (e.g. MixerMode.ACTIVE) to their label."""
    return getattr(value, "value", value)


@dataclass(frozen=True)
class SweepAxis:
    """One labelled axis of a sweep grid.

    ``values`` is a tuple of floats (numeric axis) or strings (categorical
    axis); mixing the two kinds on one axis is rejected.
    """

    name: str
    values: tuple

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("axis name must be non-empty")
        if len(self.values) == 0:
            raise ValueError(f"axis {self.name!r} must have at least one value")
        kinds = {isinstance(v, str) for v in self.values}
        if len(kinds) > 1:
            raise ValueError(
                f"axis {self.name!r} mixes numeric and categorical values")

    @classmethod
    def numeric(cls, name: str, values) -> "SweepAxis":
        """Build a numeric axis from any 1-D array-like of frequencies/values."""
        array = np.atleast_1d(np.asarray(values, dtype=float))
        if array.ndim != 1:
            raise ValueError(f"axis {name!r} values must be one-dimensional")
        return cls(name=name, values=tuple(float(v) for v in array))

    @classmethod
    def categorical(cls, name: str, values) -> "SweepAxis":
        """Build a categorical axis; enum members are stored by their .value."""
        labels = tuple(str(_normalise(v)) for v in values)
        if len(set(labels)) != len(labels):
            raise ValueError(f"axis {name!r} has duplicate labels: {labels}")
        return cls(name=name, values=labels)

    @property
    def is_numeric(self) -> bool:
        """True for float-valued axes (nearest-point selection)."""
        return not isinstance(self.values[0], str)

    def __len__(self) -> int:
        return len(self.values)

    def __iter__(self) -> Iterator:
        return iter(self.values)

    def as_array(self) -> np.ndarray:
        """Numeric axis values as a float array (raises on categorical axes)."""
        if not self.is_numeric:
            raise TypeError(f"axis {self.name!r} is categorical")
        return np.asarray(self.values, dtype=float)

    def index_of(self, selector: Any) -> int:
        """Index of the grid point a user selector refers to.

        Numeric axes: the nearest value.  Categorical axes: the exact label
        (enum members are accepted and matched by their ``.value``).
        """
        if self.is_numeric:
            target = float(_normalise(selector))
            return int(np.argmin(np.abs(self.as_array() - target)))
        label = str(_normalise(selector))
        try:
            return self.values.index(label)
        except ValueError:
            raise KeyError(
                f"axis {self.name!r} has no value {label!r}; "
                f"known values: {list(self.values)}") from None

    def to_dict(self) -> dict:
        """JSON-ready description of the axis."""
        return {"name": self.name, "values": list(self.values)}

    @classmethod
    def design_axis(cls, designs, baseline) -> tuple["SweepAxis", list]:
        """The labelled design axis for a runner's ``designs=`` argument.

        ``designs`` may be a mapping of label -> design record, a sequence of
        records (auto-labelled ``design-0`` ...), or ``None`` — a one-point
        ``"nominal"`` axis holding ``baseline``.  Shared by the sweep and
        waveform engines so both label design populations identically.
        """
        from collections.abc import Mapping

        from repro.core.config import MixerDesign

        if designs is None:
            return cls.categorical(DESIGN_AXIS, ("nominal",)), [baseline]
        if isinstance(designs, Mapping):
            labels = tuple(designs)
            records = list(designs.values())
        else:
            records = list(designs)
            labels = tuple(f"design-{i}" for i in range(len(records)))
        if not records:
            raise ValueError("the design axis must not be empty")
        for record in records:
            if not isinstance(record, MixerDesign):
                raise TypeError("designs must be MixerDesign records")
        return cls.categorical(DESIGN_AXIS, labels), records

    @classmethod
    def mode_axis(cls, modes) -> tuple["SweepAxis", list]:
        """The labelled mode axis; ``None`` selects both modes."""
        from repro.core.config import MixerMode

        members = list(modes) if modes is not None \
            else [MixerMode.ACTIVE, MixerMode.PASSIVE]
        if not members:
            raise ValueError("the mode axis must not be empty")
        for member in members:
            if not isinstance(member, MixerMode):
                raise TypeError("modes must be MixerMode members")
        return cls.categorical(MODE_AXIS, members), members

    @classmethod
    def from_dict(cls, payload: dict) -> "SweepAxis":
        """Rebuild an axis from :meth:`to_dict` output.

        The axis kind is recovered from the value types: all-string values
        make a categorical axis, numbers a numeric one; a mix is rejected by
        the constructor as always.
        """
        name = payload["name"]
        values = payload["values"]
        if values and all(isinstance(value, str) for value in values):
            return cls.categorical(name, values)
        return cls.numeric(name, values)
