"""Parallel sweep execution: shard the design axis across processes.

The per-(design, mode) cell work — device sizing bisection, bias solution,
linearity/noise/power scalars — is embarrassingly parallel across the design
axis: no cell reads another cell's state.  :class:`ParallelSweepRunner`
exploits that by splitting the design records into contiguous shards, running
each shard through an ordinary :class:`~repro.sweep.runner.SweepRunner` in a
``concurrent.futures.ProcessPoolExecutor`` worker, and stitching the shard
outputs back together with :meth:`SweepResult.concat` along the design axis.

Determinism: every cell is computed by exactly the same code path as the
single-process runner — same maths, same order within a cell — so the
stitched result is **bit-identical** to ``SweepRunner.run`` on the same
grid, regardless of worker count (gated in
``benchmarks/test_bench_parallel.py``).

The frequency axes are *not* sharded: the whole point of the vectorized
engine is that the RF x IF plane is cheap array maths; the wall-clock cost
lives in the per-design solves, so the design axis is the right (and only)
thing to distribute.

Combine with the on-disk cache (:mod:`repro.sweep.cache`) for the full
effect: shards share one cache directory, so a re-run — parallel or not —
skips every bisection that any previous run or shard already paid for.
"""

from __future__ import annotations

import os
import pickle
import threading
import uuid
from contextlib import contextmanager
from dataclasses import dataclass
from concurrent.futures import ProcessPoolExecutor
from typing import Iterable, Iterator, Mapping, Sequence

import numpy as np

try:  # pragma: no cover - present on every supported platform
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover - stripped-down builds only
    _shared_memory = None

from repro.api.progress import report_progress
from repro.core.config import MixerDesign, MixerMode
from repro.sweep.cache import SpecCache, resolve_cache
from repro.sweep.grid import DESIGN_AXIS, IF_AXIS, RF_AXIS, SweepAxis
from repro.sweep.result import SweepResult
from repro.sweep.runner import DEFAULT_SPECS, SweepRunner

# -- shared process pools ------------------------------------------------------
#
# A ProcessPoolExecutor is expensive to spin up (one interpreter fork/spawn
# per worker), and the historical behaviour — every ParallelSweepRunner.run
# building and tearing down its own pool — made a busy server pay that cost
# on every parallel request.  With reuse enabled, pools are process-wide
# singletons keyed by worker count, built on first use and handed out to
# every subsequent run; `Executor` instances are thread-safe, so concurrent
# jobs interleave their shard maps safely.  Reuse is opt-in (the serving
# layer enables it) because a long-lived pool is server behaviour: one-shot
# scripts and tests should not leave idle worker processes behind.
# Bit-identity is untouched either way — `pool.map` preserves task order and
# every shard runs exactly the same code path.

_POOLS_LOCK = threading.Lock()
_SHARED_POOLS: dict[int, ProcessPoolExecutor] = {}
_POOL_REUSE = False


def set_pool_reuse(enabled: bool) -> None:
    """Turn process-pool reuse on or off for this process.

    The serving layer calls ``set_pool_reuse(True)`` at startup so every
    parallel run (sweep and waveform alike) draws from one persistent pool
    per worker count instead of spinning up its own.
    """
    global _POOL_REUSE
    _POOL_REUSE = bool(enabled)


def pool_reuse_enabled() -> bool:
    """Whether parallel runs currently draw from the shared pools."""
    return _POOL_REUSE


def shared_executor(max_workers: int) -> ProcessPoolExecutor:
    """The process-wide executor for ``max_workers``, built on first use."""
    if max_workers < 1:
        raise ValueError("max_workers must be at least 1")
    with _POOLS_LOCK:
        pool = _SHARED_POOLS.get(max_workers)
        if pool is None:
            pool = ProcessPoolExecutor(max_workers=max_workers)
            _SHARED_POOLS[max_workers] = pool
        return pool


def shutdown_shared_pools(wait: bool = True) -> None:
    """Tear down every shared pool (server shutdown / test cleanup)."""
    with _POOLS_LOCK:
        pools = list(_SHARED_POOLS.values())
        _SHARED_POOLS.clear()
    for pool in pools:
        pool.shutdown(wait=wait)


@contextmanager
def executor_for(max_workers: int) -> Iterator[ProcessPoolExecutor]:
    """A pool for one parallel run: shared when reuse is on, private else.

    Private pools are torn down on exit exactly as before; shared pools
    outlive the run (that is the point) and are closed by
    :func:`shutdown_shared_pools`.
    """
    if _POOL_REUSE:
        yield shared_executor(max_workers)
        return
    with ProcessPoolExecutor(max_workers=max_workers) as pool:
        yield pool


@dataclass(frozen=True)
class _ShardTask:
    """Everything one worker needs to run its slice of the design axis.

    Kept to plain picklable values (tuples of floats, frozen dataclasses,
    enum members, an optional directory string) so the task crosses the
    process boundary cheaply under any start method.
    """

    specs: tuple[str, ...]
    labels: tuple[str, ...]
    records: tuple[MixerDesign, ...]
    rf_frequencies: tuple[float, ...]
    if_frequencies: tuple[float, ...]
    modes: tuple[MixerMode, ...]
    cache_dir: str | None


def _run_shard(task: _ShardTask) -> SweepResult:
    """Worker entry point: one SweepRunner over one design-axis slice."""
    cache = SpecCache(task.cache_dir) if task.cache_dir is not None else None
    runner = SweepRunner(task.records[0], specs=task.specs, cache=cache)
    return runner.run(
        rf_frequencies=task.rf_frequencies,
        if_frequencies=task.if_frequencies,
        modes=task.modes,
        designs=dict(zip(task.labels, task.records)),
    )


# -- shared-memory shard hand-off ----------------------------------------------
#
# The pickle hand-off above ships every shard its slice of design records
# through the executor's call queue and ships every shard result back the
# same way — 2x the whole grid through pickle for one run.  The opt-in
# shared-memory path (``ParallelSweepRunner(shared_memory=True)``) replaces
# both copies: the parent writes one pickled (labels, records) block into a
# ``multiprocessing.shared_memory`` segment every worker attaches to, and
# workers write their result blocks straight into a second, preallocated
# float64 segment the parent reads the stitched arrays from.  Workers then
# return only a row count.  Bit-identity is untouched — the cell maths runs
# through the very same SweepRunner; only the transport changes.
#
# The path degrades gracefully: when the platform has no usable shared
# memory (import failure, segment creation refused), the runner silently
# falls back to the pickle hand-off.  Segments are always closed and
# unlinked by the parent — including when a worker raises mid-sweep — so a
# failed run leaks nothing into /dev/shm.

#: Name prefix of every segment this module creates; the leak tests sweep
#: /dev/shm for leftovers carrying it.
SEGMENT_PREFIX = "repro-sweep-"


@dataclass(frozen=True)
class _ShmShardTask:
    """One worker's slice plus the segment names replacing the pickles."""

    specs: tuple[str, ...]
    rf_frequencies: tuple[float, ...]
    if_frequencies: tuple[float, ...]
    modes: tuple[MixerMode, ...]
    cache_dir: str | None
    designs_segment: str
    designs_size: int
    results_segment: str
    results_shape: tuple[int, ...]
    start: int
    stop: int


def _run_shard_shm(task: _ShmShardTask) -> int:
    """Worker entry point for the shared-memory hand-off.

    Reads the design block from the input segment, runs the ordinary
    :class:`SweepRunner` over its ``[start, stop)`` slice, and writes each
    spec's block into the preallocated result segment.  Returns the number
    of designs evaluated (the progress payload — the arrays never cross the
    pickle boundary).
    """
    segment = _shared_memory.SharedMemory(name=task.designs_segment)
    try:
        labels, records = pickle.loads(
            bytes(segment.buf[:task.designs_size]))
    finally:
        segment.close()
    labels = labels[task.start:task.stop]
    records = records[task.start:task.stop]
    cache = SpecCache(task.cache_dir) if task.cache_dir is not None else None
    runner = SweepRunner(records[0], specs=task.specs, cache=cache)
    result = runner.run(
        rf_frequencies=task.rf_frequencies,
        if_frequencies=task.if_frequencies,
        modes=task.modes,
        designs=dict(zip(labels, records)),
    )
    segment = _shared_memory.SharedMemory(name=task.results_segment)
    try:
        block = np.ndarray(task.results_shape, dtype=np.float64,
                           buffer=segment.buf)
        for spec_index, spec in enumerate(task.specs):
            block[spec_index, task.start:task.stop] = result.data[spec]
        # Views into the segment must be dropped before close() — an
        # exported buffer keeps the mapping alive and close() would raise.
        del block
    finally:
        segment.close()
    return task.stop - task.start


def _create_segment(size: int):
    """A fresh named segment, or ``None`` when shared memory is unusable."""
    if _shared_memory is None:
        return None
    name = f"{SEGMENT_PREFIX}{uuid.uuid4().hex}"
    try:
        return _shared_memory.SharedMemory(name=name, create=True,
                                           size=max(1, int(size)))
    except (OSError, ValueError):  # refused by the platform: fall back
        return None


class ParallelSweepRunner:
    """Drop-in :class:`SweepRunner` that shards the design axis over processes.

    Parameters
    ----------
    design:
        Baseline design record (defaults and nominal grids), as for
        :class:`SweepRunner`.
    specs:
        Spec curves to evaluate.
    workers:
        Worker process count; ``None`` means ``os.cpu_count()``.  With one
        worker — or a design axis too short to shard — the sweep runs inline
        in this process, no pool spawned.
    cache:
        On-disk spec cache shared by all shards; same accepted values as
        :class:`SweepRunner`.  The cache is what makes repeated parallel
        runs cheap: each worker both reads and extends the shared directory.
    shared_memory:
        Opt into the ``multiprocessing.shared_memory`` hand-off: design
        records cross into workers through one shared segment instead of
        per-shard pickles, and result blocks come back through a second
        preallocated segment instead of pickled :class:`SweepResult`
        objects.  Bit-identical to the default hand-off; silently falls
        back to pickling when the platform offers no shared memory.
    """

    def __init__(self, design: MixerDesign | None = None,
                 specs: Sequence[str] = DEFAULT_SPECS,
                 workers: int | None = None,
                 cache: SpecCache | str | bool | None = None,
                 shared_memory: bool = False) -> None:
        if workers is not None and workers < 1:
            raise ValueError("workers must be at least 1")
        self.workers = int(workers) if workers is not None \
            else (os.cpu_count() or 1)
        self.cache = resolve_cache(cache)
        self.shared_memory = bool(shared_memory)
        # The inline runner owns spec validation, the design-axis labelling
        # rules and the single-process fallback, so both paths stay identical.
        self._inline = SweepRunner(design, specs=specs, cache=self.cache)

    @property
    def design(self) -> MixerDesign:
        """The baseline design record."""
        return self._inline.design

    @property
    def specs(self) -> tuple[str, ...]:
        """The configured spec names."""
        return self._inline.specs

    def run(self, rf_frequencies: Iterable[float] | np.ndarray | None = None,
            if_frequencies: Iterable[float] | np.ndarray | None = None,
            modes: Sequence[MixerMode] | None = None,
            designs: Mapping[str, MixerDesign] | Sequence[MixerDesign] | None = None
            ) -> SweepResult:
        """Evaluate the configured specs over the full grid, sharded.

        Accepts exactly the arguments of :meth:`SweepRunner.run` and returns
        a bit-identical :class:`SweepResult`.  Sharding applies only when
        there are at least two design records and two workers; otherwise the
        call runs inline.
        """
        design_axis, records = self._inline._design_axis(designs)
        _, mode_members = self._inline._mode_axis(modes)
        # SweepAxis.numeric applies the same 1-D validation (and error
        # message) the inline runner would, keeping the drop-in contract.
        rf = SweepAxis.numeric(
            RF_AXIS, rf_frequencies if rf_frequencies is not None
            else [self.design.rf_frequency]).values
        if_ = SweepAxis.numeric(
            IF_AXIS, if_frequencies if if_frequencies is not None
            else [self.design.if_frequency]).values

        shard_count = min(self.workers, len(records))
        if shard_count <= 1:
            return self._inline.run(rf_frequencies=rf, if_frequencies=if_,
                                    modes=mode_members,
                                    designs=dict(zip(design_axis.values,
                                                     records)))

        labels = design_axis.values
        cache_dir = str(self.cache.directory) if self.cache is not None else None
        bounds_list = [(int(bounds[0]), int(bounds[-1]) + 1) for bounds in
                       np.array_split(np.arange(len(records)), shard_count)]
        if self.shared_memory:
            result = self._run_shared_memory(
                design_axis, records, rf, if_, mode_members, bounds_list,
                cache_dir)
            if result is not None:
                return result
            # Shared memory unavailable on this platform: pickle hand-off.
        tasks = []
        for start, stop in bounds_list:
            tasks.append(_ShardTask(
                specs=self.specs,
                labels=tuple(labels[start:stop]),
                records=tuple(records[start:stop]),
                rf_frequencies=rf,
                if_frequencies=if_,
                modes=tuple(mode_members),
                cache_dir=cache_dir,
            ))
        shards: list[SweepResult] = []
        designs_done = 0
        with executor_for(shard_count) as pool:
            for task, shard in zip(tasks, pool.map(_run_shard, tasks)):
                shards.append(shard)
                designs_done += len(task.labels)
                # Completed shards are partial progress the job surface can
                # stream; with no observer this is a thread-local no-op.
                report_progress(stage="sweep", shards_done=len(shards),
                                shards_total=len(tasks),
                                designs_done=designs_done,
                                designs_total=len(records))
        return SweepResult.concat(shards, axis=DESIGN_AXIS)

    def _run_shared_memory(self, design_axis: SweepAxis,
                           records: Sequence[MixerDesign],
                           rf: tuple[float, ...], if_: tuple[float, ...],
                           mode_members: Sequence[MixerMode],
                           bounds_list: Sequence[tuple[int, int]],
                           cache_dir: str | None) -> SweepResult | None:
        """The shared-memory hand-off, or ``None`` to fall back to pickling.

        Two segments live for the duration of the run: the pickled
        ``(labels, records)`` block every worker reads its slice from, and
        the stitched ``(spec, design, mode, rf, if)`` float64 block workers
        write into.  Both are closed and unlinked in a ``finally`` — a
        worker exception propagates *after* the segments are gone, so a
        failed sweep leaks nothing.
        """
        labels = design_axis.values
        payload = pickle.dumps((tuple(labels), tuple(records)),
                               protocol=pickle.HIGHEST_PROTOCOL)
        shape = (len(self.specs), len(records), len(mode_members),
                 len(rf), len(if_))
        designs_segment = _create_segment(len(payload))
        if designs_segment is None:
            return None
        results_segment = _create_segment(8 * int(np.prod(shape)))
        if results_segment is None:
            designs_segment.close()
            designs_segment.unlink()
            return None
        try:
            designs_segment.buf[:len(payload)] = payload
            tasks = [_ShmShardTask(
                specs=self.specs,
                rf_frequencies=rf,
                if_frequencies=if_,
                modes=tuple(mode_members),
                cache_dir=cache_dir,
                designs_segment=designs_segment.name,
                designs_size=len(payload),
                results_segment=results_segment.name,
                results_shape=shape,
                start=start,
                stop=stop,
            ) for start, stop in bounds_list]
            designs_done = 0
            with executor_for(len(tasks)) as pool:
                for shards_done, count in enumerate(
                        pool.map(_run_shard_shm, tasks), start=1):
                    designs_done += count
                    report_progress(stage="sweep", shards_done=shards_done,
                                    shards_total=len(tasks),
                                    designs_done=designs_done,
                                    designs_total=len(records))
            block = np.ndarray(shape, dtype=np.float64,
                               buffer=results_segment.buf)
            data = {spec: np.array(block[spec_index], dtype=float, copy=True)
                    for spec_index, spec in enumerate(self.specs)}
            # Drop the view before close() — see _run_shard_shm.
            del block
        finally:
            designs_segment.close()
            designs_segment.unlink()
            results_segment.close()
            results_segment.unlink()
        axes = (design_axis, SweepAxis.mode_axis(list(mode_members))[0],
                SweepAxis.numeric(RF_AXIS, rf), SweepAxis.numeric(IF_AXIS, if_))
        return SweepResult(axes, data)


def make_runner(design: MixerDesign | None = None,
                specs: Sequence[str] = DEFAULT_SPECS,
                workers: int | None = None,
                cache: SpecCache | str | bool | None = None,
                shared_memory: bool = False
                ) -> SweepRunner | ParallelSweepRunner:
    """The runner an experiment entry point should use for its options.

    ``workers=None`` or ``1`` keeps the plain single-process
    :class:`SweepRunner` (the default everywhere — experiments pay nothing
    for the parallel machinery unless asked); anything higher returns a
    :class:`ParallelSweepRunner`.  ``cache`` is honoured by both;
    ``shared_memory`` opts the parallel runner into the shared-memory shard
    hand-off (ignored inline, where nothing crosses a process boundary).
    """
    if workers is None or workers == 1:
        return SweepRunner(design, specs=specs, cache=cache)
    return ParallelSweepRunner(design, specs=specs, workers=workers,
                               cache=cache, shared_memory=shared_memory)
