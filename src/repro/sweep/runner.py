"""The vectorized sweep engine for mixer spec curves.

:class:`SweepRunner` evaluates the reconfigurable mixer's spec accessors
over an arbitrary dense grid of **design variant x mode x RF frequency x IF
frequency** without per-point Python loops.  The split of labour is:

* everything that does not depend on the swept frequencies (device sizing,
  bias solutions, effective gm, noise floors, linearity intercepts, power)
  is computed **once per (design, mode) cell** through
  :meth:`ReconfigurableMixer.spec_intermediates` and memoized on the mixer;
* the frequency-shaped specs (conversion gain, noise figure) are then
  evaluated over the whole RF x IF plane in **one NumPy broadcast call**
  via the array accessors (:meth:`conversion_gain_db_array`,
  :meth:`noise_figure_db_array`);
* frequency-flat specs (IIP3, P1dB, power, band edges) are broadcast across
  the plane so every spec array shares one labelled shape.

Mixer instances are memoized per design record, so re-running a sweep on a
refined frequency grid re-uses every sizing/bias solution already paid for.
An optional on-disk layer (:mod:`repro.sweep.cache`) extends that memo
across processes and interpreter runs, and
:class:`~repro.sweep.parallel.ParallelSweepRunner` shards the design axis of
large grids across worker processes with this runner doing each shard.

Adding a new sweep scenario is: build the designs/modes/grids you care
about, call :meth:`SweepRunner.run`, and read labelled curves off the
returned :class:`~repro.sweep.result.SweepResult` — see
:mod:`repro.sweep.montecarlo` for a worked example (per-design random
process spread, something the scalar path could never afford).
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.core.config import MixerDesign, MixerMode
from repro.core.reconfigurable_mixer import ReconfigurableMixer, SpecIntermediates
from repro.core.transconductance import solve_widths
from repro.sweep.cache import SpecCache, resolve_cache
from repro.sweep.grid import IF_AXIS, RF_AXIS, SweepAxis
from repro.sweep.result import SweepResult

#: Spec names whose values vary across the RF/IF plane.
FREQUENCY_SHAPED_SPECS = ("conversion_gain_db", "noise_figure_db")

#: Spec names that are flat across frequency (one scalar per design x mode).
FLAT_SPECS = ("iip3_dbm", "iip2_dbm", "p1db_dbm", "power_mw",
              "band_low_hz", "band_high_hz", "flicker_corner_hz")

#: Every spec the runner can evaluate.
ALL_SPECS = FREQUENCY_SHAPED_SPECS + FLAT_SPECS

#: The headline specs swept by default (the paper's Fig. 8/9/10 quantities).
DEFAULT_SPECS = ("conversion_gain_db", "noise_figure_db", "iip3_dbm",
                 "p1db_dbm", "power_mw")


class SweepRunner:
    """Evaluates mixer spec curves over parameter grids, vectorized.

    Parameters
    ----------
    design:
        The baseline design record; used when :meth:`run` is not given an
        explicit design axis, and as the source of the nominal RF/IF
        operating point for defaulted frequency grids.
    specs:
        Which spec curves to evaluate (a subset of :data:`ALL_SPECS`).
    cache:
        Optional on-disk cache of solved per-(design, mode) intermediates —
        ``None``/``False`` (default, off), ``True`` (default directory), a
        directory path, or a :class:`~repro.sweep.cache.SpecCache`.  With a
        warm cache every sizing/bias bisection is skipped; see
        :mod:`repro.sweep.cache`.
    """

    def __init__(self, design: MixerDesign | None = None,
                 specs: Sequence[str] = DEFAULT_SPECS,
                 cache: SpecCache | str | bool | None = None) -> None:
        self.design = design if design is not None else MixerDesign()
        self.cache = resolve_cache(cache)
        self.specs = tuple(specs)
        if not self.specs:
            raise ValueError("need at least one spec to sweep")
        unknown = [spec for spec in self.specs if spec not in ALL_SPECS]
        if unknown:
            raise ValueError(f"unknown specs {unknown}; choose from {ALL_SPECS}")
        # Mixers (and with them every sizing/bias solution and memoized
        # intermediate) are kept per design record across run() calls.
        self._mixers: dict[MixerDesign, ReconfigurableMixer] = {}
        # (design, mode) cells the pre-sizing pass already checked the disk
        # cache for and missed; _cell_intermediates skips the redundant
        # second load so the cache counters see each cell exactly once.
        self._presize_misses: set[tuple[MixerDesign, MixerMode]] = set()

    # -- mixer cache ---------------------------------------------------------

    def mixer_for(self, design: MixerDesign) -> ReconfigurableMixer:
        """The memoized mixer instance for a design record."""
        mixer = self._mixers.get(design)
        if mixer is None:
            mixer = ReconfigurableMixer(design)
            self._mixers[design] = mixer
        return mixer

    @property
    def cached_design_count(self) -> int:
        """How many design records currently have a memoized mixer."""
        return len(self._mixers)

    # -- grid assembly -------------------------------------------------------

    def _design_axis(self, designs) -> tuple[SweepAxis, list[MixerDesign]]:
        # Shared with the waveform engine; see SweepAxis.design_axis.
        return SweepAxis.design_axis(designs, self.design)

    def _mode_axis(self, modes) -> tuple[SweepAxis, list[MixerMode]]:
        return SweepAxis.mode_axis(modes)

    # -- execution -----------------------------------------------------------

    def run(self, rf_frequencies: Iterable[float] | np.ndarray | None = None,
            if_frequencies: Iterable[float] | np.ndarray | None = None,
            modes: Sequence[MixerMode] | None = None,
            designs: Mapping[str, MixerDesign] | Sequence[MixerDesign] | None = None
            ) -> SweepResult:
        """Evaluate the configured specs over the full grid.

        Omitted frequency grids collapse to the **baseline** design's
        nominal operating point (LO + IF for RF, the nominal IF), so
        ``run(modes=[...])`` is a Table-I-style spot evaluation; omitted
        ``modes`` sweeps both modes; omitted ``designs`` uses the baseline
        design only.  The grid is shared by every design on the axis — if a
        swept design record re-tunes ``lo_frequency``/``if_frequency``, pass
        explicit grids covering its operating point rather than relying on
        the defaults.
        """
        design_axis, design_records = self._design_axis(designs)
        mode_axis, mode_members = self._mode_axis(modes)
        rf_axis = SweepAxis.numeric(
            RF_AXIS, rf_frequencies if rf_frequencies is not None
            else [self.design.rf_frequency])
        if_axis = SweepAxis.numeric(
            IF_AXIS, if_frequencies if if_frequencies is not None
            else [self.design.if_frequency])
        rf = rf_axis.as_array()
        if_ = if_axis.as_array()
        if np.any(rf <= 0) or np.any(if_ <= 0):
            raise ValueError("swept frequencies must be positive")

        shape = (len(design_axis), len(mode_axis), rf.size, if_.size)
        data = {spec: np.empty(shape, dtype=float) for spec in self.specs}

        self._presize(design_records, mode_members, design_axis.values)
        for design_index, record in enumerate(design_records):
            mixer = self.mixer_for(record)
            for mode_index, mode in enumerate(mode_members):
                mixer.set_mode(mode)
                cell = (design_index, mode_index)
                self._fill_cell(mixer, record, data, cell, rf, if_)

        axes = (design_axis, mode_axis, rf_axis, if_axis)
        return SweepResult(axes, data)

    #: Minimum number of unsolved designs before the batched width solver
    #: takes over from the lazy per-cell scalar path.  A single design gains
    #: nothing from batching, so spot sweeps stay on the scalar solver.
    _BATCH_THRESHOLD = 2

    def _presize(self, records: Sequence[MixerDesign],
                 modes: Sequence[MixerMode],
                 labels: Sequence[str]) -> int:
        """Batch-solve Gm widths for every design the cache cannot cover.

        One :func:`~repro.core.transconductance.solve_widths` call sizes the
        whole unsolved block of the design axis before the cell loop runs —
        the N x 80 scalar bisection steps collapse into 80 array steps.  A
        design only joins the block when at least one of its modes is served
        by neither the mixer memo nor the disk cache (cache hits seed the
        memo here, so a warm run still performs zero solves); the solved
        widths are bit-identical to the lazy scalar path, so cell results do
        not depend on which solver ran.  Returns the number of designs
        batch-sized.
        """
        pending_records: list[MixerDesign] = []
        pending_labels: list[str] = []
        pending_mixers: list[ReconfigurableMixer] = []
        seen: set[MixerDesign] = set()
        for label, record in zip(labels, records):
            if record in seen:
                continue
            seen.add(record)
            mixer = self.mixer_for(record)
            covered = True
            for mode in modes:
                if mixer.peek_intermediates(mode) is not None:
                    continue
                if self.cache is not None and \
                        (record, mode) not in self._presize_misses:
                    cached = self.cache.load(record, mode)
                    if cached is not None:
                        mixer.seed_intermediates(cached)
                        continue
                    self._presize_misses.add((record, mode))
                covered = False
            if covered or mixer.gm_device_sized():
                continue
            pending_records.append(record)
            pending_labels.append(label)
            pending_mixers.append(mixer)
        if len(pending_records) < self._BATCH_THRESHOLD:
            return 0
        widths = solve_widths(pending_records, labels=pending_labels)
        for mixer, width in zip(pending_mixers, widths):
            mixer.seed_gm_width(float(width))
        return len(pending_records)

    def _cell_intermediates(self, mixer: ReconfigurableMixer,
                            record: MixerDesign) -> SpecIntermediates:
        """Solve (or load) the frequency-independent scalars for one cell.

        Without a cache this is plain ``mixer.spec_intermediates()``.  With
        one, a hit seeds the mixer's in-memory memo — so the vectorized
        accessors below never trigger a sizing bisection — and a miss stores
        the freshly solved cell for every later run and every sibling shard.
        The memo is consulted first (the pre-sizing pass already seeded it
        from the cache where possible), so each cell costs at most one disk
        read per process.
        """
        cached = mixer.peek_intermediates(mixer.mode)
        if cached is not None:
            return cached
        if self.cache is None:
            return mixer.spec_intermediates()
        if (record, mixer.mode) not in self._presize_misses:
            loaded = self.cache.load(record, mixer.mode)
            if loaded is not None:
                mixer.seed_intermediates(loaded)
                return loaded
        intermediates = mixer.spec_intermediates()
        self.cache.store(record, mixer.mode, intermediates)
        return intermediates

    def _fill_cell(self, mixer: ReconfigurableMixer, record: MixerDesign,
                   data: dict[str, np.ndarray], cell: tuple[int, int],
                   rf: np.ndarray, if_: np.ndarray) -> None:
        """Evaluate every configured spec for one (design, mode) cell."""
        intermediates = self._cell_intermediates(mixer, record)
        plane = (rf.size, if_.size)
        for spec in self.specs:
            if spec == "conversion_gain_db":
                data[spec][cell] = mixer.conversion_gain_db_array(
                    rf[:, None], if_[None, :])
            elif spec == "noise_figure_db":
                data[spec][cell] = np.broadcast_to(
                    mixer.noise_figure_db_array(if_)[None, :], plane)
            else:
                # Flat specs share their name with a SpecIntermediates field.
                data[spec][cell] = getattr(intermediates, spec)
