"""The vectorized sweep engine for mixer spec curves.

:class:`SweepRunner` evaluates the reconfigurable mixer's spec accessors
over an arbitrary dense grid of **design variant x mode x RF frequency x IF
frequency** without per-point Python loops.  The split of labour is:

* everything that does not depend on the swept frequencies (device sizing,
  bias solutions, effective gm, noise floors, linearity intercepts, power)
  is computed **once per (design, mode) cell** through
  :meth:`ReconfigurableMixer.spec_intermediates` and memoized on the mixer;
* the frequency-shaped specs (conversion gain, noise figure) are then
  evaluated over the whole RF x IF plane in **one NumPy broadcast call**
  via the array accessors (:meth:`conversion_gain_db_array`,
  :meth:`noise_figure_db_array`);
* frequency-flat specs (IIP3, P1dB, power, band edges) are broadcast across
  the plane so every spec array shares one labelled shape.

Mixer instances are memoized per design record, so re-running a sweep on a
refined frequency grid re-uses every sizing/bias solution already paid for.
An optional on-disk layer (:mod:`repro.sweep.cache`) extends that memo
across processes and interpreter runs, and
:class:`~repro.sweep.parallel.ParallelSweepRunner` shards the design axis of
large grids across worker processes with this runner doing each shard.

Adding a new sweep scenario is: build the designs/modes/grids you care
about, call :meth:`SweepRunner.run`, and read labelled curves off the
returned :class:`~repro.sweep.result.SweepResult` — see
:mod:`repro.sweep.montecarlo` for a worked example (per-design random
process spread, something the scalar path could never afford).
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.core.config import MixerDesign, MixerMode
from repro.core.reconfigurable_mixer import ReconfigurableMixer, SpecIntermediates
from repro.sweep.cache import SpecCache, resolve_cache
from repro.sweep.grid import IF_AXIS, RF_AXIS, SweepAxis
from repro.sweep.result import SweepResult

#: Spec names whose values vary across the RF/IF plane.
FREQUENCY_SHAPED_SPECS = ("conversion_gain_db", "noise_figure_db")

#: Spec names that are flat across frequency (one scalar per design x mode).
FLAT_SPECS = ("iip3_dbm", "iip2_dbm", "p1db_dbm", "power_mw",
              "band_low_hz", "band_high_hz", "flicker_corner_hz")

#: Every spec the runner can evaluate.
ALL_SPECS = FREQUENCY_SHAPED_SPECS + FLAT_SPECS

#: The headline specs swept by default (the paper's Fig. 8/9/10 quantities).
DEFAULT_SPECS = ("conversion_gain_db", "noise_figure_db", "iip3_dbm",
                 "p1db_dbm", "power_mw")


class SweepRunner:
    """Evaluates mixer spec curves over parameter grids, vectorized.

    Parameters
    ----------
    design:
        The baseline design record; used when :meth:`run` is not given an
        explicit design axis, and as the source of the nominal RF/IF
        operating point for defaulted frequency grids.
    specs:
        Which spec curves to evaluate (a subset of :data:`ALL_SPECS`).
    cache:
        Optional on-disk cache of solved per-(design, mode) intermediates —
        ``None``/``False`` (default, off), ``True`` (default directory), a
        directory path, or a :class:`~repro.sweep.cache.SpecCache`.  With a
        warm cache every sizing/bias bisection is skipped; see
        :mod:`repro.sweep.cache`.
    """

    def __init__(self, design: MixerDesign | None = None,
                 specs: Sequence[str] = DEFAULT_SPECS,
                 cache: SpecCache | str | bool | None = None) -> None:
        self.design = design if design is not None else MixerDesign()
        self.cache = resolve_cache(cache)
        self.specs = tuple(specs)
        if not self.specs:
            raise ValueError("need at least one spec to sweep")
        unknown = [spec for spec in self.specs if spec not in ALL_SPECS]
        if unknown:
            raise ValueError(f"unknown specs {unknown}; choose from {ALL_SPECS}")
        # Mixers (and with them every sizing/bias solution and memoized
        # intermediate) are kept per design record across run() calls.
        self._mixers: dict[MixerDesign, ReconfigurableMixer] = {}

    # -- mixer cache ---------------------------------------------------------

    def mixer_for(self, design: MixerDesign) -> ReconfigurableMixer:
        """The memoized mixer instance for a design record."""
        mixer = self._mixers.get(design)
        if mixer is None:
            mixer = ReconfigurableMixer(design)
            self._mixers[design] = mixer
        return mixer

    @property
    def cached_design_count(self) -> int:
        """How many design records currently have a memoized mixer."""
        return len(self._mixers)

    # -- grid assembly -------------------------------------------------------

    def _design_axis(self, designs) -> tuple[SweepAxis, list[MixerDesign]]:
        # Shared with the waveform engine; see SweepAxis.design_axis.
        return SweepAxis.design_axis(designs, self.design)

    def _mode_axis(self, modes) -> tuple[SweepAxis, list[MixerMode]]:
        return SweepAxis.mode_axis(modes)

    # -- execution -----------------------------------------------------------

    def run(self, rf_frequencies: Iterable[float] | np.ndarray | None = None,
            if_frequencies: Iterable[float] | np.ndarray | None = None,
            modes: Sequence[MixerMode] | None = None,
            designs: Mapping[str, MixerDesign] | Sequence[MixerDesign] | None = None
            ) -> SweepResult:
        """Evaluate the configured specs over the full grid.

        Omitted frequency grids collapse to the **baseline** design's
        nominal operating point (LO + IF for RF, the nominal IF), so
        ``run(modes=[...])`` is a Table-I-style spot evaluation; omitted
        ``modes`` sweeps both modes; omitted ``designs`` uses the baseline
        design only.  The grid is shared by every design on the axis — if a
        swept design record re-tunes ``lo_frequency``/``if_frequency``, pass
        explicit grids covering its operating point rather than relying on
        the defaults.
        """
        design_axis, design_records = self._design_axis(designs)
        mode_axis, mode_members = self._mode_axis(modes)
        rf_axis = SweepAxis.numeric(
            RF_AXIS, rf_frequencies if rf_frequencies is not None
            else [self.design.rf_frequency])
        if_axis = SweepAxis.numeric(
            IF_AXIS, if_frequencies if if_frequencies is not None
            else [self.design.if_frequency])
        rf = rf_axis.as_array()
        if_ = if_axis.as_array()
        if np.any(rf <= 0) or np.any(if_ <= 0):
            raise ValueError("swept frequencies must be positive")

        shape = (len(design_axis), len(mode_axis), rf.size, if_.size)
        data = {spec: np.empty(shape, dtype=float) for spec in self.specs}

        for design_index, record in enumerate(design_records):
            mixer = self.mixer_for(record)
            for mode_index, mode in enumerate(mode_members):
                mixer.set_mode(mode)
                cell = (design_index, mode_index)
                self._fill_cell(mixer, record, data, cell, rf, if_)

        axes = (design_axis, mode_axis, rf_axis, if_axis)
        return SweepResult(axes, data)

    def _cell_intermediates(self, mixer: ReconfigurableMixer,
                            record: MixerDesign) -> SpecIntermediates:
        """Solve (or load) the frequency-independent scalars for one cell.

        Without a cache this is plain ``mixer.spec_intermediates()``.  With
        one, a hit seeds the mixer's in-memory memo — so the vectorized
        accessors below never trigger a sizing bisection — and a miss stores
        the freshly solved cell for every later run and every sibling shard.
        """
        if self.cache is None:
            return mixer.spec_intermediates()
        cached = self.cache.load(record, mixer.mode)
        if cached is not None:
            mixer.seed_intermediates(cached)
            return cached
        intermediates = mixer.spec_intermediates()
        self.cache.store(record, mixer.mode, intermediates)
        return intermediates

    def _fill_cell(self, mixer: ReconfigurableMixer, record: MixerDesign,
                   data: dict[str, np.ndarray], cell: tuple[int, int],
                   rf: np.ndarray, if_: np.ndarray) -> None:
        """Evaluate every configured spec for one (design, mode) cell."""
        intermediates = self._cell_intermediates(mixer, record)
        plane = (rf.size, if_.size)
        for spec in self.specs:
            if spec == "conversion_gain_db":
                data[spec][cell] = mixer.conversion_gain_db_array(
                    rf[:, None], if_[None, :])
            elif spec == "noise_figure_db":
                data[spec][cell] = np.broadcast_to(
                    mixer.noise_figure_db_array(if_)[None, :], plane)
            else:
                # Flat specs share their name with a SpecIntermediates field.
                data[spec][cell] = getattr(intermediates, spec)
