"""Result container for vectorized sweeps: labelled axes plus spec arrays.

:class:`SweepResult` holds one dense float array per spec, all sharing the
shape implied by the axes tuple.  Accessors never expose raw integer
indexing; callers select by axis *name* and *value* (nearest point on
numeric axes, exact label on categorical ones), which keeps the experiment
drivers free of shape bookkeeping:

>>> sweep = runner.run(rf_frequencies=grid)                  # doctest: +SKIP
>>> f, gain = sweep.curve("conversion_gain_db", "rf_frequency_hz",
...                       mode=MixerMode.ACTIVE)             # doctest: +SKIP
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

import numpy as np

from repro.sweep.grid import DESIGN_AXIS, SweepAxis


class SweepResult:
    """Labelled N-dimensional sweep output.

    Parameters
    ----------
    axes:
        The labelled axes, outermost first; their lengths define the shape
        every spec array must have.
    data:
        Mapping of spec name to a float array of exactly that shape.
    """

    def __init__(self, axes: Sequence[SweepAxis],
                 data: dict[str, np.ndarray]) -> None:
        self.axes = tuple(axes)
        names = [axis.name for axis in self.axes]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate axis names: {names}")
        if not data:
            raise ValueError("a sweep result needs at least one spec array")
        shape = tuple(len(axis) for axis in self.axes)
        self.data: dict[str, np.ndarray] = {}
        for spec, array in data.items():
            arr = np.asarray(array, dtype=float)
            if arr.shape != shape:
                raise ValueError(
                    f"spec {spec!r} has shape {arr.shape}, expected {shape}")
            self.data[spec] = arr

    # -- introspection -------------------------------------------------------

    @property
    def shape(self) -> tuple[int, ...]:
        """Grid shape, one entry per axis."""
        return tuple(len(axis) for axis in self.axes)

    @property
    def spec_names(self) -> tuple[str, ...]:
        """Names of the spec arrays held by this result."""
        return tuple(self.data)

    def axis(self, name: str) -> SweepAxis:
        """Look up an axis by name."""
        for axis in self.axes:
            if axis.name == name:
                return axis
        raise KeyError(f"no axis named {name!r}; axes: "
                       f"{[a.name for a in self.axes]}")

    def _axis_position(self, name: str) -> int:
        for position, axis in enumerate(self.axes):
            if axis.name == name:
                return position
        raise KeyError(f"no axis named {name!r}; axes: "
                       f"{[a.name for a in self.axes]}")

    # -- selection -----------------------------------------------------------

    def _spec_array(self, spec: str) -> np.ndarray:
        try:
            return self.data[spec]
        except KeyError:
            raise KeyError(f"no spec named {spec!r}; specs: "
                           f"{list(self.data)}") from None

    def values(self, spec: str, **selectors: Any) -> np.ndarray:
        """Spec array with the named axes fixed at the selected values.

        Each keyword is an axis name; its value selects one grid point
        (nearest on numeric axes, exact label on categorical axes).  Selected
        axes are dropped from the result, unselected axes remain in order.
        """
        array = self._spec_array(spec)
        index: list = [slice(None)] * array.ndim
        for name, value in selectors.items():
            index[self._axis_position(name)] = self.axis(name).index_of(value)
        return array[tuple(index)]

    def value(self, spec: str, **selectors: Any) -> float:
        """Single scalar value; every axis of length > 1 must be selected.

        Axes of length one are implicitly squeezed, so nominal-point sweeps
        read naturally: ``result.value("iip3_dbm", mode="passive")``.
        """
        array = self.values(spec, **selectors)
        if array.size != 1:
            unselected = [axis.name for axis in self.axes
                          if axis.name not in selectors and len(axis) > 1]
            raise ValueError(
                f"value() needs every multi-point axis selected; "
                f"missing: {unselected}")
        return float(array.reshape(()))

    def curve(self, spec: str, along: str, **selectors: Any
              ) -> tuple[np.ndarray, np.ndarray]:
        """(axis values, spec values) along one axis, other axes fixed.

        Axes of length one need no selector; any other unselected axis is an
        error so a curve is never silently averaged or truncated.
        """
        along_axis = self.axis(along)
        if along in selectors:
            raise ValueError(f"cannot both sweep along and select {along!r}")
        fixed = dict(selectors)
        for axis in self.axes:
            if axis.name == along or axis.name in fixed:
                continue
            if len(axis) != 1:
                raise ValueError(
                    f"axis {axis.name!r} has {len(axis)} points; select one "
                    f"to extract a curve along {along!r}")
            fixed[axis.name] = axis.values[0]
        series = self.values(spec, **fixed)
        return along_axis.as_array() if along_axis.is_numeric \
            else np.asarray(along_axis.values), series

    # -- combination ---------------------------------------------------------

    @classmethod
    def concat(cls, results: Iterable["SweepResult"],
               axis: str = DESIGN_AXIS) -> "SweepResult":
        """Stitch shard results back into one sweep along a named axis.

        This is the join step of :class:`~repro.sweep.parallel.\
ParallelSweepRunner`: each shard holds a contiguous slice of the ``axis``
        values (by default the design axis) over otherwise identical grids.
        Every input must carry the same spec names and bit-identical
        non-concatenated axes; categorical axis labels must stay unique after
        joining.  Order is preserved — shards concatenate in the order given.
        """
        shards = list(results)
        if not shards:
            raise ValueError("concat() needs at least one result")
        first = shards[0]
        position = first._axis_position(axis)
        for shard in shards[1:]:
            if shard.spec_names != first.spec_names:
                raise ValueError(
                    f"cannot concat results with different specs: "
                    f"{shard.spec_names} vs {first.spec_names}")
            if [a.name for a in shard.axes] != [a.name for a in first.axes]:
                raise ValueError(
                    f"cannot concat results with different axes: "
                    f"{[a.name for a in shard.axes]} vs "
                    f"{[a.name for a in first.axes]}")
            for ours, theirs in zip(first.axes, shard.axes):
                if ours.name != axis and ours.values != theirs.values:
                    raise ValueError(
                        f"axis {ours.name!r} differs between shards; only "
                        f"{axis!r} may vary")
        joined_values = [value for shard in shards
                         for value in shard.axis(axis).values]
        if first.axis(axis).is_numeric:
            joined_axis = SweepAxis.numeric(axis, joined_values)
        else:
            # categorical() re-validates that shard labels stay unique.
            joined_axis = SweepAxis.categorical(axis, joined_values)
        axes = tuple(joined_axis if a.name == axis else a for a in first.axes)
        data = {
            spec: np.concatenate([shard.data[spec] for shard in shards],
                                 axis=position)
            for spec in first.spec_names
        }
        return cls(axes, data)

    # -- export --------------------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-ready dictionary: axes plus nested-list spec arrays."""
        return {
            "axes": [axis.to_dict() for axis in self.axes],
            "specs": {spec: array.tolist() for spec, array in self.data.items()},
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "SweepResult":
        """Rebuild a result from :meth:`to_dict` output.

        ``to_dict() -> json -> from_dict()`` round-trips exactly: axis
        labels, axis kinds, spec names and every float (``tolist`` and JSON
        both preserve doubles bit-for-bit), so serialized sweeps can be
        reloaded by caches, services or notebooks without loss.
        """
        axes = tuple(SweepAxis.from_dict(entry) for entry in payload["axes"])
        data = {spec: np.asarray(values, dtype=float)
                for spec, values in payload["specs"].items()}
        return cls(axes, data)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        axes = ", ".join(f"{a.name}[{len(a)}]" for a in self.axes)
        return f"SweepResult({axes}; specs={list(self.data)})"
