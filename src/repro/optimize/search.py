"""Corner-aware yield optimisation over the mixer's design knobs.

:func:`run_yield_opt` searches the design space around a starting
:class:`~repro.core.config.MixerDesign` for the record with the highest
**yield**: the fraction of Monte-Carlo device-spread corners
(:func:`~repro.sweep.montecarlo.sample_design`, the seeded 65 nm local +
global variation model) that pass every configured
:class:`~repro.optimize.targets.SpecTarget` at once.  The default targets
are the paper's Table I numbers with margins
(:func:`~repro.optimize.targets.default_targets`), so the search answer is
"the design that still makes Table I when the process moves".

The outer loop is a seeded population search:

1. each generation proposes ``population`` candidates through a pluggable
   :mod:`~repro.optimize.strategies` proposal strategy — the default
   shrinking-span pattern search, or the covariance-adapted CMA-ES sampler
   (``strategy="cma"``) that learns the knob covariance from each scored
   generation; generation 0 scores the incoming design itself as
   candidate 0, the baseline;
2. every candidate's ``num_samples`` Monte-Carlo corners are evaluated as
   **one design axis** through the sweep engine
   (:func:`repro.sweep.make_runner`), so ``workers=`` shards the whole
   population x samples grid across processes and ``cache=`` persists every
   sizing/bias solution — a re-run of the same search is pure array maths
   with **zero sizing bisections** (gated in
   ``benchmarks/test_bench_optimize.py``);
3. the best candidate (strictly higher yield; ties keep the incumbent)
   becomes the next centre.

:func:`run_pareto_opt` is the multi-objective mode over the same engine
plumbing: instead of a single scalar winner it maintains a non-dominated
:class:`~repro.optimize.pareto.ParetoFront` over configurable
:class:`~repro.optimize.pareto.Objective` axes — Monte-Carlo yield against
the targets, plus any targetable spec metric (power, gain, NF, the
waveform-measured IIP3/P1dB, the digital SNR) pushed up or down.  The
front is a first-class result (per-point design record, objective vector
and per-target yield breakdown) and every generation streams a front
snapshot through the :mod:`repro.api.progress` channel, so a long search
is observable from ``GET /v1/jobs/<id>``.

Determinism: proposals and corners draw from per-(generation, candidate)
``numpy`` seed sequences, the sweep engine is bit-identical for any worker
count, and selection/front ordering is index- and fingerprint-stable — so
the same seed and parameters return the same best-design (or front)
fingerprints on every surface and worker count (asserted in
``tests/test_optimize.py`` / ``tests/test_pareto.py``).

Registered as the ``yield_opt`` and ``yield_pareto`` experiments, so both
searches run through :class:`~repro.api.service.MixerService`,
``python -m repro.serve`` and ``python -m repro.cli`` via the standard
:class:`~repro.api.request.SpecRequest` envelope.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.api.progress import report_progress
from repro.api.registry import register_experiment
from repro.core.config import MixerDesign, MixerMode
from repro.devices.technology import Technology
from repro.digital import digital_if_plan, make_digital_runner
from repro.optimize.pareto import (
    Objective,
    ParetoFront,
    ParetoOptResult,
    ParetoPoint,
    default_objectives_wire,
    format_pareto_report,
    parse_objectives,
    pareto_order,
)
from repro.optimize.strategies import STRATEGIES, make_strategy
from repro.optimize.targets import (
    DIGITAL_SPECS,
    WAVEFORM_SPECS,
    SpecTarget,
    default_targets_wire,
    parse_targets,
)
from repro.rf.compression import compression_from_gains
from repro.rf.twotone import fit_intercept_point
from repro.sweep import SpecCache
from repro.sweep.montecarlo import DeviceSpread, sample_design
from repro.sweep.runner import ALL_SPECS
from repro.waveform import (
    DEFAULT_NUM_SAMPLES,
    DEFAULT_SAMPLE_RATE,
    make_waveform_runner,
    single_tone_plan,
    two_tone_plan,
)

#: Name under which the scalar optimiser registers in the registry.
EXPERIMENT_NAME = "yield_opt"

#: Name under which the multi-objective optimiser registers.
PARETO_EXPERIMENT_NAME = "yield_pareto"

#: Design knobs the optimiser may move, in canonical (perturbation) order:
#: transconductor gm target and bias, the two gain-setting resistances, the
#: passive-path degeneration, and the quad device width — the W/L, bias and
#: load levers the paper's section III sizes by hand.
DEFAULT_KNOBS = (
    "tca_gm",
    "tca_bias_current",
    "load_resistance",
    "feedback_resistance",
    "degeneration_resistance",
    "quad_switch_width",
)

#: Every knob the optimiser accepts: positive multiplicative design scalars.
#: Frequencies and technology constants are deliberately excluded — the
#: operating point is part of the question, and process constants are the
#: *spread*, not the design.
SEARCHABLE_KNOBS = frozenset(DEFAULT_KNOBS) | frozenset({
    "active_core_current",
    "lo_chain_current",
    "tia_supply_current",
    "quad_switch_length",
    "feedback_capacitance",
    "load_capacitance",
})

#: Default seed — the paper's publication date, like the Monte-Carlo module.
DEFAULT_SEED = 20150901

#: Candidate label pattern (design-axis labels must be unique).
_CANDIDATE_LABEL = "i{iteration:02d}-c{candidate:02d}"

#: Stimulus the waveform-measured targets are scored with: deliberately
#: coarser than the figure-quality grids (the score only needs the fitted
#: intercept / crossing, not a publishable curve) but the same coherent
#: sampling plan, so every corner evaluation is one batched FFT.  The tone
#: frequencies derive from the candidate's nominal operating point at
#: scoring time; the spacing matches the Fig. 10 default (2 MHz).
WAVEFORM_TONE_SPACING_HZ = 2.0e6
WAVEFORM_IIP3_POWERS_DBM = (-45.0, -42.0, -39.0, -36.0, -33.0, -30.0)
WAVEFORM_P1DB_POWERS_DBM = (-40.0, -36.0, -32.0, -28.0, -24.0, -20.0,
                            -16.0, -12.0, -8.0)

#: ADC resolution the digital-SNR targets score at.  One mid-ladder width
#: keeps the corner grid a single bits point (the score needs a number per
#: corner, not a resolution curve) while staying inside the region where
#: the converter — not the 16-bit NCO — sets the floor, so the yield mask
#: actually moves when a corner's conversion gain or noise moves.
DIGITAL_SCORE_ADC_BITS = 10


@dataclass
class CandidateOutcome:
    """Score card of one evaluated candidate design."""

    label: str
    design_fingerprint: str
    overall_yield: float
    spec_yields: dict[str, float]


@dataclass
class YieldOptResult:
    """The optimiser's answer: the best design and how the search got there."""

    best_design: MixerDesign
    best_yield: float
    best_spec_yields: dict[str, float]
    best_label: str
    best_iteration: int
    baseline_yield: float
    initial_design: MixerDesign
    history: np.ndarray
    targets: list[SpecTarget]
    knobs: list[str]
    population: int
    iterations: int
    num_samples: int
    seed: int
    evaluations: int
    candidates: list[CandidateOutcome]
    strategy: str = "shrinking_span"

    def best_fingerprint(self) -> str:
        """Stable content hash of the winning design record."""
        return self.best_design.fingerprint()

    def improvement(self) -> float:
        """Yield gained over the incoming design's baseline."""
        return self.best_yield - self.baseline_yield

    def knob_shifts(self) -> dict[str, float]:
        """Fractional change of every searched knob, best vs initial."""
        return {
            knob: getattr(self.best_design, knob)
            / getattr(self.initial_design, knob) - 1.0
            for knob in self.knobs
        }


def _validate_knobs(knobs: Sequence[str] | None) -> tuple[str, ...]:
    if knobs is None:
        return DEFAULT_KNOBS
    resolved = tuple(str(knob) for knob in knobs)
    if not resolved:
        raise ValueError("need at least one design knob to search")
    unknown = sorted(set(resolved) - SEARCHABLE_KNOBS)
    if unknown:
        raise ValueError(f"unsearchable knobs {unknown}; "
                         f"choose from {sorted(SEARCHABLE_KNOBS)}")
    if len(set(resolved)) != len(resolved):
        raise ValueError("duplicate knobs in the search list")
    return resolved


def _validate_loop(population: int, iterations: int, num_samples: int,
                   search_span: float, shrink: float) -> None:
    if population < 2:
        raise ValueError("population must be at least 2 (the centre plus "
                         "at least one perturbed candidate)")
    if iterations < 1:
        raise ValueError("need at least one iteration")
    if num_samples < 2:
        raise ValueError("need at least 2 Monte-Carlo samples per candidate")
    if search_span <= 0:
        raise ValueError("search_span must be positive")
    if not 0 < shrink <= 1:
        raise ValueError("shrink must be in (0, 1]")


@dataclass(frozen=True)
class _MetricNeed:
    """One (spec, mode) quantity the score needs per corner.

    Duck-typed like :class:`SpecTarget` (``spec`` / ``mode`` / ``key`` and
    the engine-routing flags) so the per-engine scorers serve targets and
    objectives from the same table.
    """

    spec: str
    mode: MixerMode

    @property
    def key(self) -> str:
        return f"{self.mode.value}:{self.spec}"

    @property
    def is_waveform(self) -> bool:
        return self.spec in WAVEFORM_SPECS

    @property
    def is_digital(self) -> bool:
        return self.spec in DIGITAL_SPECS


def _metric_needs(targets: Sequence[SpecTarget],
                  objectives: Sequence[Objective] = ()) -> list[_MetricNeed]:
    """Deduplicated (spec, mode) list the measurement table must cover.

    Target order first, then objective-only metrics — keep-first dedup, so
    the scalar search's engine calls are byte-for-byte what they were
    before objectives existed.
    """
    needs: list[_MetricNeed] = []
    seen: set[str] = set()
    for target in targets:
        if target.key not in seen:
            seen.add(target.key)
            needs.append(_MetricNeed(target.spec, target.mode))
    for objective in objectives:
        if objective.mode is not None and objective.key not in seen:
            seen.add(objective.key)
            needs.append(_MetricNeed(objective.metric, objective.mode))
    return needs


def _waveform_corner_values(runner, corner_designs: Mapping[str, MixerDesign],
                            needs: Sequence, base: MixerDesign
                            ) -> dict[str, np.ndarray]:
    """Score the waveform-measured metrics over one corner design axis.

    Returns ``need.key -> per-design value array`` aligned with
    ``corner_designs`` order.  Each needed bench (two-tone for
    ``waveform_iip3_dbm``, single-tone for ``waveform_p1db_dbm``) is **one**
    waveform-engine call over the whole axis — sharded by ``workers=`` and
    served from the waveform cache on warm re-runs — followed by the same
    per-design fits the ``fig10`` / ``p1db`` drivers use.
    """
    labels = list(corner_designs)
    values: dict[str, np.ndarray] = {}

    def _checked(plan):
        # The score trusts exact bin reads; an operating point that does
        # not land on the fixed bin grid would leak across bins and turn
        # the yield mask into noise — refuse it loudly instead.
        if not plan.is_coherent():
            raise ValueError(
                "waveform-measured targets need the design's LO/IF "
                "operating point to land on the scoring FFT bin grid "
                f"({DEFAULT_SAMPLE_RATE / DEFAULT_NUM_SAMPLES / 1e6:.1f} "
                "MHz bins); retune lo_frequency/if_frequency to bin "
                "multiples or score analytic specs instead")
        return plan

    iip3_needs = [n for n in needs if n.spec == "waveform_iip3_dbm"]
    if iip3_needs:
        modes = tuple(dict.fromkeys(n.mode for n in iip3_needs))
        tone_1 = base.lo_frequency + base.if_frequency
        plan = _checked(two_tone_plan(
            tone_1, tone_1 + WAVEFORM_TONE_SPACING_HZ,
            WAVEFORM_IIP3_POWERS_DBM, DEFAULT_SAMPLE_RATE,
            DEFAULT_NUM_SAMPLES, lo_frequency=base.lo_frequency))
        wave = runner.run(plan, modes=modes, designs=dict(corner_designs))
        powers = plan.powers()
        for need in iip3_needs:
            fitted = np.empty(len(labels))
            for index, label in enumerate(labels):
                fit = fit_intercept_point(
                    powers,
                    wave.values("fundamental_dbm", design=label,
                                mode=need.mode),
                    wave.values("im3_dbm", design=label, mode=need.mode),
                    intermod_order=3)
                fitted[index] = fit.intercept_input_dbm
            values[need.key] = fitted

    p1db_needs = [n for n in needs if n.spec == "waveform_p1db_dbm"]
    if p1db_needs:
        modes = tuple(dict.fromkeys(n.mode for n in p1db_needs))
        rf = base.lo_frequency + base.if_frequency
        plan = _checked(single_tone_plan(
            rf, WAVEFORM_P1DB_POWERS_DBM, DEFAULT_SAMPLE_RATE,
            DEFAULT_NUM_SAMPLES, lo_frequency=base.lo_frequency,
            output_frequency=base.if_frequency))
        wave = runner.run(plan, modes=modes, designs=dict(corner_designs))
        powers = plan.powers()
        for need in p1db_needs:
            fitted = np.empty(len(labels))
            for index, label in enumerate(labels):
                _, input_p1db, _ = compression_from_gains(
                    powers,
                    wave.values("gain_db", design=label, mode=need.mode))
                # A sweep that never compresses reads as an unbounded P1dB:
                # it passes any minimum bound, which is the right verdict
                # for "compression must not happen before X dBm".
                fitted[index] = input_p1db
            values[need.key] = fitted
    return values


def _digital_corner_values(runner, corner_designs: Mapping[str, MixerDesign],
                           needs: Sequence, base: MixerDesign
                           ) -> dict[str, np.ndarray]:
    """Score the digital-SNR metrics over one corner design axis.

    Returns ``need.key -> per-design value array`` aligned with
    ``corner_designs`` order.  One fixed-point digital-IF bench — the
    canonical NCO/CIC plan at :data:`DIGITAL_SCORE_ADC_BITS` — evaluates
    the whole axis in a single
    :class:`~repro.digital.engine.DigitalIfRunner` call: every corner's
    tapped IF waveform quantized, mixed and decimated in one batched pass
    per cell, sharded by ``workers=`` and served from the digital measure
    cache on warm re-runs.
    """
    modes = tuple(dict.fromkeys(n.mode for n in needs))
    try:
        plan = digital_if_plan(
            rf_frequency=base.lo_frequency + base.if_frequency,
            lo_frequency=base.lo_frequency,
            adc_bits=(DIGITAL_SCORE_ADC_BITS,))
    except ValueError as error:
        # Mirror the waveform _checked refusal: a retuned operating point
        # that breaks coherent sampling or the NCO's exact-bin arithmetic
        # would corrupt the yield mask silently — refuse it loudly.
        raise ValueError(
            "digital-measured targets need the design's LO/IF operating "
            "point to fit the canonical digital-IF plan (coherent analog "
            "record, exact NCO increment, bin-centred baseband); retune "
            "lo_frequency/if_frequency or score analytic specs instead "
            f"[{error}]") from error
    result = runner.run(plan, modes=modes, designs=dict(corner_designs))
    return {
        need.key: result.values("snr_db", mode=need.mode,
                                adc_bits=DIGITAL_SCORE_ADC_BITS)
        for need in needs
    }


class _CornerScorer:
    """The measurement table: every needed metric over one corner axis.

    Owns the per-engine runners (analytic sweep, batched waveform,
    fixed-point digital-IF) and, given one generation's corner designs,
    returns ``key -> per-corner value array`` covering every
    :class:`_MetricNeed` — each engine called exactly once per generation
    and only when the needs demand it.
    """

    def __init__(self, design: MixerDesign | None,
                 needs: Sequence[_MetricNeed], *, workers: int | None,
                 cache, shared_memory: bool) -> None:
        self.needs = list(needs)
        self.analytic = [n for n in self.needs
                         if not (n.is_waveform or n.is_digital)]
        self.waveform = [n for n in self.needs if n.is_waveform]
        self.digital = [n for n in self.needs if n.is_digital]
        self.specs = tuple(spec for spec in ALL_SPECS
                           if any(n.spec == spec for n in self.analytic))
        self.modes = tuple(mode for mode
                           in (MixerMode.ACTIVE, MixerMode.PASSIVE)
                           if any(n.mode is mode for n in self.analytic))
        # Imported lazily: repro.experiments re-exports this module, so a
        # module-level import of the experiments package would be circular
        # when repro.optimize is imported first.
        from repro.experiments.common import design_and_runner, resolve_design
        if self.analytic:
            self.base, self.runner = design_and_runner(
                design, specs=self.specs, workers=workers, cache=cache,
                shared_memory=shared_memory)
        else:
            self.base, self.runner = resolve_design(design), None
        self.wave_runner = make_waveform_runner(
            self.base, workers=workers, cache=cache) if self.waveform else None
        self.digital_runner = make_digital_runner(
            self.base, workers=workers, cache=cache) if self.digital else None

    def values(self, corner_designs: Mapping[str, MixerDesign]
               ) -> dict[str, np.ndarray]:
        """Measure every need over ``corner_designs`` (one array per key)."""
        table: dict[str, np.ndarray] = {}
        if self.runner is not None:
            sweep = self.runner.run(rf_frequencies=[self.base.rf_frequency],
                                    if_frequencies=[self.base.if_frequency],
                                    modes=self.modes, designs=corner_designs)
            for need in self.analytic:
                table[need.key] = sweep.values(need.spec, mode=need.mode)
        if self.wave_runner is not None:
            table.update(_waveform_corner_values(
                self.wave_runner, corner_designs, self.waveform, self.base))
        if self.digital_runner is not None:
            table.update(_digital_corner_values(
                self.digital_runner, corner_designs, self.digital, self.base))
        return table


def _corner_axis(candidates: Sequence[MixerDesign], iteration: int,
                 seed: int, num_samples: int, spread: DeviceSpread
                 ) -> dict[str, MixerDesign]:
    """The whole population's Monte-Carlo corners as ONE design axis.

    This is what makes the search affordable — and shardable across
    processes: one labelled axis per generation, per-candidate corner rngs
    seeded ``[seed, iteration, index, 1]``.
    """
    corner_designs: dict[str, MixerDesign] = {}
    for index, candidate in enumerate(candidates):
        rng = np.random.default_rng([seed, iteration, index, 1])
        for sample in range(num_samples):
            label = (_CANDIDATE_LABEL.format(iteration=iteration,
                                             candidate=index)
                     + f"-s{sample:03d}")
            corner_designs[label] = sample_design(candidate, rng, spread,
                                                  label)
    return corner_designs


def run_yield_opt(design: MixerDesign | None = None,
                  targets: Sequence | None = None,
                  knobs: Sequence[str] | None = None,
                  population: int = 8, iterations: int = 3,
                  num_samples: int = 16, seed: int = DEFAULT_SEED,
                  search_span: float = 0.12, shrink: float = 0.5,
                  strategy: str = "shrinking_span",
                  objectives: Sequence | None = None,
                  workers: int | None = None,
                  cache: SpecCache | str | bool | None = None,
                  shared_memory: bool = False
                  ) -> YieldOptResult | ParetoOptResult:
    """Search the design knobs for maximum yield against spec targets.

    Parameters
    ----------
    design:
        Starting design record (the paper's design point by default); it is
        scored as iteration 0's candidate 0, so ``baseline_yield`` is always
        the incoming design's own yield.
    targets:
        Acceptance bounds — :class:`SpecTarget` objects or their wire form
        ``[spec, mode, min, max]``; ``None`` selects the Table I defaults.
        Analytic specs score through the spec sweep engine; the
        waveform-measured specs (``waveform_iip3_dbm`` /
        ``waveform_p1db_dbm``) score every corner through the batched
        waveform engine — the FFT-measured Fig. 10 intercept and Table I
        compression point as optimisation constraints, sharded and cached
        like everything else.  The digitally-measured spec
        (``digital_snr_db``) scores every corner through the fixed-point
        digital-IF chain at :data:`DIGITAL_SCORE_ADC_BITS` bits, so "the
        sampled receiver must still resolve X dB SNR at this corner" can
        gate the search too.
    knobs:
        Design parameters the search may move (subset of
        :data:`SEARCHABLE_KNOBS`); ``None`` selects :data:`DEFAULT_KNOBS`.
    population / iterations / num_samples:
        Candidates per iteration, search iterations, and Monte-Carlo corners
        per candidate.  Every iteration evaluates ``population *
        num_samples`` design records as one sweep-engine design axis.
    seed:
        Seed of every random draw (proposals and corners); same seed, same
        targets, same knobs => bit-identical result on any worker count.
    search_span:
        1-sigma log-space width of the knob perturbations at iteration 0.
    shrink:
        Factor applied to the span after each iteration (0 < shrink <= 1);
        the search narrows around the incumbent as it converges.  The CMA
        strategy ignores it (its step size self-adapts).
    strategy:
        Proposal strategy, one of :data:`~repro.optimize.strategies.STRATEGIES`:
        ``"shrinking_span"`` (the original pattern search, bit-identical to
        the pre-strategy optimiser) or ``"cma"`` (covariance-adapted CMA-ES
        proposals that learn the knob correlations each generation reveals).
    objectives:
        ``None`` runs the scalar search.  A list of
        :class:`~repro.optimize.pareto.Objective` (or wire ``[metric, mode,
        direction]`` arrays) switches to the multi-objective Pareto mode —
        the call is forwarded to :func:`run_pareto_opt` and returns its
        :class:`~repro.optimize.pareto.ParetoOptResult`.
    workers / cache / shared_memory:
        Sweep-engine options: process count for the sharded runner, the
        on-disk :class:`~repro.sweep.cache.SpecCache` of solved cells, and
        the opt-in shared-memory result hand-off of
        :class:`~repro.sweep.parallel.ParallelSweepRunner`.
    """
    if objectives is not None:
        return run_pareto_opt(design=design, targets=targets,
                              objectives=objectives, knobs=knobs,
                              population=population, iterations=iterations,
                              num_samples=num_samples, seed=seed,
                              search_span=search_span, shrink=shrink,
                              strategy=strategy, workers=workers,
                              cache=cache, shared_memory=shared_memory)
    target_list = list(parse_targets(targets))
    knob_list = _validate_knobs(knobs)
    _validate_loop(population, iterations, num_samples, search_span, shrink)
    seed = int(seed)

    scorer = _CornerScorer(design, _metric_needs(target_list),
                           workers=workers, cache=cache,
                           shared_memory=shared_memory)
    base = scorer.base
    spread = DeviceSpread()
    proposer = make_strategy(strategy, base, knob_list, seed=seed,
                             population=population, search_span=search_span,
                             shrink=shrink)

    best_design = base
    best_yield = -1.0
    best_spec_yields: dict[str, float] = {}
    best_label = ""
    best_iteration = 0
    baseline_yield = 0.0
    history: list[float] = []
    outcomes: list[CandidateOutcome] = []
    evaluations = 0

    for iteration in range(iterations):
        candidates = proposer.propose(iteration)
        corner_designs = _corner_axis(candidates, iteration, seed,
                                      num_samples, spread)
        values_by_key = scorer.values(corner_designs)
        evaluations += population * num_samples

        # Score: pass masks per target, AND-ed into the overall yield.
        shape = (population, num_samples)
        passing = np.ones(shape, dtype=bool)
        per_target: dict[str, np.ndarray] = {}
        for target in target_list:
            mask = target.passes(values_by_key[target.key].reshape(shape))
            per_target[target.key] = mask
            passing &= mask
        yields = passing.mean(axis=1)

        for index, candidate in enumerate(candidates):
            outcomes.append(CandidateOutcome(
                label=_CANDIDATE_LABEL.format(iteration=iteration,
                                              candidate=index),
                design_fingerprint=candidate.fingerprint(),
                overall_yield=float(yields[index]),
                spec_yields={key: float(mask[index].mean())
                             for key, mask in per_target.items()},
            ))
        if iteration == 0:
            baseline_yield = float(yields[0])

        champion = int(np.argmax(yields))  # first index wins ties
        if float(yields[champion]) > best_yield:
            best_yield = float(yields[champion])
            best_design = candidates[champion]
            best_spec_yields = {key: float(mask[champion].mean())
                                for key, mask in per_target.items()}
            best_label = _CANDIDATE_LABEL.format(iteration=iteration,
                                                 candidate=champion)
            best_iteration = iteration
        history.append(best_yield)

        # Stream the iteration history to any observer (the async job
        # surface polls this out of GET /v1/jobs/<id>); pure observation,
        # the search itself is bit-identical with or without a listener.
        report_progress(stage="yield_opt", iteration=iteration + 1,
                        iterations=iterations, best_yield=float(best_yield),
                        best_label=best_label,
                        baseline_yield=float(baseline_yield),
                        evaluations=evaluations, strategy=strategy,
                        history=[float(value) for value in history])

        # Fitness order, best first (stable: first index wins ties) — the
        # strategies consume the ranking, not just the champion.
        order = [int(i) for i in np.argsort(-yields, kind="stable")]
        proposer.observe(iteration, candidates, order, best_design)

    return YieldOptResult(
        best_design=best_design,
        best_yield=best_yield,
        best_spec_yields=best_spec_yields,
        best_label=best_label,
        best_iteration=best_iteration,
        baseline_yield=baseline_yield,
        initial_design=base,
        history=np.asarray(history, dtype=float),
        targets=target_list,
        knobs=list(knob_list),
        population=population,
        iterations=iterations,
        num_samples=num_samples,
        seed=seed,
        evaluations=evaluations,
        candidates=outcomes,
        strategy=strategy,
    )


def run_pareto_opt(design: MixerDesign | None = None,
                   targets: Sequence | None = None,
                   objectives: Sequence | None = None,
                   knobs: Sequence[str] | None = None,
                   population: int = 8, iterations: int = 3,
                   num_samples: int = 16, seed: int = DEFAULT_SEED,
                   search_span: float = 0.12, shrink: float = 0.5,
                   strategy: str = "shrinking_span",
                   workers: int | None = None,
                   cache: SpecCache | str | bool | None = None,
                   shared_memory: bool = False) -> ParetoOptResult:
    """Multi-objective search: maintain a Pareto front over the objectives.

    Same engine plumbing as :func:`run_yield_opt` — strategy-proposed
    populations, every generation's Monte-Carlo corners as one sharded
    design axis — but the answer is the running non-dominated
    :class:`~repro.optimize.pareto.ParetoFront` over ``objectives``
    (``None`` selects yield vs active power vs active gain,
    :func:`~repro.optimize.pareto.default_objectives`).  Per-candidate
    objective values are the Monte-Carlo yield against ``targets`` plus the
    corner-mean of every spec objective, so each point carries both its
    trade-off coordinates and its per-target yield breakdown.

    Generation ranking feeds the proposal strategy through the NSGA-II
    convention (:func:`~repro.optimize.pareto.pareto_order`: non-dominated
    rank, then crowding distance); the running front is fingerprint-deduped
    and deterministically ordered, so the result is bit-identical for any
    worker count and on every serving surface.  Every generation appends a
    JSON-ready front snapshot to ``front_history`` and streams the
    cumulative history through :func:`repro.api.progress.report_progress`
    (stage ``"pareto_opt"``), observable from ``GET /v1/jobs/<id>``.
    """
    target_list = list(parse_targets(targets))
    objective_list = list(parse_objectives(objectives))
    knob_list = _validate_knobs(knobs)
    _validate_loop(population, iterations, num_samples, search_span, shrink)
    seed = int(seed)

    scorer = _CornerScorer(design, _metric_needs(target_list, objective_list),
                           workers=workers, cache=cache,
                           shared_memory=shared_memory)
    base = scorer.base
    spread = DeviceSpread()
    proposer = make_strategy(strategy, base, knob_list, seed=seed,
                             population=population, search_span=search_span,
                             shrink=shrink)
    signs = np.array([objective.sign for objective in objective_list])

    front = ParetoFront(objectives=objective_list, points=[])
    front_history: list[list[dict]] = []
    baseline_point: ParetoPoint | None = None
    evaluations = 0

    for iteration in range(iterations):
        candidates = proposer.propose(iteration)
        corner_designs = _corner_axis(candidates, iteration, seed,
                                      num_samples, spread)
        values_by_key = scorer.values(corner_designs)
        evaluations += population * num_samples

        shape = (population, num_samples)
        passing = np.ones(shape, dtype=bool)
        per_target: dict[str, np.ndarray] = {}
        for target in target_list:
            mask = target.passes(values_by_key[target.key].reshape(shape))
            per_target[target.key] = mask
            passing &= mask
        yields = passing.mean(axis=1)

        # Objective matrix: yield straight from the pass masks, every spec
        # objective as the candidate's corner mean (deterministic, like
        # every other aggregate the engine reports).
        matrix = np.empty((population, len(objective_list)))
        for column, objective in enumerate(objective_list):
            if objective.mode is None:
                matrix[:, column] = yields
            else:
                matrix[:, column] = \
                    values_by_key[objective.key].reshape(shape).mean(axis=1)

        points = []
        for index, candidate in enumerate(candidates):
            points.append(ParetoPoint(
                label=_CANDIDATE_LABEL.format(iteration=iteration,
                                              candidate=index),
                design=candidate,
                objectives=matrix[index].copy(),
                overall_yield=float(yields[index]),
                spec_yields={key: float(mask[index].mean())
                             for key, mask in per_target.items()},
            ))
        if iteration == 0:
            baseline_point = points[0]

        front = front.merged_with(points)
        front_history.append(front.snapshot())

        # Cumulative snapshot history: a poller always sees a prefix of the
        # final front_history, like the scalar search's yield history.
        report_progress(stage="pareto_opt", iteration=iteration + 1,
                        iterations=iterations, strategy=strategy,
                        front_size=front.size, evaluations=evaluations,
                        front_history=list(front_history))

        order = pareto_order(matrix * signs)
        proposer.observe(iteration, candidates, order, candidates[order[0]])

    return ParetoOptResult(
        front=front,
        objectives=objective_list,
        targets=target_list,
        knobs=list(knob_list),
        strategy=strategy,
        population=population,
        iterations=iterations,
        num_samples=num_samples,
        seed=seed,
        evaluations=evaluations,
        initial_design=base,
        baseline_point=baseline_point,
        front_history=front_history,
    )


def format_report(result: YieldOptResult) -> str:
    """Text rendering of a yield search (targets, breakdown, knob shifts)."""
    lines = [
        f"Corner-aware yield optimisation — {result.population} candidates "
        f"x {result.iterations} iterations, {result.num_samples} corners "
        f"each (seed {result.seed}, strategy {result.strategy})"
    ]
    width = max(len(target.describe()) for target in result.targets)
    for target in result.targets:
        lines.append(f"  {target.describe():<{width}}  best-design yield "
                     f"{result.best_spec_yields[target.key]:6.1%}")
    trail = " -> ".join(f"{value:.1%}" for value in result.history)
    lines.append(f"  best-so-far by iteration: {trail}")
    lines.append(
        f"  overall: baseline {result.baseline_yield:.1%} -> best "
        f"{result.best_yield:.1%} ({result.improvement():+.1%}) at "
        f"{result.best_label} [{result.evaluations} corner evaluations]")
    shifts = ", ".join(f"{knob} {shift:+.1%}"
                       for knob, shift in result.knob_shifts().items())
    lines.append(f"  knob shifts vs start: {shifts}")
    return "\n".join(lines)


def _default_grid() -> Mapping[str, object]:
    return {
        "targets": default_targets_wire(),
        "knobs": list(DEFAULT_KNOBS),
        "population": 8,
        "iterations": 3,
        "num_samples": 16,
        "seed": DEFAULT_SEED,
        "search_span": 0.12,
        "shrink": 0.5,
        "strategy": "shrinking_span",
    }


def _pareto_default_grid() -> Mapping[str, object]:
    return {
        "targets": default_targets_wire(),
        "objectives": default_objectives_wire(),
        "knobs": list(DEFAULT_KNOBS),
        "population": 8,
        "iterations": 3,
        "num_samples": 16,
        "seed": DEFAULT_SEED,
        "search_span": 0.12,
        "shrink": 0.5,
        "strategy": "shrinking_span",
    }


register_experiment(
    name=EXPERIMENT_NAME,
    artefact="Table I targets under process spread — yield optimisation",
    summary="Search the design knobs for maximum Monte-Carlo yield "
            "against configurable Table I spec targets",
    runner=run_yield_opt,
    result_type=YieldOptResult,
    report=format_report,
    default_grid=_default_grid(),
    payload_types=(CandidateOutcome, SpecTarget, MixerDesign, Technology),
)

register_experiment(
    name=PARETO_EXPERIMENT_NAME,
    artefact="Gain/power/yield trade-off under process spread — Pareto front",
    summary="Maintain a non-dominated front over configurable objectives "
            "(Monte-Carlo yield, power, gain, any targetable spec metric)",
    runner=run_pareto_opt,
    result_type=ParetoOptResult,
    report=format_pareto_report,
    default_grid=_pareto_default_grid(),
    payload_types=(ParetoFront, ParetoPoint, Objective, SpecTarget,
                   MixerDesign, Technology),
)

# Re-exported for callers that treated the strategy list as part of this
# module's surface; the implementation lives in repro.optimize.strategies.
__all__ = [
    "CandidateOutcome",
    "DEFAULT_KNOBS",
    "EXPERIMENT_NAME",
    "PARETO_EXPERIMENT_NAME",
    "SEARCHABLE_KNOBS",
    "STRATEGIES",
    "YieldOptResult",
    "format_report",
    "run_pareto_opt",
    "run_yield_opt",
]
