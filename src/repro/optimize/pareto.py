"""Multi-objective results: objectives, non-dominated fronts, Pareto search.

The paper's mixer is reconfigurable precisely because gain, noise,
linearity and power pull against each other across modes — a single-scalar
yield number cannot express that trade-off.  This module is the vocabulary
the multi-objective mode of :mod:`repro.optimize.search` speaks:

* an :class:`Objective` names one quantity to push and the direction to
  push it — the Monte-Carlo ``yield`` against the configured targets, or
  any :data:`~repro.optimize.targets.TARGETABLE_SPECS` metric in one mode
  (its mean over the candidate's sampled corners);
* a :class:`ParetoPoint` is one candidate design on the trade-off surface:
  the design record itself, its objective vector, and its per-target yield
  breakdown;
* a :class:`ParetoFront` is the running set of mutually non-dominated
  points, deduplicated by design fingerprint and kept in a deterministic
  order so the front is bit-identical across worker counts and surfaces;
* a :class:`ParetoOptResult` is the search's first-class answer — the
  front plus the per-generation snapshot history the async job surface
  streams out of ``GET /v1/jobs/<id>``.

Objectives travel the API as plain JSON arrays ``[metric, mode,
direction]`` (``mode`` is ``null`` for ``yield``), the same convention as
:class:`~repro.optimize.targets.SpecTarget` wire bounds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.config import MixerDesign, MixerMode
from repro.optimize.targets import TARGETABLE_SPECS, SpecTarget

#: Metric name selecting the Monte-Carlo yield against the target set.
OBJECTIVE_YIELD = "yield"

#: Accepted optimisation directions.
DIRECTIONS = ("max", "min")


@dataclass(frozen=True)
class Objective:
    """One axis of the trade-off: push ``metric`` in ``direction``.

    ``metric`` is either :data:`OBJECTIVE_YIELD` (the fraction of
    Monte-Carlo corners passing every configured target — ``mode`` must be
    ``None``) or any targetable spec name, in which case ``mode`` selects
    the mixer mode and the scored value is the **mean over the candidate's
    sampled corners** (deterministic, like every other aggregate).
    """

    metric: str
    mode: MixerMode | None = None
    direction: str = "max"

    def __post_init__(self) -> None:
        if self.metric == OBJECTIVE_YIELD:
            if self.mode is not None:
                raise ValueError("the yield objective is mode-less (targets "
                                 "carry the per-mode bounds); pass mode=None")
        elif self.metric in TARGETABLE_SPECS:
            if not isinstance(self.mode, MixerMode):
                raise ValueError(f"objective on {self.metric!r} needs a "
                                 "MixerMode")
        else:
            raise ValueError(f"unknown objective metric {self.metric!r}; "
                             f"choose 'yield' or one of {TARGETABLE_SPECS}")
        if self.direction not in DIRECTIONS:
            raise ValueError(f"direction must be one of {DIRECTIONS}, "
                             f"got {self.direction!r}")

    @property
    def key(self) -> str:
        """Stable identifier (matches :attr:`SpecTarget.key` for specs)."""
        if self.metric == OBJECTIVE_YIELD:
            return OBJECTIVE_YIELD
        return f"{self.mode.value}:{self.metric}"

    @property
    def sign(self) -> float:
        """+1 for maximised objectives, -1 for minimised ones."""
        return 1.0 if self.direction == "max" else -1.0

    def describe(self) -> str:
        """Human-readable rendering, e.g. ``minimize active:power_mw``."""
        verb = "maximize" if self.direction == "max" else "minimize"
        return f"{verb} {self.key}"

    # -- wire format ----------------------------------------------------------

    def to_wire(self) -> list:
        """JSON-array form: ``[metric, mode, direction]``."""
        return [self.metric,
                self.mode.value if self.mode is not None else None,
                self.direction]

    @classmethod
    def from_wire(cls, payload: Sequence) -> "Objective":
        """Rebuild an objective from :meth:`to_wire` output (or raw JSON)."""
        if isinstance(payload, Objective):
            return payload
        if not isinstance(payload, (list, tuple)) or len(payload) != 3:
            raise ValueError("a wire objective is [metric, mode, direction], "
                             f"got {payload!r}")
        metric, mode, direction = payload
        return cls(
            metric=str(metric),
            mode=None if mode is None
            else (mode if isinstance(mode, MixerMode) else MixerMode(mode)),
            direction=str(direction),
        )


def default_objectives() -> tuple[Objective, ...]:
    """The canonical trade-off: yield vs active power vs active gain."""
    return (
        Objective(OBJECTIVE_YIELD),
        Objective("power_mw", MixerMode.ACTIVE, "min"),
        Objective("conversion_gain_db", MixerMode.ACTIVE, "max"),
    )


def default_objectives_wire() -> list[list]:
    """:func:`default_objectives` in wire form (the registry default)."""
    return [objective.to_wire() for objective in default_objectives()]


def parse_objectives(objectives: Sequence | None) -> tuple[Objective, ...]:
    """Normalise an objective list (typed and/or wire forms).

    ``None`` selects :func:`default_objectives`.  At least two objectives
    are required (one objective is a scalar search — use ``yield_opt``),
    and duplicate keys are rejected like duplicate targets.
    """
    if objectives is None:
        return default_objectives()
    parsed = tuple(Objective.from_wire(entry) for entry in objectives)
    if len(parsed) < 2:
        raise ValueError("a Pareto search needs at least two objectives "
                         "(a single objective is the scalar yield_opt)")
    seen: set[str] = set()
    for objective in parsed:
        if objective.key in seen:
            raise ValueError(f"duplicate objective for {objective.key!r}")
        seen.add(objective.key)
    return parsed


# -- dominance ----------------------------------------------------------------


def pareto_mask(signed: np.ndarray) -> np.ndarray:
    """Boolean mask of the non-dominated rows of a sign-adjusted matrix.

    ``signed`` is ``(n_points, n_objectives)`` with every column already
    oriented so larger is better.  A row is dominated when another row is
    at least as good on every objective and strictly better on one.
    Comparisons involving NaN are false, so a NaN-scored point neither
    dominates nor is dominated — it survives, and the caller's bounds
    should have filtered it.
    """
    signed = np.asarray(signed, dtype=float)
    n = signed.shape[0]
    mask = np.ones(n, dtype=bool)
    for i in range(n):
        if not mask[i]:
            continue
        at_least = np.all(signed >= signed[i], axis=1)
        better = np.any(signed > signed[i], axis=1)
        if np.any(at_least & better & mask):
            mask[i] = False
    return mask


def nondominated_rank(signed: np.ndarray) -> np.ndarray:
    """NSGA-style front index per row (0 = the non-dominated front)."""
    signed = np.asarray(signed, dtype=float)
    ranks = np.full(signed.shape[0], -1, dtype=int)
    remaining = np.arange(signed.shape[0])
    front = 0
    while remaining.size:
        mask = pareto_mask(signed[remaining])
        ranks[remaining[mask]] = front
        remaining = remaining[~mask]
        front += 1
    return ranks


def crowding_distance(signed: np.ndarray) -> np.ndarray:
    """NSGA-II crowding distance of each row within its own set.

    Boundary points get ``inf``; interior points the normalised gap to
    their neighbours summed over objectives.  Ties in a column sort break
    by row index, so the distances are deterministic.
    """
    signed = np.asarray(signed, dtype=float)
    n, m = signed.shape
    distance = np.zeros(n)
    if n <= 2:
        return np.full(n, np.inf)
    for col in range(m):
        order = np.lexsort((np.arange(n), signed[:, col]))
        spread = signed[order[-1], col] - signed[order[0], col]
        distance[order[0]] = distance[order[-1]] = np.inf
        if spread <= 0 or not math.isfinite(spread):
            continue
        gaps = (signed[order[2:], col] - signed[order[:-2], col]) / spread
        distance[order[1:-1]] += gaps
    return distance


def pareto_order(signed: np.ndarray) -> list[int]:
    """Deterministic selection order: front rank, then crowding, then index.

    This is the fitness ordering the proposal strategies consume in Pareto
    mode — the same convention NSGA-II uses for environmental selection.
    """
    signed = np.asarray(signed, dtype=float)
    ranks = nondominated_rank(signed)
    crowding = np.zeros(signed.shape[0])
    for front in np.unique(ranks):
        members = np.flatnonzero(ranks == front)
        crowding[members] = crowding_distance(signed[members])
    return sorted(range(signed.shape[0]),
                  key=lambda i: (ranks[i], -crowding[i], i))


# -- the front ----------------------------------------------------------------


@dataclass
class ParetoPoint:
    """One candidate on the trade-off surface."""

    label: str
    design: MixerDesign
    objectives: np.ndarray          # raw values, aligned with the front's list
    overall_yield: float
    spec_yields: dict[str, float]

    def design_fingerprint(self) -> str:
        """Stable content hash of the point's design record."""
        return self.design.fingerprint()


@dataclass
class ParetoFront:
    """The non-dominated set, deterministically ordered.

    Points are sorted by their sign-adjusted objective vector, best-first
    lexicographically in objective order, with the label as the final tie
    break — so the same evaluated population always yields the same front
    in the same order, independent of insertion order, worker count or
    serving surface.
    """

    objectives: list[Objective]
    points: list[ParetoPoint]

    @property
    def size(self) -> int:
        return len(self.points)

    def signs(self) -> np.ndarray:
        return np.array([objective.sign for objective in self.objectives])

    def objective_matrix(self) -> np.ndarray:
        """Raw ``(size, n_objectives)`` matrix in front order."""
        if not self.points:
            return np.empty((0, len(self.objectives)))
        return np.vstack([point.objectives for point in self.points])

    def fingerprints(self) -> list[str]:
        """Design fingerprints in front order."""
        return [point.design_fingerprint() for point in self.points]

    @classmethod
    def from_points(cls, objectives: Sequence[Objective],
                    points: Sequence[ParetoPoint]) -> "ParetoFront":
        """The non-dominated, fingerprint-deduplicated front of ``points``."""
        objectives = list(objectives)
        candidates = list(points)
        if not candidates:
            return cls(objectives=objectives, points=[])
        signs = np.array([objective.sign for objective in objectives])
        signed = np.vstack([point.objectives for point in candidates]) * signs
        keep = [candidates[i] for i in np.flatnonzero(pareto_mask(signed))]
        keep.sort(key=lambda point: (
            tuple(-value for value in
                  np.asarray(point.objectives, dtype=float) * signs),
            point.label))
        seen: set[str] = set()
        unique: list[ParetoPoint] = []
        for point in keep:
            fingerprint = point.design_fingerprint()
            if fingerprint in seen:
                continue
            seen.add(fingerprint)
            unique.append(point)
        return cls(objectives=objectives, points=unique)

    def merged_with(self, points: Sequence[ParetoPoint]) -> "ParetoFront":
        """A new front: this front's points plus ``points``, re-filtered."""
        return ParetoFront.from_points(self.objectives,
                                       list(self.points) + list(points))

    def snapshot(self) -> list[dict]:
        """JSON-ready summary of the front (one dict per point, in order).

        Non-finite objective values are tagged ``{"__float__": ...}`` so a
        snapshot can travel the strict-JSON progress channel verbatim.
        """
        out = []
        for point in self.points:
            values = [value if math.isfinite(value)
                      else {"__float__": repr(value)}
                      for value in (float(v) for v in point.objectives)]
            out.append({"label": point.label,
                        "fingerprint": point.design_fingerprint(),
                        "objectives": values})
        return out


@dataclass
class ParetoOptResult:
    """The multi-objective search's answer: the front and how it grew."""

    front: ParetoFront
    objectives: list[Objective]
    targets: list[SpecTarget]
    knobs: list[str]
    strategy: str
    population: int
    iterations: int
    num_samples: int
    seed: int
    evaluations: int
    initial_design: MixerDesign
    baseline_point: ParetoPoint
    front_history: list

    def front_fingerprints(self) -> list[str]:
        """Design fingerprints of the final front, in front order."""
        return self.front.fingerprints()


def format_pareto_report(result: ParetoOptResult) -> str:
    """Text rendering of a Pareto search (front table + growth trail)."""
    lines = [
        f"Multi-objective yield optimisation — {result.population} candidates "
        f"x {result.iterations} generations, {result.num_samples} corners "
        f"each (seed {result.seed}, strategy {result.strategy})",
        "  objectives: " + ", ".join(objective.describe()
                                     for objective in result.objectives),
    ]
    header = "  ".join(f"{objective.key:>24}"
                       for objective in result.objectives)
    lines.append(f"  {'point':<14}{header}")
    for point in result.front.points:
        values = "  ".join(f"{value:>24.3f}" for value in point.objectives)
        lines.append(f"  {point.label:<14}{values}")
    trail = " -> ".join(str(len(snapshot))
                        for snapshot in result.front_history)
    lines.append(f"  front size by generation: {trail} "
                 f"[{result.evaluations} corner evaluations]")
    return "\n".join(lines)
