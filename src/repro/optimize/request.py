"""Deprecated typed front door of the ``yield_opt`` experiment.

.. deprecated::
    Optimisation requests travel the same registry-validated
    :class:`~repro.api.request.SpecRequest` envelope as every other
    experiment — build one directly with the search options as grid
    parameters::

        from repro.api import MixerService, SpecRequest

        response = MixerService().submit(SpecRequest(
            experiment="yield_opt",
            grid={"num_samples": 8, "population": 4, "iterations": 2}))
        print(response.result.best_design.to_dict())

    :class:`YieldRequest` remains as a conversion shim for old callers —
    ``to_spec_request()`` still produces a byte-identical envelope (same
    request key, same response-cache entry, pinned in
    ``tests/test_optimize.py``) — but constructing one emits a
    ``DeprecationWarning`` and the class will be removed once nothing
    constructs it.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Any, Sequence

from repro.api.request import SpecRequest
from repro.core.config import MixerDesign
from repro.optimize.search import EXPERIMENT_NAME
from repro.optimize.targets import SpecTarget


@dataclass(frozen=True)
class YieldRequest:
    """Deprecated shim: build a ``yield_opt`` :class:`SpecRequest` instead.

    Every ``None`` field is omitted from the request grid and resolves to
    the experiment's registered default, keeping the request key identical
    across surfaces regardless of how the defaults were spelled.
    """

    design: MixerDesign | None = None
    targets: Sequence[SpecTarget | Sequence] | None = None
    knobs: Sequence[str] | None = None
    population: int | None = None
    iterations: int | None = None
    num_samples: int | None = None
    seed: int | None = None
    search_span: float | None = None
    shrink: float | None = None
    workers: int | None = None
    cache: Any = None

    def __post_init__(self) -> None:
        warnings.warn(
            "YieldRequest is deprecated; build a SpecRequest("
            "experiment='yield_opt', grid={...}) envelope directly — "
            "the wire form and request key are identical",
            DeprecationWarning, stacklevel=3)

    def to_spec_request(self) -> SpecRequest:
        """The equivalent generic :class:`SpecRequest` (the wire unit)."""
        grid: dict[str, Any] = {}
        if self.targets is not None:
            grid["targets"] = [
                entry.to_wire() if isinstance(entry, SpecTarget)
                else list(entry)
                for entry in self.targets
            ]
        if self.knobs is not None:
            grid["knobs"] = [str(knob) for knob in self.knobs]
        for name in ("population", "iterations", "num_samples", "seed"):
            value = getattr(self, name)
            if value is not None:
                grid[name] = int(value)
        for name in ("search_span", "shrink"):
            value = getattr(self, name)
            if value is not None:
                grid[name] = float(value)
        return SpecRequest(
            experiment=EXPERIMENT_NAME,
            design=self.design if self.design is not None else MixerDesign(),
            grid=grid,
            workers=self.workers,
            cache=self.cache,
        )
