"""Typed front door of the ``yield_opt`` experiment.

:class:`YieldRequest` is a convenience layer over the generic
:class:`~repro.api.request.SpecRequest`: the same search options
:func:`~repro.optimize.search.run_yield_opt` takes, as typed fields, with
``None`` meaning "use the registered default" — so an all-defaults
``YieldRequest`` produces exactly the same request key (and therefore the
same response-cache entry) as a hand-built ``SpecRequest(experiment=
"yield_opt")`` or a bare CLI/HTTP call.

.. code-block:: python

    from repro.api import MixerService
    from repro.optimize import YieldRequest

    response = MixerService().submit(YieldRequest(num_samples=8,
                                                  population=4,
                                                  iterations=2)
                                     .to_spec_request())
    print(response.result.best_design.to_dict())
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

from repro.api.request import SpecRequest
from repro.core.config import MixerDesign
from repro.optimize.search import EXPERIMENT_NAME
from repro.optimize.targets import SpecTarget


@dataclass(frozen=True)
class YieldRequest:
    """One "find the highest-yield design around this record" call.

    Every ``None`` field is omitted from the request grid and resolves to
    the experiment's registered default, keeping the request key identical
    across surfaces regardless of how the defaults were spelled.
    """

    design: MixerDesign | None = None
    targets: Sequence[SpecTarget | Sequence] | None = None
    knobs: Sequence[str] | None = None
    population: int | None = None
    iterations: int | None = None
    num_samples: int | None = None
    seed: int | None = None
    search_span: float | None = None
    shrink: float | None = None
    workers: int | None = None
    cache: Any = None

    def to_spec_request(self) -> SpecRequest:
        """The equivalent generic :class:`SpecRequest` (the wire unit)."""
        grid: dict[str, Any] = {}
        if self.targets is not None:
            grid["targets"] = [
                entry.to_wire() if isinstance(entry, SpecTarget)
                else list(entry)
                for entry in self.targets
            ]
        if self.knobs is not None:
            grid["knobs"] = [str(knob) for knob in self.knobs]
        for name in ("population", "iterations", "num_samples", "seed"):
            value = getattr(self, name)
            if value is not None:
                grid[name] = int(value)
        for name in ("search_span", "shrink"):
            value = getattr(self, name)
            if value is not None:
                grid[name] = float(value)
        return SpecRequest(
            experiment=EXPERIMENT_NAME,
            design=self.design if self.design is not None else MixerDesign(),
            grid=grid,
            workers=self.workers,
            cache=self.cache,
        )
