"""Spec targets the yield optimiser scores candidate designs against.

A :class:`SpecTarget` is one acceptance bound on one spec in one mode —
"active-mode conversion gain must stay at or above 28.9 dB", "passive-mode
power must stay at or below 9.7 mW".  A set of targets turns a Monte-Carlo
spec distribution into a **yield**: the fraction of sampled corners passing
every bound at once.

:func:`default_targets` derives the default set from the paper's Table I
numbers (:data:`~repro.core.config.PAPER_TARGETS_ACTIVE` /
:data:`~repro.core.config.PAPER_TARGETS_PASSIVE`) with margins sized against
the 65 nm device-spread model of :mod:`repro.sweep.montecarlo`, so the
nominal design yields well below 100 % — there is headroom for the
optimiser to win.

Targets travel the API as plain JSON arrays (``[spec, mode, min, max]``
with ``null`` for an open bound) so a ``yield_opt`` request is expressible
from any surface — Python, HTTP or the CLI ``--grid targets=...`` flag.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.config import (
    MixerMode,
    PAPER_TARGETS_ACTIVE,
    PAPER_TARGETS_PASSIVE,
)
from repro.sweep.runner import ALL_SPECS

#: Waveform-measured specs the optimiser can bound: the FFT-measured IIP3
#: intercept (Fig. 10's construction) and the measured input P1dB (the
#: Table I compression row), both evaluated through the batched waveform
#: engine over the candidate corners — see
#: :func:`repro.optimize.search.run_yield_opt`.
WAVEFORM_SPECS = ("waveform_iip3_dbm", "waveform_p1db_dbm")

#: Digitally-measured specs the optimiser can bound: the baseband SNR of
#: the fixed-point digital-IF chain (:mod:`repro.digital`) at the scoring
#: ADC resolution, evaluated over each candidate's actual IF waveform —
#: see :func:`repro.optimize.search.run_yield_opt`.
DIGITAL_SPECS = ("digital_snr_db",)

#: Every spec a target may bound: the analytic sweep specs plus the
#: waveform- and digitally-measured ones.
TARGETABLE_SPECS = ALL_SPECS + WAVEFORM_SPECS + DIGITAL_SPECS


@dataclass(frozen=True)
class SpecTarget:
    """One acceptance bound: ``minimum <= spec(mode) <= maximum``.

    Either bound may be ``None`` (open); at least one must be given.  The
    bounds are inclusive, matching
    :meth:`~repro.sweep.montecarlo.MonteCarloResult.yield_fraction`.
    ``spec`` may name an analytic sweep spec (:data:`ALL_SPECS`), a
    waveform-measured one (:data:`WAVEFORM_SPECS` — the FFT-measured IIP3
    and P1dB, scored through the batched waveform engine), or a digitally
    measured one (:data:`DIGITAL_SPECS` — the fixed-point digital-IF SNR,
    scored through the quantized back end over each corner's waveform).
    """

    spec: str
    mode: MixerMode
    minimum: float | None = None
    maximum: float | None = None

    def __post_init__(self) -> None:
        if self.spec not in TARGETABLE_SPECS:
            raise ValueError(
                f"unknown spec {self.spec!r}; choose from {TARGETABLE_SPECS}")
        if not isinstance(self.mode, MixerMode):
            raise TypeError("mode must be a MixerMode member")
        if self.minimum is None and self.maximum is None:
            raise ValueError(
                f"target on {self.spec!r} needs a minimum and/or a maximum")
        if (self.minimum is not None and self.maximum is not None
                and self.minimum > self.maximum):
            raise ValueError(
                f"target on {self.spec!r} has minimum > maximum")

    @property
    def key(self) -> str:
        """Stable identifier used in per-spec yield breakdowns."""
        return f"{self.mode.value}:{self.spec}"

    @property
    def is_waveform(self) -> bool:
        """True when this target bounds a waveform-measured spec."""
        return self.spec in WAVEFORM_SPECS

    @property
    def is_digital(self) -> bool:
        """True when this target bounds a digitally-measured spec."""
        return self.spec in DIGITAL_SPECS

    def passes(self, values: np.ndarray) -> np.ndarray:
        """Boolean pass mask of ``values`` against this target's bounds."""
        passing = np.ones(np.shape(values), dtype=bool)
        if self.minimum is not None:
            passing &= np.asarray(values) >= self.minimum
        if self.maximum is not None:
            passing &= np.asarray(values) <= self.maximum
        return passing

    def describe(self) -> str:
        """Human-readable rendering, e.g. ``active:iip3_dbm >= -12.40``."""
        if self.maximum is None:
            return f"{self.key} >= {self.minimum:.2f}"
        if self.minimum is None:
            return f"{self.key} <= {self.maximum:.2f}"
        return f"{self.minimum:.2f} <= {self.key} <= {self.maximum:.2f}"

    # -- wire format ----------------------------------------------------------

    def to_wire(self) -> list:
        """JSON-array form: ``[spec, mode, minimum, maximum]``."""
        return [self.spec, self.mode.value, self.minimum, self.maximum]

    @classmethod
    def from_wire(cls, payload: Sequence) -> "SpecTarget":
        """Rebuild a target from :meth:`to_wire` output (or hand-written JSON)."""
        if isinstance(payload, SpecTarget):
            return payload
        if not isinstance(payload, (list, tuple)) or len(payload) != 4:
            raise ValueError(
                "a wire target is [spec, mode, minimum, maximum], got "
                f"{payload!r}")
        spec, mode, minimum, maximum = payload
        return cls(
            spec=str(spec),
            mode=MixerMode(mode) if not isinstance(mode, MixerMode) else mode,
            minimum=None if minimum is None else float(minimum),
            maximum=None if maximum is None else float(maximum),
        )


#: Margins applied to the paper's Table I numbers by :func:`default_targets`.
#: Sized against the default :class:`~repro.sweep.montecarlo.DeviceSpread`
#: (1-2 sigma of the corresponding spec distribution), so the nominal
#: design passes most — not all — sampled corners.
GAIN_MARGIN_DB = 0.3
NF_MARGIN_DB = 0.25
IIP3_MARGIN_DBM = 0.5
POWER_MARGIN_MW = 0.5


def default_targets() -> tuple[SpecTarget, ...]:
    """The default Table I target set (both modes, margins applied)."""
    targets: list[SpecTarget] = []
    for paper in (PAPER_TARGETS_ACTIVE, PAPER_TARGETS_PASSIVE):
        targets.extend([
            SpecTarget("conversion_gain_db", paper.mode,
                       minimum=paper.conversion_gain_db - GAIN_MARGIN_DB),
            SpecTarget("noise_figure_db", paper.mode,
                       maximum=paper.noise_figure_db + NF_MARGIN_DB),
            SpecTarget("iip3_dbm", paper.mode,
                       minimum=paper.iip3_dbm - IIP3_MARGIN_DBM),
            SpecTarget("power_mw", paper.mode,
                       maximum=paper.power_mw + POWER_MARGIN_MW),
        ])
    return tuple(targets)


def default_targets_wire() -> list[list]:
    """:func:`default_targets` in wire form (the registry's default grid)."""
    return [target.to_wire() for target in default_targets()]


def parse_targets(targets: Sequence | None) -> tuple[SpecTarget, ...]:
    """Normalise a target list (``SpecTarget`` objects and/or wire arrays).

    ``None`` selects :func:`default_targets`.  Duplicate keys (same spec and
    mode) are rejected — a duplicate is always a mistaken request, and the
    per-spec yield breakdown needs one entry per key.
    """
    if targets is None:
        return default_targets()
    parsed = tuple(SpecTarget.from_wire(entry) for entry in targets)
    if not parsed:
        raise ValueError("need at least one spec target")
    seen: set[str] = set()
    for target in parsed:
        if target.key in seen:
            raise ValueError(f"duplicate target for {target.key!r}")
        seen.add(target.key)
    return parsed
