"""Corner-aware yield optimisation: design against the paper's figures.

The subsystem that turns the reproduction from "regenerate Table I" into
"search for the design that still makes Table I under process spread":

* :mod:`repro.optimize.targets` — :class:`SpecTarget` acceptance bounds and
  the Table I default set; besides the analytic sweep specs a target may
  bound the waveform-measured IIP3 / P1dB (:data:`WAVEFORM_SPECS`), scored
  through the batched waveform engine, or the fixed-point digital-IF SNR
  (:data:`DIGITAL_SPECS`), scored through the quantized back end of
  :mod:`repro.digital`;
* :mod:`repro.optimize.search` — :func:`run_yield_opt`, the seeded
  shrinking-span search scoring candidate populations through the sweep
  engine's Monte-Carlo device-spread model;
* :mod:`repro.optimize.request` — :class:`YieldRequest`, the typed front
  door over the generic spec-service request.

Registered as the ``yield_opt`` experiment, so the same search runs
in-process, through :class:`~repro.api.service.MixerService`, over
``python -m repro.serve`` and from ``tools/repro-cli`` — bit-identical
across surfaces and worker counts.  See ``docs/optimization.md``.
"""

from repro.optimize.request import YieldRequest
from repro.optimize.search import (
    DEFAULT_KNOBS,
    EXPERIMENT_NAME,
    SEARCHABLE_KNOBS,
    CandidateOutcome,
    YieldOptResult,
    format_report,
    run_yield_opt,
)
from repro.optimize.targets import (
    DIGITAL_SPECS,
    TARGETABLE_SPECS,
    WAVEFORM_SPECS,
    SpecTarget,
    default_targets,
    default_targets_wire,
    parse_targets,
)

__all__ = [
    "CandidateOutcome",
    "DEFAULT_KNOBS",
    "DIGITAL_SPECS",
    "EXPERIMENT_NAME",
    "SEARCHABLE_KNOBS",
    "SpecTarget",
    "TARGETABLE_SPECS",
    "WAVEFORM_SPECS",
    "YieldOptResult",
    "YieldRequest",
    "default_targets",
    "default_targets_wire",
    "format_report",
    "parse_targets",
    "run_yield_opt",
]
