"""Corner-aware yield optimisation: design against the paper's figures.

The subsystem that turns the reproduction from "regenerate Table I" into
"search for the design that still makes Table I under process spread":

* :mod:`repro.optimize.targets` — :class:`SpecTarget` acceptance bounds and
  the Table I default set; besides the analytic sweep specs a target may
  bound the waveform-measured IIP3 / P1dB (:data:`WAVEFORM_SPECS`), scored
  through the batched waveform engine, or the fixed-point digital-IF SNR
  (:data:`DIGITAL_SPECS`), scored through the quantized back end of
  :mod:`repro.digital`;
* :mod:`repro.optimize.strategies` — the pluggable proposal strategies
  (:data:`STRATEGIES`): the shrinking-span pattern search and the
  covariance-adapted CMA-ES sampler;
* :mod:`repro.optimize.search` — :func:`run_yield_opt`, the seeded scalar
  search scoring candidate populations through the sweep engine's
  Monte-Carlo device-spread model, and :func:`run_pareto_opt`, the
  multi-objective mode maintaining a non-dominated front;
* :mod:`repro.optimize.pareto` — :class:`Objective` trade-off axes and the
  :class:`ParetoFront` / :class:`ParetoOptResult` first-class result types;
* :mod:`repro.optimize.request` — the deprecated :class:`YieldRequest`
  shim (optimisation requests now travel the standard
  :class:`~repro.api.request.SpecRequest` envelope).

Registered as the ``yield_opt`` and ``yield_pareto`` experiments, so both
searches run in-process, through :class:`~repro.api.service.MixerService`,
over ``python -m repro.serve`` and from ``tools/repro-cli`` — bit-identical
across surfaces and worker counts.  See ``docs/optimization.md``.
"""

from repro.optimize.pareto import (
    DIRECTIONS,
    OBJECTIVE_YIELD,
    Objective,
    ParetoFront,
    ParetoOptResult,
    ParetoPoint,
    default_objectives,
    default_objectives_wire,
    format_pareto_report,
    parse_objectives,
)
from repro.optimize.request import YieldRequest
from repro.optimize.search import (
    DEFAULT_KNOBS,
    EXPERIMENT_NAME,
    PARETO_EXPERIMENT_NAME,
    SEARCHABLE_KNOBS,
    CandidateOutcome,
    YieldOptResult,
    format_report,
    run_pareto_opt,
    run_yield_opt,
)
from repro.optimize.strategies import STRATEGIES, CmaStrategy, ShrinkingSpanStrategy
from repro.optimize.targets import (
    DIGITAL_SPECS,
    TARGETABLE_SPECS,
    WAVEFORM_SPECS,
    SpecTarget,
    default_targets,
    default_targets_wire,
    parse_targets,
)

__all__ = [
    "CandidateOutcome",
    "CmaStrategy",
    "DEFAULT_KNOBS",
    "DIGITAL_SPECS",
    "DIRECTIONS",
    "EXPERIMENT_NAME",
    "OBJECTIVE_YIELD",
    "Objective",
    "PARETO_EXPERIMENT_NAME",
    "ParetoFront",
    "ParetoOptResult",
    "ParetoPoint",
    "SEARCHABLE_KNOBS",
    "STRATEGIES",
    "ShrinkingSpanStrategy",
    "SpecTarget",
    "TARGETABLE_SPECS",
    "WAVEFORM_SPECS",
    "YieldOptResult",
    "YieldRequest",
    "default_objectives",
    "default_objectives_wire",
    "default_targets",
    "default_targets_wire",
    "format_pareto_report",
    "format_report",
    "parse_objectives",
    "parse_targets",
    "run_pareto_opt",
    "run_yield_opt",
]
