"""Proposal strategies for the design-knob search.

The optimiser's outer loop is fixed — propose a population, score every
candidate's Monte-Carlo corners as one sweep-engine design axis, select —
but *how* the next population is proposed is a strategy:

* :class:`ShrinkingSpanStrategy` (``strategy="shrinking_span"``, the
  default) reproduces the original pattern search draw-for-draw: every
  knob of the incumbent is perturbed log-normally with a span that shrinks
  each generation.  It is simple and robust but its proposal distribution
  is isotropic — it cannot learn that, say, ``load_resistance`` and
  ``tca_bias_current`` must move *together* to keep gain while shedding
  power;
* :class:`CmaStrategy` (``strategy="cma"``) is a covariance-matrix
  adaptation evolution strategy (CMA-ES, rank-mu update with cumulative
  step-size control) over the **log-knob space**: each generation's ranked
  population updates a full covariance matrix, so the sampler learns the
  correlation structure the Monte-Carlo-scored population reveals and
  walks valley floors an isotropic sampler zig-zags across.

Both strategies draw every random number from per-``(seed, generation,
candidate)`` NumPy seed sequences and use only deterministic linear
algebra, so a search is bit-identical for any worker count and on every
serving surface — the same guarantee the rest of the engine makes.
"""

from __future__ import annotations

import math
from dataclasses import replace
from typing import Sequence

import numpy as np

from repro.core.config import MixerDesign

#: Registered strategy names (the ``strategy=`` grid parameter).
STRATEGIES = ("shrinking_span", "cma")

#: Hard per-knob bound on how far (in log space) a CMA proposal may drift
#: from the *initial* design: e**0.7 is roughly 2x / 0.5x.  The physical
#: models solve reliably inside that envelope; an unbounded covariance
#: blow-up would otherwise walk a knob into "target gm unreachable".
MAX_LOG_OFFSET = 0.7


def perturb_design(center: MixerDesign, knobs: Sequence[str], span: float,
                   rng: np.random.Generator) -> MixerDesign:
    """One candidate: every knob scaled log-normally around ``center``.

    Log-normal factors keep every knob strictly positive and make a +x%
    pull as likely as a -x% one — the same convention the Monte-Carlo
    spread model uses for its multiplicative parameters.
    """
    changes = {
        knob: getattr(center, knob) * float(np.exp(rng.normal(0.0, span)))
        for knob in knobs
    }
    return replace(center, **changes)


class ShrinkingSpanStrategy:
    """The original seeded pattern search, as a pluggable strategy.

    ``propose`` reproduces the historical candidate stream exactly: one
    ``default_rng([seed, generation, index, 0])`` per candidate, one
    log-normal factor per knob in knob order.  ``observe`` re-centres on
    the caller's incumbent and shrinks the span.
    """

    def __init__(self, base: MixerDesign, knobs: Sequence[str], *,
                 seed: int, population: int, search_span: float,
                 shrink: float) -> None:
        self.center = base
        self.knobs = tuple(knobs)
        self.seed = int(seed)
        self.population = int(population)
        self.span = float(search_span)
        self.shrink = float(shrink)

    def propose(self, generation: int) -> list[MixerDesign]:
        candidates: list[MixerDesign] = []
        for index in range(self.population):
            if generation == 0 and index == 0:
                candidates.append(self.center)  # score the incoming design
                continue
            rng = np.random.default_rng([self.seed, generation, index, 0])
            candidates.append(perturb_design(self.center, self.knobs,
                                             self.span, rng))
        return candidates

    def observe(self, generation: int, candidates: Sequence[MixerDesign],
                order: Sequence[int], incumbent: MixerDesign) -> None:
        del generation, candidates, order
        self.center = incumbent
        self.span *= self.shrink


class CmaStrategy:
    """Covariance-adapted proposals (CMA-ES) over the log-knob space.

    A compact but faithful CMA-ES: rank-mu weighted recombination,
    cumulative step-size adaptation (CSA) and the rank-one + rank-mu
    covariance update, with the standard parameterisation for population
    size ``population``.  The strategy ignores the caller's incumbent — the
    distribution mean *is* the search state — and ``shrink`` plays no role
    (sigma adapts itself).
    """

    def __init__(self, base: MixerDesign, knobs: Sequence[str], *,
                 seed: int, population: int, search_span: float,
                 shrink: float) -> None:
        del shrink  # sigma is self-adapting
        self.base = base
        self.knobs = tuple(knobs)
        self.seed = int(seed)
        self.population = int(population)
        n = len(self.knobs)
        self.n = n
        self.x0 = np.log(np.array([getattr(base, knob)
                                   for knob in self.knobs]))
        self.mean = self.x0.copy()
        self.sigma = float(search_span)
        self.cov = np.eye(n)
        self.path_sigma = np.zeros(n)
        self.path_cov = np.zeros(n)
        # Standard CMA-ES constants (Hansen's tutorial parameterisation).
        mu = self.population // 2
        weights = np.log(mu + 0.5) - np.log(np.arange(1, mu + 1))
        self.weights = weights / weights.sum()
        self.mu = mu
        self.mueff = 1.0 / float(np.sum(self.weights ** 2))
        self.c_sigma = (self.mueff + 2.0) / (n + self.mueff + 5.0)
        self.d_sigma = (1.0 + 2.0 * max(0.0, math.sqrt((self.mueff - 1.0)
                                                       / (n + 1.0)) - 1.0)
                        + self.c_sigma)
        self.c_c = (4.0 + self.mueff / n) / (n + 4.0 + 2.0 * self.mueff / n)
        self.c_1 = 2.0 / ((n + 1.3) ** 2 + self.mueff)
        self.c_mu = min(1.0 - self.c_1,
                        2.0 * (self.mueff - 2.0 + 1.0 / self.mueff)
                        / ((n + 2.0) ** 2 + self.mueff))
        self.chi_n = math.sqrt(n) * (1.0 - 1.0 / (4.0 * n)
                                     + 1.0 / (21.0 * n * n))
        self._steps: np.ndarray | None = None   # y_i rows of the generation

    def _decompose(self) -> tuple[np.ndarray, np.ndarray]:
        """Eigendecomposition of the (symmetrised) covariance, floored."""
        cov = (self.cov + self.cov.T) / 2.0
        eigenvalues, basis = np.linalg.eigh(cov)
        scales = np.sqrt(np.maximum(eigenvalues, 1e-20))
        return basis, scales

    def propose(self, generation: int) -> list[MixerDesign]:
        basis, scales = self._decompose()
        steps = np.zeros((self.population, self.n))
        candidates: list[MixerDesign] = []
        for index in range(self.population):
            if generation == 0 and index == 0:
                candidates.append(self.base)    # baseline: x = mean = x0
                continue
            rng = np.random.default_rng([self.seed, generation, index, 0])
            z = rng.standard_normal(self.n)
            x = self.mean + self.sigma * (basis @ (scales * z))
            # Keep proposals inside the physically solvable envelope; the
            # step used for the update is the *clipped* one so the learned
            # distribution stays consistent with what was scored.
            x = np.clip(x, self.x0 - MAX_LOG_OFFSET, self.x0 + MAX_LOG_OFFSET)
            steps[index] = (x - self.mean) / self.sigma
            candidates.append(replace(self.base, **{
                knob: float(np.exp(x[k]))
                for k, knob in enumerate(self.knobs)}))
        self._steps = steps
        return candidates

    def observe(self, generation: int, candidates: Sequence[MixerDesign],
                order: Sequence[int], incumbent: MixerDesign) -> None:
        del candidates, incumbent
        assert self._steps is not None, "observe() before propose()"
        selected = self._steps[list(order[:self.mu])]
        step_w = self.weights @ selected
        basis, scales = self._decompose()
        inv_sqrt = basis @ np.diag(1.0 / scales) @ basis.T

        self.path_sigma = ((1.0 - self.c_sigma) * self.path_sigma
                           + math.sqrt(self.c_sigma * (2.0 - self.c_sigma)
                                       * self.mueff) * (inv_sqrt @ step_w))
        norm = float(np.linalg.norm(self.path_sigma))
        decay = math.sqrt(1.0 - (1.0 - self.c_sigma)
                          ** (2.0 * (generation + 1)))
        h_sigma = 1.0 if norm / decay < (1.4 + 2.0 / (self.n + 1.0)) \
            * self.chi_n else 0.0
        self.path_cov = ((1.0 - self.c_c) * self.path_cov
                         + h_sigma * math.sqrt(self.c_c * (2.0 - self.c_c)
                                               * self.mueff) * step_w)
        rank_mu = sum(weight * np.outer(step, step)
                      for weight, step in zip(self.weights, selected))
        self.cov = ((1.0 - self.c_1 - self.c_mu) * self.cov
                    + self.c_1 * (np.outer(self.path_cov, self.path_cov)
                                  + (1.0 - h_sigma) * self.c_c
                                  * (2.0 - self.c_c) * self.cov)
                    + self.c_mu * rank_mu)
        self.mean = self.mean + self.sigma * step_w
        self.mean = np.clip(self.mean, self.x0 - MAX_LOG_OFFSET,
                            self.x0 + MAX_LOG_OFFSET)
        self.sigma = self.sigma * math.exp(
            (self.c_sigma / self.d_sigma) * (norm / self.chi_n - 1.0))
        self.sigma = float(np.clip(self.sigma, 1e-4, 1.0))
        self._steps = None


#: Strategy name -> constructor; both share one signature.
_STRATEGY_TYPES = {
    "shrinking_span": ShrinkingSpanStrategy,
    "cma": CmaStrategy,
}


def make_strategy(name: str, base: MixerDesign, knobs: Sequence[str], *,
                  seed: int, population: int, search_span: float,
                  shrink: float):
    """Build the named proposal strategy (``ValueError`` on unknown names)."""
    try:
        cls = _STRATEGY_TYPES[name]
    except KeyError:
        raise ValueError(f"unknown strategy {name!r}; "
                         f"choose from {STRATEGIES}") from None
    return cls(base, knobs, seed=seed, population=population,
               search_span=search_span, shrink=shrink)
