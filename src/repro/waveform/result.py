"""Result container for batched waveform benches.

:class:`WaveformResult` is a :class:`~repro.sweep.result.SweepResult` over
the axes **design x mode x input power**: one dense float array per measure
(``fundamental_dbm`` / ``im3_dbm`` / ``im2_dbm`` for two-tone plans,
``output_dbm`` / ``gain_db`` for single-tone plans), selected by axis name
and value exactly like every spec sweep.  The whole container contract is
inherited — labelled :meth:`~repro.sweep.result.SweepResult.values` /
:meth:`~repro.sweep.result.SweepResult.curve` selection,
:meth:`~repro.sweep.result.SweepResult.concat` along a named axis (the
parallel runner's shard stitch), and exact
:meth:`~repro.sweep.result.SweepResult.to_dict` /
:meth:`~repro.sweep.result.SweepResult.from_dict` JSON round-trips — so
everything that can consume a sweep (caches, services, notebooks) can
consume a waveform bench unchanged.
"""

from __future__ import annotations

import numpy as np

from repro.sweep.grid import POWER_AXIS
from repro.sweep.result import SweepResult


class WaveformResult(SweepResult):
    """Labelled waveform measures over design x mode x input power."""

    def input_powers(self) -> np.ndarray:
        """The swept input powers (dBm), the plan's power axis."""
        return self.axis(POWER_AXIS).as_array()

    def power_curve(self, measure: str, **selectors) -> tuple[np.ndarray,
                                                              np.ndarray]:
        """(input powers, measure values) with the other axes selected.

        Sugar over :meth:`~repro.sweep.result.SweepResult.curve` along the
        power axis — the shape every intercept / compression fit consumes.
        """
        return self.curve(measure, POWER_AXIS, **selectors)
