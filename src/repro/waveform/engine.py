"""The vectorized waveform engine for the paper's sampled-signal benches.

The two-tone (Fig. 10 IIP3, section-IV IIP2) and single-tone (Table I P1dB,
spot conversion gain) measurements used to run point-by-point: one device
evaluation and one FFT per input power per mode per design, in a Python
loop.  This engine batches them the way :class:`~repro.sweep.runner.\
SweepRunner` batches the analytic specs:

* the stimulus for **every** input power is one stacked ``(powers,
  samples)`` block — the unit waveform is built once and scaled by the
  per-power amplitudes;
* the device model processes the whole block in one call (the mixer's
  :meth:`~repro.core.reconfigurable_mixer.ReconfigurableMixer.\
waveform_device` treats the last axis as time), so the LO switching
  function, the time grid and every elementwise nonlinearity are computed
  once per (design, mode) cell instead of once per power;
* one batched ``np.fft.rfft`` over the power axis replaces N scalar
  spectrum analyses, and only the product bins the bench needs are read —
  no full amplitude spectra are materialised.

:class:`WaveformRunner` lifts :func:`evaluate_plan` onto labelled **design
x mode x input power** grids with the same memoization ladder as the sweep
engine: mixers per design record in memory, measures per (design, mode,
plan) on disk (:mod:`repro.waveform.cache`), and design-axis sharding
across processes (:mod:`repro.waveform.parallel`).  Scalar entry points
(:func:`repro.rf.twotone.sweep_two_tone`,
:func:`repro.rf.compression.measure_compression_point`) are thin wrappers
over this module, so the point and batched paths cannot drift.

Every batched evaluation bumps a module-level counter
(:func:`waveform_fft_count`), the instrument behind the warm-cache
"zero FFT evaluations" gate in ``benchmarks/test_bench_waveform.py`` —
the waveform twin of ``sizing_solve_count()``.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import MixerDesign, MixerMode
from repro.core.reconfigurable_mixer import ReconfigurableMixer
from repro.core.transconductance import solve_widths
from repro.rf.signal import WaveformTransfer
from repro.sweep.grid import POWER_AXIS, SweepAxis
from repro.units import dbm_from_vpeak, vpeak_from_dbm
from repro.waveform.cache import resolve_waveform_cache
from repro.waveform.plan import TWO_TONE, StimulusPlan
from repro.waveform.result import WaveformResult

#: Process-wide count of batched FFT evaluations (see waveform_fft_count).
_FFT_EVALS = 0

#: Cache-blocking target for the stacked time-domain evaluation: the power
#: axis is fed to the device in row chunks of about this many samples, so
#: the chunk plus its elementwise temporaries stays L2-resident instead of
#: streaming a multi-megabyte block through every pass of the nonlinear
#: chain.  Chunking is invisible in the results — every row is independent
#: — and the measurement FFT below stays one batched call over the whole
#: power axis.
_CHUNK_SAMPLES = 49152


def waveform_fft_count() -> int:
    """How many batched waveform evaluations this process has performed.

    One unit covers a whole input-power sweep for one (device, plan) cell —
    the stacked time-domain evaluation plus its batched FFT.  A warm
    waveform cache must leave this counter untouched.
    """
    return _FFT_EVALS


def _amplitudes_at(raw: np.ndarray, frequency: float, sample_rate: float,
                   num_samples: int) -> np.ndarray:
    """Per-record tone amplitude (V peak) at the bin nearest ``frequency``.

    Mirrors :meth:`repro.rf.spectrum.Spectrum.amplitude_at` bin by bin —
    nearest bin, single-sided scaling — without materialising the full
    amplitude spectrum.
    """
    if frequency < 0 or frequency > sample_rate / 2.0:
        raise ValueError(
            f"frequency {frequency:.4g} Hz outside the Nyquist range")
    index = int(round(frequency * num_samples / sample_rate))
    amplitude = np.abs(raw[..., index]) / num_samples
    if index > 0:
        amplitude = amplitude * 2.0
    return amplitude


def _to_dbm(amplitude: np.ndarray) -> np.ndarray:
    """Amplitudes (V peak) to dBm, with empty bins reading ``-inf``."""
    with np.errstate(divide="ignore"):
        return np.where(amplitude > 0, dbm_from_vpeak(amplitude), -np.inf)


def _tone_powers_dbm(raw: np.ndarray, frequency: float, sample_rate: float,
                     num_samples: int) -> np.ndarray:
    """Per-record tone power (dBm), the batched Spectrum.power_dbm_at."""
    return _to_dbm(_amplitudes_at(raw, frequency, sample_rate, num_samples))


def stimulus_block(plan: StimulusPlan) -> np.ndarray:
    """The stacked ``(powers, samples)`` stimulus of a plan.

    Each tone is scaled then summed — the same operations, in the same
    order, as the scalar Tone/TwoToneSource sources — so every row is
    bit-identical to the corresponding per-power waveform.  Callers
    evaluating one plan over many (design, mode) cells build this once and
    pass it to :func:`evaluate_plan`.
    """
    amplitudes = np.asarray(vpeak_from_dbm(plan.powers()),
                            dtype=float)[:, None]
    tones = plan.tone_waveforms()
    block = amplitudes * tones[0][None, :]
    for tone in tones[1:]:
        block = block + amplitudes * tone[None, :]
    return block


def device_output(device: WaveformTransfer, plan: StimulusPlan,
                  block: np.ndarray | None = None) -> np.ndarray:
    """The device's time-domain output block for one plan.

    The chunked stacked evaluation shared by :func:`evaluate_plan` (which
    follows it with the measurement FFT) and the time-domain tap
    (:meth:`WaveformRunner.time_domain`) the digital back end consumes —
    one code path, so the spectra the benches read and the sample blocks
    the quantized IF chain digests can never drift apart.
    """
    if block is None:
        block = stimulus_block(plan)
    rows = block.shape[0]
    step = max(1, _CHUNK_SAMPLES // plan.num_samples)
    if step >= rows:
        out = np.asarray(device(block), dtype=float)
    else:
        # Cache-blocked evaluation: rows are independent, so feeding the
        # device L2-sized slices is bit-identical to one monolithic call
        # and markedly faster on long power sweeps.
        out = np.empty_like(block)
        for start in range(0, rows, step):
            stop = min(rows, start + step)
            out[start:stop] = device(block[start:stop])
    if out.shape != block.shape:
        raise ValueError(
            f"device returned shape {out.shape} for input {block.shape}; "
            "waveform devices must preserve the (powers, samples) block")
    return out


def evaluate_plan(device: WaveformTransfer, plan: StimulusPlan,
                  block: np.ndarray | None = None) -> dict[str, np.ndarray]:
    """Run one plan through a device: the batched core of every bench.

    One stacked time-domain evaluation plus one batched FFT produce every
    measure array at once; each array has one entry per input power and is
    numerically equivalent (<= 1e-9) to the scalar per-power measurement —
    the stimulus scaling, device maths and bin reads are the same
    operations, just vectorized across the power axis.  ``block`` lets a
    caller reuse one :func:`stimulus_block` across many cells of the same
    plan.
    """
    global _FFT_EVALS
    powers = plan.powers()
    out = device_output(device, plan, block=block)
    raw = np.fft.rfft(out, axis=-1)
    _FFT_EVALS += 1

    products = plan.product_frequencies()
    sample_rate, num_samples = plan.sample_rate, plan.num_samples
    if plan.kind == TWO_TONE:
        # The IM3 product is the larger of the two third-order sidebands,
        # compared in amplitude (dBm is monotone in amplitude, so this
        # matches the scalar bench's max over the two dB readings).
        im3 = np.maximum(
            _amplitudes_at(raw, products["im3_low"], sample_rate, num_samples),
            _amplitudes_at(raw, products["im3_high"], sample_rate,
                           num_samples))
        return {
            "fundamental_dbm": _tone_powers_dbm(
                raw, products["fundamental"], sample_rate, num_samples),
            "im3_dbm": _to_dbm(im3),
            "im2_dbm": _tone_powers_dbm(raw, products["im2"], sample_rate,
                                        num_samples),
        }
    output_dbm = _tone_powers_dbm(raw, products["output"], sample_rate,
                                  num_samples)
    return {"output_dbm": output_dbm, "gain_db": output_dbm - powers}


class WaveformRunner:
    """Evaluates waveform benches over labelled design x mode x power grids.

    The waveform twin of :class:`~repro.sweep.runner.SweepRunner`:

    Parameters
    ----------
    design:
        Baseline design record, used when :meth:`run` is not given an
        explicit design axis.
    cache:
        Optional on-disk cache of evaluated measures — ``None``/``False``
        (default, off), ``True`` (default directory), a directory path, a
        :class:`~repro.waveform.cache.WaveformCache`, or a
        :class:`~repro.sweep.cache.SpecCache` (its directory is shared).
        With a warm cache a run performs zero FFT evaluations.
    """

    def __init__(self, design: MixerDesign | None = None,
                 cache=None) -> None:
        self.design = design if design is not None else MixerDesign()
        self.cache = resolve_waveform_cache(cache)
        # Mixers are memoized per design record across run() calls, exactly
        # like the sweep engine — re-running a refined power grid re-uses
        # every sizing/bias solution already paid for.  Stimulus blocks are
        # memoized per plan the same way (plans are frozen records): the
        # tones of a repeated bench are built exactly once.
        self._mixers: dict[MixerDesign, ReconfigurableMixer] = {}
        self._stimuli: dict[StimulusPlan, np.ndarray] = {}
        # Time-domain IF output blocks per (design, mode, plan) cell — the
        # hand-off the digital back end (repro.digital) consumes.  Memoized
        # so a bit-width sweep re-reading the same cell never re-runs the
        # device model; entries are marked read-only because every consumer
        # shares the one array.
        self._taps: dict[tuple[MixerDesign, MixerMode, StimulusPlan],
                         np.ndarray] = {}

    def mixer_for(self, design: MixerDesign) -> ReconfigurableMixer:
        """The memoized mixer instance for a design record."""
        mixer = self._mixers.get(design)
        if mixer is None:
            mixer = ReconfigurableMixer(design)
            self._mixers[design] = mixer
        return mixer

    def time_domain(self, plan: StimulusPlan, mode: MixerMode,
                    design: MixerDesign | None = None) -> np.ndarray:
        """The sampled IF output block of one (design, mode) cell.

        The stable hand-off point for mixed-signal consumers: the stacked
        ``(powers, samples)`` differential IF voltage the device produces
        for ``plan``'s stimulus, evaluated on the same periodic fast path
        as :meth:`run` and memoized per (design, mode, plan) — a digital
        back end sweeping ADC bit widths over one operating point pays for
        the analog evaluation exactly once.  The returned array is
        **read-only** (consumers share it); copy before mutating.  Raw
        sample blocks are deliberately not written to the on-disk measure
        caches — downstream subsystems cache their own derived measures,
        keyed on a plan hash that covers their parameters plus this
        stimulus (:meth:`repro.digital.plan.DigitalIfPlan.content_hash`).
        """
        if not isinstance(plan, StimulusPlan):
            raise TypeError("time_domain() needs a StimulusPlan")
        if not isinstance(mode, MixerMode):
            raise TypeError("mode must be a MixerMode member")
        record = design if design is not None else self.design
        key = (record, mode, plan)
        out = self._taps.get(key)
        if out is not None:
            return out
        block = self._stimuli.get(plan)
        if block is None:
            block = stimulus_block(plan)
            self._stimuli[plan] = block
        mixer = self.mixer_for(record)
        mixer.set_mode(mode)
        device = mixer.waveform_device(
            plan.sample_rate, lo_frequency=plan.lo_frequency,
            rf_band_frequency=plan.rf_band_frequency,
            assume_periodic=True)
        out = device_output(device, plan, block=block)
        out.setflags(write=False)
        self._taps[key] = out
        return out

    def presize_designs(self, records, labels) -> int:
        """Batch-size the Gm devices of the given designs before evaluation.

        Public face of the pre-sizing pass for engines layered on top of
        the tap (the digital runner): call once with every pending design
        so a population's width bisections run as one
        :func:`~repro.core.transconductance.solve_widths` block.  Returns
        the number of designs batch-sized (0 below the batch threshold —
        the lazy per-cell path then solves them identically).
        """
        return self._presize(list(records), list(labels))

    # -- execution ------------------------------------------------------------

    def run(self, plan: StimulusPlan,
            modes=None, designs=None) -> WaveformResult:
        """Evaluate ``plan`` for every (design, mode) cell of the grid.

        ``modes`` / ``designs`` follow :meth:`SweepRunner.run`: omitted
        modes sweep both, omitted designs use the baseline as the one-point
        ``"nominal"`` axis.  Each cell is one batched evaluation (or one
        cache hit); cells are independent, so per-design results are
        bit-identical whether a design runs alone or in a population —
        the property the batch API fan-out relies on.
        """
        if not isinstance(plan, StimulusPlan):
            raise TypeError("run() needs a StimulusPlan")
        design_axis, records = SweepAxis.design_axis(designs, self.design)
        mode_axis, members = SweepAxis.mode_axis(modes)
        power_axis = SweepAxis.numeric(POWER_AXIS, plan.input_powers_dbm)

        shape = (len(design_axis), len(mode_axis), len(power_axis))
        data = {measure: np.empty(shape, dtype=float)
                for measure in plan.measures}
        # Pass 1 — settle the cache: every hit fills its cell directly, and
        # each miss is queued so the unsolved designs can be batch-sized
        # before any device evaluation runs.  Each cell still costs at most
        # one cache read, exactly as the single-pass loop did.
        pending: list[tuple[int, int, MixerDesign]] = []
        for design_index, record in enumerate(records):
            mixer = self.mixer_for(record)
            for mode_index, mode in enumerate(members):
                if self.cache is not None:
                    cached = self.cache.load(record, mode, plan)
                    if cached is not None:
                        for measure in plan.measures:
                            data[measure][design_index, mode_index] = \
                                cached[measure]
                        continue
                pending.append((design_index, mode_index, record))
        self._presize([record for _, _, record in pending],
                      [design_axis.values[i] for i, _, _ in pending])
        # Pass 2 — evaluate the cells the cache could not cover, all devices
        # already sized when the batch threshold was met.
        block: np.ndarray | None = None  # one stimulus, shared by all cells
        for design_index, mode_index, record in pending:
            mixer = self.mixer_for(record)
            mixer.set_mode(members[mode_index])
            if block is None:
                block = self._stimuli.get(plan)
                if block is None:
                    block = stimulus_block(plan)
                    self._stimuli[plan] = block
            measures = self._evaluate_cell(mixer, record, plan, block)
            for measure in plan.measures:
                data[measure][design_index, mode_index] = measures[measure]
        return WaveformResult((design_axis, mode_axis, power_axis), data)

    #: Minimum number of unsolved designs before the batched width solver
    #: takes over (mirrors :attr:`SweepRunner._BATCH_THRESHOLD`).
    _BATCH_THRESHOLD = 2

    def _presize(self, records, labels) -> int:
        """Batch-solve Gm widths for the distinct unsized pending designs.

        The waveform twin of :meth:`SweepRunner._presize`: one
        :func:`~repro.core.transconductance.solve_widths` call replaces the
        N x 80 scalar bisections the lazy per-cell path would have run, and
        the solved widths are bit-identical, so measures are unchanged.
        Returns the number of designs batch-sized.
        """
        pending_records: list[MixerDesign] = []
        pending_labels: list[str] = []
        pending_mixers: list[ReconfigurableMixer] = []
        seen: set[MixerDesign] = set()
        for label, record in zip(labels, records):
            if record in seen:
                continue
            seen.add(record)
            mixer = self.mixer_for(record)
            if mixer.gm_device_sized():
                continue
            pending_records.append(record)
            pending_labels.append(label)
            pending_mixers.append(mixer)
        if len(pending_records) < self._BATCH_THRESHOLD:
            return 0
        widths = solve_widths(pending_records, labels=pending_labels)
        for mixer, width in zip(pending_mixers, widths):
            mixer.seed_gm_width(float(width))
        return len(pending_records)

    def _evaluate_cell(self, mixer: ReconfigurableMixer, record: MixerDesign,
                       plan: StimulusPlan,
                       block: np.ndarray) -> dict[str, np.ndarray]:
        """Evaluate the measure arrays for one uncached (design, mode) cell.

        The device runs on its periodic fast path: no cyclic prefix, the IF
        filter applied as its steady-state (one-record-warm-up) response —
        matching the prefixed evaluation to double precision at half the
        samples, with the LO switching function amortised across chunks.
        """
        device = mixer.waveform_device(
            plan.sample_rate, lo_frequency=plan.lo_frequency,
            rf_band_frequency=plan.rf_band_frequency,
            assume_periodic=True)
        measures = evaluate_plan(device, plan, block=block)
        if self.cache is not None:
            self.cache.store(record, mixer.mode, plan, measures)
        return measures
