"""Stimulus plans: declarative descriptions of waveform-bench stimuli.

A :class:`StimulusPlan` is everything a waveform measurement needs besides
the device under test: the bench kind (two-tone or single-tone), the tone
frequencies, the swept input powers, the coherent sampling grid and the
frequency-translation bookkeeping (LO, measurement frequency).  Plans are
frozen, picklable records of plain floats, so they

* travel to the worker processes of
  :class:`~repro.waveform.parallel.ParallelWaveformRunner` unchanged,
* hash stably (:meth:`StimulusPlan.content_hash`) — one third of the
  waveform cache key, next to ``MixerDesign.fingerprint()`` and the mode —
  and
* round-trip exactly through :meth:`to_dict` / :meth:`from_dict`.

The two constructors, :func:`two_tone_plan` and :func:`single_tone_plan`,
mirror the benches the paper's evaluation uses: Fig. 10's IIP3 / the
section-IV IIP2 claim ride the two-tone plan, Table I's P1dB and spot
conversion gain ride the single-tone plan.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass, replace
from typing import Mapping, Sequence

import numpy as np

from repro.rf.signal import sample_times
from repro.rf.twotone import intermod_frequencies

#: Schema/semantics version folded into every plan hash; bump on any change
#: to what a plan's numbers mean so stale cache entries miss, never mislead.
PLAN_VERSION = 1

#: Default sampling grid of the paper-artefact benches: 10.24 GS/s with
#: 10240 samples gives exact 1 MHz bins, so every tone and product of the
#: default 2.4 GHz frequency plans is bin-exact.  (Re-exported by the
#: experiment drivers for backwards compatibility.)
DEFAULT_SAMPLE_RATE = 10.24e9
DEFAULT_NUM_SAMPLES = 10240

#: Bench kinds.
TWO_TONE = "two_tone"
SINGLE_TONE = "single_tone"

#: Measure arrays each bench kind produces, in storage order.
MEASURES_BY_KIND: dict[str, tuple[str, ...]] = {
    TWO_TONE: ("fundamental_dbm", "im3_dbm", "im2_dbm"),
    SINGLE_TONE: ("output_dbm", "gain_db"),
}


@dataclass(frozen=True)
class StimulusPlan:
    """One waveform bench, fully specified.

    Attributes
    ----------
    kind:
        :data:`TWO_TONE` or :data:`SINGLE_TONE`.
    frequencies:
        The stimulus tone frequencies (two for a two-tone plan, one for a
        single-tone plan); ``frequencies[0]`` doubles as the RF-band
        frequency the device's wide-band response is evaluated at.
    input_powers_dbm:
        The swept per-tone input powers — the power axis of the resulting
        :class:`~repro.waveform.result.WaveformResult`.
    sample_rate / num_samples:
        The sampling grid; callers should pick a coherent grid (see
        :func:`repro.rf.signal.coherent_sample_count`) so every product
        lands on an FFT bin.
    lo_frequency:
        When measuring a mixer, the LO frequency; products are then read in
        the IF band.  ``None`` measures an amplifier-style device in the
        RF band.
    output_frequency:
        Single-tone plans only: where the output tone is measured.  Defaults
        to the down-converted ``|f - f_lo|`` with an LO, the stimulus
        frequency without one.
    """

    kind: str
    frequencies: tuple[float, ...]
    input_powers_dbm: tuple[float, ...]
    sample_rate: float
    num_samples: int
    lo_frequency: float | None = None
    output_frequency: float | None = None

    def __post_init__(self) -> None:
        if self.kind not in MEASURES_BY_KIND:
            raise ValueError(f"unknown bench kind {self.kind!r}; choose from "
                             f"{sorted(MEASURES_BY_KIND)}")
        expected = 2 if self.kind == TWO_TONE else 1
        if len(self.frequencies) != expected:
            raise ValueError(f"a {self.kind} plan needs exactly {expected} "
                             f"tone frequencies, got {len(self.frequencies)}")
        for frequency in self.frequencies:
            if frequency <= 0:
                raise ValueError("tone frequencies must be positive")
        if self.kind == TWO_TONE and self.frequencies[0] == self.frequencies[1]:
            raise ValueError("the two tones must have distinct frequencies")
        if self.sample_rate <= 0:
            raise ValueError("sample rate must be positive")
        if self.num_samples < 8:
            raise ValueError("need at least 8 samples per record")
        if not self.input_powers_dbm:
            raise ValueError("need at least one input power")
        for power in self.input_powers_dbm:
            if not math.isfinite(power):
                raise ValueError("input powers must be finite")
        if self.lo_frequency is not None and self.lo_frequency <= 0:
            raise ValueError("LO frequency must be positive")
        if self.output_frequency is not None and self.kind != SINGLE_TONE:
            raise ValueError("output_frequency applies to single-tone plans")
        nyquist = self.sample_rate / 2.0
        for name, frequency in self.product_frequencies().items():
            if frequency > nyquist:
                raise ValueError(
                    f"product {name!r} at {frequency:.4g} Hz exceeds the "
                    f"Nyquist frequency {nyquist:.4g} Hz")

    # -- derived quantities ---------------------------------------------------

    @property
    def measures(self) -> tuple[str, ...]:
        """Names of the measure arrays this plan produces."""
        return MEASURES_BY_KIND[self.kind]

    @property
    def rf_band_frequency(self) -> float:
        """Frequency the device's wide-band RF response is evaluated at."""
        return self.frequencies[0]

    def powers(self) -> np.ndarray:
        """The swept input powers as a float array."""
        return np.asarray(self.input_powers_dbm, dtype=float)

    def times(self) -> np.ndarray:
        """The sampling time grid."""
        return sample_times(self.sample_rate, self.num_samples)

    def tone_waveforms(self) -> tuple[np.ndarray, ...]:
        """Each stimulus tone at unit amplitude, on the sampling grid.

        Kept per tone (rather than pre-summed) so the batched engine can
        scale and sum exactly like the scalar sources do — ``a*cos(f1 t) +
        a*cos(f2 t)`` — keeping the two paths bit-identical, not merely
        close.
        """
        times = self.times()
        return tuple(np.cos(2.0 * math.pi * frequency * times)
                     for frequency in self.frequencies)

    def product_frequencies(self) -> dict[str, float]:
        """Where each product of interest lands, keyed by product name."""
        if self.kind == TWO_TONE:
            return intermod_frequencies(self.frequencies[0],
                                        self.frequencies[1],
                                        self.lo_frequency)
        if self.output_frequency is not None:
            return {"output": self.output_frequency}
        frequency = self.frequencies[0]
        if self.lo_frequency is not None:
            frequency = abs(frequency - self.lo_frequency)
        return {"output": frequency}

    def is_coherent(self, tolerance: float = 1e-6) -> bool:
        """True when every record is exactly one period of the stimulus.

        Checks that each stimulus tone and the LO land on an integer number
        of cycles per record (within ``tolerance`` cycles) — the condition
        under which the record is periodic and spectra are leakage-free, so
        bin reads recover true tone powers.  This is a plan-quality
        predicate for callers building custom grids; the engine itself
        always evaluates on the periodic fast path, which matches the
        cyclic-prefix evaluation for *any* record, coherent or not (both
        treat the record as one period of an infinite waveform).
        """
        frequencies = list(self.frequencies)
        if self.lo_frequency is not None:
            frequencies.append(self.lo_frequency)
        for frequency in frequencies:
            cycles = frequency * self.num_samples / self.sample_rate
            if abs(cycles - round(cycles)) > tolerance:
                return False
        return True

    def with_powers(self, input_powers_dbm: Sequence[float]) -> "StimulusPlan":
        """Copy of the plan over a different input-power sweep."""
        return replace(self, input_powers_dbm=tuple(
            float(power) for power in input_powers_dbm))

    # -- identity / wire format -----------------------------------------------

    def to_dict(self) -> dict:
        """JSON-ready canonical form (also the hashed content)."""
        return {
            "plan_version": PLAN_VERSION,
            "kind": self.kind,
            "frequencies": [float(f) for f in self.frequencies],
            "input_powers_dbm": [float(p) for p in self.input_powers_dbm],
            "sample_rate": float(self.sample_rate),
            "num_samples": int(self.num_samples),
            "lo_frequency": None if self.lo_frequency is None
            else float(self.lo_frequency),
            "output_frequency": None if self.output_frequency is None
            else float(self.output_frequency),
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "StimulusPlan":
        """Rebuild a plan from :meth:`to_dict` output (validates as always)."""
        version = payload.get("plan_version", PLAN_VERSION)
        if version != PLAN_VERSION:
            raise ValueError(f"unsupported plan_version {version!r}")
        return cls(
            kind=str(payload["kind"]),
            frequencies=tuple(float(f) for f in payload["frequencies"]),
            input_powers_dbm=tuple(float(p)
                                   for p in payload["input_powers_dbm"]),
            sample_rate=float(payload["sample_rate"]),
            num_samples=int(payload["num_samples"]),
            lo_frequency=None if payload.get("lo_frequency") is None
            else float(payload["lo_frequency"]),
            output_frequency=None if payload.get("output_frequency") is None
            else float(payload["output_frequency"]),
        )

    def content_hash(self) -> str:
        """Stable SHA-256 over the canonical plan content.

        Any change to the stimulus — a tone, a power point, the grid, the
        LO — maps to a different hash, so cached measures can never be
        served for the wrong bench.
        """
        payload = json.dumps(self.to_dict(), sort_keys=True,
                             separators=(",", ":"))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def two_tone_plan(tone_1_hz: float, tone_2_hz: float,
                  input_powers_dbm: Sequence[float], sample_rate: float,
                  num_samples: int,
                  lo_frequency: float | None = None) -> StimulusPlan:
    """The two-tone intermodulation bench (Fig. 10 / IIP2)."""
    return StimulusPlan(
        kind=TWO_TONE,
        frequencies=(float(tone_1_hz), float(tone_2_hz)),
        input_powers_dbm=tuple(float(p) for p in np.asarray(
            input_powers_dbm, dtype=float).ravel()),
        sample_rate=float(sample_rate),
        num_samples=int(num_samples),
        lo_frequency=None if lo_frequency is None else float(lo_frequency),
    )


def single_tone_plan(frequency_hz: float, input_powers_dbm: Sequence[float],
                     sample_rate: float, num_samples: int,
                     lo_frequency: float | None = None,
                     output_frequency: float | None = None) -> StimulusPlan:
    """The single-tone bench (compression / spot conversion gain)."""
    return StimulusPlan(
        kind=SINGLE_TONE,
        frequencies=(float(frequency_hz),),
        input_powers_dbm=tuple(float(p) for p in np.asarray(
            input_powers_dbm, dtype=float).ravel()),
        sample_rate=float(sample_rate),
        num_samples=int(num_samples),
        lo_frequency=None if lo_frequency is None else float(lo_frequency),
        output_frequency=None if output_frequency is None
        else float(output_frequency),
    )
