"""Vectorized waveform engine for the sampled-signal benches.

The paper's headline linearity numbers — Fig. 10's IIP3 intercepts, the
section-IV "IIP2 > 65 dBm" claim, Table I's P1dB — are measured from
time-domain waveforms through FFTs, exactly like a bench spectrum analyser.
This package batches those measurements onto the sweep architecture the
analytic specs already ride (:mod:`repro.sweep`):

* :mod:`repro.waveform.plan` — :class:`StimulusPlan`, the frozen,
  content-hashed description of one bench (tones, powers, sampling grid,
  LO) with :func:`two_tone_plan` / :func:`single_tone_plan` constructors;
* :mod:`repro.waveform.engine` — :func:`evaluate_plan` (one stacked
  time-domain evaluation + one batched ``np.fft.rfft`` over the power axis)
  and :class:`WaveformRunner`, which lifts it onto labelled design x mode x
  input-power grids with per-design mixer memoization;
  :func:`waveform_fft_count` instruments the evaluations;
* :mod:`repro.waveform.result` — :class:`WaveformResult`, a
  :class:`~repro.sweep.result.SweepResult` subclass (same axes selection,
  ``concat`` stitch and exact ``to_dict``/``from_dict`` round-trip);
* :mod:`repro.waveform.cache` — :class:`WaveformCache`, the
  content-addressed on-disk store keyed on ``MixerDesign.fingerprint()`` +
  mode + plan hash: warm re-runs perform zero FFT evaluations;
* :mod:`repro.waveform.parallel` — :class:`ParallelWaveformRunner` and
  :func:`make_waveform_runner`, sharding the design axis across processes
  with bit-identical stitched results.

The scalar benches in :mod:`repro.rf.twotone` and
:mod:`repro.rf.compression` are thin wrappers over :func:`evaluate_plan`,
and the ``fig10`` / ``iip2`` / ``p1db`` experiment drivers run whole design
populations through :class:`WaveformRunner` — so waveform linearity is as
cheap, cacheable and servable as gain or NF.
"""

from repro.waveform.cache import (
    WAVEFORM_CACHE_VERSION,
    WaveformCache,
    default_waveform_cache_dir,
    resolve_waveform_cache,
)
from repro.waveform.engine import (
    WaveformRunner,
    device_output,
    evaluate_plan,
    waveform_fft_count,
)
from repro.waveform.parallel import ParallelWaveformRunner, make_waveform_runner
from repro.waveform.plan import (
    DEFAULT_NUM_SAMPLES,
    DEFAULT_SAMPLE_RATE,
    MEASURES_BY_KIND,
    SINGLE_TONE,
    TWO_TONE,
    StimulusPlan,
    single_tone_plan,
    two_tone_plan,
)
from repro.waveform.result import WaveformResult
from repro.sweep.grid import POWER_AXIS

__all__ = [
    "DEFAULT_NUM_SAMPLES",
    "DEFAULT_SAMPLE_RATE",
    "MEASURES_BY_KIND",
    "POWER_AXIS",
    "SINGLE_TONE",
    "TWO_TONE",
    "StimulusPlan",
    "ParallelWaveformRunner",
    "WAVEFORM_CACHE_VERSION",
    "WaveformCache",
    "WaveformResult",
    "WaveformRunner",
    "default_waveform_cache_dir",
    "device_output",
    "evaluate_plan",
    "make_waveform_runner",
    "resolve_waveform_cache",
    "single_tone_plan",
    "two_tone_plan",
    "waveform_fft_count",
]
