"""Parallel waveform benches: shard the design axis across processes.

Waveform cells are embarrassingly parallel across the design axis, exactly
like the analytic sweep cells: no (design, mode) evaluation reads another's
state.  :class:`ParallelWaveformRunner` applies the
:class:`~repro.sweep.parallel.ParallelSweepRunner` machinery to the
waveform engine — contiguous design-axis slices, each run by an ordinary
:class:`~repro.waveform.engine.WaveformRunner` in a
``concurrent.futures.ProcessPoolExecutor`` worker, stitched back together
with the inherited :meth:`SweepResult.concat` along the design axis.  The
power axis is deliberately *not* sharded: the whole point of the batched
engine is that the power sweep is one stacked evaluation; the wall-clock
cost lives in the per-design device models.

Determinism: every cell runs exactly the same code path as the inline
runner, so the stitched result is **bit-identical** to
:meth:`WaveformRunner.run` on the same grid for any worker count.  Shards
share one on-disk :class:`~repro.waveform.cache.WaveformCache` directory,
so any cell one shard (or a previous run) evaluated is a pure read for
every other.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import numpy as np

from repro.api.progress import report_progress
from repro.core.config import MixerDesign, MixerMode
from repro.sweep.grid import DESIGN_AXIS, SweepAxis
from repro.sweep.parallel import executor_for
from repro.waveform.cache import WaveformCache, resolve_waveform_cache
from repro.waveform.engine import WaveformRunner
from repro.waveform.plan import StimulusPlan
from repro.waveform.result import WaveformResult


@dataclass(frozen=True)
class _WaveformShardTask:
    """Everything one worker needs to run its slice of the design axis.

    Plans are frozen records of plain floats and designs are frozen
    dataclasses, so the task crosses the process boundary cheaply under any
    start method.
    """

    plan: StimulusPlan
    labels: tuple[str, ...]
    records: tuple[MixerDesign, ...]
    modes: tuple[MixerMode, ...]
    cache_dir: str | None


def _run_waveform_shard(task: _WaveformShardTask) -> WaveformResult:
    """Worker entry point: one WaveformRunner over one design-axis slice."""
    cache = WaveformCache(task.cache_dir) if task.cache_dir is not None \
        else None
    runner = WaveformRunner(task.records[0], cache=cache)
    return runner.run(task.plan, modes=task.modes,
                      designs=dict(zip(task.labels, task.records)))


class ParallelWaveformRunner:
    """Drop-in :class:`WaveformRunner` sharding the design axis over processes.

    Parameters mirror :class:`~repro.sweep.parallel.ParallelSweepRunner`:
    ``workers=None`` means ``os.cpu_count()``; with one worker — or a design
    axis too short to shard — the bench runs inline, no pool spawned.
    """

    def __init__(self, design: MixerDesign | None = None,
                 workers: int | None = None, cache=None) -> None:
        if workers is not None and workers < 1:
            raise ValueError("workers must be at least 1")
        self.workers = int(workers) if workers is not None \
            else (os.cpu_count() or 1)
        self.cache = resolve_waveform_cache(cache)
        # The inline runner owns the design-axis labelling rules and the
        # single-process fallback, so both paths stay identical.
        self._inline = WaveformRunner(design, cache=self.cache)

    @property
    def design(self) -> MixerDesign:
        """The baseline design record."""
        return self._inline.design

    def run(self, plan: StimulusPlan,
            modes=None, designs=None) -> WaveformResult:
        """Evaluate ``plan`` over the grid, sharded along the design axis.

        Accepts exactly the arguments of :meth:`WaveformRunner.run` and
        returns a bit-identical :class:`WaveformResult` for any worker
        count.
        """
        if not isinstance(plan, StimulusPlan):
            raise TypeError("run() needs a StimulusPlan")
        design_axis, records = SweepAxis.design_axis(designs,
                                                     self._inline.design)
        _, members = SweepAxis.mode_axis(modes)

        shard_count = min(self.workers, len(records))
        if shard_count <= 1:
            return self._inline.run(plan, modes=members,
                                    designs=dict(zip(design_axis.values,
                                                     records)))

        labels = design_axis.values
        cache_dir = str(self.cache.directory) if self.cache is not None \
            else None
        tasks = []
        for bounds in np.array_split(np.arange(len(records)), shard_count):
            start, stop = int(bounds[0]), int(bounds[-1]) + 1
            tasks.append(_WaveformShardTask(
                plan=plan,
                labels=tuple(labels[start:stop]),
                records=tuple(records[start:stop]),
                modes=tuple(members),
                cache_dir=cache_dir,
            ))
        shards: list[WaveformResult] = []
        designs_done = 0
        # Pools come from the shared sweep-layer registry when reuse is on
        # (the serving layer's configuration), else one private pool as
        # before; completed shards stream as job progress either way.
        with executor_for(shard_count) as pool:
            for task, shard in zip(tasks,
                                   pool.map(_run_waveform_shard, tasks)):
                shards.append(shard)
                designs_done += len(task.labels)
                report_progress(stage="waveform", shards_done=len(shards),
                                shards_total=len(tasks),
                                designs_done=designs_done,
                                designs_total=len(records))
        return WaveformResult.concat(shards, axis=DESIGN_AXIS)


def make_waveform_runner(design: MixerDesign | None = None,
                         workers: int | None = None, cache=None
                         ) -> WaveformRunner | ParallelWaveformRunner:
    """The runner a waveform entry point should use for its options.

    Mirrors :func:`repro.sweep.make_runner`: ``workers=None`` or ``1`` keeps
    the plain single-process :class:`WaveformRunner`; anything higher
    returns a :class:`ParallelWaveformRunner`.  ``cache`` is honoured by
    both.
    """
    if workers is None or workers == 1:
        return WaveformRunner(design, cache=cache)
    return ParallelWaveformRunner(design, workers=workers, cache=cache)
