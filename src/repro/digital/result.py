"""Result container for batched digital-IF benches.

:class:`DigitalResult` is a :class:`~repro.sweep.result.SweepResult` over
the axes **design x mode x ADC bits**: one dense float array per digital
measure (``snr_db``, ``signal_dbfs``, ``noise_dbfs``, ``noise_dbm``,
``float_error_peak``, ``overflow_fraction``), selected by axis name and
value exactly like every spec sweep.  The whole container contract is
inherited — labelled :meth:`~repro.sweep.result.SweepResult.values` /
:meth:`~repro.sweep.result.SweepResult.curve` selection,
:meth:`~repro.sweep.result.SweepResult.concat` along a named axis (the
parallel runner's shard stitch), and exact
:meth:`~repro.sweep.result.SweepResult.to_dict` /
:meth:`~repro.sweep.result.SweepResult.from_dict` JSON round-trips — so
everything that can consume a sweep (caches, services, notebooks) can
consume a quantization sweep unchanged.
"""

from __future__ import annotations

import numpy as np

from repro.sweep.result import SweepResult

#: Name of the ADC resolution axis on every digital result.
BITS_AXIS = "adc_bits"


class DigitalResult(SweepResult):
    """Labelled digital-IF measures over design x mode x ADC bits."""

    def adc_bits(self) -> np.ndarray:
        """The swept converter resolutions, the plan's bit-width axis."""
        return self.axis(BITS_AXIS).as_array()

    def bits_curve(self, measure: str, **selectors) -> tuple[np.ndarray,
                                                             np.ndarray]:
        """(ADC bits, measure values) with the other axes selected.

        Sugar over :meth:`~repro.sweep.result.SweepResult.curve` along the
        bit-width axis — the shape the quantization-floor readouts consume.
        """
        return self.curve(measure, BITS_AXIS, **selectors)
