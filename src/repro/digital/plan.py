"""Digital-IF plans: declarative descriptions of one down-conversion bench.

A :class:`DigitalIfPlan` is everything the fixed-point backend needs besides
the device under test: the analog stimulus (a coherent single-tone
:class:`~repro.waveform.plan.StimulusPlan`, evaluated once through the
waveform engine's time-domain tap), the ADC sampling/quantization setup,
the NCO and mixer bit widths, and the CIC decimator configuration.  Like
stimulus plans, digital plans are frozen records of plain numbers, so they

* travel unchanged to the worker processes of
  :class:`~repro.digital.parallel.ParallelDigitalRunner`,
* hash stably (:meth:`DigitalIfPlan.content_hash`) — the hash *includes*
  the embedded stimulus plan's canonical form, so the digital cache key
  covers the analog bench and every digital parameter in one digest — and
* round-trip exactly through :meth:`to_dict` / :meth:`from_dict`.

The ``adc_bits`` field is a *tuple* of widths: the quantizer, mixer and
CIC all broadcast over a leading bit-width axis, so one plan evaluates a
whole ADC-resolution sweep in a single vectorized pass.  Validation is
deliberately strict — non-integer NCO increments, off-bin basebands,
register budgets past 62 bits or decimators that do not divide the record
are refused at construction, because each would silently corrupt the
exact-arithmetic guarantees downstream.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, replace
from typing import Mapping, Sequence

import numpy as np

from repro.digital.blocks import cic_growth_bits, phase_increment
from repro.waveform.plan import (
    DEFAULT_NUM_SAMPLES,
    DEFAULT_SAMPLE_RATE,
    SINGLE_TONE,
    StimulusPlan,
    single_tone_plan,
)

#: Schema/semantics version folded into every digital plan hash; bump on any
#: change to what the numbers mean so stale cache entries miss, never mislead.
DIGITAL_PLAN_VERSION = 1

#: Measure arrays every digital-IF evaluation produces, in storage order.
DIGITAL_MEASURES: tuple[str, ...] = (
    "snr_db",
    "signal_dbfs",
    "noise_dbfs",
    "noise_dbm",
    "float_error_peak",
    "overflow_fraction",
)

#: Default ADC full-scale in volts peak.  A fixed constant rather than a
#: per-design value on purpose: the digital grid must not depend on the
#: device under test, so a batched design sweep and a solo run quantize
#: against the identical reference and stay bit-identical.  (1.25 V matches
#: the paper's supply-limited output swing.)
DEFAULT_ADC_FULL_SCALE = 1.25

#: The widest int64-safe register budget: products and CIC registers are
#: modelled in 64-bit arithmetic with two sign/rounding bits in hand.
_REGISTER_BUDGET = 62


@dataclass(frozen=True)
class DigitalIfPlan:
    """One digital-IF down-conversion bench, fully specified.

    Attributes
    ----------
    stimulus:
        The analog bench feeding the ADC: a coherent single-tone plan with
        an LO (the mixer's IF output is what gets digitized), carrying
        exactly one input power.
    adc_stride:
        The ADC samples every ``adc_stride``-th point of the analog grid
        (must divide ``stimulus.num_samples``), i.e. the converter runs at
        ``stimulus.sample_rate / adc_stride``.
    records:
        Number of analog records tiled into the measurement window.  One
        extra record is always prepended and discarded as CIC warm-up, so
        the analysed window holds exactly ``records`` periods in decimator
        steady state.
    adc_bits:
        The swept ADC resolutions — the bit-width axis of the resulting
        :class:`~repro.digital.result.DigitalResult`.
    adc_full_scale:
        Converter full scale in volts peak (mid-rise codes clip outside
        ``±adc_full_scale``).
    lo_bits / phase_bits / table_bits:
        NCO quantization: LO sample width, phase-accumulator width and the
        number of accumulator MSBs addressing the LO lookup.
    guard_bits:
        Growth bits retained past the ADC width in the mixer product
        (register width ``adc_bits + guard_bits``).
    cic_stages / cic_decimation:
        The CIC decimator order and rate change.
    output_bits:
        Output register width; the CIC result is right-shifted (with
        rounding) into it.
    nco_frequency_hz:
        Digital LO frequency; must be exactly representable in
        ``phase_bits`` at the ADC rate.
    """

    stimulus: StimulusPlan
    adc_stride: int
    records: int
    adc_bits: tuple[int, ...]
    adc_full_scale: float
    lo_bits: int
    phase_bits: int
    table_bits: int
    guard_bits: int
    cic_stages: int
    cic_decimation: int
    output_bits: int
    nco_frequency_hz: float

    def __post_init__(self) -> None:
        if not isinstance(self.stimulus, StimulusPlan):
            raise TypeError("stimulus must be a StimulusPlan")
        if self.stimulus.kind != SINGLE_TONE:
            raise ValueError("digital-IF plans digitize a single-tone bench")
        if self.stimulus.lo_frequency is None:
            raise ValueError("the stimulus needs an LO: the ADC digitizes "
                             "the mixer's IF output")
        if len(self.stimulus.input_powers_dbm) != 1:
            raise ValueError("digital-IF plans carry exactly one input power")
        if not self.stimulus.is_coherent():
            raise ValueError("the stimulus record must be coherent: the "
                             "digital window tiles whole records")
        if self.adc_stride < 1:
            raise ValueError("adc_stride must be at least 1")
        if self.stimulus.num_samples % self.adc_stride:
            raise ValueError(
                f"adc_stride {self.adc_stride} must divide the analog record "
                f"length {self.stimulus.num_samples}")
        if self.records < 1:
            raise ValueError("need at least one steady-state record")
        if not self.adc_bits:
            raise ValueError("need at least one ADC bit width")
        if any(bits < 2 for bits in self.adc_bits):
            raise ValueError("ADC widths must be at least 2 bits")
        if len(set(self.adc_bits)) != len(self.adc_bits):
            raise ValueError("ADC bit widths must be distinct")
        if self.adc_full_scale <= 0:
            raise ValueError("ADC full scale must be positive")
        if not 2 <= self.lo_bits <= 32:
            raise ValueError("lo_bits must lie in [2, 32]")
        if not 1 <= self.phase_bits <= 48:
            raise ValueError("phase_bits must lie in [1, 48]")
        if not 1 <= self.table_bits <= self.phase_bits:
            raise ValueError("table_bits must lie in [1, phase_bits]")
        if not 0 <= self.guard_bits <= self.lo_bits - 1:
            raise ValueError("guard_bits must lie in [0, lo_bits - 1]")
        if max(self.adc_bits) + self.lo_bits > _REGISTER_BUDGET:
            raise ValueError(
                f"adc_bits + lo_bits products must fit {_REGISTER_BUDGET} "
                f"bits, got {max(self.adc_bits)} + {self.lo_bits}")
        if self.cic_stages < 1:
            raise ValueError("need at least one CIC stage")
        if self.cic_decimation < 1:
            raise ValueError("CIC decimation must be at least 1")
        samples = self.samples_per_record
        if samples % self.cic_decimation:
            raise ValueError(
                f"cic_decimation {self.cic_decimation} must divide the "
                f"per-record ADC sample count {samples}")
        if samples < self.cic_stages * self.cic_decimation:
            raise ValueError("each record must cover the CIC's impulse "
                             "response: need samples_per_record >= "
                             "cic_stages * cic_decimation")
        widest = self.register_width(max(self.adc_bits))
        if widest > _REGISTER_BUDGET:
            raise ValueError(
                f"CIC register width {widest} exceeds the "
                f"{_REGISTER_BUDGET}-bit exact-arithmetic budget "
                f"(adc {max(self.adc_bits)} + guard {self.guard_bits} + "
                f"growth {self.growth_bits})")
        if not 2 <= self.output_bits <= _REGISTER_BUDGET:
            raise ValueError(f"output_bits must lie in [2, {_REGISTER_BUDGET}]")
        # Refuses non-representable NCO frequencies (exact-increment check).
        self.phase_increment()
        bins = self.baseband_frequency * self.output_samples \
            / self.output_sample_rate
        if abs(bins - round(bins)) > 1e-6:
            raise ValueError(
                f"baseband frequency {self.baseband_frequency:.6g} Hz is not "
                f"bin-exact over the {self.output_samples}-sample output "
                f"window at {self.output_sample_rate:.6g} S/s")

    # -- derived quantities ---------------------------------------------------

    @property
    def measures(self) -> tuple[str, ...]:
        """Names of the measure arrays this plan produces."""
        return DIGITAL_MEASURES

    @property
    def adc_sample_rate(self) -> float:
        """The converter's sampling rate."""
        return self.stimulus.sample_rate / self.adc_stride

    @property
    def samples_per_record(self) -> int:
        """ADC samples per analog record."""
        return self.stimulus.num_samples // self.adc_stride

    @property
    def output_sample_rate(self) -> float:
        """Sample rate of the decimated baseband output."""
        return self.adc_sample_rate / self.cic_decimation

    @property
    def output_samples(self) -> int:
        """Baseband samples in the analysed (post-warm-up) window."""
        return self.records * self.samples_per_record // self.cic_decimation

    @property
    def warmup_samples(self) -> int:
        """Baseband samples discarded while the CIC settles (one record)."""
        return self.samples_per_record // self.cic_decimation

    @property
    def if_frequency(self) -> float:
        """The analog IF landing at the ADC input."""
        return self.stimulus.product_frequencies()["output"]

    @property
    def baseband_frequency(self) -> float:
        """Where the signal lands after digital down-conversion (signed)."""
        return self.if_frequency - self.nco_frequency_hz

    @property
    def signal_bin(self) -> int:
        """FFT bin of the signal over the output window (wrapped index)."""
        bins = round(self.baseband_frequency * self.output_samples
                     / self.output_sample_rate)
        return int(bins) % self.output_samples

    @property
    def mix_shift(self) -> int:
        """LSBs dropped from each mixer product (``lo_bits-1-guard_bits``)."""
        return self.lo_bits - 1 - self.guard_bits

    @property
    def growth_bits(self) -> int:
        """Hogenauer register growth of the configured CIC."""
        return cic_growth_bits(self.cic_stages, self.cic_decimation)

    def register_width(self, adc_bits: int) -> int:
        """CIC register width for one ADC resolution."""
        return int(adc_bits) + self.guard_bits + self.growth_bits

    def phase_increment(self) -> int:
        """The NCO accumulator increment (validated exact)."""
        return phase_increment(self.nco_frequency_hz, self.adc_sample_rate,
                               self.phase_bits)

    def bits(self) -> np.ndarray:
        """The swept ADC widths as a float array (sweep-axis coordinates)."""
        return np.asarray(self.adc_bits, dtype=float)

    def with_adc_bits(self, adc_bits: Sequence[int]) -> "DigitalIfPlan":
        """Copy of the plan over a different ADC bit-width sweep."""
        return replace(self, adc_bits=tuple(int(b) for b in adc_bits))

    # -- identity / wire format -----------------------------------------------

    def to_dict(self) -> dict:
        """JSON-ready canonical form (also the hashed content)."""
        return {
            "digital_plan_version": DIGITAL_PLAN_VERSION,
            "stimulus": self.stimulus.to_dict(),
            "adc_stride": int(self.adc_stride),
            "records": int(self.records),
            "adc_bits": [int(b) for b in self.adc_bits],
            "adc_full_scale": float(self.adc_full_scale),
            "lo_bits": int(self.lo_bits),
            "phase_bits": int(self.phase_bits),
            "table_bits": int(self.table_bits),
            "guard_bits": int(self.guard_bits),
            "cic_stages": int(self.cic_stages),
            "cic_decimation": int(self.cic_decimation),
            "output_bits": int(self.output_bits),
            "nco_frequency_hz": float(self.nco_frequency_hz),
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "DigitalIfPlan":
        """Rebuild a plan from :meth:`to_dict` output (validates as always)."""
        version = payload.get("digital_plan_version", DIGITAL_PLAN_VERSION)
        if version != DIGITAL_PLAN_VERSION:
            raise ValueError(f"unsupported digital_plan_version {version!r}")
        return cls(
            stimulus=StimulusPlan.from_dict(payload["stimulus"]),
            adc_stride=int(payload["adc_stride"]),
            records=int(payload["records"]),
            adc_bits=tuple(int(b) for b in payload["adc_bits"]),
            adc_full_scale=float(payload["adc_full_scale"]),
            lo_bits=int(payload["lo_bits"]),
            phase_bits=int(payload["phase_bits"]),
            table_bits=int(payload["table_bits"]),
            guard_bits=int(payload["guard_bits"]),
            cic_stages=int(payload["cic_stages"]),
            cic_decimation=int(payload["cic_decimation"]),
            output_bits=int(payload["output_bits"]),
            nco_frequency_hz=float(payload["nco_frequency_hz"]),
        )

    def content_hash(self) -> str:
        """Stable SHA-256 over the canonical plan content.

        Covers the embedded analog stimulus *and* every digital parameter:
        any change — a tone, the ADC rate, one bit of any width, the CIC
        shape — maps to a different hash, so cached measures can never be
        served for the wrong bench.
        """
        payload = json.dumps(self.to_dict(), sort_keys=True,
                             separators=(",", ":"))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def digital_if_plan(rf_frequency: float = 2.405e9,
                    lo_frequency: float = 2.4e9,
                    input_power_dbm: float = -20.0,
                    sample_rate: float = DEFAULT_SAMPLE_RATE,
                    num_samples: int = DEFAULT_NUM_SAMPLES,
                    adc_stride: int = 64,
                    records: int = 8,
                    adc_bits: Sequence[int] = (4, 6, 8, 10, 12, 14, 16),
                    adc_full_scale: float = DEFAULT_ADC_FULL_SCALE,
                    lo_bits: int = 16,
                    phase_bits: int = 32,
                    table_bits: int = 14,
                    guard_bits: int = 4,
                    cic_stages: int = 3,
                    cic_decimation: int = 20,
                    output_bits: int = 16,
                    nco_frequency_hz: float = 3.75e6) -> DigitalIfPlan:
    """The canonical digital-IF bench over the paper's frequency plan.

    Defaults digitize the 2.4 GHz LO / 5 MHz IF artefact bench at
    160 MS/s (``adc_stride=64`` on the 10.24 GS/s analog grid), sweep the
    converter from 4 to 16 bits against a 16-bit NCO, and decimate by 20
    through a third-order CIC to an 8 MS/s complex baseband.  The NCO sits
    at 3.75 MHz so the signal lands at 1.25 MHz — off DC (away from the
    mid-rise quantizer's offset) and off the real-IF image alias.
    """
    stimulus = single_tone_plan(
        frequency_hz=rf_frequency,
        input_powers_dbm=[float(input_power_dbm)],
        sample_rate=sample_rate,
        num_samples=num_samples,
        lo_frequency=lo_frequency,
    )
    return DigitalIfPlan(
        stimulus=stimulus,
        adc_stride=int(adc_stride),
        records=int(records),
        adc_bits=tuple(int(b) for b in adc_bits),
        adc_full_scale=float(adc_full_scale),
        lo_bits=int(lo_bits),
        phase_bits=int(phase_bits),
        table_bits=int(table_bits),
        guard_bits=int(guard_bits),
        cic_stages=int(cic_stages),
        cic_decimation=int(cic_decimation),
        output_bits=int(output_bits),
        nco_frequency_hz=float(nco_frequency_hz),
    )
