"""Parallel digital-IF benches: shard the design axis across processes.

Digital cells are embarrassingly parallel across the design axis, exactly
like the waveform cells they tap: no (design, mode) quantization pass reads
another's state.  :class:`ParallelDigitalRunner` applies the
:class:`~repro.sweep.parallel.ParallelSweepRunner` machinery to the digital
engine — contiguous design-axis slices, each run by an ordinary
:class:`~repro.digital.engine.DigitalIfRunner` (with its own embedded
analog tap) in a ``concurrent.futures.ProcessPoolExecutor`` worker,
stitched back together with the inherited :meth:`SweepResult.concat` along
the design axis.  The bit-width axis is deliberately *not* sharded: the
whole point of the broadcast quantizer is that the bits sweep is one
vectorized pass; the wall-clock cost lives in the per-design device models.

Determinism: every cell runs exactly the same code path as the inline
runner, so the stitched result is **bit-identical** to
:meth:`DigitalIfRunner.run` on the same grid for any worker count.  Shards
share one on-disk :class:`~repro.digital.cache.DigitalIfCache` directory,
so any cell one shard (or a previous run) evaluated is a pure read for
every other.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import numpy as np

from repro.api.progress import report_progress
from repro.core.config import MixerDesign, MixerMode
from repro.digital.cache import DigitalIfCache, resolve_digital_cache
from repro.digital.engine import DigitalIfRunner
from repro.digital.plan import DigitalIfPlan
from repro.digital.result import DigitalResult
from repro.sweep.grid import DESIGN_AXIS, SweepAxis
from repro.sweep.parallel import executor_for


@dataclass(frozen=True)
class _DigitalShardTask:
    """Everything one worker needs to run its slice of the design axis.

    Digital plans are frozen records of plain numbers (with a frozen
    stimulus plan inside) and designs are frozen dataclasses, so the task
    crosses the process boundary cheaply under any start method.
    """

    plan: DigitalIfPlan
    labels: tuple[str, ...]
    records: tuple[MixerDesign, ...]
    modes: tuple[MixerMode, ...]
    cache_dir: str | None


def _run_digital_shard(task: _DigitalShardTask) -> DigitalResult:
    """Worker entry point: one DigitalIfRunner over one design-axis slice."""
    cache = DigitalIfCache(task.cache_dir) if task.cache_dir is not None \
        else None
    runner = DigitalIfRunner(task.records[0], cache=cache)
    return runner.run(task.plan, modes=task.modes,
                      designs=dict(zip(task.labels, task.records)))


class ParallelDigitalRunner:
    """Drop-in :class:`DigitalIfRunner` sharding the design axis over processes.

    Parameters mirror :class:`~repro.waveform.parallel.ParallelWaveformRunner`:
    ``workers=None`` means ``os.cpu_count()``; with one worker — or a design
    axis too short to shard — the bench runs inline, no pool spawned.
    """

    def __init__(self, design: MixerDesign | None = None,
                 workers: int | None = None, cache=None) -> None:
        if workers is not None and workers < 1:
            raise ValueError("workers must be at least 1")
        self.workers = int(workers) if workers is not None \
            else (os.cpu_count() or 1)
        self.cache = resolve_digital_cache(cache)
        # The inline runner owns the design-axis labelling rules and the
        # single-process fallback, so both paths stay identical.
        self._inline = DigitalIfRunner(design, cache=self.cache)

    @property
    def design(self) -> MixerDesign:
        """The baseline design record."""
        return self._inline.design

    def run(self, plan: DigitalIfPlan,
            modes=None, designs=None) -> DigitalResult:
        """Evaluate ``plan`` over the grid, sharded along the design axis.

        Accepts exactly the arguments of :meth:`DigitalIfRunner.run` and
        returns a bit-identical :class:`DigitalResult` for any worker
        count.
        """
        if not isinstance(plan, DigitalIfPlan):
            raise TypeError("run() needs a DigitalIfPlan")
        design_axis, records = SweepAxis.design_axis(designs,
                                                     self._inline.design)
        _, members = SweepAxis.mode_axis(modes)

        shard_count = min(self.workers, len(records))
        if shard_count <= 1:
            return self._inline.run(plan, modes=members,
                                    designs=dict(zip(design_axis.values,
                                                     records)))

        labels = design_axis.values
        cache_dir = str(self.cache.directory) if self.cache is not None \
            else None
        tasks = []
        for bounds in np.array_split(np.arange(len(records)), shard_count):
            start, stop = int(bounds[0]), int(bounds[-1]) + 1
            tasks.append(_DigitalShardTask(
                plan=plan,
                labels=tuple(labels[start:stop]),
                records=tuple(records[start:stop]),
                modes=tuple(members),
                cache_dir=cache_dir,
            ))
        shards: list[DigitalResult] = []
        designs_done = 0
        # Pools come from the shared sweep-layer registry when reuse is on
        # (the serving layer's configuration), else one private pool as
        # before; completed shards stream as job progress either way.
        with executor_for(shard_count) as pool:
            for task, shard in zip(tasks,
                                   pool.map(_run_digital_shard, tasks)):
                shards.append(shard)
                designs_done += len(task.labels)
                report_progress(stage="digital", shards_done=len(shards),
                                shards_total=len(tasks),
                                designs_done=designs_done,
                                designs_total=len(records))
        return DigitalResult.concat(shards, axis=DESIGN_AXIS)


def make_digital_runner(design: MixerDesign | None = None,
                        workers: int | None = None, cache=None
                        ) -> DigitalIfRunner | ParallelDigitalRunner:
    """The runner a digital entry point should use for its options.

    Mirrors :func:`repro.waveform.parallel.make_waveform_runner`:
    ``workers=None`` or ``1`` keeps the plain single-process
    :class:`DigitalIfRunner`; anything higher returns a
    :class:`ParallelDigitalRunner`.  ``cache`` is honoured by both.
    """
    if workers is None or workers == 1:
        return DigitalIfRunner(design, cache=cache)
    return ParallelDigitalRunner(design, workers=workers, cache=cache)
