"""Quantized digital-IF backend for the reconfigurable-mixer testbench.

The paper's mixer feeds a sampled receiver: its IF output gets digitized
and down-converted to baseband in fixed point.  This package models that
digital back end — ADC, NCO mixer, CIC decimator — as exact integer array
maths riding the same sweep architecture as the analog benches:

* :mod:`repro.digital.blocks` — the fixed-point primitives (mid-rise
  quantizer, phase-accumulator NCO with quantized LO lookup, guard-bit
  complex mixer, exact modulo-arithmetic CIC) plus their per-sample
  reference twins and float companions;
* :mod:`repro.digital.plan` — :class:`DigitalIfPlan`, the frozen,
  content-hashed description of one digital bench (the embedded analog
  stimulus plus every bit width and the CIC shape) with the
  :func:`digital_if_plan` constructor;
* :mod:`repro.digital.engine` — :func:`evaluate_digital` (one vectorized
  pass evaluating **every ADC bit width at once**) and
  :class:`DigitalIfRunner`, which lifts it onto labelled design x mode x
  bits grids over the waveform engine's time-domain tap;
  :func:`digital_pass_count` instruments the passes;
* :mod:`repro.digital.result` — :class:`DigitalResult`, a
  :class:`~repro.sweep.result.SweepResult` subclass over design x mode x
  :data:`~repro.digital.result.BITS_AXIS`;
* :mod:`repro.digital.cache` — :class:`DigitalIfCache`, the
  content-addressed on-disk store keyed on design fingerprint + mode +
  digital plan hash: warm re-runs perform zero quantization passes;
* :mod:`repro.digital.parallel` — :class:`ParallelDigitalRunner` and
  :func:`make_digital_runner`, sharding the design axis across processes
  with bit-identical stitched results.

The ``digital_if`` and ``bits_floor`` experiment drivers
(:mod:`repro.experiments`) and the ``digital_snr_db`` yield-optimizer
target (:mod:`repro.optimize`) are thin layers over this package.
"""

from repro.digital.blocks import (
    cic_decimate,
    cic_decimate_float,
    cic_decimate_reference,
    cic_growth_bits,
    float_lo,
    mix_complex,
    nco_lo_codes,
    nco_phases,
    nco_phases_reference,
    phase_increment,
    quantize_midrise,
    quantize_midrise_reference,
    round_shift,
    wrap_to_width,
)
from repro.digital.cache import (
    DIGITAL_CACHE_VERSION,
    DigitalIfCache,
    default_digital_cache_dir,
    resolve_digital_cache,
)
from repro.digital.engine import (
    DigitalIfRunner,
    digital_pass_count,
    evaluate_digital,
)
from repro.digital.parallel import ParallelDigitalRunner, make_digital_runner
from repro.digital.plan import (
    DEFAULT_ADC_FULL_SCALE,
    DIGITAL_MEASURES,
    DIGITAL_PLAN_VERSION,
    DigitalIfPlan,
    digital_if_plan,
)
from repro.digital.result import BITS_AXIS, DigitalResult

__all__ = [
    "BITS_AXIS",
    "DEFAULT_ADC_FULL_SCALE",
    "DIGITAL_CACHE_VERSION",
    "DIGITAL_MEASURES",
    "DIGITAL_PLAN_VERSION",
    "DigitalIfCache",
    "DigitalIfPlan",
    "DigitalIfRunner",
    "DigitalResult",
    "ParallelDigitalRunner",
    "cic_decimate",
    "cic_decimate_float",
    "cic_decimate_reference",
    "cic_growth_bits",
    "default_digital_cache_dir",
    "digital_if_plan",
    "digital_pass_count",
    "evaluate_digital",
    "float_lo",
    "make_digital_runner",
    "mix_complex",
    "nco_lo_codes",
    "nco_phases",
    "nco_phases_reference",
    "phase_increment",
    "quantize_midrise",
    "quantize_midrise_reference",
    "resolve_digital_cache",
    "round_shift",
    "wrap_to_width",
]
