"""The quantized digital-IF engine: ADC -> NCO mix -> CIC, batched over bits.

:func:`evaluate_digital` runs one :class:`~repro.digital.plan.DigitalIfPlan`
against one tapped IF sample block (from
:meth:`~repro.waveform.engine.WaveformRunner.time_domain`) as pure NumPy
array maths — no per-sample Python loop anywhere:

* the analog record is subsampled to the ADC rate and tiled ``records + 1``
  times (the first copy is CIC warm-up, discarded after decimation, so the
  analysed window is pure decimator steady state);
* the mid-rise quantizer broadcasts a ``(bits, 1)`` width column against
  the sample row, so **every ADC resolution in the sweep quantizes in one
  vectorized pass** — the whole bit-width axis costs one evaluation, which
  is the efficiency argument for putting quantization on the sweep
  architecture at all;
* one NCO phase/LO-table computation and one CIC pass (exact modulo-2**64
  integer arithmetic, per-bits register widths broadcast) serve every
  resolution simultaneously;
* the float reference chain — the same tiled volts through an ideal
  full-precision LO and a float CIC — runs alongside, yielding the
  ``float_error_peak`` convergence measure directly.

:class:`DigitalIfRunner` lifts this onto labelled **design x mode x ADC
bits** grids with the same memoization ladder as the other engines: analog
sample blocks memoized per cell inside the shared
:class:`~repro.waveform.engine.WaveformRunner`, measures per (design, mode,
digital plan) on disk (:mod:`repro.digital.cache`), and design-axis
sharding across processes (:mod:`repro.digital.parallel`).

Every quantization pass bumps a module-level counter
(:func:`digital_pass_count`), the instrument behind the warm-cache "zero
re-quantization passes" gate in ``benchmarks/test_bench_digital.py`` — the
digital twin of ``waveform_fft_count()``.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import MixerDesign
from repro.digital.blocks import (
    cic_decimate,
    cic_decimate_float,
    float_lo,
    mix_complex,
    nco_lo_codes,
    nco_phases,
    quantize_midrise,
    round_shift,
    wrap_to_width,
)
from repro.digital.cache import resolve_digital_cache
from repro.digital.plan import DigitalIfPlan
from repro.digital.result import BITS_AXIS, DigitalResult
from repro.sweep.grid import SweepAxis
from repro.units import dbm_from_vrms
from repro.waveform.engine import WaveformRunner

#: Process-wide count of batched quantization passes (see digital_pass_count).
_DIGITAL_EVALS = 0


def digital_pass_count() -> int:
    """How many batched quantization passes this process has performed.

    One unit covers a whole ADC bit-width sweep for one (design, mode,
    plan) cell — quantizer, NCO mix, CIC and the float reference.  A warm
    digital cache must leave this counter untouched.
    """
    return _DIGITAL_EVALS


def _with_log10(values: np.ndarray) -> np.ndarray:
    """``log10`` with empty powers reading ``-inf`` instead of warning."""
    with np.errstate(divide="ignore"):
        return np.log10(values)


def evaluate_digital(plan: DigitalIfPlan,
                     if_block: np.ndarray) -> dict[str, np.ndarray]:
    """Run one digital plan over a tapped IF block: the batched core.

    ``if_block`` is the analog-rate ``(1, num_samples)`` (or flat
    ``(num_samples,)``) differential IF voltage record from the waveform
    tap.  Returns one float array per measure in
    :data:`~repro.digital.plan.DIGITAL_MEASURES`, each with one entry per
    ADC bit width — all widths evaluated in a single vectorized pass.
    """
    global _DIGITAL_EVALS
    volts = np.asarray(if_block, dtype=float)
    if volts.ndim == 2:
        if volts.shape[0] != 1:
            raise ValueError("digital plans carry one input power; got a "
                             f"{volts.shape[0]}-row block")
        volts = volts[0]
    if volts.shape != (plan.stimulus.num_samples,):
        raise ValueError(
            f"IF block has {volts.shape[-1]} samples; the plan's analog "
            f"record holds {plan.stimulus.num_samples}")

    # ADC: subsample to the converter rate, tile one warm-up record plus
    # the steady-state window, quantize every bit width in one broadcast.
    adc_volts = np.tile(volts[::plan.adc_stride], plan.records + 1)
    bits_col = np.asarray(plan.adc_bits, dtype=np.int64)[:, None]
    codes = quantize_midrise(adc_volts[None, :], bits_col,
                             plan.adc_full_scale)

    # NCO + mixer: one phase sequence and LO table serve every width.
    total = adc_volts.shape[-1]
    phases = nco_phases(plan.phase_increment(), total, plan.phase_bits)
    lo_i, lo_q = nco_lo_codes(phases, plan.phase_bits, plan.table_bits,
                              plan.lo_bits)
    i_mix, q_mix, overflow = mix_complex(codes, lo_i[None, :], lo_q[None, :],
                                         bits_col, plan.lo_bits,
                                         plan.guard_bits)

    # CIC decimation at per-width register widths, then the output shift
    # into the common output register; the first record's worth of output
    # samples is decimator warm-up and dropped.
    width_col = bits_col + plan.guard_bits + plan.growth_bits
    decimation, stages = plan.cic_decimation, plan.cic_stages
    i_dec = cic_decimate(i_mix, decimation, stages, width_col)
    q_dec = cic_decimate(q_mix, decimation, stages, width_col)
    out_shift = np.maximum(width_col - plan.output_bits, 0)
    i_out = wrap_to_width(round_shift(i_dec, out_shift), plan.output_bits)
    q_out = wrap_to_width(round_shift(q_dec, out_shift), plan.output_bits)
    warmup = plan.warmup_samples
    i_out, q_out = i_out[:, warmup:], q_out[:, warmup:]

    # Volts-referred output: one LSB at the ADC is adc_full_scale*2/2**bits,
    # the mixer shifted out mix_shift LSBs of an LO scaled to 2**(lo-1)-1,
    # the CIC has DC gain decimation**stages, and out_shift dropped more.
    lsb = 2.0 * plan.adc_full_scale / np.exp2(bits_col.astype(float))
    scale = (lsb * np.exp2(float(plan.mix_shift))
             * np.exp2(out_shift.astype(float))
             / (float((1 << (plan.lo_bits - 1)) - 1)
                * float(decimation) ** stages))
    digital_volts = (i_out + 1j * q_out) * scale

    # Float reference: the identical tiled volts through a full-precision
    # unit-amplitude LO and a float CIC (normalised by the DC gain).
    reference = cic_decimate_float(adc_volts * float_lo(phases,
                                                       plan.phase_bits),
                                   decimation, stages)
    reference = reference[warmup:] / float(decimation) ** stages
    float_error = np.max(np.abs(digital_volts - reference[None, :]), axis=-1)

    # Spectrum measures over the steady-state window.  A real IF tone of
    # amplitude A lands at the signal bin with complex-baseband magnitude
    # A/2, so 2*|X_b| is the IF-referred peak amplitude.
    n_out = plan.output_samples
    spectrum = np.fft.fft(digital_volts, axis=-1) / n_out
    power = np.abs(spectrum) ** 2
    signal_power = power[:, plan.signal_bin]
    noise_power = np.sum(power, axis=-1) - signal_power
    full_scale = plan.adc_full_scale
    signal_dbfs = 10.0 * _with_log10(4.0 * signal_power / full_scale ** 2)
    noise_dbfs = 10.0 * _with_log10(4.0 * noise_power / full_scale ** 2)
    with np.errstate(divide="ignore", invalid="ignore"):
        noise_dbm = np.where(
            noise_power > 0.0,
            dbm_from_vrms(np.sqrt(2.0 * noise_power)), -np.inf)
    _DIGITAL_EVALS += 1
    with np.errstate(invalid="ignore"):
        # Both levels at -inf (a fully truncated output) yields nan SNR.
        snr_db = signal_dbfs - noise_dbfs
    return {
        "snr_db": snr_db,
        "signal_dbfs": signal_dbfs,
        "noise_dbfs": noise_dbfs,
        "noise_dbm": noise_dbm,
        "float_error_peak": float_error,
        "overflow_fraction": np.asarray(overflow, dtype=float),
    }


class DigitalIfRunner:
    """Evaluates digital-IF benches over labelled design x mode x bits grids.

    The digital twin of :class:`~repro.waveform.engine.WaveformRunner`:

    Parameters
    ----------
    design:
        Baseline design record, used when :meth:`run` is not given an
        explicit design axis.
    cache:
        Optional on-disk cache of evaluated measures — ``None``/``False``
        (default, off), ``True`` (default directory), a directory path, a
        :class:`~repro.digital.cache.DigitalIfCache`, or a
        :class:`~repro.sweep.cache.SpecCache` /
        :class:`~repro.waveform.cache.WaveformCache` (their directory is
        shared).  With a warm cache a run performs zero quantization
        passes.
    waveform:
        Optional shared :class:`~repro.waveform.engine.WaveformRunner`
        supplying the analog sample blocks; passing the runner an
        experiment already holds re-uses its memoized mixers and taps.
    """

    def __init__(self, design: MixerDesign | None = None, cache=None,
                 waveform: WaveformRunner | None = None) -> None:
        self.design = design if design is not None else MixerDesign()
        self.cache = resolve_digital_cache(cache)
        self._waveform = waveform if waveform is not None \
            else WaveformRunner(design=self.design)

    @property
    def waveform(self) -> WaveformRunner:
        """The analog engine supplying (and memoizing) the IF taps."""
        return self._waveform

    def run(self, plan: DigitalIfPlan,
            modes=None, designs=None) -> DigitalResult:
        """Evaluate ``plan`` for every (design, mode) cell of the grid.

        ``modes`` / ``designs`` follow :meth:`WaveformRunner.run`: omitted
        modes sweep both, omitted designs use the baseline as the one-point
        ``"nominal"`` axis.  Each cell is one batched quantization pass (or
        one cache hit) over a memoized analog tap; cells are independent,
        so per-design results are bit-identical whether a design runs alone
        or in a population — the property the batch API fan-out relies on.
        """
        if not isinstance(plan, DigitalIfPlan):
            raise TypeError("run() needs a DigitalIfPlan")
        design_axis, records = SweepAxis.design_axis(designs, self.design)
        mode_axis, members = SweepAxis.mode_axis(modes)
        bits_axis = SweepAxis.numeric(BITS_AXIS, plan.bits())

        shape = (len(design_axis), len(mode_axis), len(bits_axis))
        data = {measure: np.empty(shape, dtype=float)
                for measure in plan.measures}
        # Pass 1 — settle the cache: hits fill their cells directly, misses
        # queue so pending designs can be batch-sized before any analog
        # evaluation runs.
        pending: list[tuple[int, int, MixerDesign]] = []
        for design_index, record in enumerate(records):
            for mode_index, mode in enumerate(members):
                if self.cache is not None:
                    cached = self.cache.load(record, mode, plan)
                    if cached is not None:
                        for measure in plan.measures:
                            data[measure][design_index, mode_index] = \
                                cached[measure]
                        continue
                pending.append((design_index, mode_index, record))
        self._waveform.presize_designs(
            [record for _, _, record in pending],
            [design_axis.values[i] for i, _, _ in pending])
        # Pass 2 — evaluate the cells the cache could not cover: tap the
        # analog engine (memoized per cell), then one quantization pass.
        for design_index, mode_index, record in pending:
            mode = members[mode_index]
            if_block = self._waveform.time_domain(plan.stimulus, mode,
                                                  design=record)
            measures = evaluate_digital(plan, if_block)
            if self.cache is not None:
                self.cache.store(record, mode, plan, measures)
            for measure in plan.measures:
                data[measure][design_index, mode_index] = measures[measure]
        return DigitalResult((design_axis, mode_axis, bits_axis), data)
