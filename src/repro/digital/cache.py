"""Content-addressed on-disk cache of digital-IF measures.

The expensive part of a digital cell is the quantization pass — tiling the
tapped time-domain block, quantizing every ADC width, running the
fixed-point mix and CIC, and building the float reference alongside.  This
module persists the resulting measure arrays per **(design, mode, digital
plan)** cell, keyed on a content hash of

* :meth:`MixerDesign.fingerprint` (stable SHA-256 of the design record),
* the :class:`~repro.core.config.MixerMode`,
* :meth:`DigitalIfPlan.content_hash` (which itself covers the embedded
  analog stimulus plan and every digital parameter), and
* :data:`DIGITAL_CACHE_VERSION`,

so a warm re-run of a digital-IF sweep performs **zero quantization
passes** (observable through :func:`repro.digital.engine.digital_pass_count`,
mirroring the waveform cache's zero-FFT bar).  The storage discipline is
shared with :class:`~repro.sweep.cache.SpecCache` and
:class:`~repro.waveform.cache.WaveformCache`: atomic writes, corrupt or
mismatched entries degrade to a recompute, and the ``REPRO_SWEEP_CACHE=off``
kill-switch disables this cache too.  All three caches can share one
directory — their key payloads differ, so entries never collide.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path

import numpy as np

from repro.core.config import MixerDesign, MixerMode
from repro.digital.plan import DigitalIfPlan
from repro.sweep.cache import (
    DIRECTORY_ENV,
    SpecCache,
    atomic_write_json,
    cache_disabled_by_env,
)
from repro.waveform.cache import WaveformCache

#: Schema/semantics version of the cached payloads; bump on any change to
#: what the cached measures mean — old entries then miss and are recomputed.
DIGITAL_CACHE_VERSION = 1


def default_digital_cache_dir() -> Path:
    """The directory used when caching is requested without an explicit path.

    Honours the same ``REPRO_SWEEP_CACHE_DIR`` override as the spec and
    waveform caches (the three coexist in one directory without
    collisions); the fallback is a sibling of the other cache directories.
    """
    override = os.environ.get(DIRECTORY_ENV, "").strip()
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro-mixer" / "digital-measures"


class DigitalIfCache:
    """Directory-backed store of per-(design, mode, plan) digital measures.

    The per-instance ``hits`` / ``misses`` / ``stores`` / ``corrupt``
    counters cover this process only — the directory itself may be shared
    with other processes (parallel digital shards write atomically).
    """

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory)
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.corrupt = 0

    # -- keys -----------------------------------------------------------------

    def _key(self, fingerprint: str, mode: MixerMode, plan_hash: str) -> str:
        payload = json.dumps(
            {"digital_cache_version": DIGITAL_CACHE_VERSION,
             "design": fingerprint,
             "mode": mode.value,
             "plan": plan_hash},
            sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def entry_key(self, design: MixerDesign, mode: MixerMode,
                  plan: DigitalIfPlan) -> str:
        """Content hash naming the entry for one (design, mode, plan) cell."""
        return self._key(design.fingerprint(), mode, plan.content_hash())

    def entry_path(self, design: MixerDesign, mode: MixerMode,
                   plan: DigitalIfPlan) -> Path:
        """Filesystem path of the entry for one (design, mode, plan) cell."""
        return self.directory / f"{self.entry_key(design, mode, plan)}.json"

    # -- load / store ---------------------------------------------------------

    def load(self, design: MixerDesign, mode: MixerMode,
             plan: DigitalIfPlan) -> dict[str, np.ndarray] | None:
        """The cached measures for a cell, or ``None`` on miss/corruption.

        Every failure mode — missing/unreadable file, malformed JSON, wrong
        version/fingerprint/plan, missing measures, wrong lengths — degrades
        to a miss so the caller recomputes (and the subsequent :meth:`store`
        replaces the bad entry).
        """
        path = self.entry_path(design, mode, plan)
        try:
            text = path.read_text(encoding="utf-8")
        except FileNotFoundError:
            self.misses += 1
            return None
        except OSError:
            self.corrupt += 1
            self.misses += 1
            return None
        try:
            payload = json.loads(text)
            if payload["digital_cache_version"] != DIGITAL_CACHE_VERSION:
                raise ValueError("cache version mismatch")
            if payload["design_fingerprint"] != design.fingerprint():
                raise ValueError("design fingerprint mismatch")
            if payload["plan"] != plan.content_hash():
                raise ValueError("plan hash mismatch")
            raw = payload["measures"]
            measures: dict[str, np.ndarray] = {}
            for name in plan.measures:
                values = np.asarray(raw[name], dtype=float)
                if values.shape != (len(plan.adc_bits),):
                    raise ValueError(f"measure {name!r} has the wrong length")
                measures[name] = values
        except (KeyError, TypeError, ValueError):
            self.corrupt += 1
            self.misses += 1
            return None
        self.hits += 1
        return measures

    def store(self, design: MixerDesign, mode: MixerMode, plan: DigitalIfPlan,
              measures: dict[str, np.ndarray]) -> None:
        """Persist one evaluated cell, atomically.

        Concurrent shards never observe a half-written entry — at worst they
        race to install identical content.
        """
        missing = sorted(set(plan.measures) - set(measures))
        if missing:
            raise ValueError(f"measures are missing {missing} for a "
                             f"digital-IF plan")
        atomic_write_json(self.entry_path(design, mode, plan), {
            "digital_cache_version": DIGITAL_CACHE_VERSION,
            "design_fingerprint": design.fingerprint(),
            "mode": mode.value,
            "plan": plan.content_hash(),
            "measures": {name: np.asarray(measures[name],
                                          dtype=float).tolist()
                         for name in plan.measures},
        })
        self.stores += 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"DigitalIfCache({str(self.directory)!r}, hits={self.hits}, "
                f"misses={self.misses}, stores={self.stores})")


def resolve_digital_cache(cache) -> DigitalIfCache | None:
    """Normalise a user-facing ``cache=`` option into a cache (or ``None``).

    Accepted values mirror :func:`repro.waveform.cache.resolve_waveform_cache`:
    ``None``/``False`` (off — the default), ``True`` (the default
    directory), a string/``Path``, a :class:`DigitalIfCache`, or a
    :class:`~repro.sweep.cache.SpecCache` /
    :class:`~repro.waveform.cache.WaveformCache` — the experiment entry
    points take **one** ``cache=`` option for every engine, so another
    cache's directory is adopted for the digital measures too.
    ``REPRO_SWEEP_CACHE=off`` wins over everything.
    """
    if cache is None or cache is False:
        return None
    if cache_disabled_by_env():
        return None
    if isinstance(cache, DigitalIfCache):
        return cache
    if isinstance(cache, (SpecCache, WaveformCache)):
        return DigitalIfCache(cache.directory)
    if cache is True:
        return DigitalIfCache(default_digital_cache_dir())
    if isinstance(cache, (str, Path)):
        return DigitalIfCache(cache)
    raise TypeError(
        "cache must be None/False, True, a directory path, a DigitalIfCache, "
        f"a WaveformCache or a SpecCache; got {type(cache).__name__}")
