"""Fixed-point building blocks of the digital-IF down-conversion chain.

Every block is a faithful integer model of the corresponding HDL datapath
stage, shaped after the two reference designs the roadmap names: the
usdr-fpga ``nco_mixer.v`` (a 32-bit NCO phase accumulator whose top bits
address a quantized LO lookup) and the BerkeleyLab Bedrock ``mixer.v``
(ADC x LO product kept to the input width plus a few *guard bits*, the
dropped LSBs rounded by adding their MSB, with the LO scaled to
``2^(bits-1) - 1`` so it can never sit at negative full scale).

All arithmetic runs in ``int64``/``uint64`` NumPy arrays with explicit
two's-complement wrapping at the modelled register widths, so

* every block is **exact** — bit-identical to the per-sample reference
  implementations (``*_reference``) that mirror an RTL simulation loop —
  as long as the modelled registers stay within 62 bits (validated by
  :class:`~repro.digital.plan.DigitalIfPlan`), and
* the whole chain vectorizes over leading axes: a ``(bit_widths,
  samples)`` block quantizes, mixes and decimates as one NumPy pass per
  stage, which is what makes a bit-width sweep as cheap as a single run.

The float companions (:func:`float_lo`, :func:`cic_decimate_float`) are the
*unquantized* reference chain the convergence tests (and the
``float_error_peak`` measure) compare against: at wide widths the integer
chain matches them to better than 1e-9 V.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = [
    "cic_decimate",
    "cic_decimate_float",
    "cic_decimate_reference",
    "cic_growth_bits",
    "float_lo",
    "mix_complex",
    "nco_lo_codes",
    "nco_phases",
    "nco_phases_reference",
    "phase_increment",
    "quantize_midrise",
    "quantize_midrise_reference",
    "round_shift",
    "wrap_to_width",
]


# -- ADC ----------------------------------------------------------------------

def quantize_midrise(volts: np.ndarray, bits: np.ndarray | int,
                     full_scale: float) -> np.ndarray:
    """Mid-rise quantizer with clipping: volts in, integer ADC codes out.

    Decision thresholds sit at integer multiples of the LSB ``2 *
    full_scale / 2**bits`` (so zero volts falls between the two innermost
    codes — no code represents exactly 0 V, the mid-rise signature) and
    codes clip to the two's-complement range ``[-2**(bits-1), 2**(bits-1)
    - 1]``.  ``bits`` broadcasts: a ``(B, 1)`` column against a
    ``(samples,)`` row quantizes every bit width in one pass.
    """
    bits = np.asarray(bits, dtype=np.int64)
    volts = np.asarray(volts, dtype=float)
    lsb = 2.0 * float(full_scale) / np.exp2(bits)
    codes = np.floor(volts / lsb)
    top = np.exp2(bits - 1)
    codes = np.clip(codes, -top, top - 1.0)
    return codes.astype(np.int64)


def quantize_midrise_reference(volts, bits: int, full_scale: float) -> list:
    """Per-sample mid-rise quantizer (the RTL-loop twin, for tests)."""
    lsb = 2.0 * full_scale / 2 ** bits
    top = 2 ** (bits - 1)
    codes = []
    for value in volts:
        code = math.floor(value / lsb)
        codes.append(max(-top, min(top - 1, code)))
    return codes


# -- NCO ----------------------------------------------------------------------

def phase_increment(frequency_hz: float, sample_rate: float,
                    phase_bits: int, tolerance: float = 1e-6) -> int:
    """The NCO phase-accumulator increment realizing ``frequency_hz``.

    ``round(frequency / sample_rate * 2**phase_bits)``, required to be
    exact (within ``tolerance`` accumulator counts): a non-representable
    frequency would silently detune the NCO off the FFT bin grid the SNR
    measures read, so it is refused loudly instead.
    """
    if sample_rate <= 0:
        raise ValueError("sample rate must be positive")
    ratio = frequency_hz / sample_rate * 2.0 ** phase_bits
    increment = round(ratio)
    if abs(ratio - increment) > tolerance:
        raise ValueError(
            f"NCO frequency {frequency_hz:.6g} Hz is not representable in "
            f"{phase_bits} phase bits at {sample_rate:.6g} S/s "
            f"(increment {ratio!r} is not an integer)")
    return int(increment) % (1 << phase_bits)


def nco_phases(increment: int, count: int, phase_bits: int) -> np.ndarray:
    """The accumulator sequence ``(n * increment) mod 2**phase_bits``.

    Closed form of the per-sample accumulation ``phase += increment`` (the
    usdr-fpga ``nco_value <= nco_value + cfg_dsp_cordic_phase`` register),
    as ``uint64`` — exact because the modulo keeps every term below
    ``2**phase_bits <= 2**48``.
    """
    if not 0 <= increment < (1 << phase_bits):
        raise ValueError("increment must lie in [0, 2**phase_bits)")
    indices = np.arange(count, dtype=np.uint64)
    mask = np.uint64((1 << phase_bits) - 1)
    return (indices * np.uint64(increment)) & mask


def nco_phases_reference(increment: int, count: int, phase_bits: int) -> list:
    """Iterative accumulator (the register-transfer twin, for tests)."""
    modulus = 1 << phase_bits
    phases, phase = [], 0
    for _ in range(count):
        phases.append(phase)
        phase = (phase + increment) % modulus
    return phases


def nco_lo_codes(phases: np.ndarray, phase_bits: int, table_bits: int,
                 lo_bits: int) -> tuple[np.ndarray, np.ndarray]:
    """Quantized complex LO samples for a phase sequence.

    The accumulator's top ``table_bits`` address an ideal cos/sin lookup
    (the usdr-fpga design truncates ``nco_value[31:18]`` the same way);
    entries are ``round(cos * (2**(lo_bits-1) - 1))`` — scaled to one LSB
    short of full scale so the LO can never sit at exactly ``-2**(lo_bits
    - 1)``, the Bedrock trick that buys a guard bit in the product.
    Returns ``(i, q)`` codes for *down*-conversion (``q`` carries
    ``-sin``), as ``int64``.
    """
    if not 1 <= table_bits <= phase_bits:
        raise ValueError("table_bits must lie in [1, phase_bits]")
    top = (np.asarray(phases, dtype=np.uint64)
           >> np.uint64(phase_bits - table_bits))
    angle = top.astype(float) * (2.0 * math.pi / float(1 << table_bits))
    scale = float((1 << (lo_bits - 1)) - 1)
    i_codes = np.round(np.cos(angle) * scale).astype(np.int64)
    q_codes = np.round(-np.sin(angle) * scale).astype(np.int64)
    return i_codes, q_codes


def float_lo(phases: np.ndarray, phase_bits: int) -> np.ndarray:
    """The unquantized complex LO ``exp(-j * 2 pi * phase / 2**phase_bits)``.

    Derived from the same accumulator sequence as :func:`nco_lo_codes` (so
    integer and float chains realize the *same* frequency), but with full
    phase resolution and unit amplitude — the reference the quantized LO
    converges to as ``table_bits`` / ``lo_bits`` grow.
    """
    angle = (np.asarray(phases, dtype=np.uint64).astype(float)
             * (2.0 * math.pi / 2.0 ** phase_bits))
    return np.cos(angle) - 1j * np.sin(angle)


# -- bit manipulation ---------------------------------------------------------

def round_shift(values: np.ndarray, shift: np.ndarray | int) -> np.ndarray:
    """Arithmetic right shift with round-half-up: drop LSBs like the RTL.

    Adds the MSB of the dropped part before shifting (the Bedrock
    ``mix_out_w[dwlo-davr-1]`` rounding bit), so truncation error is
    centred instead of biased.  ``shift`` may be a scalar or broadcastable
    array of non-negative counts; 0 is the identity.
    """
    values = np.asarray(values, dtype=np.int64)
    shift = np.asarray(shift, dtype=np.int64)
    if np.any(shift < 0):
        raise ValueError("shift counts must be non-negative")
    half = np.where(shift > 0,
                    np.left_shift(np.int64(1), np.maximum(shift - 1, 0)),
                    np.int64(0))
    return (values + half) >> shift


def wrap_to_width(values: np.ndarray, width: np.ndarray | int) -> np.ndarray:
    """Two's-complement wrap of ``values`` into ``width``-bit registers.

    Works on ``int64`` or ``uint64`` input (the CIC runs modulo 2**64 and
    wraps once at the end); ``width`` may broadcast, each entry in
    [2, 62].  A value outside the register range re-enters from the other
    side, exactly as hardware overflow does.
    """
    width = np.asarray(width, dtype=np.uint64)
    if np.any((width < 2) | (width > 62)):
        raise ValueError("register widths must lie in [2, 62] bits")
    unsigned = np.asarray(values).astype(np.uint64)
    half = np.uint64(1) << (width - np.uint64(1))
    mask = (np.uint64(1) << width) - np.uint64(1)
    return (((unsigned + half) & mask) - half).astype(np.int64)


# -- complex mixing -----------------------------------------------------------

def mix_complex(codes: np.ndarray, lo_i: np.ndarray, lo_q: np.ndarray,
                adc_bits: np.ndarray | int, lo_bits: int, guard_bits: int
                ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """ADC codes times the quantized LO, kept to ``adc_bits + guard_bits``.

    The Bedrock product discipline: of the ``adc_bits + lo_bits`` product
    bits, keep the top ``adc_bits + guard_bits`` (shift out ``lo_bits - 1
    - guard_bits`` LSBs with rounding) and wrap into that register.
    Returns ``(i, q, overflow_fraction)`` where the fraction (per leading
    row) counts samples whose true product did not fit the register —
    the guard-bit overflow the ``bits_floor`` experiment watches for.
    """
    adc_bits = np.asarray(adc_bits, dtype=np.int64)
    shift = int(lo_bits) - 1 - int(guard_bits)
    if shift < 0:
        raise ValueError("guard_bits must not exceed lo_bits - 1")
    width = adc_bits + int(guard_bits)
    full_i = round_shift(codes * lo_i, shift)
    full_q = round_shift(codes * lo_q, shift)
    i_mix = wrap_to_width(full_i, width)
    q_mix = wrap_to_width(full_q, width)
    overflowed = (i_mix != full_i) | (q_mix != full_q)
    return i_mix, q_mix, overflowed.mean(axis=-1)


# -- CIC decimation -----------------------------------------------------------

def cic_growth_bits(stages: int, decimation: int) -> int:
    """Hogenauer register growth: ``ceil(stages * log2(decimation))`` bits."""
    if stages < 1 or decimation < 1:
        raise ValueError("CIC stages and decimation must be at least 1")
    return int(math.ceil(stages * math.log2(decimation))) if decimation > 1 \
        else 0


def cic_decimate(values: np.ndarray, decimation: int, stages: int,
                 register_width: np.ndarray | int) -> np.ndarray:
    """N-stage CIC decimator on integer samples, exact modulo arithmetic.

    ``stages`` integrators at the input rate, decimation by keeping every
    ``decimation``-th sample, ``stages`` combs (differential delay 1) at
    the output rate.  Everything runs modulo 2**64 in ``uint64`` — the
    Hogenauer property makes the comb outputs exact despite integrator
    wrap-around as long as the true output fits ``register_width`` (the
    input width plus :func:`cic_growth_bits`) — then wraps once into the
    modelled register.  The DC gain is ``decimation**stages``; no scaling
    is applied here.
    """
    acc = np.asarray(values).astype(np.uint64)
    for _ in range(stages):
        acc = np.cumsum(acc, axis=-1)
    dec = acc[..., decimation - 1::decimation]
    for _ in range(stages):
        previous = np.concatenate(
            [np.zeros_like(dec[..., :1]), dec[..., :-1]], axis=-1)
        dec = dec - previous
    return wrap_to_width(dec, register_width)


def cic_decimate_reference(values, decimation: int, stages: int,
                           register_width: int) -> list:
    """Per-sample CIC in exact Python integers (the RTL twin, for tests).

    Unbounded integer arithmetic followed by one final wrap is congruent
    modulo ``2**register_width`` with the vectorized modulo-2**64 path, so
    the two agree bit for bit — including when the register genuinely
    overflows.
    """
    integrators = [0] * stages
    combs = [0] * stages
    out = []
    for index, value in enumerate(values):
        total = int(value)
        for stage in range(stages):
            integrators[stage] += total
            total = integrators[stage]
        if index % decimation == decimation - 1:
            for stage in range(stages):
                total, combs[stage] = total - combs[stage], total
            out.append(total)
    half = 1 << (register_width - 1)
    modulus = 1 << register_width
    return [((value + half) % modulus) - half for value in out]


def cic_decimate_float(values: np.ndarray, decimation: int,
                       stages: int) -> np.ndarray:
    """The CIC's transfer applied in float (complex allowed), unscaled.

    Same integrator/decimate/comb structure as :func:`cic_decimate` in
    float64 — the unquantized reference the integer chain converges to
    (after dividing by the ``decimation**stages`` DC gain).
    """
    acc = np.asarray(values)
    for _ in range(stages):
        acc = np.cumsum(acc, axis=-1)
    dec = acc[..., decimation - 1::decimation]
    for _ in range(stages):
        previous = np.concatenate(
            [np.zeros_like(dec[..., :1]), dec[..., :-1]], axis=-1)
        dec = dec - previous
    return dec
