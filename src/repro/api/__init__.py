"""Unified spec-service API: typed requests, experiment registry, service.

One request shape — :class:`~repro.api.request.SpecRequest` — runs the
paper's experiments in-process (:class:`~repro.api.service.MixerService`),
over HTTP (:mod:`repro.serve`) or from the shell (:mod:`repro.cli`), with
responses bit-identical across all three surfaces and a request-level
response cache layered above the sweep engine's spec cache.  See
``docs/api.md`` for the request schema and the endpoint list.
"""

from repro.api.registry import (
    ExperimentRegistry,
    ExperimentSpec,
    GLOBAL_REGISTRY,
    default_registry,
    register_experiment,
)
from repro.api.request import (
    API_VERSION,
    ApiVersionError,
    RequestValidationError,
    SpecRequest,
    SpecResponse,
)
from repro.api.progress import progress_scope, report_progress
from repro.api.response_cache import ResponseCache
from repro.api.serialization import decode, encode, register_payload_type
from repro.api.service import MixerService

__all__ = [
    "API_VERSION",
    "ApiVersionError",
    "ExperimentRegistry",
    "ExperimentSpec",
    "GLOBAL_REGISTRY",
    "MixerService",
    "RequestValidationError",
    "ResponseCache",
    "SpecRequest",
    "SpecResponse",
    "decode",
    "default_registry",
    "encode",
    "progress_scope",
    "register_experiment",
    "register_payload_type",
    "report_progress",
]
