"""The service facade: one entry point for every registered experiment.

:class:`MixerService` is what "serve the paper" means in code: it validates
:class:`~repro.api.request.SpecRequest` objects against the experiment
registry, answers repeated requests from a two-tier response cache without
touching the engine (zero sizing bisections — the acceptance bar from the
sweep-cache work, lifted to whole requests), dispatches misses to the
``run_*`` drivers, and fans batch requests over the same design axis out
through the sweep engine's :class:`~repro.sweep.parallel.ParallelSweepRunner`
when the experiment supports it.

The in-process, HTTP (:mod:`repro.serve`) and CLI (:mod:`repro.cli`)
surfaces all run through this one class, so a response is bit-identical no
matter which door the request came through.
"""

from __future__ import annotations

import json
import time
from typing import Any, Iterable, Sequence

from repro.api.registry import (
    ExperimentRegistry,
    ExperimentSpec,
    default_registry,
)
from repro.api.request import (
    RequestValidationError,
    SOURCE_COMPUTED,
    SOURCE_DISK,
    SOURCE_MEMORY,
    SpecRequest,
    SpecResponse,
    build_result_response,
)
from repro.api.response_cache import DEFAULT_LRU_SIZE, ResponseCache


class MixerService:
    """Dispatches spec requests through the experiment registry.

    Parameters
    ----------
    registry:
        The experiment registry; defaults to the fully populated global one.
    response_cache:
        ``None`` (default) keeps a memory-only LRU; a directory string/path
        adds the disk tier; an existing :class:`ResponseCache` is used
        as-is; ``False`` disables response caching entirely.
    spec_cache:
        Default ``cache=`` option forwarded to runners that accept it (a
        request's own ``cache`` field wins).  This is the *engine* cache of
        solved intermediates, one tier below the response cache.
    workers:
        Default ``workers=`` for runners that accept it (a request's own
        ``workers`` field wins).
    lru_size:
        Capacity of the memory tier when the service builds its own cache.
    """

    def __init__(self, registry: ExperimentRegistry | None = None,
                 response_cache: ResponseCache | str | bool | None = None,
                 spec_cache: Any = None,
                 workers: int | None = None,
                 lru_size: int = DEFAULT_LRU_SIZE) -> None:
        self.registry = registry if registry is not None else default_registry()
        if response_cache is False:
            self.response_cache: ResponseCache | None = None
        elif response_cache is None or response_cache is True:
            self.response_cache = ResponseCache(lru_size=lru_size)
        elif isinstance(response_cache, ResponseCache):
            self.response_cache = response_cache
        else:
            self.response_cache = ResponseCache(response_cache,
                                                lru_size=lru_size)
        self.spec_cache = spec_cache
        self.workers = workers

    # -- registry surface -----------------------------------------------------

    def experiments(self) -> list[dict]:
        """JSON-ready metadata for every registered experiment."""
        return [spec.describe() for spec in self.registry]

    def report(self, response: SpecResponse) -> str:
        """The driver's text rendering of a response's result."""
        spec = self._spec_for(response.experiment)
        return spec.report(response.result)

    def _spec_for(self, experiment: str) -> ExperimentSpec:
        try:
            return self.registry.get(experiment)
        except KeyError as error:
            raise RequestValidationError(str(error)) from None

    # -- execution ------------------------------------------------------------

    def _run_options(self, request: SpecRequest,
                     spec: ExperimentSpec) -> dict[str, Any]:
        """The ``workers=`` / ``cache=`` keywords one runner call gets."""
        options: dict[str, Any] = {}
        if spec.accepts_workers:
            workers = request.workers if request.workers is not None \
                else self.workers
            if workers is not None:
                options["workers"] = workers
        if spec.accepts_cache:
            cache = request.cache if request.cache is not None \
                else self.spec_cache
            if cache is not None:
                options["cache"] = cache
        return options

    def _cached_response(self, key: str) -> SpecResponse | None:
        if self.response_cache is None:
            return None
        hit = self.response_cache.load(key)
        if hit is None:
            return None
        entry, tier = hit
        try:
            response = SpecResponse.from_dict(entry)
        except (KeyError, TypeError, ValueError):
            return None
        response.source = SOURCE_MEMORY if tier == "memory" else SOURCE_DISK
        response.elapsed_s = 0.0
        return response

    def submit(self, request: SpecRequest) -> SpecResponse:
        """Answer one request (from cache when possible, computed otherwise)."""
        spec = self._spec_for(request.experiment)
        resolved = request.validate(spec)
        key = request.request_key(spec, resolved_grid=resolved)
        cached = self._cached_response(key)
        if cached is not None:
            return cached
        started = time.perf_counter()
        result = spec.runner(request.design, **resolved,
                             **self._run_options(request, spec))
        elapsed = time.perf_counter() - started
        response = build_result_response(request, spec, result,
                                         source=SOURCE_COMPUTED,
                                         elapsed_s=elapsed, request_key=key)
        self._store(response)
        return response

    def submit_batch(self, requests: Sequence[SpecRequest] | Iterable[SpecRequest],
                     workers: int | None = None) -> list[SpecResponse]:
        """Answer many requests, fanning shared-grid groups over the engine.

        Requests naming the same experiment with the same resolved grid form
        one group; when the experiment registers a ``batch_runner``, the
        whole group's designs run as **one design axis** through the sweep
        engine — sharded across processes by
        :class:`~repro.sweep.parallel.ParallelSweepRunner` when ``workers``
        (or the per-request/service default) asks for it — instead of N
        sequential runs.  Per-design results are bit-identical to individual
        :meth:`submit` calls either way, so cached and computed members of a
        batch can mix freely.  Response order matches request order.
        """
        batch = list(requests)
        responses: list[SpecResponse | None] = [None] * len(batch)
        # (experiment, grid-json, workers, cache) -> [(index, request, key)];
        # the execution options are part of the group token so a member's
        # explicit workers=/cache= is honoured, never silently dropped in
        # favour of another member's.
        groups: dict[tuple, list[tuple[int, SpecRequest, str]]] = {}
        for index, request in enumerate(batch):
            spec = self._spec_for(request.experiment)
            resolved = request.validate(spec)
            key = request.request_key(spec, resolved_grid=resolved)
            cached = self._cached_response(key)
            if cached is not None:
                responses[index] = cached
                continue
            cache_token = request.cache \
                if isinstance(request.cache, (bool, str, type(None))) \
                else id(request.cache)
            token = (request.experiment, json.dumps(resolved, sort_keys=True),
                     request.workers, cache_token)
            groups.setdefault(token, []).append((index, request, key))

        for token, members in groups.items():
            spec = self.registry.get(token[0])
            distinct = {request.design.fingerprint()
                        for _, request, _ in members}
            if spec.batch_runner is None or len(distinct) < 2:
                for index, request, _ in members:
                    responses[index] = self.submit(request)
                continue
            for index, response in self._run_group(spec, members, workers):
                responses[index] = response
        # Every request must have produced a response at its own index: a
        # missing member silently shortening the list would misalign the
        # request/response pairing for every later member (the /v1/batch
        # contract is positional), so fail the whole batch loudly instead.
        missing = [index for index, response in enumerate(responses)
                   if response is None]
        if missing:
            raise RuntimeError(
                f"batch produced no response for request(s) at index(es) "
                f"{missing} of {len(batch)}; refusing to return a "
                f"misaligned response list")
        assert len(responses) == len(batch)
        return list(responses)

    def _run_group(self, spec: ExperimentSpec,
                   members: list[tuple[int, SpecRequest, str]],
                   workers: int | None) -> list[tuple[int, SpecResponse]]:
        """One batch_runner call for a same-(experiment, grid, options) group.

        Members share their execution options by construction (options are
        part of the group token), so the lead request speaks for the group;
        the batch-level ``workers`` argument, when given, overrides.
        """
        lead = members[0][1]
        resolved = lead.validate(spec)
        options = self._run_options(lead, spec)
        group_workers = workers if workers is not None \
            else options.get("workers")
        if group_workers is not None:
            options["workers"] = group_workers
        designs = {}
        for _, request, _ in members:
            designs.setdefault(request.design.fingerprint(), request.design)
        started = time.perf_counter()
        results = spec.batch_runner(designs, **resolved, **options)
        elapsed = time.perf_counter() - started
        out: list[tuple[int, SpecResponse]] = []
        for index, request, key in members:
            fingerprint = request.design.fingerprint()
            result = results.get(fingerprint) \
                if hasattr(results, "get") else results[fingerprint]
            if result is None:
                raise RuntimeError(
                    f"batch runner for {spec.name!r} returned no result for "
                    f"design {fingerprint[:12]} (request #{index})")
            response = build_result_response(request, spec, result,
                                             source=SOURCE_COMPUTED,
                                             elapsed_s=elapsed,
                                             request_key=key)
            self._store(response)
            out.append((index, response))
        return out

    def _store(self, response: SpecResponse) -> None:
        if self.response_cache is not None:
            self.response_cache.store(response.request_key, response.to_dict())
