"""The service facade: one entry point for every registered experiment.

:class:`MixerService` is what "serve the paper" means in code: it validates
:class:`~repro.api.request.SpecRequest` objects against the experiment
registry, answers repeated requests from a two-tier response cache without
touching the engine (zero sizing bisections — the acceptance bar from the
sweep-cache work, lifted to whole requests), dispatches misses to the
``run_*`` drivers, and fans batch requests over the same design axis out
through the sweep engine's :class:`~repro.sweep.parallel.ParallelSweepRunner`
when the experiment supports it.

The in-process, HTTP (:mod:`repro.serve`) and CLI (:mod:`repro.cli`)
surfaces all run through this one class, so a response is bit-identical no
matter which door the request came through.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

from repro.api.registry import (
    ExperimentRegistry,
    ExperimentSpec,
    default_registry,
)
from repro.api.request import (
    RequestValidationError,
    SOURCE_COMPUTED,
    SOURCE_DISK,
    SOURCE_MEMORY,
    SpecRequest,
    SpecResponse,
    build_result_response,
)
from repro.api.response_cache import DEFAULT_LRU_SIZE, ResponseCache


@dataclass(frozen=True)
class RequestPlan:
    """One validated request's dispatch identity.

    Everything a scheduler needs to decide what a request *is* without
    executing it: the registry entry, the resolved grid (defaults merged
    with overrides — exactly what the runner will be called with), the
    response-cache ``key``, and the coalescing ``token`` two requests must
    share to be mergeable into one engine group (``None`` when the
    experiment has no ``batch_runner``, i.e. can never join a group).
    """

    spec: ExperimentSpec
    resolved: dict[str, Any]
    key: str
    token: tuple | None


@dataclass
class PlannedGroup:
    """One same-(experiment, grid, options) group of uncached requests.

    ``members`` holds ``(index, request, key)`` in submission order, where
    ``index`` is the request's position in the original batch and ``key``
    its response-cache key.  ``resolved`` is the grid shared by every
    member (validated once, at planning time — :meth:`execute_group` never
    re-validates).
    """

    spec: ExperimentSpec
    resolved: dict[str, Any]
    members: list[tuple[int, SpecRequest, str]] = field(default_factory=list)


class MixerService:
    """Dispatches spec requests through the experiment registry.

    Parameters
    ----------
    registry:
        The experiment registry; defaults to the fully populated global one.
    response_cache:
        ``None`` (default) keeps a memory-only LRU; a directory string/path
        adds the disk tier; an existing :class:`ResponseCache` is used
        as-is; ``False`` disables response caching entirely.
    spec_cache:
        Default ``cache=`` option forwarded to runners that accept it (a
        request's own ``cache`` field wins).  This is the *engine* cache of
        solved intermediates, one tier below the response cache.
    workers:
        Default ``workers=`` for runners that accept it (a request's own
        ``workers`` field wins).
    lru_size:
        Capacity of the memory tier when the service builds its own cache.
    """

    def __init__(self, registry: ExperimentRegistry | None = None,
                 response_cache: ResponseCache | str | bool | None = None,
                 spec_cache: Any = None,
                 workers: int | None = None,
                 lru_size: int = DEFAULT_LRU_SIZE) -> None:
        self.registry = registry if registry is not None else default_registry()
        if response_cache is False:
            self.response_cache: ResponseCache | None = None
        elif response_cache is None or response_cache is True:
            self.response_cache = ResponseCache(lru_size=lru_size)
        elif isinstance(response_cache, ResponseCache):
            self.response_cache = response_cache
        else:
            self.response_cache = ResponseCache(response_cache,
                                                lru_size=lru_size)
        self.spec_cache = spec_cache
        self.workers = workers

    # -- registry surface -----------------------------------------------------

    def experiments(self) -> list[dict]:
        """JSON-ready metadata for every registered experiment."""
        return [spec.describe() for spec in self.registry]

    def report(self, response: SpecResponse) -> str:
        """The driver's text rendering of a response's result."""
        spec = self._spec_for(response.experiment)
        return spec.report(response.result)

    def _spec_for(self, experiment: str) -> ExperimentSpec:
        try:
            return self.registry.get(experiment)
        except KeyError as error:
            raise RequestValidationError(str(error)) from None

    # -- execution ------------------------------------------------------------

    def _run_options(self, request: SpecRequest,
                     spec: ExperimentSpec) -> dict[str, Any]:
        """The ``workers=`` / ``cache=`` keywords one runner call gets."""
        options: dict[str, Any] = {}
        if spec.accepts_workers:
            workers = request.workers if request.workers is not None \
                else self.workers
            if workers is not None:
                options["workers"] = workers
        if spec.accepts_cache:
            cache = request.cache if request.cache is not None \
                else self.spec_cache
            if cache is not None:
                options["cache"] = cache
        return options

    def _cached_response(self, key: str) -> SpecResponse | None:
        if self.response_cache is None:
            return None
        hit = self.response_cache.load(key)
        if hit is None:
            return None
        entry, tier = hit
        try:
            response = SpecResponse.from_dict(entry)
        except (KeyError, TypeError, ValueError):
            return None
        response.source = SOURCE_MEMORY if tier == "memory" else SOURCE_DISK
        response.elapsed_s = 0.0
        return response

    def submit(self, request: SpecRequest) -> SpecResponse:
        """Answer one request (from cache when possible, computed otherwise)."""
        spec = self._spec_for(request.experiment)
        resolved = request.validate(spec)
        key = request.request_key(spec, resolved_grid=resolved)
        cached = self._cached_response(key)
        if cached is not None:
            return cached
        started = time.perf_counter()
        result = spec.runner(request.design, **resolved,
                             **self._run_options(request, spec))
        elapsed = time.perf_counter() - started
        response = build_result_response(request, spec, result,
                                         source=SOURCE_COMPUTED,
                                         elapsed_s=elapsed, request_key=key)
        self._store(response)
        return response

    def _group_token(self, request: SpecRequest,
                     resolved: dict[str, Any]) -> tuple:
        """Coalescing identity: requests with equal tokens may merge.

        The execution options are part of the token so a member's explicit
        ``workers=``/``cache=`` is honoured, never silently dropped in
        favour of another member's.
        """
        cache_token = request.cache \
            if isinstance(request.cache, (bool, str, type(None))) \
            else id(request.cache)
        return (request.experiment, json.dumps(resolved, sort_keys=True),
                request.workers, cache_token)

    def plan_request(self, request: SpecRequest) -> RequestPlan:
        """Validate one request and derive its dispatch identity.

        This is the read-only half of :meth:`submit`: registry lookup, grid
        validation, cache key and group token, with no engine work and no
        cache reads — what a scheduler (the job layer's coalescer) calls to
        decide whether two pending requests can share one engine run.
        Raises :class:`RequestValidationError` exactly as :meth:`submit`
        would.
        """
        spec = self._spec_for(request.experiment)
        resolved = request.validate(spec)
        key = request.request_key(spec, resolved_grid=resolved)
        token = self._group_token(request, resolved) \
            if spec.batch_runner is not None else None
        return RequestPlan(spec=spec, resolved=resolved, key=key, token=token)

    def plan_groups(self, requests: Sequence[SpecRequest],
                    ) -> tuple[list[SpecResponse | None], list[PlannedGroup]]:
        """Split a batch into cached responses and executable groups.

        Returns ``(responses, groups)``: ``responses`` is positionally
        aligned with ``requests``, already holding every cache hit (the
        rest ``None``); ``groups`` holds one :class:`PlannedGroup` per
        distinct ``(experiment, resolved grid, options)`` token covering
        every miss.  :meth:`execute_group` fills the holes.
        """
        responses: list[SpecResponse | None] = [None] * len(requests)
        groups: dict[tuple, PlannedGroup] = {}
        for index, request in enumerate(requests):
            plan = self.plan_request(request)
            cached = self._cached_response(plan.key)
            if cached is not None:
                responses[index] = cached
                continue
            token = plan.token if plan.token is not None \
                else self._group_token(request, plan.resolved)
            group = groups.get(token)
            if group is None:
                group = groups[token] = PlannedGroup(spec=plan.spec,
                                                     resolved=plan.resolved)
            group.members.append((index, request, plan.key))
        return responses, list(groups.values())

    def execute_group(self, group: PlannedGroup,
                      workers: int | None = None,
                      ) -> list[tuple[int, SpecResponse]]:
        """Answer one planned group, as one engine call where possible.

        When the experiment registers a ``batch_runner`` and the group
        spans at least two distinct designs, the whole group runs as one
        design axis; otherwise members fall back to individual
        :meth:`submit` calls (which still collapse repeats through the
        response cache).  Either way each member's response is
        bit-identical to a solo :meth:`submit`.
        """
        distinct = {request.design.fingerprint()
                    for _, request, _ in group.members}
        if group.spec.batch_runner is None or len(distinct) < 2:
            return [(index, self.submit(request))
                    for index, request, _ in group.members]
        return self._run_group(group, workers)

    def submit_batch(self, requests: Sequence[SpecRequest] | Iterable[SpecRequest],
                     workers: int | None = None) -> list[SpecResponse]:
        """Answer many requests, fanning shared-grid groups over the engine.

        Requests naming the same experiment with the same resolved grid form
        one group; when the experiment registers a ``batch_runner``, the
        whole group's designs run as **one design axis** through the sweep
        engine — sharded across processes by
        :class:`~repro.sweep.parallel.ParallelSweepRunner` when ``workers``
        (or the per-request/service default) asks for it — instead of N
        sequential runs.  Per-design results are bit-identical to individual
        :meth:`submit` calls either way, so cached and computed members of a
        batch can mix freely.  Response order matches request order.
        """
        batch = list(requests)
        responses, groups = self.plan_groups(batch)
        for group in groups:
            for index, response in self.execute_group(group, workers=workers):
                responses[index] = response
        # Every request must have produced a response at its own index: a
        # missing member silently shortening the list would misalign the
        # request/response pairing for every later member (the /v1/batch
        # contract is positional), so fail the whole batch loudly instead.
        missing = [index for index, response in enumerate(responses)
                   if response is None]
        if missing:
            raise RuntimeError(
                f"batch produced no response for request(s) at index(es) "
                f"{missing} of {len(batch)}; refusing to return a "
                f"misaligned response list")
        assert len(responses) == len(batch)
        return list(responses)

    def _run_group(self, group: PlannedGroup,
                   workers: int | None) -> list[tuple[int, SpecResponse]]:
        """One batch_runner call for a same-(experiment, grid, options) group.

        Members share their execution options and resolved grid by
        construction (both derive from the group token at planning time, so
        nothing is re-validated here); the lead request speaks for the
        group's options, and the batch-level ``workers`` argument, when
        given, overrides.
        """
        spec = group.spec
        lead = group.members[0][1]
        options = self._run_options(lead, spec)
        group_workers = workers if workers is not None \
            else options.get("workers")
        if group_workers is not None:
            options["workers"] = group_workers
        designs = {}
        for _, request, _ in group.members:
            designs.setdefault(request.design.fingerprint(), request.design)
        started = time.perf_counter()
        results = spec.batch_runner(designs, **group.resolved, **options)
        elapsed = time.perf_counter() - started
        out: list[tuple[int, SpecResponse]] = []
        for index, request, key in group.members:
            fingerprint = request.design.fingerprint()
            result = results.get(fingerprint) \
                if hasattr(results, "get") else results[fingerprint]
            if result is None:
                raise RuntimeError(
                    f"batch runner for {spec.name!r} returned no result for "
                    f"design {fingerprint[:12]} (request #{index})")
            response = build_result_response(request, spec, result,
                                             source=SOURCE_COMPUTED,
                                             elapsed_s=elapsed,
                                             request_key=key)
            self._store(response)
            out.append((index, response))
        return out

    def _store(self, response: SpecResponse) -> None:
        if self.response_cache is not None:
            self.response_cache.store(response.request_key, response.to_dict())
