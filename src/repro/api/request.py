"""Typed requests and responses of the spec service.

A :class:`SpecRequest` is the one unit of work the service accepts: *this*
design, evaluated against *this* registered experiment, with optional grid
overrides and execution options.  The same object runs in-process
(:meth:`MixerService.submit`), over HTTP (``POST /v1/spec``) and from the
shell (``python -m repro.cli``) — the wire format is exactly
:meth:`SpecRequest.to_dict`.

A :class:`SpecResponse` pairs the request identity (experiment, design
fingerprint, request key) with the encoded result payload and bookkeeping
about where the answer came from (computed, memory cache, disk cache).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.api.registry import ExperimentSpec
from repro.api.serialization import decode, encode
from repro.core.config import MixerDesign

#: Wire-format version; part of every request key, so a semantic change to
#: the payloads invalidates cached responses instead of reinterpreting them.
#: v2: non-finite floats travel as ``{"__float__": ...}`` tags (strict JSON)
#: instead of bare ``Infinity``/``NaN`` tokens.
#: v3: requests carry an explicit ``api_version`` field (mismatches are a
#: structured error naming both versions instead of a silent reinterpretation),
#: optimisation requests travel the standard envelope (``yield_pareto``
#: joined the registry; the ``YieldRequest`` side-door is deprecated), and
#: ``GET /v1/experiments`` serves the registry metadata.
API_VERSION = 3


class RequestValidationError(ValueError):
    """A request that cannot be dispatched (unknown experiment, bad grid...)."""


class ApiVersionError(RequestValidationError):
    """Client and server speak different wire-format versions.

    Carries both versions so every surface can say exactly which side is
    behind — the HTTP layer turns this into a structured 400 body naming
    ``client_api_version`` and ``server_api_version``.
    """

    def __init__(self, client_version: Any,
                 server_version: int = API_VERSION) -> None:
        self.client_version = client_version
        self.server_version = server_version
        super().__init__(
            f"api_version mismatch: request speaks {client_version!r}, "
            f"this side speaks {server_version}")


def _jsonable_grid_value(value: Any) -> Any:
    """Grid override values as canonical JSON types (arrays become lists)."""
    if value is None or isinstance(value, (str, bool)):
        return value
    if isinstance(value, int):
        return int(value)     # point counts etc. must stay integers
    if isinstance(value, float):
        return float(value)
    if isinstance(value, (list, tuple)):
        return [_jsonable_grid_value(item) for item in value]
    tolist = getattr(value, "tolist", None)
    if callable(tolist):
        return _jsonable_grid_value(tolist())
    raise RequestValidationError(
        f"grid values must be numbers, strings, booleans or arrays; "
        f"got {type(value).__name__}")


@dataclass(frozen=True)
class SpecRequest:
    """One "evaluate this design against this paper artefact" call.

    Attributes
    ----------
    experiment:
        Name of a registered experiment (``"fig8"``, ``"table1"``, ...).
    design:
        The design record to evaluate; defaults to the paper's design point.
    grid:
        Overrides of the experiment's default grid parameters (sweep spans,
        point counts, tone plans); unknown names are rejected at validation.
    workers:
        Process count for the sweep engine (experiments that accept it).
    cache:
        Spec-cache selector forwarded to the runner (``True``, a directory,
        or ``None``); orthogonal to the service's *response* cache.
    """

    experiment: str
    design: MixerDesign = field(default_factory=MixerDesign)
    grid: Mapping[str, Any] = field(default_factory=dict)
    workers: int | None = None
    cache: Any = None

    def __post_init__(self) -> None:
        if not isinstance(self.experiment, str) or not self.experiment:
            raise RequestValidationError("experiment must be a non-empty string")
        if not isinstance(self.design, MixerDesign):
            raise RequestValidationError("design must be a MixerDesign "
                                         "(build one with MixerDesign.from_dict)")
        if self.workers is not None and int(self.workers) < 1:
            raise RequestValidationError("workers must be at least 1")

    # -- validation -----------------------------------------------------------

    def validate(self, spec: ExperimentSpec) -> dict[str, Any]:
        """Check this request against the registry entry it names.

        Returns the **resolved grid** — the experiment's defaults merged
        with this request's overrides — which is both what the runner is
        called with and what the response-cache key hashes.
        """
        if spec.name != self.experiment:
            raise RequestValidationError(
                f"request names {self.experiment!r} but was validated "
                f"against {spec.name!r}")
        unknown = sorted(set(self.grid) - set(spec.default_grid))
        if unknown:
            raise RequestValidationError(
                f"unknown grid parameters {unknown} for {spec.name!r}; "
                f"accepted: {sorted(spec.default_grid)}")
        if self.workers is not None and not spec.accepts_workers:
            raise RequestValidationError(
                f"experiment {spec.name!r} does not accept workers=")
        if self.cache is not None and not spec.accepts_cache:
            raise RequestValidationError(
                f"experiment {spec.name!r} does not accept cache=")
        resolved = dict(spec.default_grid)
        for name, value in self.grid.items():
            resolved[name] = _jsonable_grid_value(value)
        return resolved

    # -- identity -------------------------------------------------------------

    def request_key(self, spec: ExperimentSpec,
                    resolved_grid: Mapping[str, Any] | None = None) -> str:
        """Stable content hash of (experiment, design, resolved grid).

        The execution options (``workers`` / ``cache``) are deliberately
        excluded: the engine guarantees bit-identical results for any worker
        count and cache state, so they must never split the response cache.
        Callers that already hold the :meth:`validate` output pass it as
        ``resolved_grid`` to skip re-validating.
        """
        payload = json.dumps(
            {"api_version": API_VERSION,
             "experiment": self.experiment,
             "design": self.design.fingerprint(),
             "grid": resolved_grid if resolved_grid is not None
             else self.validate(spec)},
            sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    # -- wire format ----------------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-ready request (what the HTTP endpoint accepts)."""
        payload: dict = {"api_version": API_VERSION,
                         "experiment": self.experiment,
                         "design": self.design.to_dict()}
        if self.grid:
            payload["grid"] = {name: _jsonable_grid_value(value)
                               for name, value in self.grid.items()}
        if self.workers is not None:
            payload["workers"] = int(self.workers)
        if self.cache is not None and not isinstance(self.cache, bool) \
                and not isinstance(self.cache, str):
            raise RequestValidationError(
                "only cache=True/False or a directory string serialize; "
                "pass SpecCache instances to in-process services only")
        if self.cache is not None:
            payload["cache"] = self.cache
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "SpecRequest":
        """Rebuild a request from :meth:`to_dict` output (or hand-written JSON).

        ``design`` may be omitted (the paper's default design point) or a
        mapping accepted by :meth:`MixerDesign.from_dict`.  ``api_version``
        may be omitted (hand-written payloads are read as current), but a
        present mismatching version raises :class:`ApiVersionError` — a
        v2 client's payload must not be silently reinterpreted as v3.
        """
        if not isinstance(payload, Mapping):
            raise RequestValidationError("request payload must be a mapping")
        known = {"api_version", "experiment", "design", "grid", "workers",
                 "cache"}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise RequestValidationError(
                f"unknown request fields {unknown}; accepted: {sorted(known)}")
        version = payload.get("api_version")
        if version is not None and version != API_VERSION:
            raise ApiVersionError(version)
        if "experiment" not in payload:
            raise RequestValidationError("request needs an 'experiment' field")
        design_payload = payload.get("design")
        try:
            design = MixerDesign() if design_payload is None \
                else MixerDesign.from_dict(design_payload)
        except (TypeError, ValueError) as error:
            raise RequestValidationError(f"bad design payload: {error}") from None
        grid = payload.get("grid") or {}
        if not isinstance(grid, Mapping):
            raise RequestValidationError("grid must be a mapping")
        workers = payload.get("workers")
        if workers is not None:
            if isinstance(workers, bool) or not isinstance(workers, int):
                raise RequestValidationError("workers must be an integer")
        cache = payload.get("cache")
        if cache is not None and not isinstance(cache, (bool, str)):
            # Mirrors to_dict: only bool / directory-string travel the wire.
            raise RequestValidationError(
                "cache must be true/false or a directory string")
        return cls(experiment=str(payload["experiment"]), design=design,
                   grid=dict(grid), workers=workers, cache=cache)


#: Where a response's answer came from.
SOURCE_COMPUTED = "computed"
SOURCE_MEMORY = "memory-cache"
SOURCE_DISK = "disk-cache"


@dataclass
class SpecResponse:
    """The service's answer to one :class:`SpecRequest`.

    ``result_payload`` is the encoded result (exact JSON round-trip of the
    driver's return value); :attr:`result` decodes it back into the driver's
    dataclass on demand.
    """

    experiment: str
    design_fingerprint: str
    request_key: str
    result_schema: str
    result_payload: dict
    source: str = SOURCE_COMPUTED
    elapsed_s: float = 0.0

    @property
    def cached(self) -> bool:
        """True when the answer was served from a response cache."""
        return self.source != SOURCE_COMPUTED

    @property
    def result(self) -> Any:
        """The result as the driver's dataclass (decoded from the payload)."""
        return decode(self.result_payload)

    def to_dict(self) -> dict:
        """JSON-ready response (what the HTTP endpoint returns)."""
        return {
            "api_version": API_VERSION,
            "experiment": self.experiment,
            "design_fingerprint": self.design_fingerprint,
            "request_key": self.request_key,
            "result_schema": self.result_schema,
            "source": self.source,
            "elapsed_s": self.elapsed_s,
            "result": self.result_payload,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "SpecResponse":
        """Rebuild a response from :meth:`to_dict` output (HTTP client side)."""
        if payload.get("api_version") != API_VERSION:
            raise ApiVersionError(payload.get("api_version"))
        return cls(
            experiment=str(payload["experiment"]),
            design_fingerprint=str(payload["design_fingerprint"]),
            request_key=str(payload["request_key"]),
            result_schema=str(payload["result_schema"]),
            result_payload=dict(payload["result"]),
            source=str(payload.get("source", SOURCE_COMPUTED)),
            elapsed_s=float(payload.get("elapsed_s", 0.0)),
        )


def build_result_response(request: SpecRequest, spec: ExperimentSpec,
                          result: Any, source: str = SOURCE_COMPUTED,
                          elapsed_s: float = 0.0,
                          request_key: str | None = None) -> SpecResponse:
    """Package a driver result into a :class:`SpecResponse`.

    ``request_key`` skips recomputing the hash when the caller (the
    service's dispatch path) already derived it for the cache lookup.
    """
    if not isinstance(result, spec.result_type):
        raise TypeError(
            f"runner for {spec.name!r} returned {type(result).__name__}, "
            f"expected {spec.result_type.__name__}")
    return SpecResponse(
        experiment=spec.name,
        design_fingerprint=request.design.fingerprint(),
        request_key=request_key if request_key is not None
        else request.request_key(spec),
        result_schema=spec.result_type.__name__,
        result_payload=encode(result),
        source=source,
        elapsed_s=elapsed_s,
    )
