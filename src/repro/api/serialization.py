"""Exact JSON encoding of experiment results (and back).

The service layer promises that a result served in-process, from the
response cache, or over HTTP is **bit-identical** to the one the underlying
``run_*`` driver returned.  That promise rests on this module: every result
dataclass is encoded into plain JSON types with enough structure tags to
rebuild the exact object, and every float survives because ``json`` emits
``repr``-round-trippable doubles and NumPy ``tolist()`` yields Python floats
bit-for-bit.

Encoding rules:

* primitives (``str``/``int``/``float``/``bool``/``None``) pass through;
  NumPy scalars are converted to their Python equivalents; **non-finite**
  floats become ``{"__float__": "inf" | "-inf" | "nan"}`` so the emitted
  JSON is strictly RFC-compliant (a bare ``Infinity`` token — what
  ``json.dumps`` would otherwise produce for an unreached compression
  point's ``inf`` — is rejected by non-Python parsers);
* ``numpy.ndarray`` becomes ``{"__ndarray__": [...]}`` (nested lists of
  floats) and decodes back to a float array of the same shape;
* :class:`~repro.core.config.MixerMode` becomes ``{"__mode__": "active"}``;
* registered result dataclasses become ``{"__dataclass__": name, "fields":
  {...}}``; only types explicitly registered through
  :func:`register_payload_type` (typically via the experiment registry)
  decode, so a payload can never instantiate an arbitrary class;
* lists/tuples encode as JSON arrays (and decode as lists), dictionaries
  with string keys encode as JSON objects.

The tags are chosen so a payload is still readable as plain JSON by non-
Python clients: an ndarray is one key away from its nested lists, a mode is
its label.
"""

from __future__ import annotations

import math
from dataclasses import fields, is_dataclass
from typing import Any

import numpy as np

from repro.core.config import MixerMode

#: Registered payload dataclasses, by their class name.
_PAYLOAD_TYPES: dict[str, type] = {}


def register_payload_type(*types: type) -> None:
    """Allow dataclass ``types`` to appear in encoded payloads.

    Registration is idempotent; registering two different classes under one
    name is an error (payload names must stay unambiguous on the wire).
    """
    for cls in types:
        if not is_dataclass(cls) or not isinstance(cls, type):
            raise TypeError(f"{cls!r} is not a dataclass type")
        existing = _PAYLOAD_TYPES.get(cls.__name__)
        if existing is not None and existing is not cls:
            raise ValueError(
                f"payload type name {cls.__name__!r} already registered "
                f"by {existing.__module__}")
        _PAYLOAD_TYPES[cls.__name__] = cls


def registered_payload_types() -> dict[str, type]:
    """Snapshot of the registered payload types (name -> class)."""
    return dict(_PAYLOAD_TYPES)


def _tag_nonfinite(nested: Any) -> Any:
    """Replace non-finite floats in nested ``tolist()`` output with tags."""
    if isinstance(nested, list):
        return [_tag_nonfinite(item) for item in nested]
    if isinstance(nested, float) and not math.isfinite(nested):
        return {"__float__": repr(nested)}
    return nested


def encode(value: Any) -> Any:
    """Encode ``value`` into plain JSON types (see the module rules)."""
    if isinstance(value, (np.bool_, np.integer, np.floating)):
        value = value.item()
    if isinstance(value, float) and not math.isfinite(value):
        return {"__float__": repr(value)}
    if value is None or isinstance(value, (str, bool, int, float)):
        return value
    if isinstance(value, np.ndarray):
        nested = value.astype(float).tolist()
        if not np.all(np.isfinite(value)):
            # Measure arrays can legitimately carry -inf (an empty FFT
            # bin, an unreached compression point); element-wise tagging
            # keeps the nested lists strict JSON.
            nested = _tag_nonfinite(nested)
        return {"__ndarray__": nested}
    if isinstance(value, MixerMode):
        return {"__mode__": value.value}
    if is_dataclass(value) and not isinstance(value, type):
        name = type(value).__name__
        if _PAYLOAD_TYPES.get(name) is not type(value):
            raise TypeError(
                f"{name} is not a registered payload type; register it "
                f"with register_payload_type() before encoding")
        return {"__dataclass__": name,
                "fields": {f.name: encode(getattr(value, f.name))
                           for f in fields(value)}}
    if isinstance(value, (list, tuple)):
        return [encode(item) for item in value]
    if isinstance(value, dict):
        for key in value:
            if not isinstance(key, str):
                raise TypeError(f"payload dict keys must be strings, "
                                f"got {type(key).__name__}")
        return {key: encode(item) for key, item in value.items()}
    raise TypeError(f"cannot encode {type(value).__name__} into a payload")


def decode(payload: Any) -> Any:
    """Rebuild the value :func:`encode` produced.

    Raises ``ValueError``/``TypeError``/``KeyError`` on malformed payloads;
    the response cache treats any of those as a corrupt entry and recomputes.
    """
    if payload is None or isinstance(payload, (str, bool, int, float)):
        return payload
    if isinstance(payload, list):
        return [decode(item) for item in payload]
    if isinstance(payload, dict):
        if "__float__" in payload:
            return float(payload["__float__"])
        if "__ndarray__" in payload:
            try:
                # Fast path: an all-finite array is plain nested lists.
                return np.asarray(payload["__ndarray__"], dtype=float)
            except (TypeError, ValueError):
                # Nested non-finite elements arrive tagged; decode() first.
                return np.asarray(decode(payload["__ndarray__"]), dtype=float)
        if "__mode__" in payload:
            return MixerMode(payload["__mode__"])
        if "__dataclass__" in payload:
            name = payload["__dataclass__"]
            cls = _PAYLOAD_TYPES.get(name)
            if cls is None:
                raise ValueError(f"unknown payload type {name!r}")
            raw = payload["fields"]
            if not isinstance(raw, dict):
                raise TypeError(f"fields of {name!r} must be a mapping")
            known = {f.name for f in fields(cls)}
            unknown = sorted(set(raw) - known)
            if unknown:
                raise ValueError(f"unknown fields for {name!r}: {unknown}")
            return cls(**{key: decode(item) for key, item in raw.items()})
        return {key: decode(item) for key, item in payload.items()}
    raise TypeError(f"cannot decode {type(payload).__name__}")
