"""Declarative registry of the paper's experiments.

Every module under :mod:`repro.experiments` registers its driver here with
the metadata the service layer needs: the paper artefact it reproduces, the
runner callable and its default grid parameters, the result type (wired into
:mod:`repro.api.serialization` for exact round-trips), the text reporter,
and which execution options (``workers=`` / ``cache=``) the driver accepts.
The registry is what makes "evaluate this design against the paper's
artefacts" a single call: :class:`~repro.api.service.MixerService` validates
a :class:`~repro.api.request.SpecRequest` against an entry and dispatches it
without per-experiment plumbing.

Experiments self-register at import time (the ``register_experiment`` call
at the bottom of each driver module), so :func:`default_registry` only has
to import :mod:`repro.experiments` once to see all of them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from repro.api.serialization import register_payload_type


@dataclass(frozen=True)
class ExperimentSpec:
    """One registered experiment: metadata plus dispatch callables.

    Attributes
    ----------
    name:
        Registry key and wire name (``"fig8"``, ``"table1"``, ...).
    artefact:
        The paper artefact the experiment reproduces (for listings).
    summary:
        One-line description of what the run computes.
    runner:
        ``runner(design, *, workers=..., cache=..., **grid)`` returning the
        result dataclass; exactly the public ``run_*`` entry point.
    result_type:
        The dataclass the runner returns (its name doubles as the result
        schema identifier on the wire).
    report:
        ``format_report(result) -> str``, the driver's text rendering.
    default_grid:
        Name -> default for every overridable grid parameter; the resolved
        grid (defaults merged with request overrides) is part of the
        response-cache key.
    accepts_workers / accepts_cache:
        Whether the runner takes ``workers=`` / ``cache=``.  Every
        engine-backed driver does — the analytic sweeps and, since the
        batched waveform engine, the ``fig10``/``iip2``/``p1db`` benches;
        only the point circuit-level checks (``power_budget``,
        ``tia_response``, ``ablation``) do not.
    batch_runner:
        Optional ``batch_runner(designs, *, workers=..., cache=..., **grid)
        -> dict[label, result]`` evaluating many designs as one design axis
        through the sweep engine; the service fans batch requests out
        through it when available.
    """

    name: str
    artefact: str
    summary: str
    runner: Callable[..., Any]
    result_type: type
    report: Callable[[Any], str]
    default_grid: Mapping[str, Any] = field(default_factory=dict)
    accepts_workers: bool = True
    accepts_cache: bool = True
    batch_runner: Callable[..., Mapping[str, Any]] | None = None

    def describe(self) -> dict:
        """JSON-ready metadata (what ``GET /v1/experiments`` serves)."""
        return {
            "name": self.name,
            "artefact": self.artefact,
            "summary": self.summary,
            "result_schema": self.result_type.__name__,
            "default_grid": dict(self.default_grid),
            "accepts_workers": self.accepts_workers,
            "accepts_cache": self.accepts_cache,
            "batchable": self.batch_runner is not None,
        }


class ExperimentRegistry:
    """Name -> :class:`ExperimentSpec` mapping with validation helpers."""

    def __init__(self) -> None:
        self._specs: dict[str, ExperimentSpec] = {}

    def register(self, spec: ExperimentSpec) -> ExperimentSpec:
        """Add one experiment; re-registering the same name is an error
        unless the entry is identical (idempotent re-imports are fine)."""
        existing = self._specs.get(spec.name)
        if existing is not None:
            if existing == spec:
                return spec
            raise ValueError(f"experiment {spec.name!r} already registered")
        if not spec.name or not spec.name.isidentifier():
            raise ValueError(f"experiment name {spec.name!r} must be a "
                             "simple identifier")
        self._specs[spec.name] = spec
        return spec

    def get(self, name: str) -> ExperimentSpec:
        """Entry for ``name``; ``KeyError`` names the known experiments."""
        try:
            return self._specs[name]
        except KeyError:
            raise KeyError(f"unknown experiment {name!r}; "
                           f"known: {self.names()}") from None

    def names(self) -> list[str]:
        """Registered experiment names, in registration order."""
        return list(self._specs)

    def __contains__(self, name: str) -> bool:
        return name in self._specs

    def __len__(self) -> int:
        return len(self._specs)

    def __iter__(self):
        return iter(self._specs.values())


#: The process-wide registry the experiment modules register into.
GLOBAL_REGISTRY = ExperimentRegistry()


def register_experiment(*, name: str, artefact: str, summary: str,
                        runner: Callable[..., Any], result_type: type,
                        report: Callable[[Any], str],
                        default_grid: Mapping[str, Any] | None = None,
                        accepts_workers: bool = True,
                        accepts_cache: bool = True,
                        batch_runner: Callable[..., Mapping[str, Any]] | None = None,
                        payload_types: tuple[type, ...] = (),
                        ) -> ExperimentSpec:
    """Register one experiment into :data:`GLOBAL_REGISTRY`.

    ``payload_types`` lists the nested dataclasses the result embeds (the
    result type itself is always registered) so the serialization layer can
    round-trip the whole object graph.
    """
    register_payload_type(result_type, *payload_types)
    spec = ExperimentSpec(
        name=name, artefact=artefact, summary=summary, runner=runner,
        result_type=result_type, report=report,
        default_grid=dict(default_grid or {}),
        accepts_workers=accepts_workers, accepts_cache=accepts_cache,
        batch_runner=batch_runner)
    return GLOBAL_REGISTRY.register(spec)


def default_registry() -> ExperimentRegistry:
    """The fully populated registry (imports the experiment drivers once)."""
    import repro.experiments  # noqa: F401  — side effect: registration
    return GLOBAL_REGISTRY
