"""Thread-local progress reporting for long-running requests.

The async job surface (:mod:`repro.serve.jobs`) needs partial state out of
runs that are still executing: which yield-opt iteration the search is on,
how many sweep shards have been stitched, the best yield so far.  That
state is already materialised inside the runners — this module is the thin
channel that carries it out without coupling any engine to the serving
layer.

The contract is deliberately one-way and optional:

* an *observer* (a job worker, a test, a CLI spinner) wraps a call in
  :func:`progress_scope` with a callback;
* a *producer* (:func:`repro.optimize.run_yield_opt`, the parallel
  runners) calls :func:`report_progress` with JSON-ready keyword fields at
  natural checkpoints;
* with no active scope, :func:`report_progress` is a no-op costing one
  thread-local attribute read — runners never know whether anyone is
  listening, and results are bit-identical either way.

Scopes are per-thread (each job executes on one worker thread), nest
(inner scopes shadow outer ones for their duration), and never let a
callback error break the computation it is observing.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Any, Callable, Iterator

#: A progress callback: receives one JSON-ready mapping per checkpoint.
ProgressCallback = Callable[[dict[str, Any]], None]

_SCOPES = threading.local()


def current_callback() -> ProgressCallback | None:
    """The callback of the innermost active scope on this thread, if any."""
    stack = getattr(_SCOPES, "stack", None)
    return stack[-1] if stack else None


@contextmanager
def progress_scope(callback: ProgressCallback) -> Iterator[None]:
    """Route :func:`report_progress` calls on this thread to ``callback``.

    Nesting replaces the receiver for the inner scope's duration; leaving
    the scope always restores the previous one, so an observer can never
    leak into unrelated work on a reused worker thread.
    """
    if not callable(callback):
        raise TypeError("progress_scope needs a callable callback")
    stack = getattr(_SCOPES, "stack", None)
    if stack is None:
        stack = []
        _SCOPES.stack = stack
    stack.append(callback)
    try:
        yield
    finally:
        stack.pop()


def report_progress(**fields: Any) -> None:
    """Publish one progress checkpoint to the active scope, if any.

    Fields must be JSON-ready (numbers, strings, booleans, lists, dicts) —
    they travel verbatim into ``GET /v1/jobs/<id>`` payloads.  A callback
    that raises is swallowed: observation must never change (or break) the
    observed computation.
    """
    callback = current_callback()
    if callback is None:
        return
    try:
        callback(dict(fields))
    except Exception:  # noqa: BLE001 - observers must not break producers
        pass
