"""Request-level response cache: in-memory LRU over an on-disk store.

This is the layer *above* the sweep engine's :class:`~repro.sweep.cache.\
SpecCache`: where the spec cache remembers solved per-(design, mode)
intermediates so a re-run skips the sizing bisections, the response cache
remembers the **entire encoded answer** to a request, keyed on
``(design fingerprint, experiment, resolved-grid hash)`` — a repeated
identical request never reaches the engine at all (zero sizing bisections,
asserted in ``tests/test_api.py``).

Both tiers follow the same discipline as the spec cache: content-addressed
keys (the request key already folds in :data:`~repro.api.request.\
API_VERSION`), atomic writes, and corrupt entries degrading to recompute.
The in-memory tier is a bounded LRU so a long-lived server keeps its hot
designs resident without growing unboundedly; the disk tier is shared by
every service instance pointed at the directory (CLI runs, server restarts).
"""

from __future__ import annotations

import json
import threading
from collections import OrderedDict
from pathlib import Path

from repro.sweep.cache import atomic_write_json

#: Default capacity of the in-memory LRU tier.
DEFAULT_LRU_SIZE = 128


class ResponseCache:
    """Two-tier (memory LRU + optional disk) store of encoded responses.

    Parameters
    ----------
    directory:
        Where the disk tier lives; ``None`` keeps the cache memory-only.
    lru_size:
        Capacity of the memory tier; 0 disables it (disk-only).

    Values are the JSON-ready payloads of :meth:`SpecResponse.to_dict`'s
    ``result`` field plus the identifying metadata; the service rebuilds a
    :class:`~repro.api.request.SpecResponse` around them on a hit.
    """

    def __init__(self, directory: str | Path | None = None,
                 lru_size: int = DEFAULT_LRU_SIZE) -> None:
        if lru_size < 0:
            raise ValueError("lru_size must be non-negative")
        self.directory = Path(directory) if directory is not None else None
        self.lru_size = int(lru_size)
        self._lock = threading.Lock()
        self._memory: OrderedDict[str, dict] = OrderedDict()
        self.memory_hits = 0
        self.disk_hits = 0
        self.misses = 0
        self.stores = 0
        self.corrupt = 0

    # -- keys -----------------------------------------------------------------

    def _path(self, key: str) -> Path:
        assert self.directory is not None
        return self.directory / f"{key}.json"

    # -- load / store ---------------------------------------------------------

    def load(self, key: str) -> tuple[dict, str] | None:
        """``(entry, tier)`` for a request key, or ``None`` on miss.

        ``tier`` is ``"memory"`` or ``"disk"``.  A disk hit is promoted into
        the memory tier.  Any unreadable or malformed disk entry counts as
        corrupt and misses (the next store overwrites it).
        """
        with self._lock:
            entry = self._memory.get(key)
            if entry is not None:
                self._memory.move_to_end(key)
                self.memory_hits += 1
                return entry, "memory"
        if self.directory is None:
            with self._lock:
                self.misses += 1
            return None
        try:
            text = self._path(key).read_text(encoding="utf-8")
        except FileNotFoundError:
            with self._lock:
                self.misses += 1
            return None
        except OSError:
            with self._lock:
                self.corrupt += 1
                self.misses += 1
            return None
        try:
            entry = json.loads(text)
            if not isinstance(entry, dict) or entry.get("request_key") != key:
                raise ValueError("malformed response-cache entry")
        except ValueError:
            with self._lock:
                self.corrupt += 1
                self.misses += 1
            return None
        with self._lock:
            self._remember(key, entry)
            self.disk_hits += 1
        return entry, "disk"

    def store(self, key: str, entry: dict) -> None:
        """Persist one response entry under its request key (atomically)."""
        if entry.get("request_key") != key:
            raise ValueError("entry's request_key must match the store key")
        with self._lock:
            self._remember(key, entry)
            self.stores += 1
        if self.directory is None:
            return
        atomic_write_json(self._path(key), entry)

    def _remember(self, key: str, entry: dict) -> None:
        """Insert into the LRU tier, evicting the least recent past capacity."""
        if self.lru_size == 0:
            return
        self._memory[key] = entry
        self._memory.move_to_end(key)
        while len(self._memory) > self.lru_size:
            self._memory.popitem(last=False)

    # -- introspection --------------------------------------------------------

    @property
    def memory_size(self) -> int:
        """Entries currently resident in the LRU tier.

        Taken under the cache lock: the metrics endpoint polls this while
        request threads mutate the ``OrderedDict``, and ``len()`` during a
        concurrent re-link is exactly the racy read the lock exists for.
        """
        with self._lock:
            return len(self._memory)

    def stats(self) -> dict:
        """One consistent, JSON-ready snapshot of the cache counters.

        This is what ``GET /v1/metrics`` serves: every counter and the
        derived hit rate read under one lock acquisition, so the numbers
        are mutually consistent even under concurrent traffic (counters
        summed from separate locked reads could tear — e.g. a hit landing
        between reading ``memory_hits`` and ``misses`` skews the rate).
        """
        with self._lock:
            hits = self.memory_hits + self.disk_hits
            lookups = hits + self.misses
            return {
                "memory_entries": len(self._memory),
                "lru_size": self.lru_size,
                "disk_tier": self.directory is not None,
                "memory_hits": self.memory_hits,
                "disk_hits": self.disk_hits,
                "misses": self.misses,
                "stores": self.stores,
                "corrupt": self.corrupt,
                "hit_rate": hits / lookups if lookups else 0.0,
            }

    def clear_memory(self) -> None:
        """Drop the memory tier (the disk tier is untouched)."""
        with self._lock:
            self._memory.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        where = str(self.directory) if self.directory else "memory-only"
        return (f"ResponseCache({where!r}, lru={self.memory_size}/"
                f"{self.lru_size}, mem_hits={self.memory_hits}, "
                f"disk_hits={self.disk_hits}, misses={self.misses})")
