"""repro — behavioural reproduction of the 1.2 V wide-band reconfigurable mixer.

This library reproduces, at the behavioural-simulation level, the system
described in *"A 1.2V Wide-Band Reconfigurable Mixer for Wireless Application
in 65nm CMOS Technology"* (Gupta, Kumar, Dutta, Singh — SOCC 2015): a
down-conversion mixer that can be reconfigured between an active
(Gilbert-cell) mode and a passive (current-commutating) mode, trading gain
and noise figure against linearity for multi-standard IoT receivers.

Top-level convenience imports cover the objects most users need:

>>> from repro import ReconfigurableMixer, MixerMode
>>> mixer = ReconfigurableMixer(mode=MixerMode.PASSIVE)
>>> round(mixer.conversion_gain_db(), 1)    # doctest: +SKIP
25.5

Sub-packages
------------
``repro.core``
    The paper's contribution: the reconfigurable mixer and its blocks.
``repro.devices``
    65 nm-class behavioural device models (MOSFET, passives, noise).
``repro.circuit``
    A small MNA circuit-simulation substrate (DC / AC / transient).
``repro.rf``
    RF measurement toolkit (spectra, two-tone, NF, conversion gain).
``repro.baselines``
    Behavioural models of the comparison designs in the paper's Table I.
``repro.experiments``
    One driver per paper figure/table; used by the benchmark harness.
``repro.sweep``
    Vectorized sweep engine, parallel sharding, on-disk spec cache.
``repro.api``
    Unified spec service: typed requests, experiment registry, response
    cache; served over HTTP by ``repro.serve`` and from the shell by
    ``repro.cli``.
"""

from repro.core.config import MixerDesign, MixerMode, default_design
from repro.core.reconfigurable_mixer import MixerSpecs, ReconfigurableMixer
from repro.core.frontend import WidebandReceiverFrontEnd

__version__ = "1.0.0"

__all__ = [
    "MixerDesign",
    "MixerMode",
    "MixerSpecs",
    "ReconfigurableMixer",
    "WidebandReceiverFrontEnd",
    "default_design",
    "__version__",
]
