"""Behavioural MOSFET model used by the circuit substrate and the mixer core.

The model is a square-law device with mobility degradation (the ``theta``
term), channel-length modulation and a smooth triode/saturation transition.
That is far simpler than BSIM4, but it captures the behaviours the paper's
design arguments rest on:

* ``gm`` proportional to overdrive — the bias-voltage gain tuning of the
  active mixer (section II.B);
* triode-region ``r_on`` set by W/L and overdrive — the PMOS switch /
  degeneration resistance (Fig. 5a) and the transmission-gate load
  (Fig. 5b);
* mobility degradation as the dominant odd-order nonlinearity — the IIP3
  difference between the gm-stage-limited active mode and the
  degenerated passive mode;
* thermal and flicker noise densities — the NF curves of Fig. 9 and the
  flicker corner discussed in section III.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.units import BOLTZMANN
from repro.devices.technology import Technology, UMC65_LIKE


class MosfetPolarity(enum.Enum):
    """Device polarity."""

    NMOS = "nmos"
    PMOS = "pmos"


class MosfetRegion(enum.Enum):
    """Operating region reported by :meth:`Mosfet.operating_point`."""

    CUTOFF = "cutoff"
    TRIODE = "triode"
    SATURATION = "saturation"


@dataclass(frozen=True)
class MosfetParameters:
    """Geometry and polarity of a single device.

    Attributes
    ----------
    width / length:
        Drawn channel dimensions in metres.
    polarity:
        NMOS or PMOS.
    technology:
        Process constants; defaults to the 65 nm-class technology.
    """

    width: float
    length: float
    polarity: MosfetPolarity = MosfetPolarity.NMOS
    technology: Technology = UMC65_LIKE

    def __post_init__(self) -> None:
        if self.width <= 0 or self.length <= 0:
            raise ValueError("MOSFET width and length must be positive")
        if self.length < self.technology.l_min * 0.999:
            raise ValueError(
                f"channel length {self.length:.3g} m is below the minimum "
                f"{self.technology.l_min:.3g} m of {self.technology.name}"
            )

    @property
    def aspect_ratio(self) -> float:
        """W/L ratio."""
        return self.width / self.length

    @property
    def vth(self) -> float:
        """Threshold voltage magnitude for this polarity (V)."""
        tech = self.technology
        return tech.vth_n if self.polarity is MosfetPolarity.NMOS else tech.vth_p

    @property
    def u_cox(self) -> float:
        """Process transconductance parameter for this polarity (A/V^2)."""
        tech = self.technology
        return tech.u_cox_n if self.polarity is MosfetPolarity.NMOS else tech.u_cox_p

    @property
    def lambda_clm(self) -> float:
        """Channel-length modulation coefficient for this polarity (1/V)."""
        tech = self.technology
        return tech.lambda_n if self.polarity is MosfetPolarity.NMOS else tech.lambda_p

    @property
    def kf(self) -> float:
        """Flicker-noise coefficient for this polarity (V^2*F)."""
        tech = self.technology
        return tech.kf_n if self.polarity is MosfetPolarity.NMOS else tech.kf_p

    @property
    def beta(self) -> float:
        """Device transconductance factor ``u_cox * W / L`` (A/V^2)."""
        return self.u_cox * self.aspect_ratio

    @property
    def gate_capacitance(self) -> float:
        """Total gate-oxide capacitance ``C_ox * W * L`` (F)."""
        return self.technology.cox * self.width * self.length


@dataclass(frozen=True)
class MosfetOperatingPoint:
    """Small-signal operating point of a MOSFET at a fixed bias.

    Attributes
    ----------
    id:
        Drain current (A), always reported as a positive magnitude.
    gm:
        Gate transconductance (S).
    gds:
        Output conductance (S).
    region:
        Operating region.
    vgs / vds:
        The (polarity-normalised) terminal voltages the point was computed at.
    vov:
        Overdrive voltage ``vgs - vth`` (V); negative in cutoff.
    """

    id: float
    gm: float
    gds: float
    region: MosfetRegion
    vgs: float
    vds: float
    vov: float

    @property
    def ro(self) -> float:
        """Small-signal output resistance (ohms); infinite in cutoff."""
        if self.gds <= 0.0:
            return math.inf
        return 1.0 / self.gds

    @property
    def gm_over_id(self) -> float:
        """Transconductance efficiency gm/Id (1/V); zero in cutoff."""
        if self.id <= 0.0:
            return 0.0
        return self.gm / self.id


class Mosfet:
    """A behavioural MOSFET evaluated at explicit terminal voltages.

    The model works in polarity-normalised voltages: PMOS devices are handled
    by flipping the sign of the applied ``vgs`` / ``vds`` so that the same
    equations serve both polarities.  All currents are returned as positive
    magnitudes flowing drain-to-source (NMOS) or source-to-drain (PMOS).
    """

    def __init__(self, params: MosfetParameters) -> None:
        self.params = params

    # -- static helpers -----------------------------------------------------

    @classmethod
    def nmos(cls, width: float, length: float,
             technology: Technology = UMC65_LIKE) -> "Mosfet":
        """Construct an NMOS device."""
        return cls(MosfetParameters(width, length, MosfetPolarity.NMOS, technology))

    @classmethod
    def pmos(cls, width: float, length: float,
             technology: Technology = UMC65_LIKE) -> "Mosfet":
        """Construct a PMOS device."""
        return cls(MosfetParameters(width, length, MosfetPolarity.PMOS, technology))

    # -- normalisation ------------------------------------------------------

    def _normalise(self, vgs: float, vds: float) -> tuple[float, float]:
        """Flip signs for PMOS so the square-law equations see NMOS-like voltages."""
        if self.params.polarity is MosfetPolarity.PMOS:
            return -vgs, -vds
        return vgs, vds

    # -- DC model -----------------------------------------------------------

    def drain_current(self, vgs: float, vds: float) -> float:
        """Drain current magnitude (A) at the given terminal voltages."""
        return self.operating_point(vgs, vds).id

    def operating_point(self, vgs: float, vds: float) -> MosfetOperatingPoint:
        """Full DC operating point (current, gm, gds, region) at a bias."""
        nvgs, nvds = self._normalise(vgs, vds)
        p = self.params
        vov = nvgs - p.vth
        theta = p.technology.theta
        lam = p.lambda_clm
        beta = p.beta

        if vov <= 0.0 or nvds < 0.0:
            # Cutoff (we do not model sub-threshold conduction; the design
            # never relies on it).  Reverse vds is also treated as off.
            return MosfetOperatingPoint(
                id=0.0, gm=0.0, gds=0.0, region=MosfetRegion.CUTOFF,
                vgs=nvgs, vds=nvds, vov=vov,
            )

        # Mobility degradation: effective beta drops with overdrive.  This is
        # the third-order nonlinearity source for the transconductor.
        degradation = 1.0 + theta * vov
        beta_eff = beta / degradation
        vdsat = vov

        if nvds >= vdsat:
            # Saturation.
            id_sat = 0.5 * beta_eff * vov * vov * (1.0 + lam * nvds)
            # gm = d id / d vgs including the degradation term.
            gm = beta * vov * (1.0 + 0.5 * theta * vov) / (degradation ** 2)
            gm *= (1.0 + lam * nvds)
            gds = 0.5 * beta_eff * vov * vov * lam
            return MosfetOperatingPoint(
                id=id_sat, gm=gm, gds=gds, region=MosfetRegion.SATURATION,
                vgs=nvgs, vds=nvds, vov=vov,
            )

        # Triode.
        id_tri = beta_eff * (vov * nvds - 0.5 * nvds * nvds) * (1.0 + lam * nvds)
        gm = beta_eff * nvds * (1.0 + lam * nvds)
        gds = beta_eff * (vov - nvds) * (1.0 + lam * nvds) \
            + beta_eff * (vov * nvds - 0.5 * nvds * nvds) * lam
        return MosfetOperatingPoint(
            id=id_tri, gm=gm, gds=gds, region=MosfetRegion.TRIODE,
            vgs=nvgs, vds=nvds, vov=vov,
        )

    # -- switch behaviour ---------------------------------------------------

    def on_resistance(self, vgs: float, vds: float = 10e-3) -> float:
        """Triode-region on-resistance (ohms) at a given gate drive.

        Evaluated at a small ``vds`` so the device sits deep in triode — the
        regime the paper uses for the PMOS degeneration switches (Fig. 5a)
        and the transmission-gate load (Fig. 5b).  Returns ``inf`` when the
        device is off.  The sign of ``vds`` is normalised to the polarity, so
        callers can always pass a small positive magnitude.
        """
        if self.params.polarity is MosfetPolarity.PMOS:
            vds = -abs(vds)
        else:
            vds = abs(vds)
        op = self.operating_point(vgs, vds)
        if op.region is MosfetRegion.CUTOFF or op.id <= 0.0:
            return math.inf
        return vds / op.id if op.gds == 0.0 else max(vds / op.id, 1.0 / (op.gds + op.gm))

    def is_on(self, vgs: float) -> bool:
        """True when the gate drive exceeds the threshold (switch closed)."""
        nvgs, _ = self._normalise(vgs, 0.0)
        return nvgs > self.params.vth

    # -- bias solving -------------------------------------------------------

    def vgs_for_current(self, target_id: float, vds: float,
                        tolerance: float = 1e-12, max_iterations: int = 200) -> float:
        """Gate-source voltage that produces ``target_id`` at the given ``vds``.

        Solved by bisection on the polarity-normalised ``vgs``; the returned
        value is in the device's own sign convention (negative for PMOS).
        """
        if target_id < 0:
            raise ValueError("target drain current must be non-negative")
        if target_id == 0.0:
            return 0.0 if self.params.polarity is MosfetPolarity.NMOS else 0.0

        p = self.params
        lo = p.vth
        hi = p.vth + 3.0  # generous upper bound on the overdrive
        sign = 1.0 if p.polarity is MosfetPolarity.NMOS else -1.0
        nvds = abs(vds)

        def current_at(nvgs: float) -> float:
            return self.operating_point(sign * nvgs, sign * nvds).id

        if current_at(hi) < target_id:
            raise ValueError(
                f"target current {target_id:.3g} A is unreachable for this geometry"
            )
        for _ in range(max_iterations):
            mid = 0.5 * (lo + hi)
            if current_at(mid) < target_id:
                lo = mid
            else:
                hi = mid
            if hi - lo < tolerance:
                break
        return sign * 0.5 * (lo + hi)

    def width_for_resistance(self, target_r_on: float, vgs: float,
                             length: float | None = None) -> float:
        """Width giving a target triode on-resistance at a gate drive.

        Used when sizing the PMOS degeneration switches and the transmission
        gate: the paper states the switch W/L is "chosen to provide
        degeneration resistance".
        """
        if target_r_on <= 0:
            raise ValueError("target on-resistance must be positive")
        length = length if length is not None else self.params.length
        nvgs, _ = self._normalise(vgs, 0.0)
        vov = nvgs - self.params.vth
        if vov <= 0:
            raise ValueError("device is off at the requested gate drive")
        degradation = 1.0 + self.params.technology.theta * vov
        # Deep-triode conductance: g = beta_eff * vov.
        beta_required = 1.0 / (target_r_on * vov) * degradation
        width = beta_required * length / self.params.u_cox
        return width

    # -- noise --------------------------------------------------------------

    def thermal_noise_current_density(self, gm: float) -> float:
        """Channel thermal-noise current density ``sqrt(4 k T gamma gm)`` (A/sqrt(Hz))."""
        if gm < 0:
            raise ValueError("gm must be non-negative")
        tech = self.params.technology
        return math.sqrt(4.0 * BOLTZMANN * tech.temperature * tech.gamma_noise * gm)

    def flicker_noise_voltage_density(self, frequency: float) -> float:
        """Input-referred flicker-noise voltage density (V/sqrt(Hz)) at ``frequency``."""
        if frequency <= 0:
            raise ValueError("frequency must be positive")
        p = self.params
        psd = p.kf / (p.gate_capacitance * frequency)
        return math.sqrt(psd)

    def flicker_corner_frequency(self, gm: float) -> float:
        """Frequency where flicker noise equals channel thermal noise (Hz)."""
        if gm <= 0:
            return 0.0
        p = self.params
        tech = p.technology
        thermal_v_psd = 4.0 * BOLTZMANN * tech.temperature * tech.gamma_noise / gm
        flicker_numerator = p.kf / p.gate_capacitance
        return flicker_numerator / thermal_v_psd

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        p = self.params
        return (
            f"Mosfet({p.polarity.value}, W={p.width * 1e6:.2f}um, "
            f"L={p.length * 1e9:.0f}nm)"
        )


@dataclass(frozen=True)
class MosfetArrayOperatingPoint:
    """Elementwise small-signal operating points of a :class:`MosfetArray`.

    The array twin of :class:`MosfetOperatingPoint`: every field holds one
    value per bank element, computed by the same operation sequence as the
    scalar model, so ``bank.operating_point(vgs, vds).gm[i]`` is bit-equal
    to the corresponding scalar ``Mosfet.operating_point(...).gm``.
    """

    id: np.ndarray
    gm: np.ndarray
    gds: np.ndarray
    vgs: np.ndarray
    vds: np.ndarray
    vov: np.ndarray

    @property
    def regions(self) -> list[MosfetRegion]:
        """Operating region per element (derived from ``vov``/``vds``)."""
        cutoff = (self.vov <= 0.0) | (self.vds < 0.0)
        saturated = ~cutoff & (self.vds >= self.vov)
        out = []
        for index in range(self.id.size):
            if cutoff.flat[index]:
                out.append(MosfetRegion.CUTOFF)
            elif saturated.flat[index]:
                out.append(MosfetRegion.SATURATION)
            else:
                out.append(MosfetRegion.TRIODE)
        return out


class MosfetArray:
    """A bank of behavioural MOSFETs evaluated elementwise with NumPy.

    Geometry and technology constants may vary per element (one device per
    Monte-Carlo corner), the polarity is shared.  This is the device layer of
    the batched sizing solver: :func:`repro.core.transconductance.\
solve_widths` steps one width bisection for the whole design axis through
    this bank instead of N scalar bisections.

    **Bit-identity contract**: every derived quantity is computed with the
    same IEEE-754 operation sequence (same association order, same literal
    constants) as the scalar :class:`Mosfet`, so masked array solves return
    exactly the scalar solver's doubles — the property the golden spec pins
    rest on, gated elementwise in ``tests/test_sizing_batch.py``.
    """

    def __init__(self, widths, lengths,
                 polarity: MosfetPolarity = MosfetPolarity.NMOS,
                 technologies: Sequence[Technology] | Technology = UMC65_LIKE
                 ) -> None:
        width = np.atleast_1d(np.asarray(widths, dtype=float))
        length = np.broadcast_to(
            np.asarray(lengths, dtype=float), width.shape).astype(float)
        if width.ndim != 1:
            raise ValueError("MosfetArray widths must be one-dimensional")
        if np.any(width <= 0) or np.any(length <= 0):
            raise ValueError("MOSFET width and length must be positive")
        if isinstance(technologies, Technology):
            technologies = [technologies] * width.size
        technologies = list(technologies)
        if len(technologies) != width.size:
            raise ValueError(
                f"got {len(technologies)} technologies for {width.size} "
                "devices; they must match one-to-one (or pass a single "
                "Technology shared by the whole bank)")
        l_min = np.array([t.l_min for t in technologies], dtype=float)
        if np.any(length < l_min * 0.999):
            raise ValueError(
                "channel length below the technology minimum for at least "
                "one bank element")
        self.width = width
        self.length = length
        self.polarity = polarity
        self.technologies = technologies
        nmos = polarity is MosfetPolarity.NMOS
        self._vth = np.array(
            [t.vth_n if nmos else t.vth_p for t in technologies], dtype=float)
        self._u_cox = np.array(
            [t.u_cox_n if nmos else t.u_cox_p for t in technologies],
            dtype=float)
        self._lambda = np.array(
            [t.lambda_n if nmos else t.lambda_p for t in technologies],
            dtype=float)
        self._theta = np.array([t.theta for t in technologies], dtype=float)
        self._sign = 1.0 if nmos else -1.0

    # -- static helpers -----------------------------------------------------

    @classmethod
    def nmos(cls, widths, lengths,
             technologies: Sequence[Technology] | Technology = UMC65_LIKE
             ) -> "MosfetArray":
        """Construct an NMOS bank."""
        return cls(widths, lengths, MosfetPolarity.NMOS, technologies)

    @classmethod
    def pmos(cls, widths, lengths,
             technologies: Sequence[Technology] | Technology = UMC65_LIKE
             ) -> "MosfetArray":
        """Construct a PMOS bank."""
        return cls(widths, lengths, MosfetPolarity.PMOS, technologies)

    def __len__(self) -> int:
        return int(self.width.size)

    def with_widths(self, widths) -> "MosfetArray":
        """The same bank re-drawn at new widths (the bisection step)."""
        return MosfetArray(widths, self.length, self.polarity,
                           self.technologies)

    def element(self, index: int) -> Mosfet:
        """The scalar :class:`Mosfet` equivalent of one bank element."""
        return Mosfet(MosfetParameters(
            float(self.width[index]), float(self.length[index]),
            self.polarity, self.technologies[index]))

    @property
    def beta(self) -> np.ndarray:
        """Per-element transconductance factor ``u_cox * W / L`` (A/V^2)."""
        return self._u_cox * (self.width / self.length)

    # -- DC model -----------------------------------------------------------

    def _evaluate(self, nvgs: np.ndarray, nvds: np.ndarray,
                  current_only: bool) -> tuple[np.ndarray, ...]:
        """The square-law equations on polarity-normalised voltage arrays.

        Every arithmetic expression below mirrors a line of the scalar
        :meth:`Mosfet.operating_point` with identical association order;
        region selection happens through masks instead of branches, which
        cannot perturb the per-element doubles.
        """
        vov = nvgs - self._vth
        beta = self.beta
        theta = self._theta
        lam = self._lambda
        cutoff = (vov <= 0.0) | (nvds < 0.0)
        saturated = ~cutoff & (nvds >= vov)
        triode = ~cutoff & ~saturated
        with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
            degradation = 1.0 + theta * vov
            beta_eff = beta / degradation
            clm = 1.0 + lam * nvds
            id_sat = 0.5 * beta_eff * vov * vov * clm
            id_tri = beta_eff * (vov * nvds - 0.5 * nvds * nvds) * clm
            id_ = np.where(cutoff, 0.0, np.where(saturated, id_sat, id_tri))
            if current_only:
                return (id_,)
            # The scalar model writes ``degradation ** 2``, which CPython
            # routes through libm pow() — occasionally 1 ulp away from the
            # x*x that numpy lowers ``arr ** 2`` to.  Square per element
            # through math.pow to honour the bit-identity contract; gm is
            # only evaluated on full operating-point calls, never inside
            # the current-only bisection loop, so the Python loop is cold.
            deg_sq = np.fromiter(
                (math.pow(v, 2.0) for v in degradation.flat),
                dtype=float, count=degradation.size,
            ).reshape(degradation.shape)
            gm_sat = beta * vov * (1.0 + 0.5 * theta * vov) / deg_sq
            gm_sat = gm_sat * clm
            gds_sat = 0.5 * beta_eff * vov * vov * lam
            gm_tri = beta_eff * nvds * clm
            gds_tri = beta_eff * (vov - nvds) * clm \
                + beta_eff * (vov * nvds - 0.5 * nvds * nvds) * lam
            gm = np.where(cutoff, 0.0, np.where(saturated, gm_sat, gm_tri))
            gds = np.where(cutoff, 0.0,
                           np.where(saturated, gds_sat, gds_tri))
        return id_, gm, gds, vov

    def _normalise(self, vgs, vds) -> tuple[np.ndarray, np.ndarray]:
        """Flip signs for PMOS, exactly like the scalar model."""
        nvgs = np.broadcast_to(np.asarray(vgs, dtype=float),
                               self.width.shape).astype(float)
        nvds = np.broadcast_to(np.asarray(vds, dtype=float),
                               self.width.shape).astype(float)
        if self.polarity is MosfetPolarity.PMOS:
            return -nvgs, -nvds
        return nvgs, nvds

    def drain_current(self, vgs, vds) -> np.ndarray:
        """Per-element drain current magnitude (A); the bisection fast path."""
        nvgs, nvds = self._normalise(vgs, vds)
        (id_,) = self._evaluate(nvgs, nvds, current_only=True)
        return id_

    def operating_point(self, vgs, vds) -> MosfetArrayOperatingPoint:
        """Per-element DC operating points at (broadcastable) bias arrays."""
        nvgs, nvds = self._normalise(vgs, vds)
        id_, gm, gds, vov = self._evaluate(nvgs, nvds, current_only=False)
        return MosfetArrayOperatingPoint(id=id_, gm=gm, gds=gds,
                                         vgs=nvgs, vds=nvds, vov=vov)

    # -- bias solving -------------------------------------------------------

    def vgs_for_current(self, target_id, vds, tolerance: float = 1e-12,
                        max_iterations: int = 200) -> np.ndarray:
        """Per-element gate voltages producing ``target_id`` at ``vds``.

        The masked twin of :meth:`Mosfet.vgs_for_current`: one bisection
        loop steps every element together, and a per-element convergence
        mask freezes an element's bracket the moment it reaches the scalar
        solver's stopping width — after which further iterations cannot
        move it, so each element retraces the scalar iterate sequence
        exactly.
        """
        target = np.broadcast_to(np.asarray(target_id, dtype=float),
                                 self.width.shape).astype(float)
        if np.any(target < 0):
            raise ValueError("target drain current must be non-negative")
        nvds = np.abs(np.broadcast_to(np.asarray(vds, dtype=float),
                                      self.width.shape).astype(float))
        sign = self._sign

        lo = self._vth.copy()
        hi = self._vth + 3.0  # generous upper bound on the overdrive
        active = target > 0.0

        # The scalar solver's reachability guard, evaluated per element.
        (id_hi,) = self._evaluate(hi, nvds, current_only=True)
        unreachable = active & (id_hi < target)
        if np.any(unreachable):
            indices = np.flatnonzero(unreachable)
            shown = ", ".join(
                f"[{i}] {target[i]:.3g} A" for i in indices[:5])
            if indices.size > 5:
                shown += f", ... ({indices.size} total)"
            raise ValueError(
                "target current is unreachable for this geometry at bank "
                f"element(s): {shown}")

        for _ in range(max_iterations):
            if not np.any(active):
                break
            mid = 0.5 * (lo + hi)
            (id_mid,) = self._evaluate(mid, nvds, current_only=True)
            below = id_mid < target
            lo = np.where(active & below, mid, lo)
            hi = np.where(active & ~below, mid, hi)
            active = active & ~((hi - lo) < tolerance)
        return np.where(target == 0.0, 0.0, sign * 0.5 * (lo + hi))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"MosfetArray({self.polarity.value}, n={len(self)}, "
                f"W=[{self.width.min() * 1e6:.2f}.."
                f"{self.width.max() * 1e6:.2f}]um)")
