"""Passive component models (resistor, capacitor, inductor).

These are deliberately small classes: each knows its impedance as a function
of frequency and its thermal-noise contribution where applicable.  The
circuit substrate (:mod:`repro.circuit`) stamps them into MNA matrices; the
behavioural RF models use them directly for feedback and load impedances
(``R_F || C_F`` of the TIA, the transmission-gate load with ``C_c``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.units import BOLTZMANN, T0_KELVIN


@dataclass(frozen=True)
class Resistor:
    """An ideal resistor with optional temperature for noise calculations."""

    resistance: float
    temperature: float = T0_KELVIN

    def __post_init__(self) -> None:
        if self.resistance < 0:
            raise ValueError("resistance must be non-negative")

    def impedance(self, frequency: float) -> complex:
        """Impedance at ``frequency`` (frequency-independent)."""
        return complex(self.resistance, 0.0)

    def admittance(self, frequency: float) -> complex:
        """Admittance at ``frequency``; infinite resistance gives zero."""
        if self.resistance == 0:
            raise ZeroDivisionError("admittance of a short is unbounded")
        return 1.0 / self.impedance(frequency)

    def noise_voltage_density(self) -> float:
        """Thermal-noise voltage spectral density (V/sqrt(Hz))."""
        return math.sqrt(4.0 * BOLTZMANN * self.temperature * self.resistance)

    def noise_current_density(self) -> float:
        """Thermal-noise current spectral density (A/sqrt(Hz))."""
        if self.resistance == 0:
            return 0.0
        return math.sqrt(4.0 * BOLTZMANN * self.temperature / self.resistance)


@dataclass(frozen=True)
class Capacitor:
    """An ideal capacitor."""

    capacitance: float

    def __post_init__(self) -> None:
        if self.capacitance <= 0:
            raise ValueError("capacitance must be positive")

    def impedance(self, frequency: float) -> complex:
        """Impedance at ``frequency``; DC gives an open circuit (inf)."""
        if frequency == 0:
            return complex(math.inf, 0.0)
        return 1.0 / (1j * 2.0 * math.pi * frequency * self.capacitance)

    def admittance(self, frequency: float) -> complex:
        """Admittance at ``frequency``."""
        return 1j * 2.0 * math.pi * frequency * self.capacitance

    def pole_frequency(self, resistance: float) -> float:
        """-3 dB frequency of the RC formed with ``resistance`` (Hz)."""
        if resistance <= 0:
            raise ValueError("resistance must be positive")
        return 1.0 / (2.0 * math.pi * resistance * self.capacitance)


@dataclass(frozen=True)
class Inductor:
    """An ideal inductor with an optional series resistance (finite Q)."""

    inductance: float
    series_resistance: float = 0.0

    def __post_init__(self) -> None:
        if self.inductance <= 0:
            raise ValueError("inductance must be positive")
        if self.series_resistance < 0:
            raise ValueError("series resistance must be non-negative")

    def impedance(self, frequency: float) -> complex:
        """Impedance at ``frequency``."""
        return self.series_resistance + 1j * 2.0 * math.pi * frequency * self.inductance

    def quality_factor(self, frequency: float) -> float:
        """Quality factor at ``frequency``; infinite for a lossless inductor."""
        if self.series_resistance == 0:
            return math.inf
        return 2.0 * math.pi * frequency * self.inductance / self.series_resistance

    def resonance_with(self, capacitance: float) -> float:
        """Resonant frequency with a parallel/series capacitor (Hz)."""
        if capacitance <= 0:
            raise ValueError("capacitance must be positive")
        return 1.0 / (2.0 * math.pi * math.sqrt(self.inductance * capacitance))


def feedback_impedance(resistance: float, capacitance: float,
                       frequency: float | np.ndarray) -> complex | np.ndarray:
    """Impedance of a parallel RC feedback network ``R_F || C_F``.

    This is the ``Z_F`` of the paper's equation (3): the passive-mode
    conversion gain is ``(2/pi) * gm * Z_F`` and the TIA bandwidth is the RC
    pole of this network.  ``frequency`` may be a scalar (returns a plain
    ``complex``) or an array (returns a complex array) — the vectorized form
    is what the sweep engine's gain paths evaluate whole IF grids through,
    so this function stays the single source of truth for Z_F.
    """
    if resistance <= 0 or capacitance <= 0:
        raise ValueError("feedback R and C must be positive")
    f = np.asarray(frequency, dtype=float)
    admittance = 1.0 / resistance + 1j * 2.0 * math.pi * f * capacitance
    # DC is exactly R (matches Capacitor.impedance's open-circuit limit
    # without a last-ulp 1/(1/R) round trip).
    z = np.where(f == 0, complex(resistance, 0.0), 1.0 / admittance)
    return z if np.ndim(frequency) else complex(z)
