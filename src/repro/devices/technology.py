"""Process technology description for a 65 nm-class RF CMOS node.

The numbers here are representative of published 65 nm low-power RF CMOS
processes (V_th around 0.3-0.4 V, 1.2 V core supply, ~2 nm effective oxide).
They are *not* the proprietary UMC PDK values; the library only relies on
them being in the right ballpark so that bias points, switch resistances and
noise densities land where the paper's design text says they do.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, fields, replace


@dataclass(frozen=True)
class Technology:
    """A bundle of process constants shared by all device models.

    Attributes
    ----------
    name:
        Human-readable identifier of the process corner.
    vdd:
        Nominal core supply voltage (V).
    vth_n / vth_p:
        Zero-bias threshold voltages of NMOS / PMOS devices (V); the PMOS
        value is given as a positive magnitude.
    u_cox_n / u_cox_p:
        Process transconductance parameter ``mu * C_ox`` (A/V^2) of NMOS and
        PMOS devices.
    lambda_n / lambda_p:
        Channel-length modulation coefficients (1/V) at the minimum length.
    theta:
        Mobility-degradation / velocity-saturation coefficient (1/V) used by
        the behavioural I-V model; this is the dominant source of odd-order
        nonlinearity (and therefore IIP3) in the transconductor.
    gamma_noise:
        Channel thermal-noise coefficient (2/3 long-channel, ~1.0-1.3 for
        short-channel 65 nm devices).
    kf_n / kf_p:
        Flicker-noise coefficients (V^2*F) for NMOS / PMOS; PMOS devices are
        quieter, which is why the switching quad uses NMOS only where it must.
    cox:
        Gate-oxide capacitance per unit area (F/m^2).
    l_min:
        Minimum drawn channel length (m).
    temperature:
        Simulation temperature (K).
    """

    name: str = "umc65-like"
    vdd: float = 1.2
    vth_n: float = 0.35
    vth_p: float = 0.33
    u_cox_n: float = 180e-6
    u_cox_p: float = 80e-6
    lambda_n: float = 0.20
    lambda_p: float = 0.25
    theta: float = 0.65
    gamma_noise: float = 1.1
    kf_n: float = 2.5e-25
    kf_p: float = 8.0e-26
    cox: float = 0.016
    l_min: float = 65e-9
    temperature: float = 300.0

    def scaled_supply(self, vdd: float) -> "Technology":
        """Return a copy of the technology with a different supply voltage."""
        if vdd <= 0:
            raise ValueError("supply voltage must be positive")
        return replace(self, vdd=vdd)

    def corner(self, name: str, vth_shift: float = 0.0,
               mobility_scale: float = 1.0) -> "Technology":
        """Derive a simple process corner.

        ``vth_shift`` is added to both threshold voltages; ``mobility_scale``
        multiplies both transconductance parameters.  This is deliberately a
        coarse model — enough to exercise corner sweeps in tests and
        benchmarks without pretending to be a foundry corner file.
        """
        if mobility_scale <= 0:
            raise ValueError("mobility_scale must be positive")
        return replace(
            self,
            name=name,
            vth_n=self.vth_n + vth_shift,
            vth_p=self.vth_p + vth_shift,
            u_cox_n=self.u_cox_n * mobility_scale,
            u_cox_p=self.u_cox_p * mobility_scale,
        )

    @property
    def mid_rail(self) -> float:
        """Common-mode voltage used by the design (VDD / 2, per the paper)."""
        return self.vdd / 2.0

    # -- serialization --------------------------------------------------------

    def to_dict(self) -> dict:
        """Every process constant as plain JSON types (field name -> value)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "Technology":
        """Rebuild a technology record from :meth:`to_dict` output.

        The round-trip is exact: ``name`` is a string and every other field a
        float, both of which JSON preserves bit-for-bit.  Unknown keys raise
        ``ValueError`` so a payload from a newer schema is never silently
        truncated into a different process.
        """
        if not isinstance(payload, dict):
            raise TypeError("technology payload must be a mapping")
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ValueError(f"unknown technology fields: {unknown}")
        values: dict = {}
        for name in payload:
            value = payload[name]
            if name == "name":
                if not isinstance(value, str):
                    raise TypeError("technology name must be a string")
                values[name] = value
            else:
                if isinstance(value, bool) or not isinstance(value, (int, float)):
                    raise TypeError(f"technology field {name!r} must be a "
                                    f"number, got {type(value).__name__}")
                values[name] = float(value)
        return cls(**values)


#: The default technology instance used throughout the library.
UMC65_LIKE = Technology()


def nominal_technology() -> Technology:
    """Return the nominal 65 nm-class technology used by the paper's design."""
    return UMC65_LIKE


def slow_corner() -> Technology:
    """Slow-slow corner: higher thresholds, lower mobility."""
    return UMC65_LIKE.corner("umc65-like-ss", vth_shift=+0.04, mobility_scale=0.9)


def fast_corner() -> Technology:
    """Fast-fast corner: lower thresholds, higher mobility."""
    return UMC65_LIKE.corner("umc65-like-ff", vth_shift=-0.04, mobility_scale=1.1)
