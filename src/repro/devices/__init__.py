"""Behavioural device models for a 65 nm-class CMOS technology.

The paper's circuit is designed in UMC 65 nm RFCMOS.  That PDK is
proprietary, so this package provides open, behavioural equivalents:

* :mod:`repro.devices.technology` — a :class:`Technology` record holding the
  65 nm-class process constants (threshold voltages, mobility, oxide
  capacitance, flicker-noise coefficients, supply voltage) used everywhere
  else in the library;
* :mod:`repro.devices.mosfet` — a square-law + velocity-saturation MOSFET
  model with operating-point extraction (``id``, ``gm``, ``gds``, ``ro``) and
  triode-region switch behaviour (``r_on``);
* :mod:`repro.devices.passives` — resistors, capacitors and inductors with
  simple parasitic models;
* :mod:`repro.devices.noise` — thermal, flicker and shot noise sources and
  helpers to combine their spectral densities.
"""

from repro.devices.technology import Technology, UMC65_LIKE, nominal_technology
from repro.devices.mosfet import (
    MosfetParameters,
    Mosfet,
    MosfetArray,
    MosfetArrayOperatingPoint,
    MosfetOperatingPoint,
    MosfetRegion,
)
from repro.devices.passives import Resistor, Capacitor, Inductor
from repro.devices.noise import (
    NoiseSource,
    ThermalNoise,
    FlickerNoise,
    ShotNoise,
    CompositeNoise,
)

__all__ = [
    "Technology",
    "UMC65_LIKE",
    "nominal_technology",
    "MosfetParameters",
    "Mosfet",
    "MosfetArray",
    "MosfetArrayOperatingPoint",
    "MosfetOperatingPoint",
    "MosfetRegion",
    "Resistor",
    "Capacitor",
    "Inductor",
    "NoiseSource",
    "ThermalNoise",
    "FlickerNoise",
    "ShotNoise",
    "CompositeNoise",
]
