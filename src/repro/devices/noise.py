"""Noise-source models: thermal, flicker (1/f) and shot noise.

Every source exposes ``voltage_psd(frequency)`` returning a one-sided power
spectral density in V^2/Hz (input-referred), so sources can be summed
directly.  The mixer's noise-figure model (:mod:`repro.rf.noise_figure`)
builds its curves from these primitives: white thermal noise sets the NF
floor and the flicker sources set the low-IF corner that Fig. 9 reports.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.units import BOLTZMANN, ELECTRON_CHARGE, T0_KELVIN


class NoiseSource:
    """Interface for all noise sources (one-sided voltage PSD in V^2/Hz)."""

    def voltage_psd(self, frequency: float | np.ndarray) -> float | np.ndarray:
        """One-sided voltage power spectral density at ``frequency`` (V^2/Hz)."""
        raise NotImplementedError

    def voltage_density(self, frequency: float | np.ndarray) -> float | np.ndarray:
        """Voltage spectral density (V/sqrt(Hz))."""
        return np.sqrt(self.voltage_psd(frequency))

    def integrated_rms(self, f_low: float, f_high: float, points: int = 2001) -> float:
        """RMS noise voltage integrated between two frequencies (V)."""
        if f_low <= 0 or f_high <= f_low:
            raise ValueError("need 0 < f_low < f_high")
        freqs = np.logspace(math.log10(f_low), math.log10(f_high), points)
        psd = np.asarray(self.voltage_psd(freqs), dtype=float)
        return float(np.sqrt(np.trapezoid(psd, freqs)))


@dataclass(frozen=True)
class ThermalNoise(NoiseSource):
    """White thermal noise of a resistance (or an equivalent 4kTgamma/gm term)."""

    resistance: float
    temperature: float = T0_KELVIN

    def __post_init__(self) -> None:
        if self.resistance < 0:
            raise ValueError("resistance must be non-negative")

    def voltage_psd(self, frequency: float | np.ndarray) -> float | np.ndarray:
        psd = 4.0 * BOLTZMANN * self.temperature * self.resistance
        return np.full_like(np.asarray(frequency, dtype=float), psd) \
            if np.ndim(frequency) else psd

    @classmethod
    def from_gm(cls, gm: float, gamma: float = 1.1,
                temperature: float = T0_KELVIN) -> "ThermalNoise":
        """Channel thermal noise of a MOSFET expressed as an equivalent resistance."""
        if gm <= 0:
            raise ValueError("gm must be positive")
        return cls(resistance=gamma / gm, temperature=temperature)


@dataclass(frozen=True)
class FlickerNoise(NoiseSource):
    """1/f noise with PSD ``k_flicker / f``.

    ``k_flicker`` has units of V^2 (PSD times frequency); it is usually
    derived from a device's ``K_f / (C_ox W L)``.
    """

    k_flicker: float
    exponent: float = 1.0

    def __post_init__(self) -> None:
        if self.k_flicker < 0:
            raise ValueError("flicker coefficient must be non-negative")
        if not 0.5 <= self.exponent <= 2.0:
            raise ValueError("flicker exponent outside the physical range [0.5, 2]")

    def voltage_psd(self, frequency: float | np.ndarray) -> float | np.ndarray:
        freq = np.asarray(frequency, dtype=float)
        if np.any(freq <= 0):
            raise ValueError("flicker PSD requires positive frequency")
        psd = self.k_flicker / np.power(freq, self.exponent)
        return psd if np.ndim(frequency) else float(psd)

    def corner_with(self, white: "ThermalNoise") -> float:
        """Frequency at which this 1/f source equals a white source (Hz)."""
        white_psd = float(white.voltage_psd(1.0))
        if white_psd <= 0:
            return math.inf
        return (self.k_flicker / white_psd) ** (1.0 / self.exponent)


@dataclass(frozen=True)
class ShotNoise(NoiseSource):
    """Shot noise of a DC current, referred through a transresistance."""

    dc_current: float
    transresistance: float = 1.0

    def __post_init__(self) -> None:
        if self.dc_current < 0:
            raise ValueError("DC current must be non-negative")
        if self.transresistance < 0:
            raise ValueError("transresistance must be non-negative")

    def voltage_psd(self, frequency: float | np.ndarray) -> float | np.ndarray:
        current_psd = 2.0 * ELECTRON_CHARGE * self.dc_current
        psd = current_psd * self.transresistance ** 2
        return np.full_like(np.asarray(frequency, dtype=float), psd) \
            if np.ndim(frequency) else psd


class CompositeNoise(NoiseSource):
    """Sum of independent noise sources (PSDs add)."""

    def __init__(self, sources: Iterable[NoiseSource] = ()) -> None:
        self._sources: list[NoiseSource] = list(sources)

    def add(self, source: NoiseSource) -> "CompositeNoise":
        """Add a source and return self (chainable)."""
        self._sources.append(source)
        return self

    @property
    def sources(self) -> Sequence[NoiseSource]:
        """The individual sources (read-only view)."""
        return tuple(self._sources)

    def voltage_psd(self, frequency: float | np.ndarray) -> float | np.ndarray:
        if not self._sources:
            return np.zeros_like(np.asarray(frequency, dtype=float)) \
                if np.ndim(frequency) else 0.0
        total = None
        for source in self._sources:
            psd = source.voltage_psd(frequency)
            total = psd if total is None else total + psd
        return total

    def flicker_corner(self, f_low: float = 1e2, f_high: float = 1e8,
                       points: int = 4001) -> float:
        """Estimate the 1/f corner: where the PSD is 3 dB above the white floor.

        The white floor is taken as the PSD at the highest evaluated
        frequency.  Returns ``f_low`` if the composite is already within
        3 dB of the floor everywhere (i.e. no visible corner).
        """
        freqs = np.logspace(math.log10(f_low), math.log10(f_high), points)
        psd = np.asarray(self.voltage_psd(freqs), dtype=float)
        floor = psd[-1]
        if floor <= 0:
            return math.inf
        above = psd > 2.0 * floor
        if not np.any(above):
            return float(f_low)
        last_above = int(np.max(np.nonzero(above)))
        if last_above + 1 >= len(freqs):
            return float(f_high)
        return float(freqs[last_above + 1])
