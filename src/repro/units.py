"""Unit conversions and small quantity helpers used across the library.

The RF literature mixes logarithmic (dB, dBm) and linear (V/V, W, V_rms)
quantities freely; every experiment in the paper reports gains in dB and
powers in dBm referenced to a 50 ohm system.  Centralising the conversions
here keeps the rest of the code free of scattered ``10 * log10`` calls and
makes the reference impedance explicit.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

import numpy as np

#: Default reference impedance for dBm <-> voltage conversions (ohms).
REFERENCE_IMPEDANCE = 50.0

#: Boltzmann constant (J/K).
BOLTZMANN = 1.380649e-23

#: Standard noise-figure reference temperature (K), per IEEE definition.
T0_KELVIN = 290.0

#: Elementary charge (C), used by shot-noise models.
ELECTRON_CHARGE = 1.602176634e-19


# ---------------------------------------------------------------------------
# decibel helpers
# ---------------------------------------------------------------------------

def db_from_power_ratio(ratio: float | np.ndarray) -> float | np.ndarray:
    """Convert a power ratio to decibels (``10 log10``)."""
    return 10.0 * np.log10(ratio)


def power_ratio_from_db(db: float | np.ndarray) -> float | np.ndarray:
    """Convert decibels to a power ratio."""
    return np.power(10.0, np.asarray(db, dtype=float) / 10.0)


def db_from_voltage_ratio(ratio: float | np.ndarray) -> float | np.ndarray:
    """Convert a voltage ratio to decibels (``20 log10``)."""
    return 20.0 * np.log10(ratio)


def voltage_ratio_from_db(db: float | np.ndarray) -> float | np.ndarray:
    """Convert decibels to a voltage ratio."""
    return np.power(10.0, np.asarray(db, dtype=float) / 20.0)


# ---------------------------------------------------------------------------
# power helpers
# ---------------------------------------------------------------------------

def dbm_from_watts(power_watts: float | np.ndarray) -> float | np.ndarray:
    """Convert power in watts to dBm."""
    return 10.0 * np.log10(np.asarray(power_watts, dtype=float) / 1e-3)


def watts_from_dbm(power_dbm: float | np.ndarray) -> float | np.ndarray:
    """Convert dBm to watts."""
    return 1e-3 * np.power(10.0, np.asarray(power_dbm, dtype=float) / 10.0)


def dbm_from_vpeak(v_peak: float | np.ndarray,
                   impedance: float = REFERENCE_IMPEDANCE) -> float | np.ndarray:
    """Power in dBm of a sinusoid of peak amplitude ``v_peak`` into ``impedance``."""
    v_peak = np.asarray(v_peak, dtype=float)
    power_watts = v_peak ** 2 / (2.0 * impedance)
    return dbm_from_watts(power_watts)


def vpeak_from_dbm(power_dbm: float | np.ndarray,
                   impedance: float = REFERENCE_IMPEDANCE) -> float | np.ndarray:
    """Peak sinusoid amplitude corresponding to a power in dBm into ``impedance``."""
    power_watts = watts_from_dbm(power_dbm)
    return np.sqrt(2.0 * impedance * power_watts)


def vrms_from_dbm(power_dbm: float | np.ndarray,
                  impedance: float = REFERENCE_IMPEDANCE) -> float | np.ndarray:
    """RMS voltage corresponding to a power in dBm into ``impedance``."""
    return vpeak_from_dbm(power_dbm, impedance) / math.sqrt(2.0)


def dbm_from_vrms(v_rms: float | np.ndarray,
                  impedance: float = REFERENCE_IMPEDANCE) -> float | np.ndarray:
    """Power in dBm of an RMS voltage into ``impedance``."""
    v_rms = np.asarray(v_rms, dtype=float)
    return dbm_from_watts(v_rms ** 2 / impedance)


# ---------------------------------------------------------------------------
# frequency / engineering notation helpers
# ---------------------------------------------------------------------------

_SI_PREFIXES = (
    (1e12, "T"), (1e9, "G"), (1e6, "M"), (1e3, "k"),
    (1.0, ""), (1e-3, "m"), (1e-6, "u"), (1e-9, "n"),
    (1e-12, "p"), (1e-15, "f"),
)


def format_si(value: float, unit: str = "", digits: int = 3) -> str:
    """Format ``value`` with an SI prefix, e.g. ``format_si(2.4e9, 'Hz')`` -> ``'2.4 GHz'``."""
    if value == 0.0:
        return f"0 {unit}".rstrip()
    magnitude = abs(value)
    for scale, prefix in _SI_PREFIXES:
        if magnitude >= scale:
            scaled = value / scale
            return f"{scaled:.{digits}g} {prefix}{unit}".rstrip()
    scale, prefix = _SI_PREFIXES[-1]
    return f"{value / scale:.{digits}g} {prefix}{unit}".rstrip()


def ghz(value: float) -> float:
    """Frequency given in GHz, returned in Hz."""
    return value * 1e9


def mhz(value: float) -> float:
    """Frequency given in MHz, returned in Hz."""
    return value * 1e6


def khz(value: float) -> float:
    """Frequency given in kHz, returned in Hz."""
    return value * 1e3


def logspace(start_hz: float, stop_hz: float, points: int) -> np.ndarray:
    """Logarithmically spaced frequency grid between two frequencies in Hz."""
    if start_hz <= 0 or stop_hz <= 0:
        raise ValueError("logspace endpoints must be positive frequencies")
    return np.logspace(math.log10(start_hz), math.log10(stop_hz), points)


def linspace(start_hz: float, stop_hz: float, points: int) -> np.ndarray:
    """Linearly spaced frequency grid between two frequencies in Hz."""
    return np.linspace(start_hz, stop_hz, points)


# ---------------------------------------------------------------------------
# misc numeric helpers
# ---------------------------------------------------------------------------

def parallel(*impedances: float | complex) -> float | complex:
    """Parallel combination of impedances/resistances.

    Zero-valued branches short the combination; an empty call is an error.
    """
    if not impedances:
        raise ValueError("parallel() needs at least one impedance")
    if any(z == 0 for z in impedances):
        return 0.0
    admittance = sum(1.0 / z for z in impedances)
    return 1.0 / admittance


def series(*impedances: float | complex) -> float | complex:
    """Series combination of impedances (simple sum, provided for symmetry)."""
    if not impedances:
        raise ValueError("series() needs at least one impedance")
    return sum(impedances)


def thermal_noise_voltage_density(resistance: float,
                                  temperature: float = T0_KELVIN) -> float:
    """One-sided thermal noise voltage spectral density of a resistor (V/sqrt(Hz))."""
    if resistance < 0:
        raise ValueError("resistance must be non-negative")
    return math.sqrt(4.0 * BOLTZMANN * temperature * resistance)


def thermal_noise_current_density(conductance: float,
                                  temperature: float = T0_KELVIN) -> float:
    """One-sided thermal noise current spectral density of a conductance (A/sqrt(Hz))."""
    if conductance < 0:
        raise ValueError("conductance must be non-negative")
    return math.sqrt(4.0 * BOLTZMANN * temperature * conductance)


def clamp(value: float, low: float, high: float) -> float:
    """Clamp ``value`` into the closed interval [low, high]."""
    if low > high:
        raise ValueError("clamp() requires low <= high")
    return max(low, min(high, value))


def geometric_mean(values: Sequence[float] | Iterable[float]) -> float:
    """Geometric mean of positive values (used for band-centre calculations)."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ValueError("geometric_mean() of empty sequence")
    if np.any(arr <= 0):
        raise ValueError("geometric_mean() requires positive values")
    return float(np.exp(np.mean(np.log(arr))))
