"""Conversion-gain theory and measurement for commutating mixers.

Two views of the same quantity:

* the *theory* helpers implement the switching-function expressions the
  paper quotes — a hard-switched quad multiplies the RF current by a square
  wave whose fundamental coefficient gives the 2/pi factor of equation (3),
  ``VCG = (2/pi) * gm * Z_F`` for the passive mode and the analogous
  ``(2/pi) * gm * R_load`` for the active Gilbert cell;
* :func:`measure_conversion_gain` measures the gain of an actual
  waveform-level device by injecting an RF tone and reading the IF tone off
  the output spectrum, which is how the Fig. 8 / Fig. 9 gain curves are
  regenerated.
"""

from __future__ import annotations

import math

import numpy as np

# WaveformTransfer is re-exported for backwards compatibility; the
# canonical definition lives in repro.rf.signal.
from repro.rf.signal import Tone, WaveformTransfer, sample_times  # noqa: F401
from repro.rf.spectrum import Spectrum
from repro.units import db_from_voltage_ratio

#: Fundamental Fourier coefficient of a +-1 square wave divided by 2 — the
#: voltage conversion factor of an ideal hard-switched commutating mixer.
SWITCHING_FACTOR = 2.0 / math.pi


def switching_mixer_voltage_gain(gm: float | np.ndarray,
                                 load_impedance: float | np.ndarray
                                 ) -> float | np.ndarray:
    """Linear voltage conversion gain of an ideal commutating mixer.

    ``(2/pi) * gm * |Z_load|`` — equation (3) of the paper with ``Z_F`` as
    the load, equally applicable to the active mode with the transmission
    gate resistance as the load.  Both arguments broadcast, so a sweep can
    combine a vector of effective gm values with a vector of load magnitudes
    in one call; scalar inputs return a plain ``float``.
    """
    gm_arr = np.asarray(gm, dtype=float)
    load_arr = np.asarray(load_impedance, dtype=float)
    if np.any(gm_arr <= 0):
        raise ValueError("gm must be positive")
    if np.any(load_arr <= 0):
        raise ValueError("load impedance magnitude must be positive")
    gain = SWITCHING_FACTOR * gm_arr * load_arr
    return gain if np.ndim(gm) or np.ndim(load_impedance) else float(gain)


def passive_mixer_gain_db(gm: float, feedback_resistance: float,
                          feedback_capacitance: float,
                          if_frequency: float | np.ndarray) -> float | np.ndarray:
    """Passive-mode conversion gain in dB at a given IF frequency.

    The load is the TIA feedback network ``R_F || C_F`` (equation 3); its RC
    pole is what rolls the gain off at high IF in Fig. 9.  ``if_frequency``
    may be an array, in which case the whole gain curve comes back at once.
    """
    from repro.devices.passives import feedback_impedance

    z_f = np.abs(feedback_impedance(feedback_resistance, feedback_capacitance,
                                    if_frequency))
    result = db_from_voltage_ratio(switching_mixer_voltage_gain(gm, z_f))
    return result if np.ndim(if_frequency) else float(result)


def active_mixer_gain_db(gm: float, load_resistance: float,
                         load_capacitance: float | None = None,
                         if_frequency: float | np.ndarray | None = None
                         ) -> float | np.ndarray:
    """Active-mode (Gilbert cell) conversion gain in dB.

    The load is the transmission-gate resistance, optionally shunted by the
    low-pass capacitor ``C_c`` when an IF frequency (scalar or array) is
    given.
    """
    if load_capacitance is not None and if_frequency is not None:
        from repro.devices.passives import feedback_impedance

        load = np.abs(feedback_impedance(load_resistance, load_capacitance,
                                         if_frequency))
    else:
        load = load_resistance
    result = db_from_voltage_ratio(switching_mixer_voltage_gain(gm, load))
    return result if np.ndim(if_frequency) else float(result)


def measure_conversion_gain(device: WaveformTransfer, rf_frequency: float,
                            if_frequency: float, input_power_dbm: float,
                            sample_rate: float, num_samples: int) -> float:
    """Measure the conversion gain (dB) of a waveform-level mixer model.

    A single RF tone at ``input_power_dbm`` is applied and the output power
    at ``if_frequency`` compared against the input power; because both are
    expressed in dBm into the same reference impedance the difference is the
    conversion gain in dB.
    """
    if input_power_dbm > -20.0:
        raise ValueError(
            "use a small-signal input (<= -20 dBm) for conversion-gain "
            "measurements to stay clear of compression")
    times = sample_times(sample_rate, num_samples)
    tone = Tone(rf_frequency, input_power_dbm)
    output = device(tone.waveform(times))
    spectrum = Spectrum(output, sample_rate)
    output_dbm = spectrum.power_dbm_at(if_frequency)
    return output_dbm - input_power_dbm


def image_rejection_ratio_db(device: WaveformTransfer, rf_frequency: float,
                             image_frequency: float, if_frequency: float,
                             input_power_dbm: float, sample_rate: float,
                             num_samples: int) -> float:
    """Ratio of wanted-band to image-band conversion gain (dB).

    A direct-conversion/low-IF receiver cares about how much the image
    frequency is suppressed; for the single-path behavioural models here the
    value is near 0 dB (no complex image rejection), but the measurement is
    provided for front-end experiments that add polyphase filtering.
    """
    wanted = measure_conversion_gain(device, rf_frequency, if_frequency,
                                     input_power_dbm, sample_rate, num_samples)
    image = measure_conversion_gain(device, image_frequency, if_frequency,
                                    input_power_dbm, sample_rate, num_samples)
    return wanted - image
