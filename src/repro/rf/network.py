"""50 ohm interface calculations: reflection, VSWR, available power.

The paper's front end takes the differential RF input through a balun with a
50 ohm input termination; these helpers quantify how imperfect terminations
affect the power actually delivered to the transconductor.
"""

from __future__ import annotations

import math


from repro.units import REFERENCE_IMPEDANCE


def reflection_coefficient(load_impedance: complex,
                           source_impedance: complex = REFERENCE_IMPEDANCE
                           ) -> complex:
    """Voltage reflection coefficient of ``load`` against ``source``."""
    denominator = load_impedance + source_impedance
    if denominator == 0:
        raise ValueError("load and source impedances sum to zero")
    return (load_impedance - source_impedance) / denominator


def return_loss_db(load_impedance: complex,
                   source_impedance: complex = REFERENCE_IMPEDANCE) -> float:
    """Return loss in dB (positive number; larger is better matched)."""
    gamma = abs(reflection_coefficient(load_impedance, source_impedance))
    if gamma == 0:
        return math.inf
    return -20.0 * math.log10(gamma)


def vswr(load_impedance: complex,
         source_impedance: complex = REFERENCE_IMPEDANCE) -> float:
    """Voltage standing-wave ratio of the termination."""
    gamma = abs(reflection_coefficient(load_impedance, source_impedance))
    if gamma >= 1.0:
        return math.inf
    return (1.0 + gamma) / (1.0 - gamma)


def mismatch_loss_db(load_impedance: complex,
                     source_impedance: complex = REFERENCE_IMPEDANCE) -> float:
    """Power lost to the impedance mismatch (dB, non-negative)."""
    gamma = abs(reflection_coefficient(load_impedance, source_impedance))
    transmitted = 1.0 - gamma ** 2
    if transmitted <= 0:
        return math.inf
    return -10.0 * math.log10(transmitted)


def available_power_dbm(source_voltage_peak: float,
                        source_impedance: float = REFERENCE_IMPEDANCE) -> float:
    """Available power of a source (delivered into a conjugate match), in dBm."""
    if source_impedance <= 0:
        raise ValueError("source impedance must be positive")
    # Available power = Vs^2 / (8 * Rs) for a peak open-circuit voltage Vs.
    power_watts = source_voltage_peak ** 2 / (8.0 * source_impedance)
    if power_watts <= 0:
        return -math.inf
    return 10.0 * math.log10(power_watts / 1e-3)


def delivered_power_dbm(source_voltage_peak: float, load_impedance: complex,
                        source_impedance: float = REFERENCE_IMPEDANCE) -> float:
    """Power delivered to an arbitrary load from a matched-source generator (dBm)."""
    if source_impedance <= 0:
        raise ValueError("source impedance must be positive")
    z_total = load_impedance + source_impedance
    current_peak = source_voltage_peak / abs(z_total)
    power_watts = 0.5 * current_peak ** 2 * load_impedance.real
    if power_watts <= 0:
        return -math.inf
    return 10.0 * math.log10(power_watts / 1e-3)


def balun_output_amplitudes(input_peak: float, loss_db: float = 0.0,
                            imbalance_db: float = 0.0,
                            ) -> tuple[float, float]:
    """Differential output amplitudes of a balun given loss and imbalance.

    An ideal lossless balun splits the input into two anti-phase halves.
    ``loss_db`` is the total insertion loss and ``imbalance_db`` a gain
    imbalance between the two outputs (half added to one leg, half removed
    from the other).
    """
    if loss_db < 0:
        raise ValueError("insertion loss cannot be negative")
    scale = 10.0 ** (-loss_db / 20.0)
    half = input_peak * scale / 2.0
    delta = 10.0 ** (imbalance_db / 40.0)
    return half * delta, half / delta
