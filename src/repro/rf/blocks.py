"""Memoryless behavioural RF blocks and cascade formulas.

A :class:`BehavioralBlock` models an RF stage by the four numbers designers
actually quote — voltage gain, noise figure, IIP3 and output swing limit —
and turns them into a waveform-level transfer function:

``v_out = a1*v + a3*v^3`` followed by a soft output-swing clamp,

where ``a1`` comes from the gain and ``a3`` from the IIP3 (the standard
third-order two-tone relationship ``A_IIP3^2 = (4/3)|a1/a3|``).  Optionally a
second-order term ``a2`` models finite IIP2 (mismatch-driven in a
differential design, hence very small by default).

The cascade helpers implement the textbook formulas the paper's architecture
discussion leans on: Friis for noise figure and the reciprocal-sum rule for
IIP3.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Sequence

import numpy as np

from repro.units import (
    REFERENCE_IMPEDANCE,
    vpeak_from_dbm,
    dbm_from_vpeak,
    voltage_ratio_from_db,
    power_ratio_from_db,
)


@dataclass(frozen=True)
class BehavioralBlock:
    """A memoryless behavioural RF stage.

    Attributes
    ----------
    name:
        Label used in reports.
    gain_db:
        Small-signal voltage gain in dB (may be negative for lossy stages).
    nf_db:
        Spot noise figure in dB (white part; flicker is layered on top by the
        noise model in :mod:`repro.rf.noise_figure`).
    iip3_dbm:
        Input-referred third-order intercept point in dBm (50 ohm).  ``None``
        or ``math.inf`` means the stage is treated as perfectly linear in its
        third-order term.
    iip2_dbm:
        Input-referred second-order intercept point in dBm; defaults to a
        very high value because the design is fully differential.
    output_swing_limit:
        Peak output voltage where the stage hard-limits (OTA/output-stage
        swing).  ``None`` disables clamping.
    input_impedance / output_impedance:
        Port impedances (ohms), used by interface/power calculations.
    """

    name: str
    gain_db: float
    nf_db: float = 0.0
    iip3_dbm: float | None = None
    iip2_dbm: float | None = None
    output_swing_limit: float | None = None
    input_impedance: float = REFERENCE_IMPEDANCE
    output_impedance: float = REFERENCE_IMPEDANCE

    def __post_init__(self) -> None:
        if self.nf_db < 0:
            raise ValueError("noise figure cannot be below 0 dB")
        if self.output_swing_limit is not None and self.output_swing_limit <= 0:
            raise ValueError("output swing limit must be positive")

    # -- linear/polynomial coefficients ---------------------------------------

    @property
    def linear_gain(self) -> float:
        """Voltage gain as a linear ratio a1."""
        return float(voltage_ratio_from_db(self.gain_db))

    @property
    def a1(self) -> float:
        """First-order (linear) coefficient."""
        return self.linear_gain

    @property
    def a3(self) -> float:
        """Third-order coefficient implied by the IIP3 (negative: compressive)."""
        if self.iip3_dbm is None or math.isinf(self.iip3_dbm):
            return 0.0
        a_iip3 = float(vpeak_from_dbm(self.iip3_dbm, self.input_impedance))
        return -(4.0 / 3.0) * self.a1 / (a_iip3 ** 2)

    @property
    def a2(self) -> float:
        """Second-order coefficient implied by the IIP2 (zero if not set)."""
        if self.iip2_dbm is None or math.isinf(self.iip2_dbm):
            return 0.0
        a_iip2 = float(vpeak_from_dbm(self.iip2_dbm, self.input_impedance))
        return self.a1 / a_iip2

    # -- waveform transfer -----------------------------------------------------

    def transfer(self, waveform: np.ndarray) -> np.ndarray:
        """Apply the block's polynomial nonlinearity and swing clamp to a waveform."""
        v = np.asarray(waveform, dtype=float)
        out = self.a1 * v + self.a2 * v * v + self.a3 * v ** 3
        if self.output_swing_limit is not None:
            limit = self.output_swing_limit
            out = limit * np.tanh(out / limit)
        return out

    def small_signal_output(self, input_dbm: float) -> float:
        """Output power in dBm for a small input tone, ignoring compression."""
        return input_dbm + self.gain_db

    # -- derived metrics -------------------------------------------------------

    @property
    def oip3_dbm(self) -> float | None:
        """Output-referred third-order intercept in dBm."""
        if self.iip3_dbm is None:
            return None
        return self.iip3_dbm + self.gain_db

    def input_p1db_estimate_dbm(self) -> float | None:
        """Analytic estimate of the input 1 dB compression point.

        For a pure third-order compressive nonlinearity P1dB sits ~9.6 dB
        below IIP3; when an output swing limit is present the compression
        point is the smaller of the third-order estimate and the
        swing-limited value (the paper notes the OTA output swing limits the
        passive-mode P1dB).
        """
        candidates: list[float] = []
        if self.iip3_dbm is not None and not math.isinf(self.iip3_dbm):
            candidates.append(self.iip3_dbm - 9.6)
        if self.output_swing_limit is not None and self.a1 > 0:
            # The tanh clamp is ~1 dB compressed when the ideal output reaches
            # about 0.66 of the limit.
            v_in_limit = 0.66 * self.output_swing_limit / self.a1
            candidates.append(float(dbm_from_vpeak(v_in_limit, self.input_impedance)))
        if not candidates:
            return None
        return min(candidates)

    def scaled_gain(self, delta_db: float) -> "BehavioralBlock":
        """Copy of the block with the gain shifted by ``delta_db``."""
        return replace(self, gain_db=self.gain_db + delta_db)


@dataclass(frozen=True)
class CascadeResult:
    """Aggregate metrics of a cascade of behavioural blocks."""

    gain_db: float
    nf_db: float
    iip3_dbm: float
    blocks: tuple[BehavioralBlock, ...]

    @property
    def oip3_dbm(self) -> float:
        """Output-referred third-order intercept of the cascade."""
        return self.iip3_dbm + self.gain_db


def cascade(blocks: Sequence[BehavioralBlock]) -> CascadeResult:
    """Combine a chain of behavioural blocks.

    * Gain: sum of dB gains.
    * Noise figure: Friis formula with *power* gains.
    * IIP3: the usual reciprocal sum ``1/IIP3 = sum(G_before / IIP3_k)`` in
      linear power units, input-referred.
    """
    if not blocks:
        raise ValueError("cascade() needs at least one block")

    total_gain_db = float(sum(block.gain_db for block in blocks))

    # Friis noise figure.
    total_factor = 0.0
    gain_before = 1.0  # power gain preceding the current stage
    for index, block in enumerate(blocks):
        factor = float(power_ratio_from_db(block.nf_db))
        if index == 0:
            total_factor = factor
        else:
            total_factor += (factor - 1.0) / gain_before
        gain_before *= float(power_ratio_from_db(block.gain_db))
    total_nf_db = 10.0 * math.log10(total_factor)

    # IIP3 cascade (input-referred, linear power units in mW).
    inverse_sum = 0.0
    gain_before_linear = 1.0
    for block in blocks:
        if block.iip3_dbm is not None and not math.isinf(block.iip3_dbm):
            iip3_mw = 10.0 ** (block.iip3_dbm / 10.0)
            inverse_sum += gain_before_linear / iip3_mw
        gain_before_linear *= float(power_ratio_from_db(block.gain_db))
    if inverse_sum == 0.0:
        total_iip3_dbm = math.inf
    else:
        total_iip3_dbm = 10.0 * math.log10(1.0 / inverse_sum)

    return CascadeResult(gain_db=total_gain_db, nf_db=total_nf_db,
                         iip3_dbm=total_iip3_dbm, blocks=tuple(blocks))
