"""Signal sources: tones, two-tone stimuli, LO waveforms, sampling grids.

Mixer measurements live and die by coherent sampling: if the tone
frequencies do not land exactly on FFT bins, spectral leakage swamps the
third-order products that the IIP3 fit needs.  The helpers here construct
sampling grids on which all the frequencies of interest are bin-exact.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction
from typing import Callable

import numpy as np

from repro.units import REFERENCE_IMPEDANCE, vpeak_from_dbm

#: A device under test: maps an input waveform (V) to an output waveform (V).
#: Implementations must treat the **last** axis as time — the batched
#: waveform engine (:mod:`repro.waveform`) feeds ``(powers, samples)``
#: blocks through the same callable the scalar benches use, so a transfer
#: built from elementwise maths and last-axis filters works for both.  This
#: is the single definition; :mod:`repro.rf.twotone`,
#: :mod:`repro.rf.compression` and :mod:`repro.rf.conversion_gain` re-export
#: it for backwards compatibility.
WaveformTransfer = Callable[[np.ndarray], np.ndarray]


@dataclass(frozen=True)
class Tone:
    """A single sinusoidal tone described by power into a reference impedance."""

    frequency: float
    power_dbm: float
    phase: float = 0.0
    impedance: float = REFERENCE_IMPEDANCE

    def __post_init__(self) -> None:
        if self.frequency <= 0:
            raise ValueError("tone frequency must be positive")

    @property
    def amplitude(self) -> float:
        """Peak voltage amplitude of the tone (V)."""
        return float(vpeak_from_dbm(self.power_dbm, self.impedance))

    def waveform(self, times: np.ndarray) -> np.ndarray:
        """Sampled waveform of the tone at the given time points."""
        return self.amplitude * np.cos(
            2.0 * math.pi * self.frequency * np.asarray(times) + self.phase)


@dataclass(frozen=True)
class TwoToneSource:
    """Two equal-power tones, the stimulus of the IIP3/IIP2 measurements.

    The paper's Fig. 10 uses two closely spaced RF tones around the 2.4 GHz
    LO; after downconversion the fundamentals land at ``|f1 - f_lo|`` and
    ``|f2 - f_lo|`` and the IM3 products at ``2 f1 - f2`` / ``2 f2 - f1``
    (all referred to baseband).
    """

    frequency_1: float
    frequency_2: float
    power_dbm: float
    impedance: float = REFERENCE_IMPEDANCE

    def __post_init__(self) -> None:
        if self.frequency_1 <= 0 or self.frequency_2 <= 0:
            raise ValueError("tone frequencies must be positive")
        if self.frequency_1 == self.frequency_2:
            raise ValueError("the two tones must have distinct frequencies")

    @property
    def tones(self) -> tuple[Tone, Tone]:
        """The two individual tones."""
        return (Tone(self.frequency_1, self.power_dbm, impedance=self.impedance),
                Tone(self.frequency_2, self.power_dbm, impedance=self.impedance))

    @property
    def spacing(self) -> float:
        """Tone spacing (Hz)."""
        return abs(self.frequency_2 - self.frequency_1)

    def waveform(self, times: np.ndarray) -> np.ndarray:
        """Sampled sum of the two tones."""
        tone_a, tone_b = self.tones
        return tone_a.waveform(times) + tone_b.waveform(times)

    def with_power(self, power_dbm: float) -> "TwoToneSource":
        """Copy of the source at a different per-tone power."""
        return TwoToneSource(self.frequency_1, self.frequency_2, power_dbm,
                             self.impedance)


def sample_times(sample_rate: float, num_samples: int) -> np.ndarray:
    """Uniform time grid of ``num_samples`` points at ``sample_rate`` Hz."""
    if sample_rate <= 0:
        raise ValueError("sample rate must be positive")
    if num_samples <= 0:
        raise ValueError("number of samples must be positive")
    return np.arange(num_samples) / sample_rate


def coherent_sample_count(frequencies: list[float], sample_rate: float,
                          minimum_samples: int = 4096,
                          maximum_samples: int = 1 << 22) -> int:
    """Number of samples that makes every frequency land on an FFT bin.

    The count returned is the smallest multiple of the fundamental period
    (the reciprocal of the greatest common divisor of the tone frequencies
    expressed on the sample grid) that is at least ``minimum_samples``.
    """
    if sample_rate <= 0:
        raise ValueError("sample rate must be positive")
    if not frequencies:
        raise ValueError("need at least one frequency")
    fractions = [Fraction(f / sample_rate).limit_denominator(1 << 20)
                 for f in frequencies]
    denominator = 1
    for fraction in fractions:
        denominator = denominator * fraction.denominator // math.gcd(
            denominator, fraction.denominator)
    count = denominator
    while count < minimum_samples:
        count += denominator
    if count > maximum_samples:
        raise ValueError(
            f"coherent sampling would need {count} samples "
            f"(> {maximum_samples}); choose rounder frequencies"
        )
    return count


def sine_wave(frequency: float, amplitude: float, times: np.ndarray,
              phase: float = 0.0) -> np.ndarray:
    """A plain sampled sine wave (amplitude in volts peak)."""
    if frequency <= 0:
        raise ValueError("frequency must be positive")
    return amplitude * np.cos(2.0 * math.pi * frequency * np.asarray(times) + phase)


def square_lo(frequency: float, times: np.ndarray, amplitude: float = 1.0,
              phase: float = 0.0) -> np.ndarray:
    """An ideal square-wave LO toggling between +amplitude and -amplitude.

    This is the switching function of a hard-switched commutating quad: the
    mixer core multiplies the RF current by this waveform, whose fundamental
    Fourier coefficient (4/pi) is where the familiar 2/pi conversion factor
    comes from.
    """
    if frequency <= 0:
        raise ValueError("LO frequency must be positive")
    argument = 2.0 * math.pi * frequency * np.asarray(times) + phase
    return amplitude * np.sign(np.cos(argument))


def differential_pair(waveform: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Split a single-ended waveform into a balanced differential pair."""
    half = np.asarray(waveform) / 2.0
    return half, -half
