"""Two-tone intermodulation measurements: IM3/IM2 extraction, IIP3/IIP2 fits.

This module reproduces the measurement behind Fig. 10 of the paper.  A
device under test is any callable mapping an input waveform to an output
waveform at a fixed sample rate (behavioural mixers provide exactly that
interface); the analysis applies a two-tone stimulus, reads the fundamental
and intermodulation tone powers off the output spectrum and either

* extrapolates the classic 3:1 / 2:1 slope lines to their intercept
  (:func:`iip3_from_powers`, :func:`iip2_from_powers`), or
* fits the intercept from a full input-power sweep
  (:func:`fit_intercept_point`), which is what the benchmark harness does to
  regenerate the figure.

:func:`measure_two_tone` stays the independent point-by-point reference;
:func:`sweep_two_tone` is a thin wrapper over the batched waveform engine
(:mod:`repro.waveform`), which evaluates the whole power sweep as one
stacked block plus one batched FFT, bit-identical per power.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

# Re-exported for backwards compatibility; the canonical definition (and
# its batched last-axis-is-time contract) lives in repro.rf.signal.
from repro.rf.signal import TwoToneSource, WaveformTransfer, sample_times
from repro.rf.spectrum import Spectrum


@dataclass(frozen=True)
class TwoToneResult:
    """Result of a single two-tone measurement at one input power."""

    input_power_dbm: float
    fundamental_output_dbm: float
    im3_output_dbm: float
    im2_output_dbm: float
    fundamental_frequency: float
    im3_frequency: float
    im2_frequency: float

    @property
    def gain_db(self) -> float:
        """Per-tone gain (output fundamental minus input power)."""
        return self.fundamental_output_dbm - self.input_power_dbm

    @property
    def im3_suppression_db(self) -> float:
        """Fundamental-to-IM3 ratio at the output (dB)."""
        return self.fundamental_output_dbm - self.im3_output_dbm

    @property
    def iip3_dbm(self) -> float:
        """Single-point IIP3 estimate from the 3:1 slope relationship."""
        return iip3_from_powers(self.input_power_dbm,
                                self.fundamental_output_dbm,
                                self.im3_output_dbm)

    @property
    def iip2_dbm(self) -> float:
        """Single-point IIP2 estimate from the 2:1 slope relationship."""
        return iip2_from_powers(self.input_power_dbm,
                                self.fundamental_output_dbm,
                                self.im2_output_dbm)


def intermod_frequencies(f1: float, f2: float, lo_frequency: float | None = None
                         ) -> dict[str, float]:
    """Frequencies of the fundamental, IM3 and IM2 products.

    With ``lo_frequency`` given, everything is referred to the IF band (the
    down-converted frequencies a mixer measurement observes); otherwise the
    RF-band products are returned (an amplifier measurement).
    """
    if f1 <= 0 or f2 <= 0 or f1 == f2:
        raise ValueError("need two distinct positive tone frequencies")
    low, high = sorted((f1, f2))
    im3_low = 2.0 * low - high
    im3_high = 2.0 * high - low
    im2 = high - low
    if lo_frequency is None:
        return {
            "fundamental": low,
            "fundamental_2": high,
            "im3_low": im3_low,
            "im3_high": im3_high,
            "im2": im2,
        }
    if lo_frequency <= 0:
        raise ValueError("LO frequency must be positive")
    return {
        "fundamental": abs(low - lo_frequency),
        "fundamental_2": abs(high - lo_frequency),
        "im3_low": abs(im3_low - lo_frequency),
        "im3_high": abs(im3_high - lo_frequency),
        "im2": im2,
    }


def iip3_from_powers(input_dbm: float, fundamental_dbm: float,
                     im3_dbm: float) -> float:
    """IIP3 from one measurement: ``IIP3 = Pin + (Pfund - Pim3) / 2``."""
    return input_dbm + 0.5 * (fundamental_dbm - im3_dbm)


def iip2_from_powers(input_dbm: float, fundamental_dbm: float,
                     im2_dbm: float) -> float:
    """IIP2 from one measurement: ``IIP2 = Pin + (Pfund - Pim2)``."""
    return input_dbm + (fundamental_dbm - im2_dbm)


def measure_two_tone(device: WaveformTransfer, source: TwoToneSource,
                     sample_rate: float, num_samples: int,
                     lo_frequency: float | None = None) -> TwoToneResult:
    """Run one two-tone measurement through ``device``.

    Parameters
    ----------
    device:
        Waveform-in/waveform-out callable (behavioural mixer, amplifier...).
    source:
        The two-tone stimulus.
    sample_rate, num_samples:
        Sampling grid; callers should pick a coherent grid (see
        :func:`repro.rf.signal.coherent_sample_count`).
    lo_frequency:
        When measuring a mixer, the LO frequency so the products are looked
        up in the IF band.
    """
    times = sample_times(sample_rate, num_samples)
    output = device(source.waveform(times))
    spectrum = Spectrum(output, sample_rate)
    products = intermod_frequencies(source.frequency_1, source.frequency_2,
                                    lo_frequency)
    fundamental_dbm = spectrum.power_dbm_at(products["fundamental"])
    im3_dbm = max(spectrum.power_dbm_at(products["im3_low"]),
                  spectrum.power_dbm_at(products["im3_high"]))
    im2_dbm = spectrum.power_dbm_at(products["im2"])
    return TwoToneResult(
        input_power_dbm=source.power_dbm,
        fundamental_output_dbm=fundamental_dbm,
        im3_output_dbm=im3_dbm,
        im2_output_dbm=im2_dbm,
        fundamental_frequency=products["fundamental"],
        im3_frequency=products["im3_high"],
        im2_frequency=products["im2"],
    )


@dataclass(frozen=True)
class InterceptSweep:
    """A swept two-tone measurement and the fitted intercept point."""

    input_powers_dbm: np.ndarray
    fundamental_dbm: np.ndarray
    intermod_dbm: np.ndarray
    intercept_input_dbm: float
    intercept_output_dbm: float
    fundamental_slope: float
    intermod_slope: float


def fit_intercept_point(input_powers_dbm: Sequence[float],
                        fundamental_dbm: Sequence[float],
                        intermod_dbm: Sequence[float],
                        intermod_order: int = 3) -> InterceptSweep:
    """Fit the intercept point from swept two-tone data.

    Straight lines with the ideal slopes (1 for the fundamental,
    ``intermod_order`` for the IM product) are fitted to the small-signal
    portion of the sweep and extrapolated to their crossing — exactly the
    geometric construction of the paper's Fig. 10 plots.
    """
    p_in = np.asarray(input_powers_dbm, dtype=float)
    p_fund = np.asarray(fundamental_dbm, dtype=float)
    p_im = np.asarray(intermod_dbm, dtype=float)
    if not (p_in.shape == p_fund.shape == p_im.shape) or p_in.size < 3:
        raise ValueError("sweeps must have equal length >= 3")
    if intermod_order < 2:
        raise ValueError("intermod_order must be at least 2")

    # Use the lowest-power third of the sweep, where both products follow
    # their ideal slopes, to anchor the straight lines.
    anchor = max(3, p_in.size // 3)
    order = np.argsort(p_in)
    idx = order[:anchor]
    finite = np.isfinite(p_fund[idx]) & np.isfinite(p_im[idx])
    idx = idx[finite]
    if idx.size < 2:
        raise ValueError("not enough finite small-signal points for the fit")

    fund_intercept = float(np.mean(p_fund[idx] - 1.0 * p_in[idx]))
    im_intercept = float(np.mean(p_im[idx] - float(intermod_order) * p_in[idx]))

    # Crossing of: y = x + fund_intercept and y = order*x + im_intercept.
    intercept_input = (fund_intercept - im_intercept) / (intermod_order - 1.0)
    intercept_output = intercept_input + fund_intercept

    return InterceptSweep(
        input_powers_dbm=p_in,
        fundamental_dbm=p_fund,
        intermod_dbm=p_im,
        intercept_input_dbm=float(intercept_input),
        intercept_output_dbm=float(intercept_output),
        fundamental_slope=1.0,
        intermod_slope=float(intermod_order),
    )


def sweep_two_tone(device: WaveformTransfer, source: TwoToneSource,
                   input_powers_dbm: Sequence[float], sample_rate: float,
                   num_samples: int,
                   lo_frequency: float | None = None) -> list[TwoToneResult]:
    """Run a two-tone measurement at each input power in the sweep.

    Thin wrapper over the batched waveform engine: the whole sweep is one
    stacked time-domain evaluation plus one batched FFT
    (:func:`repro.waveform.engine.evaluate_plan`), bit-identical per power
    to :func:`measure_two_tone` — the device must accept a ``(powers,
    samples)`` block with time on the last axis (see
    :data:`~repro.rf.signal.WaveformTransfer`).
    """
    # Imported lazily: repro.waveform builds on this module's intermod
    # helpers, so a module-level import would be circular.
    from repro.waveform.engine import evaluate_plan
    from repro.waveform.plan import two_tone_plan

    plan = two_tone_plan(source.frequency_1, source.frequency_2,
                         input_powers_dbm, sample_rate, num_samples,
                         lo_frequency)
    measures = evaluate_plan(device, plan)
    products = intermod_frequencies(source.frequency_1, source.frequency_2,
                                    lo_frequency)
    return [
        TwoToneResult(
            input_power_dbm=float(power),
            fundamental_output_dbm=float(measures["fundamental_dbm"][index]),
            im3_output_dbm=float(measures["im3_dbm"][index]),
            im2_output_dbm=float(measures["im2_dbm"][index]),
            fundamental_frequency=products["fundamental"],
            im3_frequency=products["im3_high"],
            im2_frequency=products["im2"],
        )
        for index, power in enumerate(plan.input_powers_dbm)
    ]
