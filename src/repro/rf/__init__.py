"""RF analysis toolkit: signals, spectra, nonlinearity and noise metrics.

This package is the measurement bench of the reproduction.  It provides the
same analyses an RF designer would run in Spectre RF, re-expressed for
behavioural waveform models:

* :mod:`repro.rf.signal` — tones, two-tone sources, LO waveforms, coherent
  sampling grids;
* :mod:`repro.rf.spectrum` — windowed FFTs, power-per-bin in dBm, spur
  searching;
* :mod:`repro.rf.blocks` — memoryless behavioural RF blocks (gain, IIP3,
  NF, saturation) and cascade formulas (Friis, IIP3 cascade);
* :mod:`repro.rf.twotone` — IM3/IM2 extraction and IIP3/IIP2 fitting
  (Fig. 10 of the paper);
* :mod:`repro.rf.compression` — 1 dB compression point sweeps (Table I row);
* :mod:`repro.rf.noise_figure` — noise factor algebra, DSB/SSB NF, flicker
  corners (Fig. 9);
* :mod:`repro.rf.conversion_gain` — conversion-gain measurement and the
  2/pi switching-mixer theory (Fig. 8, equation 3);
* :mod:`repro.rf.network` — 50 ohm interfaces, reflection, available power;
* :mod:`repro.rf.filters` — first-order RC responses used by the TIA and
  the transmission-gate load.
"""

from repro.rf.signal import (
    Tone,
    TwoToneSource,
    sample_times,
    coherent_sample_count,
    sine_wave,
    square_lo,
)
from repro.rf.spectrum import Spectrum, power_dbm_at, fundamental_power_dbm
from repro.rf.blocks import BehavioralBlock, CascadeResult, cascade
from repro.rf.twotone import (
    TwoToneResult,
    intermod_frequencies,
    measure_two_tone,
    iip3_from_powers,
    iip2_from_powers,
    fit_intercept_point,
)
from repro.rf.compression import CompressionResult, measure_compression_point
from repro.rf.noise_figure import (
    noise_factor_from_figure,
    noise_figure_from_factor,
    friis_cascade_nf,
    nf_with_flicker,
    flicker_corner_from_nf,
    dsb_from_ssb,
    ssb_from_dsb,
)
from repro.rf.conversion_gain import (
    switching_mixer_voltage_gain,
    passive_mixer_gain_db,
    active_mixer_gain_db,
    measure_conversion_gain,
)
from repro.rf.network import (
    reflection_coefficient,
    vswr,
    return_loss_db,
    available_power_dbm,
    mismatch_loss_db,
)
from repro.rf.filters import FirstOrderLowPass, rc_pole_frequency

__all__ = [
    "Tone",
    "TwoToneSource",
    "sample_times",
    "coherent_sample_count",
    "sine_wave",
    "square_lo",
    "Spectrum",
    "power_dbm_at",
    "fundamental_power_dbm",
    "BehavioralBlock",
    "CascadeResult",
    "cascade",
    "TwoToneResult",
    "intermod_frequencies",
    "measure_two_tone",
    "iip3_from_powers",
    "iip2_from_powers",
    "fit_intercept_point",
    "CompressionResult",
    "measure_compression_point",
    "noise_factor_from_figure",
    "noise_figure_from_factor",
    "friis_cascade_nf",
    "nf_with_flicker",
    "flicker_corner_from_nf",
    "dsb_from_ssb",
    "ssb_from_dsb",
    "switching_mixer_voltage_gain",
    "passive_mixer_gain_db",
    "active_mixer_gain_db",
    "measure_conversion_gain",
    "reflection_coefficient",
    "vswr",
    "return_loss_db",
    "available_power_dbm",
    "mismatch_loss_db",
    "FirstOrderLowPass",
    "rc_pole_frequency",
]
