"""1 dB compression point measurement.

The paper's Table I quotes the input-referred 1 dB compression point of both
modes at a 5 MHz IF; the text notes it is set by the OTA output swing at low
IF.  :func:`measure_compression_point` sweeps a single tone through a
waveform-level device and finds the input power where the gain has dropped
1 dB below its small-signal value.  The sweep itself is a thin wrapper over
the batched waveform engine (one stacked evaluation + one batched FFT for
every power); the fit from gains to the compression point is
:func:`compression_from_gains`, shared with the batched ``p1db`` experiment
driver so both paths locate the point identically.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

# Re-exported for backwards compatibility; the canonical definition (and
# its batched last-axis-is-time contract) lives in repro.rf.signal.
from repro.rf.signal import WaveformTransfer  # noqa: F401


@dataclass(frozen=True)
class CompressionResult:
    """Result of a compression sweep."""

    input_powers_dbm: np.ndarray
    output_powers_dbm: np.ndarray
    gains_db: np.ndarray
    small_signal_gain_db: float
    input_p1db_dbm: float
    output_p1db_dbm: float

    @property
    def compression_found(self) -> bool:
        """True when 1 dB of compression was actually reached inside the sweep."""
        return math.isfinite(self.input_p1db_dbm)


def compression_from_gains(input_powers_dbm: np.ndarray,
                           gains_db: np.ndarray
                           ) -> tuple[float, float, float]:
    """Locate the 1 dB compression point on a measured gain curve.

    Returns ``(small_signal_gain_db, input_p1db_dbm, output_p1db_dbm)``;
    the compression values are ``inf`` when the sweep never reaches 1 dB of
    compression.  The small-signal gain anchors on the lowest-power fifth of
    the sweep, and the crossing is interpolated between the **first** pair
    of adjacent points (in ascending power) that straddles the -1 dB line —
    so a non-monotone gain curve (expansion before compression, measurement
    ripple) yields the first genuine crossing, never an average.
    """
    powers = np.asarray(input_powers_dbm, dtype=float)
    gains = np.asarray(gains_db, dtype=float)
    if powers.shape != gains.shape or powers.ndim != 1:
        raise ValueError("powers and gains must be 1-D arrays of equal length")
    if powers.size < 3:
        raise ValueError("compression sweep needs at least 3 input powers")

    # Small-signal gain: average over the lowest-power fifth of the sweep.
    anchor = max(2, powers.size // 5)
    order = np.argsort(powers)
    small_signal_gain = float(np.mean(gains[order[:anchor]]))

    compressed = gains <= small_signal_gain - 1.0
    input_p1db = math.inf
    output_p1db = math.inf
    if np.any(compressed):
        # Interpolate between the last uncompressed and first compressed point.
        sorted_powers = powers[order]
        sorted_gains = gains[order]
        for i in range(1, sorted_powers.size):
            if sorted_gains[i] <= small_signal_gain - 1.0 \
                    and sorted_gains[i - 1] > small_signal_gain - 1.0:
                x0, x1 = sorted_powers[i - 1], sorted_powers[i]
                y0, y1 = sorted_gains[i - 1], sorted_gains[i]
                target = small_signal_gain - 1.0
                fraction = (y0 - target) / (y0 - y1) if y0 != y1 else 0.5
                input_p1db = float(x0 + fraction * (x1 - x0))
                output_p1db = input_p1db + target
                break
    return small_signal_gain, input_p1db, output_p1db


def measure_compression_point(device: WaveformTransfer, frequency: float,
                              input_powers_dbm: Sequence[float],
                              sample_rate: float, num_samples: int,
                              output_frequency: float | None = None
                              ) -> CompressionResult:
    """Sweep a single tone and locate the input-referred 1 dB compression point.

    ``output_frequency`` defaults to the input frequency (amplifier); for a
    mixer pass the IF frequency the fundamental lands on.  The power sweep
    is one batched evaluation through the waveform engine, bit-identical per
    power to a scalar tone-by-tone measurement; the device must accept a
    ``(powers, samples)`` block with time on the last axis.
    """
    # Imported lazily to keep the rf -> waveform dependency one-way at
    # import time (repro.waveform builds on the rf primitives).
    from repro.waveform.engine import evaluate_plan
    from repro.waveform.plan import single_tone_plan

    powers = np.asarray(list(input_powers_dbm), dtype=float)
    if powers.size < 3:
        raise ValueError("compression sweep needs at least 3 input powers")
    measure_frequency = output_frequency if output_frequency is not None \
        else frequency

    plan = single_tone_plan(frequency, powers, sample_rate, num_samples,
                            output_frequency=measure_frequency)
    measures = evaluate_plan(device, plan)
    output_powers = measures["output_dbm"]
    gains = measures["gain_db"]
    small_signal_gain, input_p1db, output_p1db = \
        compression_from_gains(powers, gains)

    return CompressionResult(
        input_powers_dbm=powers,
        output_powers_dbm=output_powers,
        gains_db=gains,
        small_signal_gain_db=small_signal_gain,
        input_p1db_dbm=input_p1db,
        output_p1db_dbm=output_p1db,
    )
