"""Spectral analysis of sampled waveforms.

The mixer experiments measure everything — conversion gain, IM3 products,
compression — by looking at the FFT of a time-domain waveform, exactly as a
bench spectrum analyser would.  :class:`Spectrum` wraps the bookkeeping:
windowing, single-sided scaling, power-per-tone in dBm and peak searching.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.units import REFERENCE_IMPEDANCE, dbm_from_vpeak


@dataclass
class SpectralPeak:
    """A located spectral peak."""

    frequency: float
    amplitude: float  # volts peak
    power_dbm: float


class Spectrum:
    """Single-sided amplitude spectrum of a real sampled waveform.

    Parameters
    ----------
    waveform:
        Real time-domain samples (volts).
    sample_rate:
        Sampling rate in Hz.
    window:
        ``"rect"`` for coherently sampled signals (the default used by the
        benches, which construct bin-exact grids) or ``"hann"`` when leakage
        has to be suppressed at the cost of amplitude accuracy.
    impedance:
        Reference impedance for dBm conversions.
    """

    def __init__(self, waveform: np.ndarray, sample_rate: float,
                 window: str = "rect",
                 impedance: float = REFERENCE_IMPEDANCE) -> None:
        samples = np.asarray(waveform, dtype=float)
        if samples.ndim != 1 or samples.size < 8:
            raise ValueError("waveform must be a 1-D array of at least 8 samples")
        if sample_rate <= 0:
            raise ValueError("sample rate must be positive")
        self.sample_rate = sample_rate
        self.impedance = impedance
        self.num_samples = samples.size

        if window == "rect":
            windowed = samples
            coherent_gain = 1.0
        elif window == "hann":
            win = np.hanning(samples.size)
            windowed = samples * win
            coherent_gain = float(np.mean(win))
        else:
            raise ValueError(f"unknown window {window!r}")

        raw = np.fft.rfft(windowed)
        # Single-sided amplitude spectrum in volts peak.
        amplitude = np.abs(raw) / samples.size / coherent_gain
        amplitude[1:] *= 2.0
        self.frequencies = np.fft.rfftfreq(samples.size, d=1.0 / sample_rate)
        self.amplitudes = amplitude

    # -- bin access ----------------------------------------------------------

    @property
    def bin_width(self) -> float:
        """Frequency resolution (Hz per bin)."""
        return self.sample_rate / self.num_samples

    def bin_of(self, frequency: float) -> int:
        """Index of the bin nearest to ``frequency``."""
        if frequency < 0 or frequency > self.sample_rate / 2.0:
            raise ValueError(
                f"frequency {frequency:.4g} Hz outside the Nyquist range")
        return int(round(frequency / self.bin_width))

    def amplitude_at(self, frequency: float, search_bins: int = 0) -> float:
        """Peak voltage amplitude near ``frequency`` (max over +-search_bins).

        The default reads the exact bin, which is correct for the coherently
        sampled grids the measurement benches construct; widen
        ``search_bins`` when the tone frequency is only approximately known.
        """
        centre = self.bin_of(frequency)
        lo = max(0, centre - search_bins)
        hi = min(len(self.amplitudes), centre + search_bins + 1)
        return float(np.max(self.amplitudes[lo:hi]))

    def power_dbm_at(self, frequency: float, search_bins: int = 0) -> float:
        """Tone power in dBm near ``frequency``."""
        amplitude = self.amplitude_at(frequency, search_bins)
        if amplitude <= 0:
            return -math.inf
        return float(dbm_from_vpeak(amplitude, self.impedance))

    # -- aggregate measures ----------------------------------------------------

    def total_power_dbm(self, exclude_dc: bool = True) -> float:
        """Total signal power in dBm (sum of all bins)."""
        amplitudes = self.amplitudes[1:] if exclude_dc else self.amplitudes
        power_watts = float(np.sum(amplitudes ** 2 / (2.0 * self.impedance)))
        if power_watts <= 0:
            return -math.inf
        return 10.0 * math.log10(power_watts / 1e-3)

    def peaks(self, count: int = 5, min_frequency: float = 0.0) -> list[SpectralPeak]:
        """The ``count`` largest spectral peaks above ``min_frequency``."""
        mask = self.frequencies >= max(min_frequency, self.bin_width * 0.5)
        candidate_indices = np.nonzero(mask)[0]
        if candidate_indices.size == 0:
            return []
        order = np.argsort(self.amplitudes[candidate_indices])[::-1]
        result = []
        for index in candidate_indices[order][:count]:
            amplitude = float(self.amplitudes[index])
            result.append(SpectralPeak(
                frequency=float(self.frequencies[index]),
                amplitude=amplitude,
                power_dbm=float(dbm_from_vpeak(amplitude, self.impedance))
                if amplitude > 0 else -math.inf,
            ))
        return result

    def spur_free_dynamic_range_db(self, fundamental: float) -> float:
        """Difference between the fundamental and the largest other spur (dB)."""
        fundamental_bin = self.bin_of(fundamental)
        amplitudes = self.amplitudes.copy()
        lo = max(0, fundamental_bin - 1)
        hi = min(len(amplitudes), fundamental_bin + 2)
        fundamental_amplitude = float(np.max(amplitudes[lo:hi]))
        amplitudes[lo:hi] = 0.0
        amplitudes[0] = 0.0
        largest_spur = float(np.max(amplitudes))
        if largest_spur <= 0 or fundamental_amplitude <= 0:
            return math.inf
        return 20.0 * math.log10(fundamental_amplitude / largest_spur)


def power_dbm_at(waveform: np.ndarray, sample_rate: float, frequency: float,
                 impedance: float = REFERENCE_IMPEDANCE) -> float:
    """Convenience wrapper: tone power of ``waveform`` at ``frequency`` in dBm."""
    return Spectrum(waveform, sample_rate, impedance=impedance).power_dbm_at(frequency)


def fundamental_power_dbm(waveform: np.ndarray, sample_rate: float,
                          impedance: float = REFERENCE_IMPEDANCE) -> tuple[float, float]:
    """Frequency and power of the largest non-DC spectral component."""
    spectrum = Spectrum(waveform, sample_rate, impedance=impedance)
    peaks = spectrum.peaks(count=1)
    if not peaks:
        return 0.0, -math.inf
    return peaks[0].frequency, peaks[0].power_dbm
