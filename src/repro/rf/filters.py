"""First-order filter responses used by the mixer's load and TIA stages.

The paper uses two first-order RC low-pass networks: the feedback ``R_F C_F``
of the TIA (which doubles as the anti-aliasing filter for the passive mode)
and the transmission-gate load with ``C_c`` in the active mode.  Both are
captured by :class:`FirstOrderLowPass`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np


def rc_pole_frequency(resistance: float, capacitance: float) -> float:
    """-3 dB frequency of a first-order RC network (Hz)."""
    if resistance <= 0 or capacitance <= 0:
        raise ValueError("R and C must be positive")
    return 1.0 / (2.0 * math.pi * resistance * capacitance)


@dataclass(frozen=True)
class FirstOrderLowPass:
    """A single-pole low-pass response with a DC gain."""

    dc_gain: float
    pole_frequency: float

    def __post_init__(self) -> None:
        if self.pole_frequency <= 0:
            raise ValueError("pole frequency must be positive")

    @classmethod
    def from_rc(cls, resistance: float, capacitance: float,
                dc_gain: float = 1.0) -> "FirstOrderLowPass":
        """Build the response of an RC network with an optional DC gain."""
        return cls(dc_gain=dc_gain,
                   pole_frequency=rc_pole_frequency(resistance, capacitance))

    def response(self, frequency: float | np.ndarray) -> complex | np.ndarray:
        """Complex transfer function at ``frequency``."""
        f = np.asarray(frequency, dtype=float)
        h = self.dc_gain / (1.0 + 1j * f / self.pole_frequency)
        return h if np.ndim(frequency) else complex(h)

    def magnitude(self, frequency: float | np.ndarray) -> float | np.ndarray:
        """Magnitude response."""
        mag = np.abs(self.response(frequency))
        return mag if np.ndim(frequency) else float(mag)

    def magnitude_db(self, frequency: float | np.ndarray) -> float | np.ndarray:
        """Magnitude response in dB."""
        mag = self.magnitude(frequency)
        result = 20.0 * np.log10(mag)
        return result if np.ndim(frequency) else float(result)

    def phase_degrees(self, frequency: float | np.ndarray) -> float | np.ndarray:
        """Phase response in degrees."""
        phase = np.degrees(np.angle(self.response(frequency)))
        return phase if np.ndim(frequency) else float(phase)

    def group_delay(self, frequency: float | np.ndarray) -> float | np.ndarray:
        """Group delay in seconds (analytic expression for one pole)."""
        f = np.asarray(frequency, dtype=float)
        tau = 1.0 / (2.0 * math.pi * self.pole_frequency)
        delay = tau / (1.0 + (f / self.pole_frequency) ** 2)
        return delay if np.ndim(frequency) else float(delay)

    def attenuation_at(self, frequency: float) -> float:
        """Attenuation relative to DC, in dB (non-negative)."""
        return float(20.0 * math.log10(self.dc_gain) - self.magnitude_db(frequency))

    def _bilinear_coefficients(self, sample_rate: float
                               ) -> tuple[list[float], list[float]]:
        """``(b, a)`` of the bilinear transform of ``H(s) = g / (1 + s/wc)``.

        The one discretisation both :meth:`apply` and :meth:`apply_periodic`
        run — change it here and the two paths stay identical by
        construction.
        """
        if sample_rate <= 0:
            raise ValueError("sample rate must be positive")
        wc = 2.0 * math.pi * self.pole_frequency
        k = 2.0 * sample_rate
        a0 = wc + k
        return ([self.dc_gain * wc / a0, self.dc_gain * wc / a0],
                [1.0, (wc - k) / a0])

    def _dc_seed(self, samples: np.ndarray, b0: float) -> np.ndarray:
        """Initial filter state settling a DC input at its settled output,
        avoiding a start-up transient that would smear the spectrum."""
        first = samples[..., :1]
        return first * self.dc_gain - b0 * first

    def apply(self, waveform: np.ndarray, sample_rate: float) -> np.ndarray:
        """Filter sampled waveforms with the single-pole response.

        Implemented as a first-order IIR (bilinear-transformed RC), which is
        adequate for the behavioural signal paths in this library.  Time runs
        along the **last** axis, so a batched ``(records, samples)`` block is
        filtered row by row in one call — each row identical to filtering it
        alone.
        """
        from scipy.signal import lfilter

        samples = np.asarray(waveform, dtype=float)
        b_coeffs, a_coeffs = self._bilinear_coefficients(sample_rate)
        zi = self._dc_seed(samples, b_coeffs[0])
        out, _ = lfilter(b_coeffs, a_coeffs, samples, axis=-1, zi=zi)
        return out

    def apply_periodic(self, waveform: np.ndarray,
                       sample_rate: float) -> np.ndarray:
        """The response after one full-record warm-up — the cyclic prefix.

        Equivalent to prepending a copy of the record, running
        :meth:`apply`, and keeping the second half — the IIR runs a warm-up
        pass whose final state seeds the output pass — but no duplicated
        record is ever materialised, every stage *around* the filter works
        on half the samples, and the warm-up only traverses the tail the
        one-pole state can still remember.  The result matches the prefixed
        evaluation to double precision (the discarded history has decayed
        below the last representable bit).  For a record-periodic input
        (the coherently sampled benches) this is the filter's periodic
        steady state; it is the filter path of the batched waveform
        engine's ``assume_periodic`` devices.  Time runs along the last
        axis.
        """
        from scipy.signal import lfilter

        samples = np.asarray(waveform, dtype=float)
        b_coeffs, a_coeffs = self._bilinear_coefficients(sample_rate)
        # The warm-up pass exists only for its final state, and a one-pole
        # filter forgets its past geometrically: samples older than the
        # point where |a1|^age underflows double precision cannot move the
        # state, so warming up on that tail alone is exact to the last bit
        # that matters.
        num_samples = samples.shape[-1]
        decay = abs(a_coeffs[1])
        if 0.0 < decay < 1.0:
            memory = int(math.ceil(-60.0 * math.log(2.0) / math.log(decay)))
            tail = samples[..., max(0, num_samples - memory):]
        else:
            tail = samples
        zi = self._dc_seed(tail, b_coeffs[0])
        _, settled = lfilter(b_coeffs, a_coeffs, tail, axis=-1, zi=zi)
        out, _ = lfilter(b_coeffs, a_coeffs, samples, axis=-1, zi=settled)
        return out
