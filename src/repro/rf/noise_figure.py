"""Noise-figure algebra: noise factors, Friis cascades, flicker corners.

The paper reports *double side-band* (DSB) noise figures versus IF frequency
(Fig. 9) and highlights a flicker corner below 100 kHz in passive mode.
Behavioural mixers in this library describe their noise with two numbers —
a white (thermal) NF floor and a flicker corner frequency — and this module
turns those into the NF-vs-IF curves the figure plots, plus the standard
conversions designers expect (DSB<->SSB, factor<->figure, Friis).
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.units import power_ratio_from_db


def noise_factor_from_figure(nf_db: float | np.ndarray) -> float | np.ndarray:
    """Noise factor (linear) from noise figure (dB)."""
    return power_ratio_from_db(nf_db)


def noise_figure_from_factor(factor: float | np.ndarray) -> float | np.ndarray:
    """Noise figure (dB) from noise factor (linear); factor must be >= 1."""
    factor_arr = np.asarray(factor, dtype=float)
    if np.any(factor_arr < 1.0 - 1e-12):
        raise ValueError("a physical noise factor cannot be below 1")
    result = 10.0 * np.log10(np.maximum(factor_arr, 1.0))
    return result if np.ndim(factor) else float(result)


def friis_cascade_nf(nf_db: Sequence[float], gain_db: Sequence[float]) -> float:
    """Friis formula: total NF (dB) of a cascade given per-stage NF and gain (dB)."""
    if len(nf_db) != len(gain_db) or not nf_db:
        raise ValueError("nf_db and gain_db must be equal-length, non-empty")
    total = 0.0
    gain_before = 1.0
    for index, (nf, gain) in enumerate(zip(nf_db, gain_db)):
        factor = float(power_ratio_from_db(nf))
        if index == 0:
            total = factor
        else:
            total += (factor - 1.0) / gain_before
        gain_before *= float(power_ratio_from_db(gain))
    return float(noise_figure_from_factor(total))


def nf_with_flicker(nf_white_db: float | np.ndarray,
                    flicker_corner_hz: float | np.ndarray,
                    frequency_hz: float | np.ndarray) -> float | np.ndarray:
    """Spot noise figure including a 1/f contribution.

    The excess noise factor is modelled as ``(F_white - 1) * (1 + fc / f)``
    so the white floor is recovered well above the corner and the NF rises at
    10 dB/decade below it — the shape of the paper's Fig. 9 curves.

    All three arguments broadcast against each other, so a sweep can stack
    per-design white floors and corners against a shared IF grid in one
    vectorized call; a fully scalar call still returns a plain ``float``.
    """
    corner = np.asarray(flicker_corner_hz, dtype=float)
    if np.any(corner < 0):
        raise ValueError("flicker corner must be non-negative")
    freq = np.asarray(frequency_hz, dtype=float)
    if np.any(freq <= 0):
        raise ValueError("frequency must be positive")
    white_factor = np.asarray(power_ratio_from_db(nf_white_db), dtype=float)
    excess = (white_factor - 1.0) * (1.0 + corner / freq)
    factor = 1.0 + excess
    result = 10.0 * np.log10(factor)
    if np.ndim(frequency_hz) or np.ndim(nf_white_db) or np.ndim(flicker_corner_hz):
        return result
    return float(result)


def flicker_corner_from_nf(frequencies_hz: Sequence[float],
                           nf_db: Sequence[float]) -> float:
    """Estimate the flicker corner from an NF-vs-frequency curve.

    The corner is taken as the frequency where the NF is 3 dB above the
    high-frequency (white) floor, interpolated on a log-frequency axis.
    Returns 0 if the curve never rises 3 dB above the floor.
    """
    freqs = np.asarray(frequencies_hz, dtype=float)
    nf = np.asarray(nf_db, dtype=float)
    if freqs.shape != nf.shape or freqs.size < 3:
        raise ValueError("need matching frequency/NF arrays of length >= 3")
    order = np.argsort(freqs)
    freqs, nf = freqs[order], nf[order]
    floor = float(np.median(nf[-max(3, freqs.size // 5):]))
    threshold = floor + 3.0
    above = nf > threshold
    if not np.any(above):
        return 0.0
    last_above = int(np.max(np.nonzero(above)))
    if last_above + 1 >= freqs.size:
        return float(freqs[-1])
    # Log-linear interpolation between the last point above and the next one.
    f0, f1 = freqs[last_above], freqs[last_above + 1]
    n0, n1 = nf[last_above], nf[last_above + 1]
    if n0 == n1:
        return float(f0)
    fraction = (n0 - threshold) / (n0 - n1)
    return float(10.0 ** (math.log10(f0) + fraction * (math.log10(f1) - math.log10(f0))))


def dsb_from_ssb(ssb_nf_db: float) -> float:
    """Double side-band NF from single side-band NF (3 dB lower)."""
    return ssb_nf_db - 3.0


def ssb_from_dsb(dsb_nf_db: float) -> float:
    """Single side-band NF from double side-band NF (3 dB higher)."""
    return dsb_nf_db + 3.0


def input_referred_noise_voltage(nf_db: float, source_resistance: float = 50.0,
                                 temperature: float = 290.0) -> float:
    """Input-referred noise voltage density implied by a spot NF (V/sqrt(Hz)).

    The total input-referred density is ``sqrt(F) * v_n(source)``; the added
    part (excluding the source's own thermal noise) is
    ``sqrt(F - 1) * v_n(source)``.  This helper returns the *total*.
    """
    from repro.units import BOLTZMANN

    factor = float(power_ratio_from_db(nf_db))
    source_psd = 4.0 * BOLTZMANN * temperature * source_resistance
    return math.sqrt(factor * source_psd)
