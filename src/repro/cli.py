"""``repro-cli`` — one-shot command over the unified spec service.

The same :class:`~repro.api.request.SpecRequest` the Python API and the
HTTP server consume, built from shell arguments:

.. code-block:: bash

    python -m repro.cli list
    python -m repro.cli run fig8 --grid points=64 --report
    python -m repro.cli run table1 --design my_design.json --json
    python -m repro.cli run fig9 --url http://127.0.0.1:8337   # via a server
    python -m repro.cli run yield_opt --url ... --job          # async submit
    python -m repro.cli metrics --url http://127.0.0.1:8337

Without ``--url`` the request runs in-process (a service is built for the
call); with it, the identical JSON payload is POSTed to a running
``python -m repro.serve`` instance — the response is bit-identical either
way.  ``tools/repro-cli`` wraps this module as a plain executable.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
import urllib.error
import urllib.request
from pathlib import Path
from typing import Any

from repro.api.request import (
    API_VERSION,
    ApiVersionError,
    RequestValidationError,
    SpecRequest,
    SpecResponse,
)
from repro.api.service import MixerService
from repro.core.config import MixerDesign


def _parse_grid_value(text: str) -> Any:
    """Shell grid override -> typed value (int, float, JSON or bare string)."""
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    try:
        return json.loads(text)
    except json.JSONDecodeError:
        return text


def _load_design(path: str | None) -> MixerDesign:
    """Design record from a JSON file (``-`` reads stdin), or the default."""
    if path is None:
        return MixerDesign()
    text = sys.stdin.read() if path == "-" else Path(path).read_text("utf-8")
    try:
        return MixerDesign.from_dict(json.loads(text))
    except (json.JSONDecodeError, TypeError, ValueError) as error:
        raise RequestValidationError(f"bad design file {path!r}: {error}") \
            from None


def _build_request(args: argparse.Namespace) -> SpecRequest:
    grid: dict[str, Any] = {}
    for override in args.grid or []:
        name, separator, value = override.partition("=")
        if not separator or not name:
            raise RequestValidationError(
                f"grid overrides look like name=value, got {override!r}")
        grid[name] = _parse_grid_value(value)
    return SpecRequest(experiment=args.experiment,
                       design=_load_design(args.design),
                       grid=grid, workers=args.workers,
                       cache=args.spec_cache)


def _http_json(url: str, payload: dict | None = None,
               method: str | None = None) -> dict:
    """One JSON request against a ``repro.serve`` instance, errors mapped."""
    http_request = urllib.request.Request(
        url, data=json.dumps(payload).encode("utf-8")
        if payload is not None else None,
        headers={"Content-Type": "application/json"},
        method=method or ("POST" if payload is not None else "GET"))
    try:
        with urllib.request.urlopen(http_request) as http_response:
            return json.loads(http_response.read().decode("utf-8"))
    except urllib.error.HTTPError as error:
        detail = error.read().decode("utf-8", "replace")
        try:
            detail = json.loads(detail).get("error", detail)
        except json.JSONDecodeError:
            pass
        raise RequestValidationError(
            f"server rejected the request ({error.code}): {detail}") from None
    except urllib.error.URLError as error:
        raise RequestValidationError(
            f"cannot reach {url}: {error.reason}") from None


def _submit_http(url: str, request: SpecRequest) -> SpecResponse:
    """POST the request to a running ``repro.serve`` instance."""
    payload = _http_json(url.rstrip("/") + "/v1/spec", request.to_dict())
    return SpecResponse.from_dict(payload)


def _submit_job(url: str, request: SpecRequest,
                poll_s: float = 0.5) -> SpecResponse:
    """Submit via ``POST /v1/jobs`` and poll the job until it finishes.

    Progress checkpoints (yield-opt iterations, sweep shards) print to
    stderr as they change, so a long search is observable from the shell.
    """
    base = url.rstrip("/")
    job = _http_json(base + "/v1/jobs",
                     {"request": request.to_dict()})["job"]
    print(f"job {job['id']} {job['state']}", file=sys.stderr)
    last_progress = ""
    while True:
        job = _http_json(f"{base}/v1/jobs/{job['id']}")["job"]
        progress = json.dumps(job.get("progress") or {}, sort_keys=True)
        if progress != last_progress and job.get("progress"):
            print(f"job {job['id']} {job['state']}: {progress}",
                  file=sys.stderr)
            last_progress = progress
        if job["state"] == "done":
            return SpecResponse.from_dict(job["result"])
        if job["state"] == "failed":
            raise RequestValidationError(
                f"job {job['id']} failed: {job.get('error')}")
        time.sleep(poll_s)


def _cmd_list(args: argparse.Namespace) -> int:
    if args.url:
        # The server's registry, not this process's: clients stop
        # hard-coding experiment shapes by reading the listing remotely.
        payload = _http_json(args.url.rstrip("/") + "/v1/experiments")
        version = payload.get("api_version")
        if version != API_VERSION:
            raise ApiVersionError(version)
        entries = payload["experiments"]
    else:
        service = MixerService(response_cache=False)
        entries = service.experiments()
    if args.json:
        print(json.dumps({"api_version": API_VERSION,
                          "experiments": entries}, indent=2))
        return 0
    width = max(len(entry["name"]) for entry in entries)
    for entry in entries:
        batch = " [batch]" if entry["batchable"] else ""
        print(f"{entry['name']:<{width}}  {entry['artefact']}{batch}")
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    payload = _http_json(args.url.rstrip("/") + "/v1/metrics")
    if not args.summary:
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    jobs = payload.get("jobs", {})
    coalesce = jobs.get("coalesce", {})
    requests = payload.get("requests", {})
    total = sum(stats.get("count", 0) for stats in requests.values())
    errors = sum(stats.get("errors", 0) for stats in requests.values())
    lines = [
        f"uptime_s           {payload.get('uptime_s', 0.0):.1f}",
        f"requests           {total} ({errors} errors)",
        f"load_shed_total    {payload.get('load_shed_total', 0)}",
        f"jobs submitted     {jobs.get('submitted', 0)}",
        f"jobs completed     {jobs.get('completed', 0)}",
        f"jobs failed        {jobs.get('failed', 0)}",
        f"coalesce enabled   {coalesce.get('enabled', False)} "
        f"(window {coalesce.get('window_ms', 0):g} ms, "
        f"cap {coalesce.get('max_coalesce', 0)})",
        f"coalesced batches  {coalesce.get('coalesced_batches', 0)} "
        f"({coalesce.get('coalesced_jobs', 0)} jobs merged)",
        f"singleflight hits  {coalesce.get('singleflight_hits', 0)}",
    ]
    cache = payload.get("response_cache")
    if cache is not None:
        hits = cache.get("memory_hits", 0) + cache.get("disk_hits", 0)
        lines.append(f"response cache     {hits} hits / "
                     f"{cache.get('misses', 0)} misses")
    print("\n".join(lines))
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    request = _build_request(args)
    if args.url and args.job:
        response = _submit_job(args.url, request)
    elif args.url:
        response = _submit_http(args.url, request)
    elif args.job:
        raise RequestValidationError("--job needs --url (async jobs are a "
                                     "server-side surface)")
    else:
        service = MixerService(spec_cache=args.spec_cache,
                               workers=args.workers)
        response = service.submit(request)
    if args.json:
        print(json.dumps(response.to_dict(), indent=2))
    else:
        service = MixerService(response_cache=False)
        print(service.report(response))
        print(f"[{response.experiment} | design {response.design_fingerprint[:12]} "
              f"| {response.source} | {response.elapsed_s:.2f}s]")
    return 0


def main(argv: list[str] | None = None) -> int:
    """Entry point of ``python -m repro.cli`` / ``tools/repro-cli``."""
    parser = argparse.ArgumentParser(
        prog="repro-cli",
        description="One-shot requests against the paper's spec service.")
    commands = parser.add_subparsers(dest="command", required=True)

    list_parser = commands.add_parser(
        "list", help="list the registered experiments")
    list_parser.add_argument("--json", action="store_true",
                             help="print the registry metadata as JSON")
    list_parser.add_argument("--url", default=None,
                             help="read the listing from a running "
                                  "repro.serve instance (GET /v1/experiments)"
                                  " instead of the in-process registry")
    list_parser.set_defaults(handler=_cmd_list)

    run_parser = commands.add_parser(
        "run", help="run one experiment (in-process or via --url)")
    run_parser.add_argument("experiment",
                            help="registered experiment name (see 'list')")
    run_parser.add_argument("--design", default=None, metavar="FILE",
                            help="JSON design payload ('-' for stdin; "
                                 "default: the paper's design point)")
    run_parser.add_argument("--grid", action="append", metavar="NAME=VALUE",
                            help="override a grid parameter (repeatable)")
    run_parser.add_argument("--workers", type=int, default=None,
                            help="sweep-engine worker processes")
    run_parser.add_argument("--spec-cache", default=None, metavar="DIR",
                            help="on-disk spec cache directory")
    run_parser.add_argument("--url", default=None,
                            help="send to a running repro.serve instance "
                                 "instead of running in-process")
    run_parser.add_argument("--job", action="store_true",
                            help="with --url: submit as an async job and "
                                 "poll /v1/jobs until it finishes "
                                 "(progress prints to stderr)")
    run_parser.add_argument("--json", action="store_true",
                            help="print the full JSON response instead of "
                                 "the text report")
    run_parser.set_defaults(handler=_cmd_run)

    metrics_parser = commands.add_parser(
        "metrics", help="print a running server's /v1/metrics snapshot")
    metrics_parser.add_argument("--url", required=True,
                                help="base URL of a repro.serve instance")
    metrics_parser.add_argument("--summary", action="store_true",
                                help="compact counters (requests, jobs, "
                                     "coalescing, singleflight) instead of "
                                     "the full JSON snapshot")
    metrics_parser.set_defaults(handler=_cmd_metrics)

    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except RequestValidationError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
