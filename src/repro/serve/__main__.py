"""``python -m repro.serve`` — boot the HTTP/JSON spec server."""

import sys

from repro.serve import main

if __name__ == "__main__":
    sys.exit(main())
