"""Async job manager: bounded queue + persistent workers over MixerService.

This is the serving layer's answer to "a single slow ``yield_opt`` request
monopolises a handler thread": work submitted as a **job** returns a job id
immediately, executes on a small persistent pool of worker threads shared
by every request (which in turn draw from the shared process pools of
:mod:`repro.sweep.parallel` when ``workers=`` asks for sharding — no
per-run executor spin-up), and is observable while it runs through the
:mod:`repro.api.progress` channel: yield-opt iteration history and
completed sweep/waveform shards stream into ``GET /v1/jobs/<id>``.

Backpressure is explicit: the queue is bounded, and a submit past the
bound raises :class:`JobQueueFullError` — the HTTP layer maps it to
``429`` so a saturated server sheds load instead of queueing unboundedly.

The synchronous endpoints are thin wrappers over the same path
(:meth:`JobManager.submit` + :meth:`JobManager.wait`), so every request —
sync or async — flows through one bounded pool and one accounting surface,
and a ``/v1/spec`` response stays bit-identical to the in-process
:meth:`MixerService.submit` call it always was.
"""

from __future__ import annotations

import itertools
import secrets
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

from repro.api.progress import progress_scope
from repro.api.request import RequestValidationError, SpecRequest
from repro.api.service import MixerService

#: Job lifecycle states, in order.
JOB_QUEUED = "queued"
JOB_RUNNING = "running"
JOB_DONE = "done"
JOB_FAILED = "failed"

#: Defaults for the manager knobs (overridable per server via the CLI).
DEFAULT_JOB_WORKERS = 2
DEFAULT_QUEUE_LIMIT = 32
DEFAULT_HISTORY_LIMIT = 256

#: Failure classes: a validation failure is the client's fault (HTTP 400),
#: anything else is the server's (HTTP 500).
ERROR_VALIDATION = "validation"
ERROR_INTERNAL = "internal"


class JobQueueFullError(RuntimeError):
    """Submit refused: the bounded job queue is at capacity (HTTP 429)."""


@dataclass
class Job:
    """One unit of submitted work and everything observable about it."""

    id: str
    kind: str                               # "spec" | "batch"
    requests: list[SpecRequest]
    state: str = JOB_QUEUED
    created_unix: float = field(default_factory=time.time)
    submitted_monotonic: float = field(default_factory=time.monotonic)
    started_monotonic: float | None = None
    finished_monotonic: float | None = None
    progress: dict[str, Any] = field(default_factory=dict)
    result: dict | None = None
    error: str | None = None
    error_kind: str | None = None
    done_event: threading.Event = field(default_factory=threading.Event)

    @property
    def experiments(self) -> list[str]:
        """Experiment names this job evaluates, in request order."""
        return [request.experiment for request in self.requests]

    def describe(self, include_result: bool = True) -> dict:
        """JSON-ready status payload (what ``GET /v1/jobs/<id>`` serves)."""
        now = time.monotonic()
        queued_s = (self.started_monotonic
                    if self.started_monotonic is not None
                    else now) - self.submitted_monotonic
        running_s = 0.0
        if self.started_monotonic is not None:
            running_s = (self.finished_monotonic
                         if self.finished_monotonic is not None
                         else now) - self.started_monotonic
        payload: dict = {
            "id": self.id,
            "kind": self.kind,
            "state": self.state,
            "experiments": self.experiments,
            "created_unix": self.created_unix,
            "queued_s": queued_s,
            "running_s": running_s,
            "progress": dict(self.progress),
        }
        if self.error is not None:
            payload["error"] = self.error
            payload["error_kind"] = self.error_kind
        if include_result and self.state == JOB_DONE:
            payload["result"] = self.result
        return payload


def _parse_spec_payload(payload: Any) -> SpecRequest:
    """A submit payload as a validated request (errors are client errors)."""
    if isinstance(payload, SpecRequest):
        return payload
    if not isinstance(payload, Mapping):
        raise RequestValidationError("request payload must be a mapping")
    return SpecRequest.from_dict(payload)


class JobManager:
    """Bounded job queue executed by a persistent worker-thread pool.

    Parameters
    ----------
    service:
        The shared :class:`MixerService` every job dispatches through.
    workers:
        Worker threads executing jobs; this (not the HTTP thread count)
        bounds how many engine runs are in flight at once.
    queue_limit:
        Maximum jobs *waiting* to start; a submit past the bound raises
        :class:`JobQueueFullError` (load shedding, never unbounded growth).
    history_limit:
        Finished jobs retained for status polling before the oldest are
        evicted; running and queued jobs are never evicted.
    """

    def __init__(self, service: MixerService,
                 workers: int = DEFAULT_JOB_WORKERS,
                 queue_limit: int = DEFAULT_QUEUE_LIMIT,
                 history_limit: int = DEFAULT_HISTORY_LIMIT) -> None:
        if workers < 1:
            raise ValueError("workers must be at least 1")
        if queue_limit < 1:
            raise ValueError("queue_limit must be at least 1")
        if history_limit < 1:
            raise ValueError("history_limit must be at least 1")
        self.service = service
        self.queue_limit = int(queue_limit)
        self.history_limit = int(history_limit)
        self._lock = threading.Lock()
        self._wake = threading.Condition(self._lock)
        self._jobs: dict[str, Job] = {}      # insertion-ordered (py>=3.7)
        self._pending: list[Job] = []
        self._running = 0
        self._counter = itertools.count(1)
        self._submitted = 0
        self._completed = 0
        self._failed = 0
        self._shed = 0
        self._closed = False
        self._threads = [
            threading.Thread(target=self._worker_loop,
                             name=f"repro-job-worker-{index}", daemon=True)
            for index in range(int(workers))
        ]
        for thread in self._threads:
            thread.start()

    # -- submission -----------------------------------------------------------

    def submit(self, payload: Any) -> Job:
        """Queue one spec request (mapping or :class:`SpecRequest`).

        Parse errors raise :class:`RequestValidationError` synchronously —
        a malformed submit never occupies a queue slot.
        """
        return self._enqueue("spec", [_parse_spec_payload(payload)])

    def submit_batch(self, payloads: Sequence[Any]) -> Job:
        """Queue one batch job over many spec-request payloads."""
        if not isinstance(payloads, Sequence) or isinstance(payloads, (str, bytes)):
            raise RequestValidationError(
                "batch body must be {\"requests\": [...]}")
        requests = [_parse_spec_payload(entry) for entry in payloads]
        if not requests:
            raise RequestValidationError("batch needs at least one request")
        return self._enqueue("batch", requests)

    def _enqueue(self, kind: str, requests: list[SpecRequest]) -> Job:
        with self._wake:
            if self._closed:
                raise RuntimeError("job manager is shut down")
            if len(self._pending) >= self.queue_limit:
                self._shed += 1
                raise JobQueueFullError(
                    f"job queue is full ({self.queue_limit} waiting); "
                    f"retry later")
            job = Job(id=f"job-{next(self._counter):06d}-"
                         f"{secrets.token_hex(4)}",
                      kind=kind, requests=requests)
            self._jobs[job.id] = job
            self._pending.append(job)
            self._submitted += 1
            self._evict_finished_locked()
            self._wake.notify()
        return job

    # -- execution ------------------------------------------------------------

    def _worker_loop(self) -> None:
        while True:
            with self._wake:
                while not self._pending and not self._closed:
                    self._wake.wait()
                if self._closed and not self._pending:
                    return
                job = self._pending.pop(0)
                job.state = JOB_RUNNING
                job.started_monotonic = time.monotonic()
                self._running += 1
            try:
                self._execute(job)
            finally:
                with self._lock:
                    self._running -= 1
                job.done_event.set()

    def _execute(self, job: Job) -> None:
        def _merge(fields: dict) -> None:
            with self._lock:
                job.progress.update(fields)

        try:
            with progress_scope(_merge):
                if job.kind == "spec":
                    response = self.service.submit(job.requests[0])
                    result: dict = response.to_dict()
                else:
                    responses = self.service.submit_batch(job.requests)
                    result = {"responses": [r.to_dict() for r in responses]}
            with self._lock:
                job.result = result
                job.state = JOB_DONE
                job.finished_monotonic = time.monotonic()
                self._completed += 1
        except Exception as error:  # noqa: BLE001 - job must record any failure
            with self._lock:
                job.error = f"{type(error).__name__}: {error}" \
                    if not isinstance(error, RequestValidationError) \
                    else str(error)
                job.error_kind = ERROR_VALIDATION \
                    if isinstance(error, RequestValidationError) \
                    else ERROR_INTERNAL
                job.state = JOB_FAILED
                job.finished_monotonic = time.monotonic()
                self._failed += 1

    # -- observation ----------------------------------------------------------

    def get(self, job_id: str) -> Job:
        """The job for ``job_id``; ``KeyError`` when unknown or evicted."""
        with self._lock:
            try:
                return self._jobs[job_id]
            except KeyError:
                raise KeyError(f"unknown job {job_id!r} (finished jobs are "
                               f"evicted after {self.history_limit} newer "
                               f"ones)") from None

    def wait(self, job: Job, timeout: float | None = None) -> Job:
        """Block until ``job`` finishes (the sync endpoints' other half)."""
        if not job.done_event.wait(timeout):
            raise TimeoutError(f"job {job.id} still {job.state} "
                               f"after {timeout}s")
        return job

    def jobs(self) -> list[Job]:
        """Every retained job, oldest first."""
        with self._lock:
            return list(self._jobs.values())

    def stats(self) -> dict:
        """JSON-ready manager counters for ``GET /v1/metrics``."""
        with self._lock:
            return {
                "workers": len(self._threads),
                "queue_limit": self.queue_limit,
                "queued": len(self._pending),
                "running": self._running,
                "submitted": self._submitted,
                "completed": self._completed,
                "failed": self._failed,
                "shed": self._shed,
                "retained": len(self._jobs),
            }

    # -- lifecycle ------------------------------------------------------------

    def _evict_finished_locked(self) -> None:
        finished = [job_id for job_id, job in self._jobs.items()
                    if job.state in (JOB_DONE, JOB_FAILED)]
        excess = len(finished) - self.history_limit
        for job_id in finished[:max(excess, 0)]:
            del self._jobs[job_id]

    def shutdown(self, wait: bool = True, timeout: float = 5.0) -> None:
        """Stop accepting work and (optionally) join the worker threads."""
        with self._wake:
            if self._closed:
                return
            self._closed = True
            self._wake.notify_all()
        if wait:
            for thread in self._threads:
                thread.join(timeout=timeout)
