"""Async job manager: bounded queue + persistent workers over MixerService.

This is the serving layer's answer to "a single slow ``yield_opt`` request
monopolises a handler thread": work submitted as a **job** returns a job id
immediately, executes on a small persistent pool of worker threads shared
by every request (which in turn draw from the shared process pools of
:mod:`repro.sweep.parallel` when ``workers=`` asks for sharding — no
per-run executor spin-up), and is observable while it runs through the
:mod:`repro.api.progress` channel: yield-opt iteration history and
completed sweep/waveform shards stream into ``GET /v1/jobs/<id>``.

Backpressure is explicit: the queue is bounded, and a submit past the
bound raises :class:`JobQueueFullError` — the HTTP layer maps it to
``429`` so a saturated server sheds load instead of queueing unboundedly.

The synchronous endpoints are thin wrappers over the same path
(:meth:`JobManager.submit` + :meth:`JobManager.wait`), so every request —
sync or async — flows through one bounded pool and one accounting surface,
and a ``/v1/spec`` response stays bit-identical to the in-process
:meth:`MixerService.submit` call it always was.

**Continuous micro-batching.**  With ``coalesce_window_ms > 0`` the worker
that dequeues a ``spec`` job holds it for at most the window, draining
every other pending job that is *compatible* — same experiment, same
resolved grid, same execution options, experiment registers a
``batch_runner`` (:meth:`MixerService.plan_request` decides) — and
executes the whole set as **one** design-axis group call through
:meth:`MixerService.execute_group`, fanning the per-design responses back
to each job.  Underneath sits a **singleflight** tier: jobs sharing one
``request_key`` (identical design + grid) collapse onto a single leader
execution whose response answers every waiter, whether the duplicate was
drained from the queue or arrived while the leader was already running —
the cache-stampede recompute disappears even with the response cache off.
Every per-job response stays bit-identical to a solo
:meth:`MixerService.submit` (the group fan-out is the pinned batch path),
and ``coalesce_window_ms=0`` (the default) keeps the scheduler exactly on
the historical one-job-per-dequeue path.
"""

from __future__ import annotations

import itertools
import secrets
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

from repro.api.progress import progress_scope
from repro.api.request import RequestValidationError, SpecRequest
from repro.api.service import MixerService, RequestPlan
from repro.serve.metrics import (
    BATCH_SIZE_BUCKETS,
    BucketHistogram,
    LATENCY_BUCKETS_S,
)

#: Job lifecycle states, in order.
JOB_QUEUED = "queued"
JOB_RUNNING = "running"
JOB_DONE = "done"
JOB_FAILED = "failed"

#: Defaults for the manager knobs (overridable per server via the CLI).
DEFAULT_JOB_WORKERS = 2
DEFAULT_QUEUE_LIMIT = 32
DEFAULT_HISTORY_LIMIT = 256
#: Micro-batching defaults: a zero window disables coalescing (and the
#: singleflight tier riding on it) entirely — today's behaviour.
DEFAULT_COALESCE_WINDOW_MS = 0.0
DEFAULT_MAX_COALESCE = 16

#: Failure classes: a validation failure is the client's fault (HTTP 400),
#: anything else is the server's (HTTP 500).
ERROR_VALIDATION = "validation"
ERROR_INTERNAL = "internal"


class JobQueueFullError(RuntimeError):
    """Submit refused: the bounded job queue is at capacity (HTTP 429)."""


@dataclass
class Job:
    """One unit of submitted work and everything observable about it."""

    id: str
    kind: str                               # "spec" | "batch"
    requests: list[SpecRequest]
    state: str = JOB_QUEUED
    created_unix: float = field(default_factory=time.time)
    submitted_monotonic: float = field(default_factory=time.monotonic)
    started_monotonic: float | None = None
    finished_monotonic: float | None = None
    progress: dict[str, Any] = field(default_factory=dict)
    result: dict | None = None
    error: str | None = None
    error_kind: str | None = None
    done_event: threading.Event = field(default_factory=threading.Event)
    #: Singleflight waiters parked on this job (answered when it finishes);
    #: scheduler-internal, mutated only under the manager lock.
    followers: list["Job"] = field(default_factory=list, repr=False)
    #: Memoised :class:`RequestPlan` (or ``False`` after a failed attempt),
    #: so the coalescer's rescans never re-validate the same request.
    plan_cache: Any = field(default=None, repr=False)

    @property
    def experiments(self) -> list[str]:
        """Experiment names this job evaluates, in request order."""
        return [request.experiment for request in self.requests]

    def describe(self, include_result: bool = True) -> dict:
        """JSON-ready status payload (what ``GET /v1/jobs/<id>`` serves)."""
        now = time.monotonic()
        queued_s = (self.started_monotonic
                    if self.started_monotonic is not None
                    else now) - self.submitted_monotonic
        running_s = 0.0
        if self.started_monotonic is not None:
            running_s = (self.finished_monotonic
                         if self.finished_monotonic is not None
                         else now) - self.started_monotonic
        payload: dict = {
            "id": self.id,
            "kind": self.kind,
            "state": self.state,
            "experiments": self.experiments,
            "created_unix": self.created_unix,
            "queued_s": queued_s,
            "running_s": running_s,
            "progress": dict(self.progress),
        }
        if self.error is not None:
            payload["error"] = self.error
            payload["error_kind"] = self.error_kind
        if include_result and self.state == JOB_DONE:
            payload["result"] = self.result
        return payload


def _parse_spec_payload(payload: Any) -> SpecRequest:
    """A submit payload as a validated request (errors are client errors)."""
    if isinstance(payload, SpecRequest):
        return payload
    if not isinstance(payload, Mapping):
        raise RequestValidationError("request payload must be a mapping")
    return SpecRequest.from_dict(payload)


class JobManager:
    """Bounded job queue executed by a persistent worker-thread pool.

    Parameters
    ----------
    service:
        The shared :class:`MixerService` every job dispatches through.
    workers:
        Worker threads executing jobs; this (not the HTTP thread count)
        bounds how many engine runs are in flight at once.
    queue_limit:
        Maximum jobs *waiting* to start; a submit past the bound raises
        :class:`JobQueueFullError` (load shedding, never unbounded growth).
    history_limit:
        Finished jobs retained for status polling before the oldest are
        evicted; running and queued jobs are never evicted.
    coalesce_window_ms:
        Micro-batching window: how long a worker holds a dequeued ``spec``
        job while draining compatible pending jobs into one engine group.
        ``0`` (the default) disables coalescing *and* singleflight — the
        scheduler behaves exactly as before this knob existed.
    max_coalesce:
        Cap on distinct requests merged into one group call (singleflight
        waiters ride for free and do not count against the cap).
    """

    def __init__(self, service: MixerService,
                 workers: int = DEFAULT_JOB_WORKERS,
                 queue_limit: int = DEFAULT_QUEUE_LIMIT,
                 history_limit: int = DEFAULT_HISTORY_LIMIT,
                 coalesce_window_ms: float = DEFAULT_COALESCE_WINDOW_MS,
                 max_coalesce: int = DEFAULT_MAX_COALESCE) -> None:
        if workers < 1:
            raise ValueError("workers must be at least 1")
        if queue_limit < 1:
            raise ValueError("queue_limit must be at least 1")
        if history_limit < 1:
            raise ValueError("history_limit must be at least 1")
        if coalesce_window_ms < 0:
            raise ValueError("coalesce_window_ms must be >= 0")
        if max_coalesce < 2:
            raise ValueError("max_coalesce must be at least 2")
        self.service = service
        self.queue_limit = int(queue_limit)
        self.history_limit = int(history_limit)
        self.coalesce_window_ms = float(coalesce_window_ms)
        self.max_coalesce = int(max_coalesce)
        self._lock = threading.Lock()
        self._wake = threading.Condition(self._lock)
        self._jobs: dict[str, Job] = {}      # insertion-ordered (py>=3.7)
        self._pending: list[Job] = []
        self._running = 0
        self._counter = itertools.count(1)
        self._submitted = 0
        self._completed = 0
        self._failed = 0
        self._shed = 0
        #: request_key -> the job currently computing that exact request;
        #: late identical arrivals park on it instead of re-executing.
        self._inflight: dict[str, Job] = {}
        self._singleflight_hits = 0
        self._coalesced_batches = 0
        self._coalesced_jobs = 0
        self._batch_sizes = BucketHistogram(BATCH_SIZE_BUCKETS)
        self._queue_wait = BucketHistogram(LATENCY_BUCKETS_S)
        self._closed = False
        self._threads = [
            threading.Thread(target=self._worker_loop,
                             name=f"repro-job-worker-{index}", daemon=True)
            for index in range(int(workers))
        ]
        for thread in self._threads:
            thread.start()

    # -- submission -----------------------------------------------------------

    def submit(self, payload: Any) -> Job:
        """Queue one spec request (mapping or :class:`SpecRequest`).

        Parse errors raise :class:`RequestValidationError` synchronously —
        a malformed submit never occupies a queue slot.
        """
        return self._enqueue("spec", [_parse_spec_payload(payload)])

    def submit_batch(self, payloads: Sequence[Any]) -> Job:
        """Queue one batch job over many spec-request payloads."""
        if not isinstance(payloads, Sequence) or isinstance(payloads, (str, bytes)):
            raise RequestValidationError(
                "batch body must be {\"requests\": [...]}")
        requests = [_parse_spec_payload(entry) for entry in payloads]
        if not requests:
            raise RequestValidationError("batch needs at least one request")
        return self._enqueue("batch", requests)

    def _enqueue(self, kind: str, requests: list[SpecRequest]) -> Job:
        with self._wake:
            if self._closed:
                raise RuntimeError("job manager is shut down")
            if len(self._pending) >= self.queue_limit:
                self._shed += 1
                raise JobQueueFullError(
                    f"job queue is full ({self.queue_limit} waiting); "
                    f"retry later")
            job = Job(id=f"job-{next(self._counter):06d}-"
                         f"{secrets.token_hex(4)}",
                      kind=kind, requests=requests)
            self._jobs[job.id] = job
            self._pending.append(job)
            self._submitted += 1
            self._evict_finished_locked()
            if self.coalesce_window_ms > 0:
                # A drain-waiting worker and an idle worker both listen on
                # the condition; wake everyone so the coalescer always gets
                # a chance to rescan before its window closes.
                self._wake.notify_all()
            else:
                self._wake.notify()
        return job

    # -- execution ------------------------------------------------------------

    def _start_locked(self, job: Job) -> None:
        """Queued -> running bookkeeping (caller holds the lock)."""
        job.state = JOB_RUNNING
        job.started_monotonic = time.monotonic()
        self._queue_wait.observe(job.started_monotonic
                                 - job.submitted_monotonic)
        self._running += 1

    def _worker_loop(self) -> None:
        while True:
            with self._wake:
                while not self._pending and not self._closed:
                    self._wake.wait()
                if self._closed and not self._pending:
                    return
                job = self._pending.pop(0)
                self._start_locked(job)
            if self.coalesce_window_ms <= 0 or job.kind != "spec":
                self._run_solo(job)
                continue
            plan = self._plan(job)
            if plan is None:
                # Unknown experiment / bad grid: the solo path produces the
                # proper per-job validation failure.
                self._run_solo(job)
                continue
            with self._wake:
                leader = self._inflight.get(plan.key)
                if leader is not None:
                    # Singleflight: an identical request is already
                    # computing — park on it; the leader answers this job.
                    leader.followers.append(job)
                    self._singleflight_hits += 1
                    continue
                members = self._drain_locked(job, plan)
            self._run_coalesced(members)

    def _run_solo(self, job: Job) -> None:
        """The historical one-job execution path (coalescing off/N.A.)."""
        try:
            self._execute(job)
        finally:
            with self._lock:
                self._running -= 1
            job.done_event.set()

    def _plan(self, job: Job) -> RequestPlan | None:
        """The job's dispatch identity, memoised; ``None`` when invalid."""
        if job.plan_cache is None:
            try:
                job.plan_cache = self.service.plan_request(job.requests[0])
            except RequestValidationError:
                job.plan_cache = False
        return job.plan_cache or None

    def _drain_locked(self, lead: Job,
                      lead_plan: RequestPlan) -> list[tuple[str, Job]]:
        """Collect compatible pending jobs under the coalesce window.

        Returns the distinct-request members as ``(request_key, job)``
        pairs, lead first.  Pending duplicates of a member (same request
        key) are parked as that member's followers instead of joining —
        that is the queue-side half of singleflight.  The scan repeats on
        every queue notify until the member cap fills or the window
        closes; the caller holds the condition lock throughout (waits
        release it).

        Every member registers in ``_inflight`` the moment it joins — the
        window waits release the lock, and a peer worker dequeuing an
        identical request during that gap must find the leader and park on
        it rather than start a duplicate execution.
        """
        members: list[tuple[str, Job]] = [(lead_plan.key, lead)]
        by_key: dict[str, Job] = {lead_plan.key: lead}
        self._inflight[lead_plan.key] = lead
        deadline = time.monotonic() + self.coalesce_window_ms / 1000.0
        while not self._closed:
            for candidate in list(self._pending):
                if len(members) >= self.max_coalesce:
                    break
                if candidate.kind != "spec":
                    continue
                plan = self._plan(candidate)
                if plan is None:
                    continue
                owner = by_key.get(plan.key)
                if owner is not None:
                    self._pending.remove(candidate)
                    self._start_locked(candidate)
                    owner.followers.append(candidate)
                    self._singleflight_hits += 1
                    continue
                if lead_plan.token is None or plan.token != lead_plan.token:
                    continue
                self._pending.remove(candidate)
                self._start_locked(candidate)
                members.append((plan.key, candidate))
                by_key[plan.key] = candidate
                self._inflight[plan.key] = candidate
            remaining = deadline - time.monotonic()
            if len(members) >= self.max_coalesce or remaining <= 0:
                break
            self._wake.wait(timeout=remaining)
        return members

    def _classify(self, error: Exception) -> tuple[str, str]:
        """(message, kind) exactly as the solo path records failures."""
        if isinstance(error, RequestValidationError):
            return str(error), ERROR_VALIDATION
        return f"{type(error).__name__}: {error}", ERROR_INTERNAL

    def _finish_done_locked(self, job: Job, result: dict, now: float) -> None:
        job.result = result
        job.state = JOB_DONE
        job.finished_monotonic = now
        self._completed += 1
        self._running -= 1
        job.done_event.set()

    def _finish_failed_locked(self, job: Job, message: str, kind: str,
                              now: float) -> None:
        job.error = message
        job.error_kind = kind
        job.state = JOB_FAILED
        job.finished_monotonic = now
        self._failed += 1
        self._running -= 1
        job.done_event.set()

    def _run_coalesced(self, members: list[tuple[str, Job]]) -> None:
        """Answer a drained member set with one service group execution.

        Progress frames broadcast into every member's and follower's own
        progress dict (each job keeps a private channel, observable at its
        own ``GET /v1/jobs/<id>``).  On success each member's response is
        bit-identical to a solo submit (the pinned batch path); followers
        receive a copy of their leader's payload.  On failure every job in
        the set fails with the same classified error.
        """
        jobs = [job for _, job in members]

        def _broadcast(fields: dict) -> None:
            with self._lock:
                for member in jobs:
                    member.progress.update(fields)
                    for follower in member.followers:
                        follower.progress.update(fields)

        try:
            with progress_scope(_broadcast):
                if len(jobs) == 1:
                    results = [self.service.submit(jobs[0].requests[0])
                               .to_dict()]
                else:
                    requests = [job.requests[0] for job in jobs]
                    responses, groups = self.service.plan_groups(requests)
                    for group in groups:
                        for index, response in \
                                self.service.execute_group(group):
                            responses[index] = response
                    results = [response.to_dict() for response in responses]
        except Exception as error:  # noqa: BLE001 - jobs record any failure
            message, kind = self._classify(error)
            now = time.monotonic()
            with self._wake:
                self._note_batch_locked(members)
                for key, job in members:
                    self._inflight.pop(key, None)
                    followers, job.followers = job.followers, []
                    self._finish_failed_locked(job, message, kind, now)
                    for follower in followers:
                        self._finish_failed_locked(follower, message, kind,
                                                   now)
            return
        now = time.monotonic()
        with self._wake:
            self._note_batch_locked(members)
            for (key, job), result in zip(members, results):
                self._inflight.pop(key, None)
                followers, job.followers = job.followers, []
                self._finish_done_locked(job, result, now)
                for follower in followers:
                    # A distinct (shallow-copied) payload per waiter: every
                    # job answers its own client independently.
                    self._finish_done_locked(follower, dict(result), now)

    def _note_batch_locked(self, members: list[tuple[str, Job]]) -> None:
        answered = len(members) + sum(len(job.followers)
                                      for _, job in members)
        self._batch_sizes.observe(answered)
        if answered > 1:
            self._coalesced_batches += 1
            self._coalesced_jobs += answered

    def _execute(self, job: Job) -> None:
        def _merge(fields: dict) -> None:
            with self._lock:
                job.progress.update(fields)

        try:
            with progress_scope(_merge):
                if job.kind == "spec":
                    response = self.service.submit(job.requests[0])
                    result: dict = response.to_dict()
                else:
                    responses = self.service.submit_batch(job.requests)
                    result = {"responses": [r.to_dict() for r in responses]}
            with self._lock:
                job.result = result
                job.state = JOB_DONE
                job.finished_monotonic = time.monotonic()
                self._completed += 1
        except Exception as error:  # noqa: BLE001 - job must record any failure
            message, kind = self._classify(error)
            with self._lock:
                job.error = message
                job.error_kind = kind
                job.state = JOB_FAILED
                job.finished_monotonic = time.monotonic()
                self._failed += 1

    # -- observation ----------------------------------------------------------

    def get(self, job_id: str) -> Job:
        """The job for ``job_id``; ``KeyError`` when unknown or evicted."""
        with self._lock:
            try:
                return self._jobs[job_id]
            except KeyError:
                raise KeyError(f"unknown job {job_id!r} (finished jobs are "
                               f"evicted after {self.history_limit} newer "
                               f"ones)") from None

    def wait(self, job: Job, timeout: float | None = None) -> Job:
        """Block until ``job`` finishes (the sync endpoints' other half)."""
        if not job.done_event.wait(timeout):
            # Snapshot the state under the lock: a worker may be flipping
            # queued -> running -> done concurrently, and the error message
            # must report one coherent value, not a torn read.
            with self._lock:
                state = job.state
            raise TimeoutError(f"job {job.id} still {state} "
                               f"after {timeout}s")
        return job

    def jobs(self) -> list[Job]:
        """Every retained job, oldest first."""
        with self._lock:
            return list(self._jobs.values())

    def stats(self) -> dict:
        """JSON-ready manager counters for ``GET /v1/metrics``."""
        with self._lock:
            return {
                "workers": len(self._threads),
                "queue_limit": self.queue_limit,
                "queued": len(self._pending),
                "running": self._running,
                "submitted": self._submitted,
                "completed": self._completed,
                "failed": self._failed,
                "shed": self._shed,
                "retained": len(self._jobs),
                "queue_wait_le_s": self._queue_wait.le_dict(),
                "coalesce": {
                    "enabled": self.coalesce_window_ms > 0,
                    "window_ms": self.coalesce_window_ms,
                    "max_coalesce": self.max_coalesce,
                    "batches": self._batch_sizes.count,
                    "coalesced_batches": self._coalesced_batches,
                    "coalesced_jobs": self._coalesced_jobs,
                    "batch_size_le": self._batch_sizes.le_dict(),
                    "singleflight_hits": self._singleflight_hits,
                },
            }

    # -- lifecycle ------------------------------------------------------------

    def _evict_finished_locked(self) -> None:
        finished = [job_id for job_id, job in self._jobs.items()
                    if job.state in (JOB_DONE, JOB_FAILED)]
        excess = len(finished) - self.history_limit
        for job_id in finished[:max(excess, 0)]:
            del self._jobs[job_id]

    def shutdown(self, wait: bool = True, timeout: float = 5.0) -> None:
        """Stop accepting work and (optionally) join the worker threads."""
        with self._wake:
            if self._closed:
                return
            self._closed = True
            self._wake.notify_all()
        if wait:
            for thread in self._threads:
                thread.join(timeout=timeout)
