"""Request metrics for the serving layer: latency histograms and counters.

:class:`ServerMetrics` is the in-process store behind ``GET /v1/metrics``:
every handled request lands one observation (endpoint label, status code,
wall-clock latency), experiment names are counted as requests name them,
and :meth:`snapshot` renders the whole state as one JSON-ready mapping —
combined with the :meth:`ResponseCache.stats` snapshot and the job
manager's counters by the handler.

Everything is guarded by one lock; observations are a few dict updates, so
contention is negligible next to the engine work being measured.  The
histogram is cumulative (Prometheus ``le`` convention): ``buckets[i]``
counts requests at or under ``LATENCY_BUCKETS_S[i]``, with the implicit
``+Inf`` bucket equal to ``count``.
"""

from __future__ import annotations

import threading
import time

#: Histogram bucket upper bounds, in seconds.  Spans the service's real
#: dynamic range: microsecond cache hits through multi-minute yield
#: searches.  The implicit +Inf bucket catches anything slower.
LATENCY_BUCKETS_S = (0.001, 0.005, 0.025, 0.1, 0.5, 2.0, 10.0, 60.0, 300.0)

#: Bucket bounds for coalesced-batch sizes (jobs answered per engine run).
BATCH_SIZE_BUCKETS = (1, 2, 4, 8, 16, 32, 64)


class BucketHistogram:
    """Cumulative bucket counts in the Prometheus ``le`` convention.

    ``le_dict()[str(bound)]`` counts observations at or under ``bound``;
    the implicit ``+Inf`` bucket equals ``count``.  Not self-locking: every
    holder (:class:`ServerMetrics`, the job manager) already serialises its
    observations under its own lock, so a second lock here would only add
    contention.
    """

    __slots__ = ("bounds", "buckets", "count", "total")

    def __init__(self, bounds: tuple[float, ...]) -> None:
        self.bounds = tuple(bounds)
        self.buckets = [0] * len(self.bounds)
        self.count = 0
        self.total = 0.0

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                self.buckets[index] += 1

    def le_dict(self) -> dict[str, int]:
        histogram = {f"{bound:g}": count
                     for bound, count in zip(self.bounds, self.buckets)}
        histogram["+Inf"] = self.count
        return histogram


class _EndpointStats:
    """Per-endpoint counters: one latency histogram plus status classes."""

    __slots__ = ("errors", "max_s", "latency", "by_status")

    def __init__(self) -> None:
        self.errors = 0
        self.max_s = 0.0
        self.latency = BucketHistogram(LATENCY_BUCKETS_S)
        self.by_status: dict[int, int] = {}

    def observe(self, status: int, elapsed_s: float) -> None:
        if status >= 400:
            self.errors += 1
        self.by_status[status] = self.by_status.get(status, 0) + 1
        if elapsed_s > self.max_s:
            self.max_s = elapsed_s
        self.latency.observe(elapsed_s)

    def to_dict(self) -> dict:
        count = self.latency.count
        return {
            "count": count,
            "errors": self.errors,
            "total_s": self.latency.total,
            "max_s": self.max_s,
            "mean_s": self.latency.total / count if count else 0.0,
            "by_status": {str(code): count
                          for code, count in sorted(self.by_status.items())},
            "latency_le_s": self.latency.le_dict(),
        }


class ServerMetrics:
    """Thread-safe request metrics for one server process."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._started_monotonic = time.monotonic()
        self._endpoints: dict[str, _EndpointStats] = {}
        self._experiments: dict[str, int] = {}
        self._shed = 0

    def observe(self, endpoint: str, status: int, elapsed_s: float) -> None:
        """Record one handled request (called once per request, always)."""
        with self._lock:
            stats = self._endpoints.get(endpoint)
            if stats is None:
                stats = self._endpoints[endpoint] = _EndpointStats()
            stats.observe(int(status), float(elapsed_s))
            if status == 429:
                self._shed += 1

    def count_experiment(self, name: str, count: int = 1) -> None:
        """Count requested work per experiment name (spec, batch and jobs)."""
        with self._lock:
            self._experiments[name] = self._experiments.get(name, 0) + count

    def snapshot(self) -> dict:
        """JSON-ready state: uptime, per-endpoint histograms, counters."""
        with self._lock:
            return {
                "uptime_s": time.monotonic() - self._started_monotonic,
                "requests": {name: stats.to_dict()
                             for name, stats in
                             sorted(self._endpoints.items())},
                "experiments": dict(sorted(self._experiments.items())),
                "load_shed_total": self._shed,
            }
