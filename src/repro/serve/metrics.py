"""Request metrics for the serving layer: latency histograms and counters.

:class:`ServerMetrics` is the in-process store behind ``GET /v1/metrics``:
every handled request lands one observation (endpoint label, status code,
wall-clock latency), experiment names are counted as requests name them,
and :meth:`snapshot` renders the whole state as one JSON-ready mapping —
combined with the :meth:`ResponseCache.stats` snapshot and the job
manager's counters by the handler.

Everything is guarded by one lock; observations are a few dict updates, so
contention is negligible next to the engine work being measured.  The
histogram is cumulative (Prometheus ``le`` convention): ``buckets[i]``
counts requests at or under ``LATENCY_BUCKETS_S[i]``, with the implicit
``+Inf`` bucket equal to ``count``.
"""

from __future__ import annotations

import threading
import time

#: Histogram bucket upper bounds, in seconds.  Spans the service's real
#: dynamic range: microsecond cache hits through multi-minute yield
#: searches.  The implicit +Inf bucket catches anything slower.
LATENCY_BUCKETS_S = (0.001, 0.005, 0.025, 0.1, 0.5, 2.0, 10.0, 60.0, 300.0)


class _EndpointStats:
    """Per-endpoint counters: one latency histogram plus status classes."""

    __slots__ = ("count", "errors", "total_s", "max_s", "buckets",
                 "by_status")

    def __init__(self) -> None:
        self.count = 0
        self.errors = 0
        self.total_s = 0.0
        self.max_s = 0.0
        self.buckets = [0] * len(LATENCY_BUCKETS_S)
        self.by_status: dict[int, int] = {}

    def observe(self, status: int, elapsed_s: float) -> None:
        self.count += 1
        if status >= 400:
            self.errors += 1
        self.by_status[status] = self.by_status.get(status, 0) + 1
        self.total_s += elapsed_s
        if elapsed_s > self.max_s:
            self.max_s = elapsed_s
        for index, bound in enumerate(LATENCY_BUCKETS_S):
            if elapsed_s <= bound:
                self.buckets[index] += 1

    def to_dict(self) -> dict:
        histogram = {f"{bound:g}": count
                     for bound, count in zip(LATENCY_BUCKETS_S, self.buckets)}
        histogram["+Inf"] = self.count
        return {
            "count": self.count,
            "errors": self.errors,
            "total_s": self.total_s,
            "max_s": self.max_s,
            "mean_s": self.total_s / self.count if self.count else 0.0,
            "by_status": {str(code): count
                          for code, count in sorted(self.by_status.items())},
            "latency_le_s": histogram,
        }


class ServerMetrics:
    """Thread-safe request metrics for one server process."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._started_monotonic = time.monotonic()
        self._endpoints: dict[str, _EndpointStats] = {}
        self._experiments: dict[str, int] = {}
        self._shed = 0

    def observe(self, endpoint: str, status: int, elapsed_s: float) -> None:
        """Record one handled request (called once per request, always)."""
        with self._lock:
            stats = self._endpoints.get(endpoint)
            if stats is None:
                stats = self._endpoints[endpoint] = _EndpointStats()
            stats.observe(int(status), float(elapsed_s))
            if status == 429:
                self._shed += 1

    def count_experiment(self, name: str, count: int = 1) -> None:
        """Count requested work per experiment name (spec, batch and jobs)."""
        with self._lock:
            self._experiments[name] = self._experiments.get(name, 0) + count

    def snapshot(self) -> dict:
        """JSON-ready state: uptime, per-endpoint histograms, counters."""
        with self._lock:
            return {
                "uptime_s": time.monotonic() - self._started_monotonic,
                "requests": {name: stats.to_dict()
                             for name, stats in
                             sorted(self._endpoints.items())},
                "experiments": dict(sorted(self._experiments.items())),
                "load_shed_total": self._shed,
            }
