"""HTTP/JSON serving surface over :class:`~repro.api.service.MixerService`.

``python -m repro.serve`` boots a dependency-free (stdlib ``http.server``)
threaded JSON server exposing the spec service:

* ``GET  /v1/health``       — liveness probe (``{"status": "ok"}``);
* ``GET  /v1/experiments``  — registry metadata for every experiment;
* ``POST /v1/spec``         — one :class:`~repro.api.request.SpecRequest`
  payload in, one :class:`~repro.api.request.SpecResponse` payload out;
* ``POST /v1/batch``        — ``{"requests": [...]}`` in, ``{"responses":
  [...]}`` out, fanned out through :meth:`MixerService.submit_batch`.

The handler is a thin codec: all validation, caching and dispatch live in
the service, so an HTTP response is bit-identical to the in-process call —
``json`` round-trips every double exactly (asserted in
``tests/test_serve.py`` and by the CI serve-smoke job).  Request errors map
to ``400`` with a JSON body naming the problem; unknown paths to ``404``.
"""

from __future__ import annotations

import argparse
import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any

from repro.api.request import RequestValidationError, SpecRequest
from repro.api.service import MixerService

#: Upper bound on accepted request bodies (a design payload is ~1 kB; a
#: thousand-request batch fits comfortably — this only stops abuse).
MAX_BODY_BYTES = 16 * 1024 * 1024


class SpecRequestHandler(BaseHTTPRequestHandler):
    """Routes the four endpoints onto the shared :class:`MixerService`."""

    server_version = "repro-serve/1"
    #: Set by :func:`create_server`.
    service: MixerService

    # -- plumbing -------------------------------------------------------------

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        if getattr(self.server, "verbose", False):
            super().log_message(format, *args)

    def _send_json(self, status: int, payload: dict) -> None:
        # allow_nan=False guards the wire contract: every payload must be
        # strict RFC 8259 JSON (non-finite floats travel as tagged values,
        # see repro.api.serialization), so a regression raises here instead
        # of emitting a bare Infinity/NaN token no non-Python client parses.
        body = json.dumps(payload, allow_nan=False).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_error(self, status: int, message: str) -> None:
        self._send_json(status, {"error": message})

    def _read_json_body(self) -> Any:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            raise RequestValidationError("request body must be JSON")
        if length > MAX_BODY_BYTES:
            raise RequestValidationError(
                f"request body exceeds {MAX_BODY_BYTES} bytes")
        raw = self.rfile.read(length)
        try:
            return json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise RequestValidationError(f"bad JSON body: {error}") from None

    # -- endpoints ------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        if self.path == "/v1/health":
            self._send_json(200, {"status": "ok"})
        elif self.path == "/v1/experiments":
            self._send_json(200, {"experiments": self.service.experiments()})
        else:
            self._send_error(404, f"unknown path {self.path!r}; endpoints: "
                             "/v1/health /v1/experiments /v1/spec /v1/batch")

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        try:
            if self.path == "/v1/spec":
                payload = self._read_json_body()
                request = SpecRequest.from_dict(payload)
                response = self.service.submit(request)
                self._send_json(200, response.to_dict())
            elif self.path == "/v1/batch":
                payload = self._read_json_body()
                if not isinstance(payload, dict) \
                        or not isinstance(payload.get("requests"), list):
                    raise RequestValidationError(
                        "batch body must be {\"requests\": [...]}")
                requests = [SpecRequest.from_dict(entry)
                            for entry in payload["requests"]]
                responses = self.service.submit_batch(requests)
                self._send_json(200, {"responses": [r.to_dict()
                                                    for r in responses]})
            else:
                self._send_error(404, f"unknown path {self.path!r}")
        except RequestValidationError as error:
            self._send_error(400, str(error))
        except Exception as error:  # noqa: BLE001 - surface, don't kill thread
            self._send_error(500, f"{type(error).__name__}: {error}")


def create_server(host: str = "127.0.0.1", port: int = 0,
                  service: MixerService | None = None,
                  verbose: bool = False) -> ThreadingHTTPServer:
    """A ready-to-serve HTTP server bound to ``host:port`` (0 = ephemeral).

    The returned server's ``server_address`` carries the actually bound
    port; call ``serve_forever()`` (or wrap in a thread for tests).
    """
    shared = service if service is not None else MixerService()

    class _Handler(SpecRequestHandler):
        pass

    _Handler.service = shared
    server = ThreadingHTTPServer((host, port), _Handler)
    server.verbose = verbose  # type: ignore[attr-defined]
    return server


def serve_in_thread(server: ThreadingHTTPServer) -> threading.Thread:
    """Run ``server`` on a daemon thread (test/demo helper)."""
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    return thread


def main(argv: list[str] | None = None) -> int:
    """Entry point of ``python -m repro.serve``."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Serve the paper's experiments as an HTTP/JSON API.")
    parser.add_argument("--host", default="127.0.0.1",
                        help="bind address (default 127.0.0.1)")
    parser.add_argument("--port", type=int, default=8337,
                        help="bind port; 0 picks a free one (default 8337)")
    parser.add_argument("--workers", type=int, default=None,
                        help="default sweep-engine worker count")
    parser.add_argument("--spec-cache", default=None, metavar="DIR",
                        help="on-disk spec cache directory for the engine")
    parser.add_argument("--response-cache", default=None, metavar="DIR",
                        help="on-disk response cache directory")
    parser.add_argument("--verbose", action="store_true",
                        help="log every request to stderr")
    args = parser.parse_args(argv)

    service = MixerService(
        response_cache=args.response_cache,
        spec_cache=args.spec_cache,
        workers=args.workers,
    )
    server = create_server(args.host, args.port, service=service,
                           verbose=args.verbose)
    host, port = server.server_address[:2]
    # The smoke harness parses this line to find an ephemeral port.
    print(f"serving on http://{host}:{port}", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
    return 0
