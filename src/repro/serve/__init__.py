"""HTTP/JSON serving surface over :class:`~repro.api.service.MixerService`.

``python -m repro.serve`` boots a dependency-free (stdlib ``http.server``)
threaded JSON server exposing the spec service:

* ``GET  /v1/health``       — liveness probe (``{"status": "ok"}``);
* ``GET  /v1/experiments``  — registry metadata for every experiment;
* ``GET  /v1/metrics``      — latency histograms, per-experiment counters,
  response-cache and job-manager stats;
* ``POST /v1/spec``         — one :class:`~repro.api.request.SpecRequest`
  payload in, one :class:`~repro.api.request.SpecResponse` payload out;
* ``POST /v1/batch``        — ``{"requests": [...]}`` in, ``{"responses":
  [...]}`` out, fanned out through :meth:`MixerService.submit_batch`;
* ``POST /v1/jobs``         — async submit (one request or a batch),
  ``202`` with a job id;
* ``GET  /v1/jobs``         — status summaries of the retained jobs;
* ``GET  /v1/jobs/<id>``    — job status, streamed partial progress
  (yield-opt iteration history, completed sweep shards), and the result
  once done.

Every request — synchronous or async — flows through one bounded
:class:`~repro.serve.jobs.JobManager`: ``/v1/spec`` and ``/v1/batch`` are
thin submit-and-wait wrappers over the same worker pool the job endpoints
use, so a response is bit-identical to the in-process call (``json``
round-trips every double exactly; asserted in ``tests/test_serve.py`` and
by the CI serve-smoke job) while a saturated queue sheds load with ``429``
instead of queueing unboundedly.  Request errors map to ``400`` with a
JSON body naming the problem; unknown paths to ``404``.
"""

from __future__ import annotations

import argparse
import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any

from repro.api.request import API_VERSION, ApiVersionError, RequestValidationError
from repro.api.service import MixerService
from repro.serve.jobs import (
    DEFAULT_COALESCE_WINDOW_MS,
    DEFAULT_JOB_WORKERS,
    DEFAULT_MAX_COALESCE,
    DEFAULT_QUEUE_LIMIT,
    ERROR_VALIDATION,
    JobManager,
    JobQueueFullError,
)
from repro.serve.metrics import ServerMetrics
from repro.sweep.parallel import set_pool_reuse, shutdown_shared_pools

#: Upper bound on accepted request bodies (a design payload is ~1 kB; a
#: thousand-request batch fits comfortably — this only stops abuse).
MAX_BODY_BYTES = 16 * 1024 * 1024


class SpecHTTPServer(ThreadingHTTPServer):
    """Threaded server owning the shared service, job manager and metrics."""

    # http.server's default listen backlog of 5 drops SYNs under a burst of
    # concurrent clients — each dropped SYN costs the client a ~1s kernel
    # retransmit before the request even reaches the handler (exposed by
    # benchmarks/test_bench_serve.py).  Admission control belongs to the
    # job queue (429), not to silent backlog overflow.
    request_queue_size = 128

    def __init__(self, address: tuple[str, int], handler_class,
                 service: MixerService, verbose: bool = False,
                 job_workers: int = DEFAULT_JOB_WORKERS,
                 queue_limit: int = DEFAULT_QUEUE_LIMIT,
                 reuse_process_pools: bool = False,
                 coalesce_window_ms: float = DEFAULT_COALESCE_WINDOW_MS,
                 max_coalesce: int = DEFAULT_MAX_COALESCE) -> None:
        super().__init__(address, handler_class)
        self.service = service
        self.verbose = verbose
        self.metrics = ServerMetrics()
        self.jobs = JobManager(service, workers=job_workers,
                               queue_limit=queue_limit,
                               coalesce_window_ms=coalesce_window_ms,
                               max_coalesce=max_coalesce)
        self._reuse_pools = bool(reuse_process_pools)
        if self._reuse_pools:
            # Engine runs draw from persistent process pools instead of
            # spinning up a ProcessPoolExecutor per parallel request.
            set_pool_reuse(True)

    def server_close(self) -> None:
        self.jobs.shutdown(wait=True)
        if self._reuse_pools:
            set_pool_reuse(False)
            shutdown_shared_pools()
        super().server_close()


class SpecRequestHandler(BaseHTTPRequestHandler):
    """Routes the endpoints onto the server's shared :class:`JobManager`."""

    server_version = "repro-serve/3"
    server: SpecHTTPServer

    # -- plumbing -------------------------------------------------------------

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        if getattr(self.server, "verbose", False):
            super().log_message(format, *args)

    def _send_json(self, status: int, payload: dict,
                   extra_headers: dict[str, str] | None = None) -> int:
        # allow_nan=False guards the wire contract: every payload must be
        # strict RFC 8259 JSON (non-finite floats travel as tagged values,
        # see repro.api.serialization), so a regression raises here instead
        # of emitting a bare Infinity/NaN token no non-Python client parses.
        body = json.dumps(payload, allow_nan=False).encode("utf-8")
        # From here the status line is on the wire: any later failure must
        # drop the connection, never write a second response into it.
        self._headers_sent = True
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (extra_headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)
        return status

    def _send_error_json(self, status: int, message: str,
                         extra: dict[str, Any] | None = None) -> int:
        headers = {"Retry-After": "1"} if status == 429 else None
        body: dict[str, Any] = {"error": message}
        if extra:
            body.update(extra)
        return self._send_json(status, body, extra_headers=headers)

    def _read_json_body(self) -> Any:
        raw_length = self.headers.get("Content-Length")
        try:
            length = int(raw_length) if raw_length is not None else 0
        except ValueError:
            # A malformed header is the client's error, not a server 500.
            raise RequestValidationError(
                f"malformed Content-Length header {raw_length!r}") from None
        if length <= 0:
            raise RequestValidationError("request body must be JSON")
        if length > MAX_BODY_BYTES:
            raise RequestValidationError(
                f"request body exceeds {MAX_BODY_BYTES} bytes")
        raw = self.rfile.read(length)
        try:
            return json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise RequestValidationError(f"bad JSON body: {error}") from None

    # -- dispatch -------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        self._dispatch("POST")

    def _endpoint_label(self) -> str:
        """Metric label: job ids collapse so cardinality stays bounded."""
        path = self.path.split("?", 1)[0]
        if path.startswith("/v1/jobs/"):
            return "/v1/jobs/{id}"
        known = {"/v1/health", "/v1/experiments", "/v1/metrics",
                 "/v1/spec", "/v1/batch", "/v1/jobs"}
        return path if path in known else "(unknown)"

    def _dispatch(self, method: str) -> None:
        self._headers_sent = False
        started = time.perf_counter()
        status = 0
        try:
            if method == "GET":
                status = self._route_get()
            else:
                status = self._route_post()
        except ApiVersionError as error:
            # Structured body: a version-skewed client needs to know which
            # side is behind, not just that the request was bad.
            status = self._fail(400, str(error), extra={
                "error_kind": "api_version_mismatch",
                "client_api_version": error.client_version,
                "server_api_version": error.server_version,
            })
        except RequestValidationError as error:
            status = self._fail(400, str(error))
        except JobQueueFullError as error:
            status = self._fail(429, str(error))
        except Exception as error:  # noqa: BLE001 - surface, don't kill thread
            status = self._fail(500, f"{type(error).__name__}: {error}")
        finally:
            self.server.metrics.observe(self._endpoint_label(), status,
                                        time.perf_counter() - started)

    def _fail(self, status: int, message: str,
              extra: dict[str, Any] | None = None) -> int:
        """Send an error response — unless one response already started.

        If the failure happened mid-write (client disconnect, an
        ``allow_nan`` regression after ``send_response``), the status line
        is already on the wire: writing a second response into the same
        connection would corrupt the stream for a keep-alive client, so
        drop the connection instead.
        """
        if self._headers_sent:
            self.close_connection = True
            self.log_error("response already started; closing connection "
                           "instead of double-responding: %s", message)
            return status
        try:
            return self._send_error_json(status, message, extra=extra)
        except OSError:
            # The client is gone; nothing left to answer.
            self.close_connection = True
            return status

    # -- endpoints ------------------------------------------------------------

    def _route_get(self) -> int:
        path = self.path.split("?", 1)[0]
        if path == "/v1/health":
            return self._send_json(200, {"status": "ok"})
        if path == "/v1/experiments":
            return self._send_json(
                200, {"api_version": API_VERSION,
                      "experiments": self.server.service.experiments()})
        if path == "/v1/metrics":
            return self._send_json(200, self._metrics_payload())
        if path == "/v1/jobs":
            jobs = [job.describe(include_result=False)
                    for job in self.server.jobs.jobs()]
            return self._send_json(200, {"jobs": jobs})
        if path.startswith("/v1/jobs/"):
            job_id = path[len("/v1/jobs/"):]
            try:
                job = self.server.jobs.get(job_id)
            except KeyError as error:
                return self._send_error_json(404, str(error))
            return self._send_json(200, {"job": job.describe()})
        return self._send_error_json(
            404, f"unknown path {self.path!r}; endpoints: /v1/health "
                 "/v1/experiments /v1/metrics /v1/spec /v1/batch /v1/jobs")

    def _route_post(self) -> int:
        if self.path == "/v1/spec":
            payload = self._read_json_body()
            job = self.server.jobs.submit(payload)
            self._count_experiments(job)
            return self._finish_sync(self.server.jobs.wait(job))
        if self.path == "/v1/batch":
            payload = self._read_json_body()
            if not isinstance(payload, dict) \
                    or not isinstance(payload.get("requests"), list):
                raise RequestValidationError(
                    "batch body must be {\"requests\": [...]}")
            job = self.server.jobs.submit_batch(payload["requests"])
            self._count_experiments(job)
            return self._finish_sync(self.server.jobs.wait(job))
        if self.path == "/v1/jobs":
            payload = self._read_json_body()
            if not isinstance(payload, dict):
                raise RequestValidationError(
                    "job submit body must be {\"request\": {...}} or "
                    "{\"requests\": [...]}")
            if "request" in payload:
                job = self.server.jobs.submit(payload["request"])
            elif isinstance(payload.get("requests"), list):
                job = self.server.jobs.submit_batch(payload["requests"])
            else:
                raise RequestValidationError(
                    "job submit body must be {\"request\": {...}} or "
                    "{\"requests\": [...]}")
            self._count_experiments(job)
            return self._send_json(202,
                                   {"job": job.describe(include_result=False)})
        return self._send_error_json(404, f"unknown path {self.path!r}")

    def _count_experiments(self, job) -> None:
        for name in job.experiments:
            self.server.metrics.count_experiment(name)

    def _finish_sync(self, job) -> int:
        """Render a finished job as the synchronous endpoints always did.

        A validation failure is the client's fault (400), anything else is
        the server's (500); a done spec job's ``result`` *is* the response
        payload, so the sync wire format is unchanged down to the byte.
        """
        if job.state == "failed":
            status = 400 if job.error_kind == ERROR_VALIDATION else 500
            return self._send_error_json(status, job.error)
        return self._send_json(200, job.result)

    def _metrics_payload(self) -> dict:
        payload = self.server.metrics.snapshot()
        payload["jobs"] = self.server.jobs.stats()
        cache = self.server.service.response_cache
        payload["response_cache"] = cache.stats() if cache is not None \
            else None
        return payload


def create_server(host: str = "127.0.0.1", port: int = 0,
                  service: MixerService | None = None,
                  verbose: bool = False,
                  job_workers: int = DEFAULT_JOB_WORKERS,
                  queue_limit: int = DEFAULT_QUEUE_LIMIT,
                  reuse_process_pools: bool = False,
                  coalesce_window_ms: float = DEFAULT_COALESCE_WINDOW_MS,
                  max_coalesce: int = DEFAULT_MAX_COALESCE) -> SpecHTTPServer:
    """A ready-to-serve HTTP server bound to ``host:port`` (0 = ephemeral).

    The returned server's ``server_address`` carries the actually bound
    port; call ``serve_forever()`` (or wrap in a thread for tests).
    ``job_workers`` bounds concurrent engine runs, ``queue_limit`` bounds
    waiting jobs (beyond it submits shed with 429),
    ``reuse_process_pools`` keeps the sweep engine's process pools alive
    across requests (``python -m repro.serve`` turns it on), and
    ``coalesce_window_ms`` > 0 enables continuous micro-batching of
    concurrent spec jobs (``max_coalesce`` caps one merged group).
    """
    shared = service if service is not None else MixerService()
    return SpecHTTPServer((host, port), SpecRequestHandler, shared,
                          verbose=verbose, job_workers=job_workers,
                          queue_limit=queue_limit,
                          reuse_process_pools=reuse_process_pools,
                          coalesce_window_ms=coalesce_window_ms,
                          max_coalesce=max_coalesce)


def serve_in_thread(server: ThreadingHTTPServer) -> threading.Thread:
    """Run ``server`` on a daemon thread (test/demo helper)."""
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    return thread


def main(argv: list[str] | None = None) -> int:
    """Entry point of ``python -m repro.serve``."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Serve the paper's experiments as an HTTP/JSON API.")
    parser.add_argument("--host", default="127.0.0.1",
                        help="bind address (default 127.0.0.1)")
    parser.add_argument("--port", type=int, default=8337,
                        help="bind port; 0 picks a free one (default 8337)")
    parser.add_argument("--workers", type=int, default=None,
                        help="default sweep-engine worker count")
    parser.add_argument("--job-workers", type=int,
                        default=DEFAULT_JOB_WORKERS,
                        help="job-manager worker threads — bounds how many "
                             "requests compute at once (default "
                             f"{DEFAULT_JOB_WORKERS})")
    parser.add_argument("--queue-limit", type=int,
                        default=DEFAULT_QUEUE_LIMIT,
                        help="max queued jobs before submits shed with 429 "
                             f"(default {DEFAULT_QUEUE_LIMIT})")
    parser.add_argument("--coalesce-window-ms", type=float,
                        default=DEFAULT_COALESCE_WINDOW_MS,
                        help="micro-batching window: hold a dequeued spec "
                             "job this long, merging compatible pending "
                             "jobs into one design-axis engine call; 0 "
                             "disables coalescing and singleflight "
                             f"(default {DEFAULT_COALESCE_WINDOW_MS:g})")
    parser.add_argument("--max-coalesce", type=int,
                        default=DEFAULT_MAX_COALESCE,
                        help="max distinct requests merged into one "
                             f"coalesced group (default {DEFAULT_MAX_COALESCE})")
    parser.add_argument("--spec-cache", default=None, metavar="DIR",
                        help="on-disk spec cache directory for the engine")
    parser.add_argument("--response-cache", default=None, metavar="DIR",
                        help="on-disk response cache directory")
    parser.add_argument("--verbose", action="store_true",
                        help="log every request to stderr")
    args = parser.parse_args(argv)

    service = MixerService(
        response_cache=args.response_cache,
        spec_cache=args.spec_cache,
        workers=args.workers,
    )
    server = create_server(args.host, args.port, service=service,
                           verbose=args.verbose,
                           job_workers=args.job_workers,
                           queue_limit=args.queue_limit,
                           reuse_process_pools=True,
                           coalesce_window_ms=args.coalesce_window_ms,
                           max_coalesce=args.max_coalesce)
    host, port = server.server_address[:2]
    # The smoke harness parses this line to find an ephemeral port.
    print(f"serving on http://{host}:{port}", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
    return 0
