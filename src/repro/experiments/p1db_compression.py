"""Table I — input 1 dB compression point, measured from waveforms.

The paper quotes the input-referred 1 dB compression point of both modes at
a 5 MHz IF (-21.5 dBm active, -14.4 dBm passive) and attributes the low-IF
compression to the OTA output swing.  This driver measures it the way a
bench would: a single RF tone swept in power through the waveform-level
mixer model, the IF fundamental read off the spectrum at every power, and
the -1 dB crossing interpolated on the gain curve
(:func:`repro.rf.compression.compression_from_gains` — the same fit the
scalar bench uses).

The power sweep runs on the batched waveform engine
(:class:`~repro.waveform.engine.WaveformRunner`): one stacked time-domain
evaluation plus one batched FFT per (design, mode) cell, cacheable and
design-axis-shardable like every sweep.  The analytic reference
(``p1db_dbm``, the Table I pin in
``tests/test_golden_figures.py::TestTable1Golden``) comes from the spec
sweep engine, so measured and analytic values share their caches with every
other experiment.  :func:`sweep_p1db` evaluates whole design populations as
one design axis (the ``p1db`` batch adapter).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.api.registry import register_experiment
from repro.core.config import MixerDesign, MixerMode
from repro.experiments.common import design_and_runner, resolve_design
from repro.experiments.fig10_iip3 import DEFAULT_NUM_SAMPLES, DEFAULT_SAMPLE_RATE
from repro.rf.compression import compression_from_gains
from repro.sweep import SpecCache
from repro.units import ghz, mhz
from repro.waveform import make_waveform_runner, single_tone_plan


@dataclass
class ModeP1dbResult:
    """Compression sweep and fitted 1 dB point for one mode."""

    mode: MixerMode
    input_powers_dbm: np.ndarray
    output_powers_dbm: np.ndarray
    gains_db: np.ndarray
    small_signal_gain_db: float
    measured_p1db_dbm: float
    output_p1db_dbm: float
    analytic_p1db_dbm: float

    @property
    def compression_found(self) -> bool:
        """True when 1 dB of compression was reached inside the sweep."""
        return math.isfinite(self.measured_p1db_dbm)

    @property
    def delta_vs_analytic_db(self) -> float:
        """Measured minus analytic compression point (dB)."""
        return self.measured_p1db_dbm - self.analytic_p1db_dbm


@dataclass
class P1dbResult:
    """Measured P1dB of both modes (the Table I compression row)."""

    active: ModeP1dbResult
    passive: ModeP1dbResult
    lo_frequency_hz: float
    rf_frequency_hz: float
    if_frequency_hz: float

    def for_mode(self, mode: MixerMode) -> ModeP1dbResult:
        """The sweep for one mode."""
        return self.active if mode is MixerMode.ACTIVE else self.passive

    @property
    def both_found(self) -> bool:
        """True when both modes reached 1 dB of compression in the sweep."""
        return self.active.compression_found and self.passive.compression_found


def run_p1db(design: MixerDesign | None = None,
             lo_frequency_hz: float = ghz(2.4),
             rf_frequency_hz: float = ghz(2.4) + mhz(5.0),
             input_powers_dbm: np.ndarray | None = None,
             sample_rate: float = DEFAULT_SAMPLE_RATE,
             num_samples: int = DEFAULT_NUM_SAMPLES,
             workers: int | None = None,
             cache: SpecCache | str | bool | None = None) -> P1dbResult:
    """Measure the input 1 dB compression point of both modes.

    The default power sweep (-40 to -8 dBm in 2 dB steps) reaches
    compression in both modes at the paper's operating point; ``workers`` /
    ``cache`` plug in the sharded runners and on-disk caches of both
    engines — a warm re-run performs zero sizing bisections and zero FFT
    evaluations.
    """
    return sweep_p1db({"nominal": resolve_design(design)},
                      lo_frequency_hz=lo_frequency_hz,
                      rf_frequency_hz=rf_frequency_hz,
                      input_powers_dbm=input_powers_dbm,
                      sample_rate=sample_rate, num_samples=num_samples,
                      workers=workers, cache=cache)["nominal"]


def sweep_p1db(designs: Mapping[str, MixerDesign],
               lo_frequency_hz: float = ghz(2.4),
               rf_frequency_hz: float = ghz(2.4) + mhz(5.0),
               input_powers_dbm: np.ndarray | None = None,
               sample_rate: float = DEFAULT_SAMPLE_RATE,
               num_samples: int = DEFAULT_NUM_SAMPLES,
               workers: int | None = None,
               cache: SpecCache | str | bool | None = None
               ) -> dict[str, P1dbResult]:
    """The P1dB measurement for many designs as **one** design axis.

    All designs share the stimulus plan and run through one waveform-engine
    call plus one analytic reference sweep; per-design results are
    bit-identical to solo :func:`run_p1db` calls.  This is the batch
    adapter :class:`~repro.api.service.MixerService` fans design
    populations out through.
    """
    if not designs:
        raise ValueError("sweep_p1db needs at least one design")
    if input_powers_dbm is None:
        input_powers_dbm = np.arange(-40.0, -6.0, 2.0)
    powers = np.asarray(input_powers_dbm, dtype=float)
    if powers.size < 3:
        raise ValueError("compression sweep needs at least 3 input powers")
    if_frequency_hz = abs(rf_frequency_hz - lo_frequency_hz)

    baseline, runner = design_and_runner(next(iter(designs.values())),
                                         specs=("p1db_dbm",),
                                         workers=workers, cache=cache)
    modes = (MixerMode.ACTIVE, MixerMode.PASSIVE)
    analytic = runner.run(modes=modes, designs=dict(designs))
    plan = single_tone_plan(rf_frequency_hz, powers, sample_rate,
                            num_samples, lo_frequency=lo_frequency_hz,
                            output_frequency=if_frequency_hz)
    wave = make_waveform_runner(baseline, workers=workers, cache=cache).run(
        plan, modes=modes, designs=dict(designs))

    results: dict[str, P1dbResult] = {}
    for label in designs:
        per_mode: dict[MixerMode, ModeP1dbResult] = {}
        for mode in modes:
            gains = wave.values("gain_db", design=label, mode=mode)
            small_signal, input_p1db, output_p1db = \
                compression_from_gains(powers, gains)
            per_mode[mode] = ModeP1dbResult(
                mode=mode,
                input_powers_dbm=powers,
                output_powers_dbm=wave.values("output_dbm", design=label,
                                              mode=mode),
                gains_db=gains,
                small_signal_gain_db=small_signal,
                measured_p1db_dbm=input_p1db,
                output_p1db_dbm=output_p1db,
                analytic_p1db_dbm=analytic.value("p1db_dbm", design=label,
                                                 mode=mode),
            )
        results[label] = P1dbResult(
            active=per_mode[MixerMode.ACTIVE],
            passive=per_mode[MixerMode.PASSIVE],
            lo_frequency_hz=lo_frequency_hz,
            rf_frequency_hz=rf_frequency_hz,
            if_frequency_hz=if_frequency_hz,
        )
    return results


def format_report(result: P1dbResult) -> str:
    """Text rendering of the compression measurement."""
    lines = [
        "Input 1 dB compression point (LO = "
        f"{result.lo_frequency_hz / 1e9:.2f} GHz, RF = "
        f"{result.rf_frequency_hz / 1e9:.4f} GHz, IF = "
        f"{result.if_frequency_hz / 1e6:.1f} MHz)"
    ]
    for panel in (result.active, result.passive):
        if panel.compression_found:
            measured = f"{panel.measured_p1db_dbm:6.2f} dBm"
            delta = f" ({panel.delta_vs_analytic_db:+.2f} dB vs analytic)"
        else:
            measured = "not reached"
            delta = ""
        lines.append(
            f"  {panel.mode.value:>7}: measured P1dB {measured} "
            f"[analytic {panel.analytic_p1db_dbm:6.2f} dBm]{delta}")
    return "\n".join(lines)


register_experiment(
    name="p1db",
    artefact="Table I — input 1 dB compression point of both modes",
    summary="Waveform-level compression sweep against the analytic P1dB",
    runner=run_p1db,
    batch_runner=sweep_p1db,
    result_type=P1dbResult,
    report=format_report,
    default_grid={"lo_frequency_hz": ghz(2.4),
                  "rf_frequency_hz": ghz(2.4) + mhz(5.0),
                  "input_powers_dbm": None,
                  "sample_rate": DEFAULT_SAMPLE_RATE,
                  "num_samples": DEFAULT_NUM_SAMPLES},
    payload_types=(ModeP1dbResult,),
)
