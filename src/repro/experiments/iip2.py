"""Section IV text — "IIP2 is > 65 [dBm] for both cases".

The IIP2 of a fully differential mixer is set by how well the even-order
products cancel between the two half-circuits; this driver measures it with
the same two-tone waveform bench as Fig. 10, reading the IM2 product at
``|f2 - f1|`` instead of the IM3 products, and also reports the analytic
mismatch-limited value.

Reproduces: the section IV claim "IIP2 is > 65 dBm for both cases" (Table I
row ``iip2_dbm_min``).  This quantity carries no pin in
``tests/test_golden_figures.py`` — it is an FFT-measured inequality, not a
curve — so the floor itself is asserted by the shape checks in
``tests/test_experiments.py`` and the ``benchmarks/test_bench_iip2.py``
harness; the analytic mismatch-limited IIP2 behind it *is* pinned through
Table I's ``iip2_dbm`` entry.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.api.registry import register_experiment
from repro.core.config import MixerDesign, MixerMode
from repro.core.reconfigurable_mixer import ReconfigurableMixer
from repro.experiments.common import resolve_design
from repro.experiments.fig10_iip3 import DEFAULT_NUM_SAMPLES, DEFAULT_SAMPLE_RATE
from repro.rf.twotone import TwoToneSource, fit_intercept_point, sweep_two_tone
from repro.units import ghz, mhz

#: The paper's acceptance threshold.
PAPER_IIP2_FLOOR_DBM = 65.0


@dataclass
class ModeIip2Result:
    """Measured and analytic IIP2 for one mode."""

    mode: MixerMode
    measured_iip2_dbm: float
    analytic_iip2_dbm: float

    @property
    def meets_paper_floor(self) -> bool:
        """True when the measured IIP2 clears the paper's > 65 dBm claim."""
        return self.measured_iip2_dbm > PAPER_IIP2_FLOOR_DBM


@dataclass
class Iip2Result:
    """IIP2 results for both modes."""

    active: ModeIip2Result
    passive: ModeIip2Result

    def for_mode(self, mode: MixerMode) -> ModeIip2Result:
        """Result for one mode."""
        return self.active if mode is MixerMode.ACTIVE else self.passive

    @property
    def both_meet_paper_floor(self) -> bool:
        """True when both modes clear 65 dBm."""
        return self.active.meets_paper_floor and self.passive.meets_paper_floor


def run_iip2(design: MixerDesign | None = None,
             lo_frequency_hz: float = ghz(2.4),
             tone_1_hz: float = ghz(2.4) + mhz(5.0),
             tone_2_hz: float = ghz(2.4) + mhz(7.0),
             input_powers_dbm: np.ndarray | None = None,
             sample_rate: float = DEFAULT_SAMPLE_RATE,
             num_samples: int = DEFAULT_NUM_SAMPLES) -> Iip2Result:
    """Measure the IIP2 of both modes with the two-tone waveform bench."""
    design = resolve_design(design)
    if input_powers_dbm is None:
        input_powers_dbm = np.arange(-45.0, -27.0, 2.0)
    powers = np.asarray(input_powers_dbm, dtype=float)

    results: dict[MixerMode, ModeIip2Result] = {}
    for mode in (MixerMode.ACTIVE, MixerMode.PASSIVE):
        mixer = ReconfigurableMixer(design, mode)
        device = mixer.waveform_device(sample_rate, lo_frequency=lo_frequency_hz,
                                       rf_band_frequency=tone_1_hz)
        source = TwoToneSource(tone_1_hz, tone_2_hz, float(powers[0]))
        sweep = sweep_two_tone(device, source, powers, sample_rate, num_samples,
                               lo_frequency=lo_frequency_hz)
        fit = fit_intercept_point(powers,
                                  [r.fundamental_output_dbm for r in sweep],
                                  [r.im2_output_dbm for r in sweep],
                                  intermod_order=2)
        results[mode] = ModeIip2Result(
            mode=mode,
            measured_iip2_dbm=fit.intercept_input_dbm,
            analytic_iip2_dbm=mixer.iip2_dbm(),
        )
    return Iip2Result(active=results[MixerMode.ACTIVE],
                      passive=results[MixerMode.PASSIVE])


def format_report(result: Iip2Result) -> str:
    """Text rendering of the IIP2 check."""
    lines = ["IIP2 (paper: > 65 dBm for both modes)"]
    for mode_result in (result.active, result.passive):
        verdict = "PASS" if mode_result.meets_paper_floor else "FAIL"
        lines.append(
            f"  {mode_result.mode.value:>7}: measured "
            f"{mode_result.measured_iip2_dbm:5.1f} dBm "
            f"(analytic {mode_result.analytic_iip2_dbm:5.1f} dBm)  [{verdict}]")
    return "\n".join(lines)


register_experiment(
    name="iip2",
    artefact="Section IV text — IIP2 > 65 dBm for both modes",
    summary="Two-tone IM2 measurement against the paper's 65 dBm floor",
    runner=run_iip2,
    result_type=Iip2Result,
    report=format_report,
    default_grid={"lo_frequency_hz": ghz(2.4),
                  "tone_1_hz": ghz(2.4) + mhz(5.0),
                  "tone_2_hz": ghz(2.4) + mhz(7.0),
                  "input_powers_dbm": None,
                  "sample_rate": DEFAULT_SAMPLE_RATE,
                  "num_samples": DEFAULT_NUM_SAMPLES},
    accepts_workers=False,
    accepts_cache=False,
    payload_types=(ModeIip2Result,),
)
