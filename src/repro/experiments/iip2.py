"""Section IV text — "IIP2 is > 65 [dBm] for both cases".

The IIP2 of a fully differential mixer is set by how well the even-order
products cancel between the two half-circuits; this driver measures it with
the same two-tone waveform bench as Fig. 10, reading the IM2 product at
``|f2 - f1|`` instead of the IM3 products, and also reports the analytic
mismatch-limited value.

The measurement runs on the batched waveform engine
(:class:`~repro.waveform.engine.WaveformRunner`) and the analytic reference
on the spec sweep engine, so ``workers=`` / ``cache=`` shard and persist it
like every other experiment; :func:`sweep_iip2` evaluates whole design
populations as one design axis (the ``iip2`` batch adapter).

Reproduces: the section IV claim "IIP2 is > 65 dBm for both cases" (Table I
row ``iip2_dbm_min``).  This quantity carries no pin in
``tests/test_golden_figures.py`` — it is an FFT-measured inequality, not a
curve — so the floor itself is asserted by the shape checks in
``tests/test_experiments.py`` and the ``benchmarks/test_bench_iip2.py``
harness; the analytic mismatch-limited IIP2 behind it *is* pinned through
Table I's ``iip2_dbm`` entry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.api.registry import register_experiment
from repro.core.config import MixerDesign, MixerMode
from repro.experiments.common import design_and_runner, resolve_design
from repro.experiments.fig10_iip3 import DEFAULT_NUM_SAMPLES, DEFAULT_SAMPLE_RATE
from repro.rf.twotone import fit_intercept_point
from repro.sweep import SpecCache
from repro.units import ghz, mhz
from repro.waveform import make_waveform_runner, two_tone_plan

#: The paper's acceptance threshold.
PAPER_IIP2_FLOOR_DBM = 65.0


@dataclass
class ModeIip2Result:
    """Measured and analytic IIP2 for one mode."""

    mode: MixerMode
    measured_iip2_dbm: float
    analytic_iip2_dbm: float

    @property
    def meets_paper_floor(self) -> bool:
        """True when the measured IIP2 clears the paper's > 65 dBm claim."""
        return self.measured_iip2_dbm > PAPER_IIP2_FLOOR_DBM


@dataclass
class Iip2Result:
    """IIP2 results for both modes."""

    active: ModeIip2Result
    passive: ModeIip2Result

    def for_mode(self, mode: MixerMode) -> ModeIip2Result:
        """Result for one mode."""
        return self.active if mode is MixerMode.ACTIVE else self.passive

    @property
    def both_meet_paper_floor(self) -> bool:
        """True when both modes clear 65 dBm."""
        return self.active.meets_paper_floor and self.passive.meets_paper_floor


def run_iip2(design: MixerDesign | None = None,
             lo_frequency_hz: float = ghz(2.4),
             tone_1_hz: float = ghz(2.4) + mhz(5.0),
             tone_2_hz: float = ghz(2.4) + mhz(7.0),
             input_powers_dbm: np.ndarray | None = None,
             sample_rate: float = DEFAULT_SAMPLE_RATE,
             num_samples: int = DEFAULT_NUM_SAMPLES,
             workers: int | None = None,
             cache: SpecCache | str | bool | None = None) -> Iip2Result:
    """Measure the IIP2 of both modes with the two-tone waveform bench.

    ``workers`` / ``cache`` plug in the sharded runners and the on-disk
    caches of both engines — a warm re-run performs zero sizing bisections
    and zero FFT evaluations.
    """
    return sweep_iip2({"nominal": resolve_design(design)},
                      lo_frequency_hz=lo_frequency_hz, tone_1_hz=tone_1_hz,
                      tone_2_hz=tone_2_hz,
                      input_powers_dbm=input_powers_dbm,
                      sample_rate=sample_rate, num_samples=num_samples,
                      workers=workers, cache=cache)["nominal"]


def sweep_iip2(designs: Mapping[str, MixerDesign],
               lo_frequency_hz: float = ghz(2.4),
               tone_1_hz: float = ghz(2.4) + mhz(5.0),
               tone_2_hz: float = ghz(2.4) + mhz(7.0),
               input_powers_dbm: np.ndarray | None = None,
               sample_rate: float = DEFAULT_SAMPLE_RATE,
               num_samples: int = DEFAULT_NUM_SAMPLES,
               workers: int | None = None,
               cache: SpecCache | str | bool | None = None
               ) -> dict[str, Iip2Result]:
    """The IIP2 check for many designs as **one** design axis.

    All designs share the stimulus plan and run through one waveform-engine
    call plus one analytic reference sweep; per-design results are
    bit-identical to solo :func:`run_iip2` calls.  This is the batch adapter
    :class:`~repro.api.service.MixerService` fans design populations out
    through.
    """
    if not designs:
        raise ValueError("sweep_iip2 needs at least one design")
    if input_powers_dbm is None:
        input_powers_dbm = np.arange(-45.0, -27.0, 2.0)
    powers = np.asarray(input_powers_dbm, dtype=float)

    baseline, runner = design_and_runner(next(iter(designs.values())),
                                         specs=("iip2_dbm",),
                                         workers=workers, cache=cache)
    modes = (MixerMode.ACTIVE, MixerMode.PASSIVE)
    analytic = runner.run(modes=modes, designs=dict(designs))
    plan = two_tone_plan(tone_1_hz, tone_2_hz, powers, sample_rate,
                         num_samples, lo_frequency=lo_frequency_hz)
    wave = make_waveform_runner(baseline, workers=workers, cache=cache).run(
        plan, modes=modes, designs=dict(designs))

    results: dict[str, Iip2Result] = {}
    for label in designs:
        per_mode: dict[MixerMode, ModeIip2Result] = {}
        for mode in modes:
            fit = fit_intercept_point(
                powers,
                wave.values("fundamental_dbm", design=label, mode=mode),
                wave.values("im2_dbm", design=label, mode=mode),
                intermod_order=2)
            per_mode[mode] = ModeIip2Result(
                mode=mode,
                measured_iip2_dbm=fit.intercept_input_dbm,
                analytic_iip2_dbm=analytic.value("iip2_dbm", design=label,
                                                 mode=mode),
            )
        results[label] = Iip2Result(active=per_mode[MixerMode.ACTIVE],
                                    passive=per_mode[MixerMode.PASSIVE])
    return results


def format_report(result: Iip2Result) -> str:
    """Text rendering of the IIP2 check."""
    lines = ["IIP2 (paper: > 65 dBm for both modes)"]
    for mode_result in (result.active, result.passive):
        verdict = "PASS" if mode_result.meets_paper_floor else "FAIL"
        lines.append(
            f"  {mode_result.mode.value:>7}: measured "
            f"{mode_result.measured_iip2_dbm:5.1f} dBm "
            f"(analytic {mode_result.analytic_iip2_dbm:5.1f} dBm)  [{verdict}]")
    return "\n".join(lines)


register_experiment(
    name="iip2",
    artefact="Section IV text — IIP2 > 65 dBm for both modes",
    summary="Two-tone IM2 measurement against the paper's 65 dBm floor",
    runner=run_iip2,
    batch_runner=sweep_iip2,
    result_type=Iip2Result,
    report=format_report,
    default_grid={"lo_frequency_hz": ghz(2.4),
                  "tone_1_hz": ghz(2.4) + mhz(5.0),
                  "tone_2_hz": ghz(2.4) + mhz(7.0),
                  "input_powers_dbm": None,
                  "sample_rate": DEFAULT_SAMPLE_RATE,
                  "num_samples": DEFAULT_NUM_SAMPLES},
    payload_types=(ModeIip2Result,),
)
