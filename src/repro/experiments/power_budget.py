"""Section III/IV text — power consumption of the two modes.

The paper quotes 9.36 mW (active) and 9.24 mW (passive) at 1.2 V, with the
TIA drawing 3.3 mA and being powered down in active mode.  This driver
reconstructs the branch-by-branch budget and the headline totals.

Reproduces: the section III/IV power text and Table I's ``power_mw`` row.
The headline totals are pinned (1e-6 mW) through
``tests/test_golden_figures.py::TestTable1Golden``, which reads the same
``power_mw`` spec off the sweep engine; the per-branch decomposition is
covered by ``tests/test_experiments.py`` / ``tests/test_core_blocks.py``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.api.registry import register_experiment
from repro.core.config import (
    MixerDesign,
    MixerMode,
    PAPER_TARGETS_ACTIVE,
    PAPER_TARGETS_PASSIVE,
)
from repro.core.power import PowerBreakdown, PowerBudget
from repro.experiments.common import resolve_design


@dataclass
class PowerBudgetResult:
    """Power budget for both modes plus paper deltas."""

    active: PowerBreakdown
    passive: PowerBreakdown
    tia_power_mw: float

    @property
    def active_total_mw(self) -> float:
        """Total active-mode power (mW)."""
        return self.active.total_power_mw

    @property
    def passive_total_mw(self) -> float:
        """Total passive-mode power (mW)."""
        return self.passive.total_power_mw

    def delta_vs_paper_mw(self) -> dict[str, float]:
        """Measured-minus-paper totals."""
        return {
            "active": self.active_total_mw - PAPER_TARGETS_ACTIVE.power_mw,
            "passive": self.passive_total_mw - PAPER_TARGETS_PASSIVE.power_mw,
        }


def run_power_budget(design: MixerDesign | None = None) -> PowerBudgetResult:
    """Regenerate the per-mode power budget."""
    budget = PowerBudget(resolve_design(design))
    return PowerBudgetResult(
        active=budget.breakdown(MixerMode.ACTIVE),
        passive=budget.breakdown(MixerMode.PASSIVE),
        tia_power_mw=budget.tia_power_mw(),
    )


def format_report(result: PowerBudgetResult) -> str:
    """Text rendering of the power budget."""
    lines = ["Power budget (paper: 9.36 mW active, 9.24 mW passive, TIA 3.3 mA)"]
    for breakdown in (result.active, result.passive):
        lines.append(f"  {breakdown.mode.value} mode: "
                     f"{breakdown.total_power_mw:.2f} mW total")
        for branch, power_mw in breakdown.as_rows():
            if power_mw > 0:
                lines.append(f"      {branch:<30} {power_mw:5.2f} mW")
    lines.append(f"  TIA branch alone: {result.tia_power_mw:.2f} mW "
                 "(switched off in active mode)")
    return "\n".join(lines)


register_experiment(
    name="power_budget",
    artefact="Section III/IV text — 9.36/9.24 mW power budget",
    summary="Branch-by-branch supply-power decomposition of both modes",
    runner=run_power_budget,
    result_type=PowerBudgetResult,
    report=format_report,
    accepts_workers=False,
    accepts_cache=False,
    payload_types=(PowerBreakdown,),
)
