"""Digital-IF spectrum/SNR sweep — the quantized receiver back end.

The paper's mixer feeds a sampled receiver: the IF output is digitized and
down-converted to baseband in fixed point.  This driver runs that chain —
mid-rise ADC, quantized-LO NCO mixer, CIC decimator
(:mod:`repro.digital`) — over the mixer's actual time-domain IF waveform
and reports, per mode and per ADC resolution, the baseband SNR, the
signal/noise levels in dBFS, the IF-referred quantization-noise power in
dBm (the number :mod:`repro.experiments.bits_floor` compares against the
analog noise floor), the peak deviation from the unquantized float
reference, and the guard-bit overflow fraction.

The whole ADC bit-width axis is **one vectorized quantization pass** per
(design, mode) cell, riding the sweep architecture end to end: the analog
waveform is tapped once per cell
(:meth:`~repro.waveform.engine.WaveformRunner.time_domain`), measures are
content-hash cached per (design, mode, digital plan)
(:mod:`repro.digital.cache` — warm re-runs perform zero quantization
passes), and the design axis shards across processes
(:mod:`repro.digital.parallel`).  :func:`sweep_digital_if` evaluates whole
design populations as one design axis (the ``digital_if`` batch adapter);
per-design results are bit-identical to solo runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.api.registry import register_experiment
from repro.core.config import MixerDesign, MixerMode
from repro.digital import digital_if_plan, make_digital_runner
from repro.experiments.common import design_and_runner, resolve_design
from repro.sweep import SpecCache
from repro.units import ghz, mhz

#: Default ADC resolutions swept by the artefact bench.
DEFAULT_ADC_BITS = (4, 6, 8, 10, 12, 14, 16)


@dataclass
class ModeDigitalIf:
    """Quantization sweep of the digital-IF chain for one mode."""

    mode: MixerMode
    adc_bits: np.ndarray
    snr_db: np.ndarray
    signal_dbfs: np.ndarray
    noise_dbfs: np.ndarray
    noise_dbm: np.ndarray
    float_error_peak: np.ndarray
    overflow_fraction: np.ndarray
    conversion_gain_db: float
    noise_figure_db: float

    @property
    def enob(self) -> np.ndarray:
        """Effective number of bits, ``(SNR - 1.76) / 6.02`` per width."""
        return (self.snr_db - 1.76) / 6.02

    @property
    def peak_snr_db(self) -> float:
        """The best SNR across the swept resolutions."""
        return float(np.max(self.snr_db))

    @property
    def quantization_limited_bits(self) -> np.ndarray:
        """Widths still gaining >= 3 dB SNR over the next-narrower width.

        Boolean per swept width (the first width counts as limited): where
        it turns ``False`` the chain has stopped being ADC-limited — the
        NCO/LO quantization or the analog waveform floor dominates.
        """
        gains = np.diff(self.snr_db, prepend=self.snr_db[0] - 6.02)
        return gains >= 3.0


@dataclass
class DigitalIfResult:
    """Digital-IF quantization sweep of both modes."""

    active: ModeDigitalIf
    passive: ModeDigitalIf
    lo_frequency_hz: float
    rf_frequency_hz: float
    if_frequency_hz: float
    nco_frequency_hz: float
    input_power_dbm: float
    adc_sample_rate_hz: float
    output_sample_rate_hz: float
    plan_hash: str

    def for_mode(self, mode: MixerMode) -> ModeDigitalIf:
        """The sweep for one mode."""
        return self.active if mode is MixerMode.ACTIVE else self.passive


def run_digital_if(design: MixerDesign | None = None,
                   lo_frequency_hz: float = ghz(2.4),
                   rf_frequency_hz: float = ghz(2.4) + mhz(5.0),
                   input_power_dbm: float = -20.0,
                   adc_bits: Sequence[int] = DEFAULT_ADC_BITS,
                   nco_frequency_hz: float = 3.75e6,
                   workers: int | None = None,
                   cache: SpecCache | str | bool | None = None
                   ) -> DigitalIfResult:
    """Run the quantized digital-IF chain over one design.

    ``workers`` / ``cache`` plug in the sharded runners and on-disk caches
    of every engine involved — a warm re-run performs zero sizing
    bisections, zero device evaluations and zero quantization passes.
    """
    return sweep_digital_if({"nominal": resolve_design(design)},
                            lo_frequency_hz=lo_frequency_hz,
                            rf_frequency_hz=rf_frequency_hz,
                            input_power_dbm=input_power_dbm,
                            adc_bits=adc_bits,
                            nco_frequency_hz=nco_frequency_hz,
                            workers=workers, cache=cache)["nominal"]


def sweep_digital_if(designs: Mapping[str, MixerDesign],
                     lo_frequency_hz: float = ghz(2.4),
                     rf_frequency_hz: float = ghz(2.4) + mhz(5.0),
                     input_power_dbm: float = -20.0,
                     adc_bits: Sequence[int] = DEFAULT_ADC_BITS,
                     nco_frequency_hz: float = 3.75e6,
                     workers: int | None = None,
                     cache: SpecCache | str | bool | None = None
                     ) -> dict[str, DigitalIfResult]:
    """The digital-IF sweep for many designs as **one** design axis.

    All designs share the digital plan and run through one digital-engine
    call plus one analytic context sweep; per-design results are
    bit-identical to solo :func:`run_digital_if` calls.  This is the batch
    adapter :class:`~repro.api.service.MixerService` fans design
    populations out through.
    """
    if not designs:
        raise ValueError("sweep_digital_if needs at least one design")
    plan = digital_if_plan(rf_frequency=rf_frequency_hz,
                           lo_frequency=lo_frequency_hz,
                           input_power_dbm=input_power_dbm,
                           adc_bits=tuple(int(b) for b in adc_bits),
                           nco_frequency_hz=nco_frequency_hz)

    baseline, runner = design_and_runner(
        next(iter(designs.values())),
        specs=("conversion_gain_db", "noise_figure_db"),
        workers=workers, cache=cache)
    modes = (MixerMode.ACTIVE, MixerMode.PASSIVE)
    analytic = runner.run(modes=modes, designs=dict(designs))
    digital = make_digital_runner(baseline, workers=workers,
                                  cache=cache).run(plan, modes=modes,
                                                   designs=dict(designs))

    results: dict[str, DigitalIfResult] = {}
    for label in designs:
        per_mode: dict[MixerMode, ModeDigitalIf] = {}
        for mode in modes:
            per_mode[mode] = ModeDigitalIf(
                mode=mode,
                adc_bits=plan.bits(),
                snr_db=digital.values("snr_db", design=label, mode=mode),
                signal_dbfs=digital.values("signal_dbfs", design=label,
                                           mode=mode),
                noise_dbfs=digital.values("noise_dbfs", design=label,
                                          mode=mode),
                noise_dbm=digital.values("noise_dbm", design=label,
                                         mode=mode),
                float_error_peak=digital.values("float_error_peak",
                                                design=label, mode=mode),
                overflow_fraction=digital.values("overflow_fraction",
                                                 design=label, mode=mode),
                conversion_gain_db=analytic.value("conversion_gain_db",
                                                  design=label, mode=mode),
                noise_figure_db=analytic.value("noise_figure_db",
                                               design=label, mode=mode),
            )
        results[label] = DigitalIfResult(
            active=per_mode[MixerMode.ACTIVE],
            passive=per_mode[MixerMode.PASSIVE],
            lo_frequency_hz=float(lo_frequency_hz),
            rf_frequency_hz=float(rf_frequency_hz),
            if_frequency_hz=plan.if_frequency,
            nco_frequency_hz=float(nco_frequency_hz),
            input_power_dbm=float(input_power_dbm),
            adc_sample_rate_hz=plan.adc_sample_rate,
            output_sample_rate_hz=plan.output_sample_rate,
            plan_hash=plan.content_hash(),
        )
    return results


def format_report(result: DigitalIfResult) -> str:
    """Text rendering of the quantization sweep."""
    lines = [
        "Digital-IF quantization sweep (LO = "
        f"{result.lo_frequency_hz / 1e9:.2f} GHz, IF = "
        f"{result.if_frequency_hz / 1e6:.2f} MHz, NCO = "
        f"{result.nco_frequency_hz / 1e6:.2f} MHz, ADC @ "
        f"{result.adc_sample_rate_hz / 1e6:.0f} MS/s -> "
        f"{result.output_sample_rate_hz / 1e6:.0f} MS/s baseband, "
        f"Pin = {result.input_power_dbm:.1f} dBm)"
    ]
    for panel in (result.active, result.passive):
        lines.append(f"  {panel.mode.value} (gain "
                     f"{panel.conversion_gain_db:.1f} dB, NF "
                     f"{panel.noise_figure_db:.1f} dB):")
        lines.append("    bits   SNR (dB)   ENOB   noise (dBm)   overflow")
        for index, bits in enumerate(panel.adc_bits):
            lines.append(
                f"    {bits:4.0f}   {panel.snr_db[index]:8.2f}   "
                f"{panel.enob[index]:4.1f}   "
                f"{panel.noise_dbm[index]:11.2f}   "
                f"{panel.overflow_fraction[index]:8.3f}")
    return "\n".join(lines)


register_experiment(
    name="digital_if",
    artefact="Quantized digital-IF chain: SNR vs ADC resolution over the "
             "mixer's sampled IF output",
    summary="Fixed-point NCO/CIC down-conversion swept over ADC bit widths",
    runner=run_digital_if,
    batch_runner=sweep_digital_if,
    result_type=DigitalIfResult,
    report=format_report,
    default_grid={"lo_frequency_hz": ghz(2.4),
                  "rf_frequency_hz": ghz(2.4) + mhz(5.0),
                  "input_power_dbm": -20.0,
                  "adc_bits": list(DEFAULT_ADC_BITS),
                  "nco_frequency_hz": 3.75e6},
    payload_types=(ModeDigitalIf,),
)
