"""Equation (4) — the TIA closed-loop input impedance.

``Z_in(f) = (2 / A(f)) * R_F / (1 + j 2 pi f R_F C_F)``

The paper leans on this expression twice: the low input impedance is the
virtual ground that linearises the passive mixer, and the R_F C_F pole is
the anti-aliasing filter.  This driver evaluates the expression two ways —
the analytic formula through :class:`repro.core.tia.TransimpedanceAmplifier`
and an MNA AC analysis of the closed-loop circuit built from the library's
own circuit substrate (single-pole VCVS op-amp, feedback R_F ∥ C_F) — and
reports how closely they agree, which doubles as an end-to-end check of the
circuit engine.

Reproduces: equation (4) and the surrounding virtual-ground argument — a
paper equation, not a figure, so it carries no pin in
``tests/test_golden_figures.py``; the analytic-vs-MNA agreement bound is
asserted by ``tests/test_experiments.py`` and tracked by
``benchmarks/test_bench_tia.py``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.circuit import (
    CapacitorElement,
    Circuit,
    CurrentSource,
    ResistorElement,
    VCVS,
    ac_sweep,
    dc_operating_point,
)
from repro.api.registry import register_experiment
from repro.core.config import MixerDesign
from repro.core.tia import TransimpedanceAmplifier
from repro.experiments.common import resolve_design
from repro.units import khz, mhz


@dataclass
class TiaResponseResult:
    """Analytic and circuit-level TIA input impedance across frequency."""

    frequencies_hz: np.ndarray
    analytic_zin_ohm: np.ndarray
    circuit_zin_ohm: np.ndarray
    if_bandwidth_hz: float

    @property
    def worst_relative_error(self) -> float:
        """Largest relative disagreement between the two computations."""
        return float(np.max(np.abs(self.circuit_zin_ohm - self.analytic_zin_ohm)
                            / np.abs(self.analytic_zin_ohm)))

    def zin_at(self, frequency_hz: float) -> float:
        """Analytic |Z_in| at the sweep point nearest ``frequency_hz``."""
        index = int(np.argmin(np.abs(self.frequencies_hz - frequency_hz)))
        return float(self.analytic_zin_ohm[index])


def _build_closed_loop_circuit(design: MixerDesign,
                               open_loop_gain: float) -> Circuit:
    """Inverting TIA: ideal-ish op-amp (VCVS) with R_F || C_F feedback.

    The mixer core is represented by a 1 A AC current source driving the
    virtual-ground node, which is exactly the stimulus equation (4) assumes.
    """
    circuit = Circuit("tia-closed-loop")
    # Op-amp: output = -A * v(virtual ground); non-inverting input grounded.
    circuit.add(VCVS("ota", "out", "0", "0", "vg", open_loop_gain))
    circuit.add(ResistorElement("rf", "vg", "out", design.feedback_resistance))
    circuit.add(CapacitorElement("cf", "vg", "out", design.feedback_capacitance))
    circuit.add(CurrentSource("iin", "0", "vg", dc=0.0, ac=1.0))
    return circuit


def run_tia_response(design: MixerDesign | None = None,
                     f_start_hz: float = khz(10.0),
                     f_stop_hz: float = mhz(50.0),
                     points: int = 60) -> TiaResponseResult:
    """Evaluate equation (4) analytically and with the MNA circuit engine."""
    design = resolve_design(design)
    tia = TransimpedanceAmplifier(design)
    frequencies = np.logspace(np.log10(f_start_hz), np.log10(f_stop_hz), points)

    analytic = np.abs(tia.input_impedance(frequencies))

    circuit_zin = np.empty_like(analytic)
    for index, frequency in enumerate(frequencies):
        # Equation (4) treats A(f) as the frequency-dependent open-loop gain;
        # the MNA model uses a real-valued gain per point, which matches the
        # magnitude view the equation takes.  The factor 2 in the equation
        # accounts for the differential implementation, so the single-ended
        # circuit result is doubled.
        gain_magnitude = float(np.abs(tia.ota.open_loop_gain(frequency)))
        circuit = _build_closed_loop_circuit(design, gain_magnitude)
        dc = dc_operating_point(circuit)
        ac = ac_sweep(circuit, np.array([frequency]), dc_solution=dc)
        circuit_zin[index] = 2.0 * float(np.abs(ac.voltage("vg")[0]))

    return TiaResponseResult(
        frequencies_hz=frequencies,
        analytic_zin_ohm=analytic,
        circuit_zin_ohm=circuit_zin,
        if_bandwidth_hz=tia.if_bandwidth,
    )


def format_report(result: TiaResponseResult) -> str:
    """Text rendering of the equation-(4) check."""
    return "\n".join([
        "Equation (4) — TIA closed-loop input impedance",
        f"  |Z_in| at 100 kHz: {result.zin_at(1e5):6.2f} ohm",
        f"  |Z_in| at 5 MHz:   {result.zin_at(5e6):6.2f} ohm",
        f"  R_F C_F bandwidth: {result.if_bandwidth_hz / 1e6:5.1f} MHz",
        f"  analytic vs MNA worst relative error: "
        f"{result.worst_relative_error * 100.0:.2f} %",
    ])


register_experiment(
    name="tia_response",
    artefact="Equation (4) — TIA closed-loop input impedance",
    summary="Analytic vs MNA evaluation of the virtual-ground impedance",
    runner=run_tia_response,
    result_type=TiaResponseResult,
    report=format_report,
    default_grid={"f_start_hz": khz(10.0), "f_stop_hz": mhz(50.0),
                  "points": 60},
    accepts_workers=False,
    accepts_cache=False,
)
