"""Minimum bit widths keeping quantization under the analog noise floor.

A digital back end should be *transparent*: its quantization noise must sit
comfortably below the noise the mixer itself delivers, or ADC/NCO bits —
not the paper's NF — set the receiver sensitivity.  This driver answers
the sizing question directly, per mode: the **minimum ADC resolution, LO
width and output width** at which the digital chain's IF-referred noise
power stays at least ``margin_db`` below the mixer's analog output noise
floor

``floor_dbm = -174 dBm/Hz + 10 log10(BW) + NF + gain``

(the same convention as the front-end sensitivity formula in
:mod:`repro.core.frontend`, with ``BW`` the complex baseband bandwidth —
the decimated output rate).  Each width axis is scanned in isolation with
the other two held generously wide, so the reported minimum reflects that
stage's own quantization, not another stage's ceiling.

Every scan point is one cached digital-engine evaluation over the *same*
memoized analog tap — the mixer waveform is computed once per (design,
mode) and re-quantized cheaply, which is what makes a three-axis width
search affordable.  :func:`sweep_bits_floor` evaluates whole design
populations as one design axis (the ``bits_floor`` batch adapter).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Mapping, Sequence

import numpy as np

from repro.api.registry import register_experiment
from repro.core.config import MixerDesign, MixerMode
from repro.digital import DigitalResult, digital_if_plan, make_digital_runner
from repro.experiments.common import design_and_runner, resolve_design
from repro.sweep import SpecCache
from repro.units import ghz, mhz

#: Candidate widths scanned per axis, ascending.
DEFAULT_ADC_CANDIDATES = (4, 6, 8, 10, 12, 14, 16)
DEFAULT_LO_CANDIDATES = (6, 8, 10, 12, 14, 16, 20, 24)
DEFAULT_OUTPUT_CANDIDATES = (6, 8, 10, 12, 14, 16, 20, 24)

#: Generous widths holding the non-scanned stages out of the way.
_WIDE_LO_BITS = 24
_WIDE_OUTPUT_BITS = 32


@dataclass
class ModeBitsFloor:
    """Width minima and scan curves for one mode."""

    mode: MixerMode
    conversion_gain_db: float
    noise_figure_db: float
    analog_floor_dbm: float
    margin_db: float
    adc_candidates: np.ndarray
    noise_dbm_vs_adc: np.ndarray
    snr_db_vs_adc: np.ndarray
    min_adc_bits: float
    lo_candidates: np.ndarray
    noise_dbm_vs_lo: np.ndarray
    snr_db_vs_lo: np.ndarray
    min_lo_bits: float
    output_candidates: np.ndarray
    noise_dbm_vs_output: np.ndarray
    snr_db_vs_output: np.ndarray
    min_output_bits: float

    @property
    def threshold_dbm(self) -> float:
        """The level quantization noise must stay at or below."""
        return self.analog_floor_dbm - self.margin_db

    @property
    def achievable(self) -> bool:
        """True when every scanned axis reached the threshold."""
        return (math.isfinite(self.min_adc_bits)
                and math.isfinite(self.min_lo_bits)
                and math.isfinite(self.min_output_bits))


@dataclass
class BitsFloorResult:
    """Minimum transparent bit widths for both modes."""

    active: ModeBitsFloor
    passive: ModeBitsFloor
    lo_frequency_hz: float
    rf_frequency_hz: float
    if_frequency_hz: float
    nco_frequency_hz: float
    output_sample_rate_hz: float
    margin_db: float

    def for_mode(self, mode: MixerMode) -> ModeBitsFloor:
        """The scan for one mode."""
        return self.active if mode is MixerMode.ACTIVE else self.passive


def _first_meeting(candidates: np.ndarray, noise_dbm: np.ndarray,
                   snr_db: np.ndarray, threshold_dbm: float) -> float:
    """The narrowest candidate whose noise meets the threshold (nan if none).

    A width also has to *carry the signal* (positive, finite SNR) to
    qualify: a register so narrow it truncates the output to all zeros
    reads as zero noise power, which must not count as transparent.
    """
    with np.errstate(invalid="ignore"):
        meets = np.flatnonzero((noise_dbm <= threshold_dbm)
                               & np.isfinite(snr_db) & (snr_db > 0.0))
    return float(candidates[meets[0]]) if meets.size else math.nan


def run_bits_floor(design: MixerDesign | None = None,
                   lo_frequency_hz: float = ghz(2.4),
                   rf_frequency_hz: float = ghz(2.4) + mhz(5.0),
                   input_power_dbm: float = -40.0,
                   margin_db: float = 10.0,
                   adc_candidates: Sequence[int] = DEFAULT_ADC_CANDIDATES,
                   lo_candidates: Sequence[int] = DEFAULT_LO_CANDIDATES,
                   output_candidates: Sequence[int] =
                   DEFAULT_OUTPUT_CANDIDATES,
                   workers: int | None = None,
                   cache: SpecCache | str | bool | None = None
                   ) -> BitsFloorResult:
    """Find the minimum transparent digital widths for one design.

    ``workers`` / ``cache`` plug in the sharded runners and on-disk caches
    of every engine involved; with a warm cache the whole three-axis scan
    performs zero quantization passes.
    """
    return sweep_bits_floor({"nominal": resolve_design(design)},
                            lo_frequency_hz=lo_frequency_hz,
                            rf_frequency_hz=rf_frequency_hz,
                            input_power_dbm=input_power_dbm,
                            margin_db=margin_db,
                            adc_candidates=adc_candidates,
                            lo_candidates=lo_candidates,
                            output_candidates=output_candidates,
                            workers=workers, cache=cache)["nominal"]


def sweep_bits_floor(designs: Mapping[str, MixerDesign],
                     lo_frequency_hz: float = ghz(2.4),
                     rf_frequency_hz: float = ghz(2.4) + mhz(5.0),
                     input_power_dbm: float = -40.0,
                     margin_db: float = 10.0,
                     adc_candidates: Sequence[int] = DEFAULT_ADC_CANDIDATES,
                     lo_candidates: Sequence[int] = DEFAULT_LO_CANDIDATES,
                     output_candidates: Sequence[int] =
                     DEFAULT_OUTPUT_CANDIDATES,
                     workers: int | None = None,
                     cache: SpecCache | str | bool | None = None
                     ) -> dict[str, BitsFloorResult]:
    """The width-minimum scan for many designs as **one** design axis.

    Every scan point runs the whole design population through one
    digital-engine call; per-design results are bit-identical to solo
    :func:`run_bits_floor` calls.  This is the batch adapter
    :class:`~repro.api.service.MixerService` fans design populations out
    through.
    """
    if not designs:
        raise ValueError("sweep_bits_floor needs at least one design")
    if margin_db < 0:
        raise ValueError("margin_db must be non-negative")
    adc_candidates = tuple(int(b) for b in adc_candidates)
    lo_candidates = tuple(int(b) for b in lo_candidates)
    output_candidates = tuple(int(b) for b in output_candidates)
    if not adc_candidates or not lo_candidates or not output_candidates:
        raise ValueError("every candidate axis needs at least one width")

    baseline, runner = design_and_runner(
        next(iter(designs.values())),
        specs=("conversion_gain_db", "noise_figure_db"),
        workers=workers, cache=cache)
    modes = (MixerMode.ACTIVE, MixerMode.PASSIVE)
    analytic = runner.run(modes=modes, designs=dict(designs))
    digital = make_digital_runner(baseline, workers=workers, cache=cache)

    # The ADC scan sweeps all candidate resolutions in one vectorized pass
    # (the bits axis); the LO and output scans re-quantize the same memoized
    # tap at the widest ADC so only the scanned stage limits the noise.  A
    # fourth CIC stage steepens the real-IF image rejection past the
    # quantization floors being measured — with the artefact bench's three
    # stages the decimator's own image spur caps every curve near -75 dBm.
    base = digital_if_plan(rf_frequency=rf_frequency_hz,
                           lo_frequency=lo_frequency_hz,
                           input_power_dbm=input_power_dbm,
                           adc_bits=adc_candidates,
                           lo_bits=_WIDE_LO_BITS,
                           output_bits=_WIDE_OUTPUT_BITS,
                           cic_stages=4)
    widest = (max(adc_candidates),)
    adc_scan = digital.run(base, modes=modes, designs=dict(designs))
    lo_scans: dict[int, DigitalResult] = {}
    for bits in lo_candidates:
        plan = replace(base, lo_bits=bits, adc_bits=widest,
                       guard_bits=min(base.guard_bits, bits - 1))
        lo_scans[bits] = digital.run(plan, modes=modes, designs=dict(designs))
    output_scans: dict[int, DigitalResult] = {}
    for bits in output_candidates:
        plan = replace(base, output_bits=bits, adc_bits=widest)
        output_scans[bits] = digital.run(plan, modes=modes,
                                         designs=dict(designs))

    results: dict[str, BitsFloorResult] = {}
    for label in designs:
        per_mode: dict[MixerMode, ModeBitsFloor] = {}
        for mode in modes:
            gain = analytic.value("conversion_gain_db", design=label,
                                  mode=mode)
            nf = analytic.value("noise_figure_db", design=label, mode=mode)
            floor = (-174.0
                     + 10.0 * math.log10(base.output_sample_rate)
                     + nf + gain)
            threshold = floor - margin_db
            adc_noise = adc_scan.values("noise_dbm", design=label, mode=mode)
            adc_snr = adc_scan.values("snr_db", design=label, mode=mode)
            lo_noise = np.array([
                lo_scans[bits].value("noise_dbm", design=label, mode=mode)
                for bits in lo_candidates])
            lo_snr = np.array([
                lo_scans[bits].value("snr_db", design=label, mode=mode)
                for bits in lo_candidates])
            output_noise = np.array([
                output_scans[bits].value("noise_dbm", design=label,
                                         mode=mode)
                for bits in output_candidates])
            output_snr = np.array([
                output_scans[bits].value("snr_db", design=label, mode=mode)
                for bits in output_candidates])
            per_mode[mode] = ModeBitsFloor(
                mode=mode,
                conversion_gain_db=gain,
                noise_figure_db=nf,
                analog_floor_dbm=floor,
                margin_db=float(margin_db),
                adc_candidates=np.asarray(adc_candidates, dtype=float),
                noise_dbm_vs_adc=adc_noise,
                snr_db_vs_adc=adc_snr,
                min_adc_bits=_first_meeting(
                    np.asarray(adc_candidates, dtype=float), adc_noise,
                    adc_snr, threshold),
                lo_candidates=np.asarray(lo_candidates, dtype=float),
                noise_dbm_vs_lo=lo_noise,
                snr_db_vs_lo=lo_snr,
                min_lo_bits=_first_meeting(
                    np.asarray(lo_candidates, dtype=float), lo_noise,
                    lo_snr, threshold),
                output_candidates=np.asarray(output_candidates, dtype=float),
                noise_dbm_vs_output=output_noise,
                snr_db_vs_output=output_snr,
                min_output_bits=_first_meeting(
                    np.asarray(output_candidates, dtype=float), output_noise,
                    output_snr, threshold),
            )
        results[label] = BitsFloorResult(
            active=per_mode[MixerMode.ACTIVE],
            passive=per_mode[MixerMode.PASSIVE],
            lo_frequency_hz=float(lo_frequency_hz),
            rf_frequency_hz=float(rf_frequency_hz),
            if_frequency_hz=base.if_frequency,
            nco_frequency_hz=base.nco_frequency_hz,
            output_sample_rate_hz=base.output_sample_rate,
            margin_db=float(margin_db),
        )
    return results


def _width(value: float) -> str:
    return f"{value:.0f} bits" if math.isfinite(value) else "not reached"


def format_report(result: BitsFloorResult) -> str:
    """Text rendering of the width-minimum scan."""
    lines = [
        "Minimum transparent digital-IF widths (LO = "
        f"{result.lo_frequency_hz / 1e9:.2f} GHz, IF = "
        f"{result.if_frequency_hz / 1e6:.2f} MHz, baseband BW = "
        f"{result.output_sample_rate_hz / 1e6:.0f} MHz, margin = "
        f"{result.margin_db:.0f} dB)"
    ]
    for panel in (result.active, result.passive):
        lines.append(
            f"  {panel.mode.value}: analog floor "
            f"{panel.analog_floor_dbm:7.2f} dBm (gain "
            f"{panel.conversion_gain_db:.1f} dB, NF "
            f"{panel.noise_figure_db:.1f} dB) -> threshold "
            f"{panel.threshold_dbm:7.2f} dBm")
        lines.append(f"    ADC:    {_width(panel.min_adc_bits)}")
        lines.append(f"    LO:     {_width(panel.min_lo_bits)}")
        lines.append(f"    output: {_width(panel.min_output_bits)}")
    return "\n".join(lines)


register_experiment(
    name="bits_floor",
    artefact="Minimum ADC/LO/output widths keeping quantization noise "
             "under the mixer's analog noise floor",
    summary="Three-axis digital width scan against the NF-derived floor",
    runner=run_bits_floor,
    batch_runner=sweep_bits_floor,
    result_type=BitsFloorResult,
    report=format_report,
    default_grid={"lo_frequency_hz": ghz(2.4),
                  "rf_frequency_hz": ghz(2.4) + mhz(5.0),
                  "input_power_dbm": -40.0,
                  "margin_db": 10.0,
                  "adc_candidates": list(DEFAULT_ADC_CANDIDATES),
                  "lo_candidates": list(DEFAULT_LO_CANDIDATES),
                  "output_candidates": list(DEFAULT_OUTPUT_CANDIDATES)},
    payload_types=(ModeBitsFloor,),
)
