"""Ablation studies of the design choices the paper argues for.

These are not paper figures; they are the "why is the circuit built this
way" checks DESIGN.md calls out, each isolating one design decision:

* **degeneration** — remove the PMOS switch resistance (R_deg -> 0) and show
  the passive mode loses its linearity advantage;
* **transmission-gate load** — replace the TG with a single NMOS of the same
  mid-rail resistance and show the load resistance (and therefore the active
  gain) varies far more across the 1.2 V signal range;
* **TIA power gating** — keep the TIA powered in active mode and show the
  power advantage of the paper's p3 switch disappears;
* **process corners** — re-derive the headline specs at slow/fast corners to
  show the behavioural design is not balanced on a knife edge.  The corner
  designs run as one design axis through the vectorized sweep engine
  (:mod:`repro.sweep`); the statistical sibling of this study — random
  device spread over many sampled designs — lives in
  :mod:`repro.sweep.montecarlo` (and scales with ``workers=`` / ``cache=``).

Reproduces: no single paper artefact — these studies defend the design
*choices* behind Fig. 4-6 (degeneration switches, TG load, TIA gating) and
so carry no pin in ``tests/test_golden_figures.py``; their qualitative
directions (who wins, which way each knob moves) are asserted by
``tests/test_ablation.py`` and ``benchmarks/test_bench_ablation.py``.  The
specs they perturb are the same pinned quantities, so a corner drift that
matters shows up in the golden pins first.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.api.registry import register_experiment
from repro.core.config import MixerDesign, MixerMode
from repro.core.reconfigurable_mixer import ReconfigurableMixer
from repro.core.switches import TransmissionGate
from repro.devices.mosfet import Mosfet
from repro.devices.technology import fast_corner, slow_corner
from repro.experiments.common import resolve_design


@dataclass
class DegenerationAblation:
    """Passive-mode specs at the nominal and at a strong degeneration setting.

    The paper sizes the PMOS switches so their on-resistance degenerates the
    passive path; this ablation increases that resistance (a wider/narrower
    switch) and checks the claimed direction: more degeneration buys gm-stage
    linearity and costs conversion gain.
    """

    nominal_resistance_ohm: float
    strong_resistance_ohm: float
    iip3_nominal_dbm: float
    iip3_strong_dbm: float
    gain_nominal_db: float
    gain_strong_db: float

    @property
    def linearity_benefit_db(self) -> float:
        """IIP3 gained by the stronger degeneration."""
        return self.iip3_strong_dbm - self.iip3_nominal_dbm

    @property
    def gain_cost_db(self) -> float:
        """Conversion gain lost to the stronger degeneration."""
        return self.gain_nominal_db - self.gain_strong_db


@dataclass
class LoadFlatnessAblation:
    """Load-resistance variation: transmission gate vs single NMOS."""

    transmission_gate_flatness: float
    single_nmos_flatness: float

    @property
    def improvement_ratio(self) -> float:
        """How much flatter the TG load is (larger is better)."""
        return self.single_nmos_flatness / self.transmission_gate_flatness


@dataclass
class TiaGatingAblation:
    """Active-mode power with and without the TIA power switch p3."""

    active_power_with_gating_mw: float
    active_power_without_gating_mw: float

    @property
    def power_saving_mw(self) -> float:
        """Power saved by switching the TIA off in active mode."""
        return self.active_power_without_gating_mw - self.active_power_with_gating_mw


@dataclass
class CornerPoint:
    """Headline specs of both modes at one process corner."""

    corner: str
    active_gain_db: float
    passive_gain_db: float
    active_nf_db: float
    passive_nf_db: float
    passive_iip3_dbm: float


@dataclass
class AblationResult:
    """All ablation studies bundled together."""

    degeneration: DegenerationAblation
    load_flatness: LoadFlatnessAblation
    tia_gating: TiaGatingAblation
    corners: list[CornerPoint]


def run_degeneration_ablation(design: MixerDesign,
                              strong_scale: float = 4.0) -> DegenerationAblation:
    """Compare the passive mode at nominal and strongly degenerated settings."""
    if strong_scale <= 1.0:
        raise ValueError("strong_scale must exceed 1")
    strong_resistance = design.degeneration_resistance * strong_scale
    nominal = ReconfigurableMixer(design, MixerMode.PASSIVE)
    strong = ReconfigurableMixer(
        replace(design, degeneration_resistance=strong_resistance),
        MixerMode.PASSIVE)
    return DegenerationAblation(
        nominal_resistance_ohm=design.degeneration_resistance,
        strong_resistance_ohm=strong_resistance,
        iip3_nominal_dbm=nominal.gm_stage_iip3_dbm(),
        iip3_strong_dbm=strong.gm_stage_iip3_dbm(),
        gain_nominal_db=nominal.peak_conversion_gain_db(),
        gain_strong_db=strong.peak_conversion_gain_db(),
    )


def run_load_flatness_ablation(design: MixerDesign) -> LoadFlatnessAblation:
    """Compare the TG load against a single NMOS load of equal mid-rail R."""
    technology = design.technology
    tg = TransmissionGate.sized_for_load(design.load_resistance,
                                         technology=technology)
    probe = Mosfet.nmos(1e-6, 130e-9, technology)
    width = probe.width_for_resistance(design.load_resistance,
                                       technology.vdd - technology.mid_rail,
                                       130e-9)
    nmos_load = Mosfet.nmos(width, 130e-9, technology)

    voltages = [0.1 * technology.vdd + 0.8 * technology.vdd * i / 20.0
                for i in range(21)]
    nmos_resistances = [nmos_load.on_resistance(technology.vdd - v)
                        for v in voltages]
    finite = [r for r in nmos_resistances if r != float("inf")]
    nmos_flatness = (max(finite) / min(finite)) if finite else float("inf")
    return LoadFlatnessAblation(
        transmission_gate_flatness=tg.resistance_flatness(),
        single_nmos_flatness=nmos_flatness,
    )


def run_tia_gating_ablation(design: MixerDesign) -> TiaGatingAblation:
    """Quantify the power saved by switching the TIA off in active mode."""
    from repro.core.power import PowerBudget

    budget = PowerBudget(design)
    gated = budget.total_mw(MixerMode.ACTIVE)
    ungated = gated + budget.tia_power_mw()
    return TiaGatingAblation(active_power_with_gating_mw=gated,
                             active_power_without_gating_mw=ungated)


def run_corner_sweep(design: MixerDesign) -> list[CornerPoint]:
    """Headline specs at nominal, slow and fast process corners.

    The device geometry is frozen at the nominal sizing (a fabricated chip
    cannot resize itself), so corners shift the realised gm — and with it the
    gain — the way silicon would.  The noise/linearity columns run through
    the vectorized sweep engine with the three corner designs as one design
    axis; the frozen-geometry gains are a deliberate physical override the
    engine's per-design re-sizing would hide, so they stay hand-computed.
    """
    from repro.core.transconductance import TransconductanceAmplifier
    from repro.rf.conversion_gain import SWITCHING_FACTOR
    from repro.sweep import SweepRunner
    from repro.units import db_from_voltage_ratio

    corner_designs = {
        "nominal": design,
        "slow": replace(design, technology=slow_corner()),
        "fast": replace(design, technology=fast_corner()),
    }
    sweep = SweepRunner(design, specs=("noise_figure_db", "iip3_dbm")).run(
        modes=(MixerMode.ACTIVE, MixerMode.PASSIVE), designs=corner_designs)

    nominal_width = TransconductanceAmplifier(design).device.params.width
    points = []
    for label, corner_design in corner_designs.items():
        technology = corner_design.technology
        # Realised gm of the frozen geometry at this corner and bias.
        device = Mosfet.nmos(nominal_width, design.gm_device_length, technology)
        vgs = device.vgs_for_current(design.tca_bias_current / 2.0,
                                     technology.mid_rail)
        gm = device.operating_point(vgs, technology.mid_rail).gm
        gm_eff = gm / (1.0 + gm * design.degeneration_resistance)
        active_gain = float(db_from_voltage_ratio(
            SWITCHING_FACTOR * gm * design.load_resistance))
        passive_gain = float(db_from_voltage_ratio(
            SWITCHING_FACTOR * gm_eff * design.feedback_resistance))

        points.append(CornerPoint(
            corner=label,
            active_gain_db=active_gain,
            passive_gain_db=passive_gain,
            active_nf_db=sweep.value("noise_figure_db", design=label,
                                     mode=MixerMode.ACTIVE),
            passive_nf_db=sweep.value("noise_figure_db", design=label,
                                      mode=MixerMode.PASSIVE),
            passive_iip3_dbm=sweep.value("iip3_dbm", design=label,
                                         mode=MixerMode.PASSIVE),
        ))
    return points


def run_ablation(design: MixerDesign | None = None) -> AblationResult:
    """Run every ablation study."""
    design = resolve_design(design)
    return AblationResult(
        degeneration=run_degeneration_ablation(design),
        load_flatness=run_load_flatness_ablation(design),
        tia_gating=run_tia_gating_ablation(design),
        corners=run_corner_sweep(design),
    )


def format_report(result: AblationResult) -> str:
    """Text rendering of the ablation studies."""
    lines = ["Ablation studies"]
    d = result.degeneration
    lines.append(f"  degeneration ({d.nominal_resistance_ohm:.0f} -> "
                 f"{d.strong_resistance_ohm:.0f} ohm): "
                 f"+{d.linearity_benefit_db:.1f} dB gm-stage IIP3 "
                 f"for -{d.gain_cost_db:.1f} dB of conversion gain")
    f = result.load_flatness
    lines.append(f"  load flatness: TG max/min {f.transmission_gate_flatness:.2f} "
                 f"vs single NMOS {f.single_nmos_flatness:.2f} "
                 f"({f.improvement_ratio:.1f}x flatter)")
    t = result.tia_gating
    lines.append(f"  TIA gating: saves {t.power_saving_mw:.2f} mW in active mode")
    for point in result.corners:
        lines.append(f"  corner {point.corner:>7}: active gain "
                     f"{point.active_gain_db:5.1f} dB / NF {point.active_nf_db:4.1f} dB, "
                     f"passive gain {point.passive_gain_db:5.1f} dB / "
                     f"IIP3 {point.passive_iip3_dbm:5.1f} dBm")
    return "\n".join(lines)


register_experiment(
    name="ablation",
    artefact="DESIGN.md ablations — degeneration, TG load, TIA gating, corners",
    summary="Why-is-it-built-this-way studies of the paper's design choices",
    runner=run_ablation,
    result_type=AblationResult,
    report=format_report,
    accepts_workers=False,
    accepts_cache=False,
    payload_types=(DegenerationAblation, LoadFlatnessAblation,
                   TiaGatingAblation, CornerPoint),
)
