"""Table I — simulation results of this work and comparison with prior designs.

The table has ten columns: the two modes of this work plus eight published
designs, and eight rows: gain, NF, IIP3, 1 dB compression, power, bandwidth,
technology, supply.  This driver rebuilds the whole table: the "this work"
columns come from the reconfigurable-mixer model (analytic specs, the same
ones the waveform measurements corroborate) and the reference columns from
the published-baseline database.

The "this work" columns are evaluated through the vectorized sweep engine —
one :class:`~repro.sweep.runner.SweepRunner` spot run over the mode axis
with every spec enabled — and reassembled into :class:`MixerSpecs`, so the
table shares its numbers (and its memoized per-design intermediates) with
the figure sweeps; ``workers=`` / ``cache=`` plug in the parallel runner
and the on-disk spec cache like every other sweep entry point.

Golden regression: ``tests/test_golden_figures.py::TestTable1Golden`` pins
every "this work" spec (gain, NF, IIP3, IIP2, P1dB, power, band edges,
flicker corner) for both modes to 1e-6, plus the paper-delta bookkeeping —
the acceptance record that the reproduction still lands on Table I.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.api.registry import register_experiment
from repro.baselines.published import all_published_baselines
from repro.core.config import (
    MixerDesign,
    MixerMode,
    PAPER_TARGETS_ACTIVE,
    PAPER_TARGETS_PASSIVE,
)
from repro.core.reconfigurable_mixer import MixerSpecs
from repro.experiments.common import design_and_runner, resolve_design
from repro.sweep import ALL_SPECS, SpecCache
from repro.sweep.result import SweepResult

#: Row labels in the order the paper prints them.
TABLE_I_ROWS = [
    "gain_db", "nf_db", "iip3_dbm", "p1db_dbm", "power_mw",
    "band_low_ghz", "band_high_ghz", "technology", "supply_v",
]


@dataclass
class Table1Result:
    """The regenerated Table I."""

    this_work_active: MixerSpecs
    this_work_passive: MixerSpecs
    columns: list[dict[str, float | str | None]]

    def column(self, design_label: str) -> dict[str, float | str | None]:
        """One column by its design label (e.g. ``"This work (active)"``, ``"[5]"``)."""
        for column in self.columns:
            if column["design"] == design_label:
                return column
        raise KeyError(f"no column labelled {design_label!r}")

    def deviations_from_paper(self) -> dict[str, dict[str, float]]:
        """Measured-minus-paper deltas for the "this work" columns."""
        deltas: dict[str, dict[str, float]] = {}
        for specs, targets in ((self.this_work_active, PAPER_TARGETS_ACTIVE),
                               (self.this_work_passive, PAPER_TARGETS_PASSIVE)):
            deltas[specs.mode.value] = {
                "gain_db": specs.conversion_gain_db - targets.conversion_gain_db,
                "nf_db": specs.noise_figure_db - targets.noise_figure_db,
                "iip3_dbm": specs.iip3_dbm - targets.iip3_dbm,
                "p1db_dbm": specs.p1db_dbm - targets.p1db_dbm,
                "power_mw": specs.power_mw - targets.power_mw,
            }
        return deltas

    def best_iip3_design(self) -> str:
        """Design label with the highest reported IIP3 (ties broken by order)."""
        best_label, best_value = "", float("-inf")
        for column in self.columns:
            value = column.get("iip3_dbm")
            if isinstance(value, (int, float)) and value > best_value:
                best_label, best_value = str(column["design"]), float(value)
        return best_label

    def highest_gain_design(self) -> str:
        """Design label with the highest conversion gain."""
        best_label, best_value = "", float("-inf")
        for column in self.columns:
            value = column.get("gain_db")
            if isinstance(value, (int, float)) and value > best_value:
                best_label, best_value = str(column["design"]), float(value)
        return best_label


def _specs_from_sweep(sweep: SweepResult, mode: MixerMode,
                      design: str = "nominal") -> MixerSpecs:
    """Reassemble a MixerSpecs record from one mode column of a spot sweep."""
    def value(spec: str) -> float:
        return sweep.value(spec, mode=mode, design=design)

    return MixerSpecs(
        mode=mode,
        conversion_gain_db=value("conversion_gain_db"),
        noise_figure_db=value("noise_figure_db"),
        iip3_dbm=value("iip3_dbm"),
        iip2_dbm=value("iip2_dbm"),
        p1db_dbm=value("p1db_dbm"),
        power_mw=value("power_mw"),
        band_low_hz=value("band_low_hz"),
        band_high_hz=value("band_high_hz"),
        flicker_corner_hz=value("flicker_corner_hz"),
    )


def run_table1(design: MixerDesign | None = None,
               workers: int | None = None,
               cache: SpecCache | str | bool | None = None) -> Table1Result:
    """Regenerate Table I (this work in both modes plus the eight references).

    ``workers`` / ``cache`` select the parallel runner and the on-disk spec
    cache; the spot sweep has a single design, so ``cache`` is the one that
    pays here (a warm entry skips both modes' sizing bisections).
    """
    return sweep_table1({"nominal": resolve_design(design)},
                        workers=workers, cache=cache)["nominal"]


def sweep_table1(designs: Mapping[str, MixerDesign],
                 workers: int | None = None,
                 cache: SpecCache | str | bool | None = None
                 ) -> dict[str, Table1Result]:
    """Regenerate Table I for many designs through shared sweep calls.

    Designs sharing a nominal operating point (LO + IF) run as one design
    axis per spot grid — the sweep grid is the operating point, so designs
    tuned to different frequencies are grouped rather than forced onto one
    grid.  Per-design tables are bit-identical to solo :func:`run_table1`
    calls; ``workers=`` shards each group across processes.
    """
    if not designs:
        raise ValueError("sweep_table1 needs at least one design")
    groups: dict[tuple[float, float], dict[str, MixerDesign]] = {}
    for label, design in designs.items():
        point = (design.rf_frequency, design.if_frequency)
        groups.setdefault(point, {})[label] = design

    results: dict[str, Table1Result] = {}
    for (rf_hz, if_hz), group in groups.items():
        _, runner = design_and_runner(next(iter(group.values())),
                                      specs=ALL_SPECS, workers=workers,
                                      cache=cache)
        sweep = runner.run(rf_frequencies=[rf_hz], if_frequencies=[if_hz],
                           modes=(MixerMode.ACTIVE, MixerMode.PASSIVE),
                           designs=group)
        for label in group:
            active = _specs_from_sweep(sweep, MixerMode.ACTIVE, label)
            passive = _specs_from_sweep(sweep, MixerMode.PASSIVE, label)
            columns: list[dict[str, float | str | None]] = [
                active.as_table_row(), passive.as_table_row()]
            columns.extend(baseline.spec.as_table_row()
                           for baseline in all_published_baselines())
            results[label] = Table1Result(this_work_active=active,
                                          this_work_passive=passive,
                                          columns=columns)
    return results


def format_report(result: Table1Result) -> str:
    """Render the regenerated table as fixed-width text."""
    header = ["parameter"] + [str(column["design"]) for column in result.columns]
    rows: list[list[str]] = []
    labels = {
        "gain_db": "Gain (dB)",
        "nf_db": "Noise figure (dB)",
        "iip3_dbm": "IIP3 (dBm)",
        "p1db_dbm": "1dB-CP (dBm)",
        "power_mw": "Power (mW)",
        "band_low_ghz": "Band low (GHz)",
        "band_high_ghz": "Band high (GHz)",
        "technology": "CMOS technology",
        "supply_v": "Supply (V)",
    }
    for key in TABLE_I_ROWS:
        row = [labels[key]]
        for column in result.columns:
            value = column.get(key)
            if value is None:
                row.append("NA")
            elif isinstance(value, float):
                row.append(f"{value:.2f}".rstrip("0").rstrip("."))
            else:
                row.append(str(value))
        rows.append(row)

    widths = [max(len(line[i]) for line in [header] + rows)
              for i in range(len(header))]
    def fmt(line: list[str]) -> str:
        return "  ".join(cell.ljust(width) for cell, width in zip(line, widths))

    out = ["Table I — simulation results and comparison", fmt(header)]
    out.extend(fmt(row) for row in rows)
    return "\n".join(out)


register_experiment(
    name="table1",
    artefact="Table I — comparison with published designs",
    summary="Every headline spec of both modes plus the reference columns",
    runner=run_table1,
    batch_runner=sweep_table1,
    result_type=Table1Result,
    report=format_report,
    payload_types=(MixerSpecs,),
)
