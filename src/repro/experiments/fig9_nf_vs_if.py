"""Fig. 9 — simulated noise figure and conversion gain vs IF frequency.

The paper plots the DSB noise figure and the conversion gain of both modes
against the IF frequency at a 2.45 GHz RF; the quoted spot values at 5 MHz
are NF 7.6 dB / 10.2 dB and gain 29.2 dB / 25.5 dB, with the passive-mode
flicker corner below 100 kHz.

Both curve families come out of one vectorized
:class:`~repro.sweep.runner.SweepRunner` call (IF axis x both modes, RF
pinned at 2.45 GHz); see :mod:`repro.sweep` for how to extend the grid and
for the ``workers=`` / ``cache=`` options shared by every sweep entry point.

Golden regression: ``tests/test_golden_figures.py::TestFig9Golden`` pins the
5 MHz spot NF and gain of both modes and both flicker corners to 1e-6 —
the passive corner staying below the paper's 100 kHz bound is part of the
pinned behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.api.registry import register_experiment
from repro.core.config import MixerDesign, MixerMode
from repro.experiments.common import design_and_runner, resolve_design
from repro.rf.noise_figure import flicker_corner_from_nf
from repro.sweep import SpecCache
from repro.units import ghz, khz, mhz


@dataclass
class Fig9Result:
    """NF and conversion-gain series vs IF frequency for both modes."""

    if_frequencies_hz: np.ndarray
    active_nf_db: np.ndarray
    passive_nf_db: np.ndarray
    active_gain_db: np.ndarray
    passive_gain_db: np.ndarray
    rf_frequency_hz: float

    def _series(self, mode: MixerMode, kind: str) -> np.ndarray:
        if kind == "nf":
            return self.active_nf_db if mode is MixerMode.ACTIVE \
                else self.passive_nf_db
        return self.active_gain_db if mode is MixerMode.ACTIVE \
            else self.passive_gain_db

    def value_at(self, mode: MixerMode, kind: str, if_frequency_hz: float) -> float:
        """NF (`kind='nf'`) or gain (`kind='gain'`) at the nearest sweep point."""
        series = self._series(mode, kind)
        index = int(np.argmin(np.abs(self.if_frequencies_hz - if_frequency_hz)))
        return float(series[index])

    def flicker_corner_hz(self, mode: MixerMode) -> float:
        """1/f corner read off the swept NF curve (3 dB above the floor)."""
        return flicker_corner_from_nf(self.if_frequencies_hz,
                                      self._series(mode, "nf"))


def run_fig9(design: MixerDesign | None = None,
             if_start_hz: float = khz(10.0), if_stop_hz: float = mhz(100.0),
             points: int = 200, rf_frequency_hz: float = ghz(2.45),
             workers: int | None = None,
             cache: SpecCache | str | bool | None = None) -> Fig9Result:
    """Regenerate the Fig. 9 sweep (NF and gain vs IF at 2.45 GHz RF).

    ``workers`` / ``cache`` select the parallel runner and the on-disk spec
    cache, as for every sweep entry point.
    """
    return sweep_fig9({"nominal": resolve_design(design)},
                      if_start_hz=if_start_hz, if_stop_hz=if_stop_hz,
                      points=points, rf_frequency_hz=rf_frequency_hz,
                      workers=workers, cache=cache)["nominal"]


def sweep_fig9(designs: Mapping[str, MixerDesign],
               if_start_hz: float = khz(10.0), if_stop_hz: float = mhz(100.0),
               points: int = 200, rf_frequency_hz: float = ghz(2.45),
               workers: int | None = None,
               cache: SpecCache | str | bool | None = None
               ) -> dict[str, Fig9Result]:
    """The Fig. 9 sweep for many designs as **one** design axis.

    Same contract as :func:`~repro.experiments.fig8_gain_vs_rf.sweep_fig8`:
    one sweep-engine call over the whole population (``workers=`` shards
    it), per-design results bit-identical to solo :func:`run_fig9` calls.
    """
    if points < 10:
        raise ValueError("use at least 10 sweep points")
    if not designs:
        raise ValueError("sweep_fig9 needs at least one design")
    frequencies = np.logspace(np.log10(if_start_hz), np.log10(if_stop_hz),
                              points)
    _, runner = design_and_runner(
        next(iter(designs.values())),
        specs=("conversion_gain_db", "noise_figure_db"),
        workers=workers, cache=cache)
    sweep = runner.run(rf_frequencies=[rf_frequency_hz],
                       if_frequencies=frequencies,
                       modes=(MixerMode.ACTIVE, MixerMode.PASSIVE),
                       designs=dict(designs))

    def curve(spec: str, mode: MixerMode, label: str) -> np.ndarray:
        _, series = sweep.curve(spec, "if_frequency_hz", mode=mode,
                                design=label)
        return series

    return {
        label: Fig9Result(
            if_frequencies_hz=frequencies,
            active_nf_db=curve("noise_figure_db", MixerMode.ACTIVE, label),
            passive_nf_db=curve("noise_figure_db", MixerMode.PASSIVE, label),
            active_gain_db=curve("conversion_gain_db", MixerMode.ACTIVE, label),
            passive_gain_db=curve("conversion_gain_db", MixerMode.PASSIVE,
                                  label),
            rf_frequency_hz=rf_frequency_hz,
        )
        for label in designs
    }


def format_report(result: Fig9Result) -> str:
    """Text rendering of the Fig. 9 series (spot values and flicker corners)."""
    lines = ["Fig. 9 — NF and conversion gain vs IF frequency (RF = "
             f"{result.rf_frequency_hz / 1e9:.2f} GHz)"]
    for mode in (MixerMode.ACTIVE, MixerMode.PASSIVE):
        lines.append(
            f"  {mode.value:>7}: NF@5MHz {result.value_at(mode, 'nf', 5e6):5.1f} dB, "
            f"gain@5MHz {result.value_at(mode, 'gain', 5e6):5.1f} dB, "
            f"flicker corner {result.flicker_corner_hz(mode) / 1e3:6.0f} kHz")
    return "\n".join(lines)


register_experiment(
    name="fig9",
    artefact="Fig. 9 — NF and conversion gain vs IF frequency",
    summary="DSB noise figure and gain of both modes across the IF band",
    runner=run_fig9,
    batch_runner=sweep_fig9,
    result_type=Fig9Result,
    report=format_report,
    default_grid={"if_start_hz": khz(10.0), "if_stop_hz": mhz(100.0),
                  "points": 200, "rf_frequency_hz": ghz(2.45)},
)
