"""Fig. 8 — simulated conversion gain of the reconfigurable mixer vs RF frequency.

The paper sweeps the RF frequency from 0.5 to 7 GHz at a fixed 5 MHz IF and
plots the voltage conversion gain of both modes; the quoted numbers are
29.2 dB (active) and 25.5 dB (passive) with -3 dB bands of 1-5.5 GHz and
0.5-5.1 GHz respectively.

The sweep itself runs on the vectorized engine (:mod:`repro.sweep`): one
:class:`~repro.sweep.runner.SweepRunner` call evaluates both modes over the
whole RF grid as array maths, and the curves are read off the labelled
result.  To sweep a different grid or more modes/designs, widen the axes in
:func:`run_fig8`'s ``runner.run`` call — see :mod:`repro.sweep` for the
scenario recipe; ``workers=`` / ``cache=`` plug in the parallel runner and
the on-disk spec cache.

Golden regression: ``tests/test_golden_figures.py::TestFig8Golden`` pins the
peak gains, the 2.45 GHz spot gains and the -3 dB band edges of both modes
to 1e-6 dB absolute — any core/sweep refactor that moves the Fig. 8 curves
must be an intentional model change, not drift.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.api.registry import register_experiment
from repro.core.config import MixerDesign, MixerMode
from repro.experiments.common import design_and_runner, resolve_design
from repro.sweep import SpecCache
from repro.units import ghz, mhz


@dataclass
class Fig8Result:
    """Conversion-gain-vs-RF series for both modes."""

    rf_frequencies_hz: np.ndarray
    active_gain_db: np.ndarray
    passive_gain_db: np.ndarray
    if_frequency_hz: float

    def peak_gain_db(self, mode: MixerMode) -> float:
        """Maximum gain of a mode across the sweep."""
        series = self.active_gain_db if mode is MixerMode.ACTIVE \
            else self.passive_gain_db
        return float(np.max(series))

    def band_edges_hz(self, mode: MixerMode) -> tuple[float, float]:
        """-3 dB band edges of a mode read off the swept curve."""
        series = self.active_gain_db if mode is MixerMode.ACTIVE \
            else self.passive_gain_db
        peak = float(np.max(series))
        above = self.rf_frequencies_hz[series >= peak - 3.0]
        if above.size == 0:
            return float("nan"), float("nan")
        return float(above[0]), float(above[-1])

    def gain_at(self, mode: MixerMode, rf_frequency_hz: float) -> float:
        """Gain of a mode at the sweep point nearest ``rf_frequency_hz``."""
        series = self.active_gain_db if mode is MixerMode.ACTIVE \
            else self.passive_gain_db
        index = int(np.argmin(np.abs(self.rf_frequencies_hz - rf_frequency_hz)))
        return float(series[index])


def run_fig8(design: MixerDesign | None = None,
             rf_start_hz: float = ghz(0.3), rf_stop_hz: float = ghz(7.0),
             points: int = 200, if_frequency_hz: float = mhz(5.0),
             workers: int | None = None,
             cache: SpecCache | str | bool | None = None) -> Fig8Result:
    """Regenerate the Fig. 8 sweep.

    Parameters mirror the paper's axis: RF from (just below) 0.5 GHz to
    7 GHz at 5 MHz IF.  ``workers`` / ``cache`` select the parallel runner
    and the on-disk spec cache (both off by default); with a single design
    the sweep runs inline either way, but a warm cache still skips the
    sizing bisections.
    """
    return sweep_fig8({"nominal": resolve_design(design)},
                      rf_start_hz=rf_start_hz,
                      rf_stop_hz=rf_stop_hz, points=points,
                      if_frequency_hz=if_frequency_hz, workers=workers,
                      cache=cache)["nominal"]


def sweep_fig8(designs: Mapping[str, MixerDesign],
               rf_start_hz: float = ghz(0.3), rf_stop_hz: float = ghz(7.0),
               points: int = 200, if_frequency_hz: float = mhz(5.0),
               workers: int | None = None,
               cache: SpecCache | str | bool | None = None
               ) -> dict[str, Fig8Result]:
    """The Fig. 8 sweep for many designs as **one** design axis.

    All designs share the grid and run through a single sweep-engine call,
    so ``workers=`` shards the whole population across processes; each
    per-design result is bit-identical to a solo :func:`run_fig8` call (the
    engine fills every (design, mode) cell independently).  This is the
    batch adapter :class:`~repro.api.service.MixerService` fans design
    populations out through.
    """
    if points < 10:
        raise ValueError("use at least 10 sweep points")
    if not designs:
        raise ValueError("sweep_fig8 needs at least one design")
    frequencies = np.logspace(np.log10(rf_start_hz), np.log10(rf_stop_hz),
                              points)
    _, runner = design_and_runner(next(iter(designs.values())),
                                  specs=("conversion_gain_db",),
                                  workers=workers, cache=cache)
    sweep = runner.run(rf_frequencies=frequencies,
                       if_frequencies=[if_frequency_hz],
                       modes=(MixerMode.ACTIVE, MixerMode.PASSIVE),
                       designs=dict(designs))
    results: dict[str, Fig8Result] = {}
    for label in designs:
        _, active_gain = sweep.curve("conversion_gain_db", "rf_frequency_hz",
                                     mode=MixerMode.ACTIVE, design=label)
        _, passive_gain = sweep.curve("conversion_gain_db", "rf_frequency_hz",
                                      mode=MixerMode.PASSIVE, design=label)
        results[label] = Fig8Result(
            rf_frequencies_hz=frequencies,
            active_gain_db=active_gain,
            passive_gain_db=passive_gain,
            if_frequency_hz=if_frequency_hz,
        )
    return results


def format_report(result: Fig8Result) -> str:
    """Text rendering of the Fig. 8 series (peak gains and band edges)."""
    lines = ["Fig. 8 — conversion gain vs RF frequency (IF = "
             f"{result.if_frequency_hz / 1e6:.1f} MHz)"]
    for mode in (MixerMode.ACTIVE, MixerMode.PASSIVE):
        low, high = result.band_edges_hz(mode)
        lines.append(
            f"  {mode.value:>7}: peak {result.peak_gain_db(mode):5.1f} dB, "
            f"gain@2.45GHz {result.gain_at(mode, 2.45e9):5.1f} dB, "
            f"-3 dB band {low / 1e9:.2f}-{high / 1e9:.2f} GHz")
    return "\n".join(lines)


register_experiment(
    name="fig8",
    artefact="Fig. 8 — conversion gain vs RF frequency",
    summary="Voltage conversion gain of both modes over the RF band",
    runner=run_fig8,
    batch_runner=sweep_fig8,
    result_type=Fig8Result,
    report=format_report,
    default_grid={"rf_start_hz": ghz(0.3), "rf_stop_hz": ghz(7.0),
                  "points": 200, "if_frequency_hz": mhz(5.0)},
)
