"""Shared entry-point plumbing for the experiment drivers.

Every ``run_*`` entry point used to hand-roll the same two things: the
``design: MixerDesign | None = None`` default (fall back to the paper's
design point) and the ``workers=`` / ``cache=`` forwarding into
:func:`repro.sweep.make_runner`.  This module is that boilerplate, written
once, so the drivers stay focused on their artefact and the service layer
can rely on every entry point resolving its design identically.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.config import MixerDesign
from repro.sweep import SpecCache, make_runner
from repro.sweep.parallel import ParallelSweepRunner
from repro.sweep.runner import SweepRunner


def resolve_design(design: MixerDesign | None) -> MixerDesign:
    """The design an entry point should run: the given record or the default.

    Rejects non-``MixerDesign`` values early so a mis-shaped API payload
    fails with a clear message instead of deep inside a device model.
    """
    if design is None:
        return MixerDesign()
    if not isinstance(design, MixerDesign):
        raise TypeError("design must be a MixerDesign (or None for the "
                        f"paper's default), got {type(design).__name__}")
    return design


def design_and_runner(design: MixerDesign | None, specs: Sequence[str],
                      workers: int | None = None,
                      cache: SpecCache | str | bool | None = None,
                      shared_memory: bool = False,
                      ) -> tuple[MixerDesign, SweepRunner | ParallelSweepRunner]:
    """Resolve the design and build the sweep runner for one entry point.

    This is the one place the ``design``/``workers``/``cache`` (and
    ``shared_memory``) keywords of every sweep-backed ``run_*`` function are
    interpreted; see :func:`repro.sweep.make_runner` for the
    runner-selection rules.
    """
    resolved = resolve_design(design)
    return resolved, make_runner(resolved, specs=specs, workers=workers,
                                 cache=cache, shared_memory=shared_memory)
