"""Experiment drivers — one per figure/table of the paper's evaluation.

Every driver exposes a ``run(...)`` function returning a plain dataclass of
results, plus a ``format_report(...)`` helper that renders the same content
as the text table/series the paper prints.  The benchmark harness under
``benchmarks/`` simply calls these drivers, so "regenerate Fig. 8" is one
function call both here and there.

| driver | paper artefact |
|---|---|
| :mod:`repro.experiments.fig8_gain_vs_rf`   | Fig. 8 — conversion gain vs RF frequency |
| :mod:`repro.experiments.fig9_nf_vs_if`     | Fig. 9 — NF and conversion gain vs IF frequency |
| :mod:`repro.experiments.fig10_iip3`        | Fig. 10(a)/(b) — two-tone IIP3, both modes |
| :mod:`repro.experiments.table1_comparison` | Table I — comparison with published designs |
| :mod:`repro.experiments.iip2`              | section IV text — IIP2 > 65 dBm |
| :mod:`repro.experiments.p1db_compression`  | Table I — input 1 dB compression point |
| :mod:`repro.experiments.power_budget`      | section III/IV text — power per mode |
| :mod:`repro.experiments.tia_response`      | equation (4) — TIA input impedance |
| :mod:`repro.experiments.digital_if`        | sampled-receiver context — SNR vs ADC resolution through the fixed-point IF chain |
| :mod:`repro.experiments.bits_floor`        | sampled-receiver context — minimum digital widths under the NF-derived noise floor |
| :mod:`repro.optimize.search`               | Table I targets under process spread — yield optimisation |

Sweep-engine architecture
-------------------------

The analytic curve sweeps (Fig. 8, Fig. 9, the corner columns of the
ablation study, the "this work" columns of Table I, and the analytic
reference intercepts of Fig. 10) all run on :mod:`repro.sweep`: a
:class:`~repro.sweep.runner.SweepRunner` evaluates the spec accessors over
a labelled design x mode x RF x IF grid using NumPy broadcast calls, with
the frequency-independent work memoized once per (design, mode).  The
waveform-level measurements (Fig. 10's two-tone spectra, IIP2, the P1dB
compression sweep) are genuine sampled-signal benches — and they batch the
same way on :mod:`repro.waveform`: a
:class:`~repro.waveform.engine.WaveformRunner` evaluates a whole
design x mode x input-power grid as one stacked time-domain block plus one
batched FFT per cell, with its own content-addressed measure cache.  The
fixed-point digital back end (``digital_if`` / ``bits_floor``) extends the
ladder one rung further on :mod:`repro.digital`: a
:class:`~repro.digital.engine.DigitalIfRunner` taps the waveform engine's
time-domain output per (design, mode) cell and quantizes **every ADC bit
width in one vectorized pass** over a design x mode x bits grid, again
with its own content-addressed cache and design-axis sharding.

Every engine-backed entry point (``run_fig8`` / ``run_fig9`` /
``run_fig10`` / ``run_table1`` / ``run_iip2`` / ``run_p1db`` /
``run_monte_carlo``) accepts ``workers=`` and ``cache=``: ``workers``
shards the design axis across a process pool (:mod:`repro.sweep.parallel` /
:mod:`repro.waveform.parallel`, bit-identical results) and ``cache``
persists the per-cell solutions on disk (:mod:`repro.sweep.cache` /
:mod:`repro.waveform.cache`) so warm re-runs skip the sizing bisections
*and* the FFT evaluations.

The figure/table drivers are each frozen by a golden-regression pin in
``tests/test_golden_figures.py`` (see the per-module docstrings for what
exactly is pinned); a refactor that moves a pinned number is a reproduction
regression to be reviewed, never silently absorbed.

To add a new sweep scenario, follow the recipe in :mod:`repro.sweep` —
:func:`repro.sweep.run_monte_carlo` (re-exported here) is the worked
example: a random device-parameter spread over a sampled design axis.

Service layer
-------------

Each driver module also **registers itself** into the experiment registry
(:mod:`repro.api.registry`) with its paper artefact, default grid, result
schema and text reporter, so importing this package is what populates
:func:`repro.api.default_registry`.  The registry is how the unified API
(:class:`repro.api.MixerService`, ``python -m repro.serve``,
``python -m repro.cli``) dispatches "evaluate this design against Fig. 8"
as one typed request; the ``run_*`` functions below stay the thin, direct
entry points and the service's responses are bit-identical to them.  The
shared ``design``/``workers``/``cache`` handling lives in
:mod:`repro.experiments.common`; the engine-backed drivers additionally
expose a ``sweep_*`` batch variant evaluating many designs as one design
axis (``sweep_fig8`` / ``sweep_fig9`` / ``sweep_table1``, the waveform
benches ``sweep_fig10`` / ``sweep_iip2`` / ``sweep_p1db`` and the digital
benches ``sweep_digital_if`` / ``sweep_bits_floor``).

The corner-aware yield optimiser (:mod:`repro.optimize`) registers here as
the ``yield_opt`` experiment: a seeded search over the design knobs for
maximum Monte-Carlo yield against configurable Table I spec targets —
the first driver that *designs against* the paper's artefacts instead of
reproducing one.
"""

from repro.experiments.fig8_gain_vs_rf import run_fig8, sweep_fig8, Fig8Result
from repro.experiments.fig9_nf_vs_if import run_fig9, sweep_fig9, Fig9Result
from repro.experiments.fig10_iip3 import run_fig10, sweep_fig10, Fig10Result
from repro.experiments.table1_comparison import (
    run_table1,
    sweep_table1,
    Table1Result,
)
from repro.experiments.iip2 import run_iip2, sweep_iip2, Iip2Result
from repro.experiments.p1db_compression import (
    run_p1db,
    sweep_p1db,
    P1dbResult,
)
from repro.experiments.power_budget import run_power_budget, PowerBudgetResult
from repro.experiments.digital_if import (
    run_digital_if,
    sweep_digital_if,
    DigitalIfResult,
)
from repro.experiments.bits_floor import (
    run_bits_floor,
    sweep_bits_floor,
    BitsFloorResult,
)
from repro.experiments.tia_response import run_tia_response, TiaResponseResult
from repro.experiments.ablation import run_ablation, AblationResult
from repro.experiments.common import resolve_design
from repro.optimize.search import run_yield_opt, YieldOptResult
from repro.sweep.montecarlo import run_monte_carlo, MonteCarloResult

__all__ = [
    "run_ablation", "AblationResult",
    "run_monte_carlo", "MonteCarloResult",
    "run_fig8", "sweep_fig8", "Fig8Result",
    "run_fig9", "sweep_fig9", "Fig9Result",
    "run_fig10", "sweep_fig10", "Fig10Result",
    "run_table1", "sweep_table1", "Table1Result",
    "run_iip2", "sweep_iip2", "Iip2Result",
    "run_p1db", "sweep_p1db", "P1dbResult",
    "run_digital_if", "sweep_digital_if", "DigitalIfResult",
    "run_bits_floor", "sweep_bits_floor", "BitsFloorResult",
    "run_power_budget", "PowerBudgetResult",
    "run_tia_response", "TiaResponseResult",
    "run_yield_opt", "YieldOptResult",
    "resolve_design",
]
