"""Fig. 10 — two-tone linearity of the reconfigurable mixer.

The paper shows the classic IIP3 construction for both modes at a 2.4 GHz
LO: the fundamental and IM3 output powers versus input power, with
extrapolated intercepts of +6.57 dBm (passive, Fig. 10a) and -11.9 dBm
(active, Fig. 10b).  This driver performs the actual two-tone measurement on
the waveform-level mixer model — tones through the nonlinear signal path, LO
commutation, FFT, product extraction — and fits the intercept from the swept
lines exactly as the figure does.

The analytic reference intercepts each panel is compared against come from a
spot :class:`~repro.sweep.runner.SweepRunner` evaluation (mode axis only),
so the waveform measurement and the analytic model are read through the same
sweep engine every other figure uses — including its ``workers=`` /
``cache=`` options (the waveform benches themselves are deliberately
point-by-point and unaffected).

Golden regression: ``tests/test_golden_figures.py::TestFig10Golden`` pins
the FFT-measured IIP3/OIP3 of both panels to 0.02 dB and the analytic
reference intercepts to 1e-6 dBm; the passive-over-active IIP3 advantage
(the paper's ~18 dB reconfiguration headroom) is pinned with them.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.api.registry import register_experiment
from repro.core.config import MixerDesign, MixerMode
from repro.core.reconfigurable_mixer import ReconfigurableMixer
from repro.experiments.common import design_and_runner
from repro.rf.twotone import TwoToneSource, fit_intercept_point, sweep_two_tone
from repro.sweep import SpecCache
from repro.units import ghz, mhz

#: Default sampling grid: 10.24 GS/s with 10240 samples gives exact 1 MHz
#: bins, so every tone and product of the default frequency plan is bin-exact.
DEFAULT_SAMPLE_RATE = 10.24e9
DEFAULT_NUM_SAMPLES = 10240


@dataclass
class ModeIip3Result:
    """Two-tone sweep and fitted intercept for one mode."""

    mode: MixerMode
    input_powers_dbm: np.ndarray
    fundamental_dbm: np.ndarray
    im3_dbm: np.ndarray
    iip3_dbm: float
    oip3_dbm: float
    analytic_iip3_dbm: float


@dataclass
class Fig10Result:
    """Results for both panels of Fig. 10."""

    passive: ModeIip3Result   # Fig. 10(a)
    active: ModeIip3Result    # Fig. 10(b)
    lo_frequency_hz: float
    tone_1_hz: float
    tone_2_hz: float

    def for_mode(self, mode: MixerMode) -> ModeIip3Result:
        """The panel for ``mode``."""
        return self.active if mode is MixerMode.ACTIVE else self.passive

    @property
    def iip3_gap_db(self) -> float:
        """Passive-minus-active IIP3 — the reconfiguration headroom."""
        return self.passive.iip3_dbm - self.active.iip3_dbm


def _measure_mode(design: MixerDesign, mode: MixerMode, lo_frequency: float,
                  tone_1: float, tone_2: float,
                  input_powers_dbm: np.ndarray, sample_rate: float,
                  num_samples: int, analytic_iip3_dbm: float) -> ModeIip3Result:
    mixer = ReconfigurableMixer(design, mode)
    device = mixer.waveform_device(sample_rate, lo_frequency=lo_frequency,
                                   rf_band_frequency=tone_1)
    source = TwoToneSource(tone_1, tone_2, float(input_powers_dbm[0]))
    results = sweep_two_tone(device, source, input_powers_dbm, sample_rate,
                             num_samples, lo_frequency=lo_frequency)
    fundamental = np.array([r.fundamental_output_dbm for r in results])
    im3 = np.array([r.im3_output_dbm for r in results])
    fit = fit_intercept_point(input_powers_dbm, fundamental, im3, intermod_order=3)
    return ModeIip3Result(
        mode=mode,
        input_powers_dbm=np.asarray(input_powers_dbm, dtype=float),
        fundamental_dbm=fundamental,
        im3_dbm=im3,
        iip3_dbm=fit.intercept_input_dbm,
        oip3_dbm=fit.intercept_output_dbm,
        analytic_iip3_dbm=analytic_iip3_dbm,
    )


def run_fig10(design: MixerDesign | None = None,
              lo_frequency_hz: float = ghz(2.4),
              tone_1_hz: float = ghz(2.4) + mhz(5.0),
              tone_2_hz: float = ghz(2.4) + mhz(7.0),
              input_powers_dbm: np.ndarray | None = None,
              sample_rate: float = DEFAULT_SAMPLE_RATE,
              num_samples: int = DEFAULT_NUM_SAMPLES,
              workers: int | None = None,
              cache: SpecCache | str | bool | None = None) -> Fig10Result:
    """Regenerate both panels of Fig. 10 (two-tone IIP3, 2.4 GHz LO).

    ``workers`` / ``cache`` apply to the analytic reference sweep; a warm
    cache skips its sizing bisections (the waveform measurement re-solves
    its own bias chain regardless — it is the independent cross-check).
    """
    design, runner = design_and_runner(design, specs=("iip3_dbm",),
                                       workers=workers, cache=cache)
    if input_powers_dbm is None:
        input_powers_dbm = np.arange(-45.0, -19.0, 2.0)
    powers = np.asarray(input_powers_dbm, dtype=float)
    if powers.size < 4:
        raise ValueError("the intercept fit needs at least 4 swept powers")

    analytic = runner.run(modes=(MixerMode.PASSIVE, MixerMode.ACTIVE))
    passive = _measure_mode(design, MixerMode.PASSIVE, lo_frequency_hz,
                            tone_1_hz, tone_2_hz, powers, sample_rate,
                            num_samples,
                            analytic.value("iip3_dbm", mode=MixerMode.PASSIVE))
    active = _measure_mode(design, MixerMode.ACTIVE, lo_frequency_hz,
                           tone_1_hz, tone_2_hz, powers, sample_rate,
                           num_samples,
                           analytic.value("iip3_dbm", mode=MixerMode.ACTIVE))
    return Fig10Result(passive=passive, active=active,
                       lo_frequency_hz=lo_frequency_hz,
                       tone_1_hz=tone_1_hz, tone_2_hz=tone_2_hz)


def format_report(result: Fig10Result) -> str:
    """Text rendering of the Fig. 10 intercept construction."""
    lines = [
        "Fig. 10 — two-tone linearity (LO = "
        f"{result.lo_frequency_hz / 1e9:.2f} GHz, tones at "
        f"{result.tone_1_hz / 1e9:.4f} / {result.tone_2_hz / 1e9:.4f} GHz)"
    ]
    for panel, label in ((result.passive, "(a) passive"),
                         (result.active, "(b) active")):
        lines.append(
            f"  {label:>11}: measured IIP3 {panel.iip3_dbm:6.2f} dBm "
            f"(analytic {panel.analytic_iip3_dbm:6.2f} dBm), "
            f"OIP3 {panel.oip3_dbm:6.2f} dBm")
    lines.append(f"  passive-over-active IIP3 advantage: "
                 f"{result.iip3_gap_db:.1f} dB")
    return "\n".join(lines)


register_experiment(
    name="fig10",
    artefact="Fig. 10(a)/(b) — two-tone IIP3 of both modes",
    summary="Waveform-level two-tone intercept construction, both panels",
    runner=run_fig10,
    result_type=Fig10Result,
    report=format_report,
    default_grid={"lo_frequency_hz": ghz(2.4),
                  "tone_1_hz": ghz(2.4) + mhz(5.0),
                  "tone_2_hz": ghz(2.4) + mhz(7.0),
                  "input_powers_dbm": None,
                  "sample_rate": DEFAULT_SAMPLE_RATE,
                  "num_samples": DEFAULT_NUM_SAMPLES},
    payload_types=(ModeIip3Result,),
)
