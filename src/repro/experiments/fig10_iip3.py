"""Fig. 10 — two-tone linearity of the reconfigurable mixer.

The paper shows the classic IIP3 construction for both modes at a 2.4 GHz
LO: the fundamental and IM3 output powers versus input power, with
extrapolated intercepts of +6.57 dBm (passive, Fig. 10a) and -11.9 dBm
(active, Fig. 10b).  This driver performs the actual two-tone measurement on
the waveform-level mixer model — tones through the nonlinear signal path, LO
commutation, FFT, product extraction — and fits the intercept from the swept
lines exactly as the figure does.

Both halves of the measurement now run on engines: the analytic reference
intercepts come from a spot :class:`~repro.sweep.runner.SweepRunner`
evaluation and the waveform sweep itself runs through the batched
:class:`~repro.waveform.engine.WaveformRunner` (one stacked time-domain
evaluation + one batched FFT per (design, mode) cell).  ``workers=`` /
``cache=`` therefore apply to **both**: the design axis of either engine
shards across processes, the spec cache skips sizing bisections and the
waveform cache skips FFT evaluations on warm re-runs.
:func:`sweep_fig10` evaluates whole design populations as one design axis —
the batch adapter :class:`~repro.api.service.MixerService` fans ``fig10``
populations out through.

Golden regression: ``tests/test_golden_figures.py::TestFig10Golden`` pins
the FFT-measured IIP3/OIP3 of both panels to 0.02 dB and the analytic
reference intercepts to 1e-6 dBm; the passive-over-active IIP3 advantage
(the paper's ~18 dB reconfiguration headroom) is pinned with them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.api.registry import register_experiment
from repro.core.config import MixerDesign, MixerMode
from repro.experiments.common import design_and_runner, resolve_design
from repro.rf.twotone import fit_intercept_point
from repro.sweep import SpecCache
from repro.sweep.result import SweepResult
from repro.units import ghz, mhz
from repro.waveform import WaveformResult, make_waveform_runner, two_tone_plan
# Canonical definition lives with the stimulus plans; re-exported here for
# backwards compatibility (iip2/p1db and older callers import from us).
from repro.waveform.plan import DEFAULT_NUM_SAMPLES, DEFAULT_SAMPLE_RATE


@dataclass
class ModeIip3Result:
    """Two-tone sweep and fitted intercept for one mode."""

    mode: MixerMode
    input_powers_dbm: np.ndarray
    fundamental_dbm: np.ndarray
    im3_dbm: np.ndarray
    iip3_dbm: float
    oip3_dbm: float
    analytic_iip3_dbm: float


@dataclass
class Fig10Result:
    """Results for both panels of Fig. 10."""

    passive: ModeIip3Result   # Fig. 10(a)
    active: ModeIip3Result    # Fig. 10(b)
    lo_frequency_hz: float
    tone_1_hz: float
    tone_2_hz: float

    def for_mode(self, mode: MixerMode) -> ModeIip3Result:
        """The panel for ``mode``."""
        return self.active if mode is MixerMode.ACTIVE else self.passive

    @property
    def iip3_gap_db(self) -> float:
        """Passive-minus-active IIP3 — the reconfiguration headroom."""
        return self.passive.iip3_dbm - self.active.iip3_dbm


def _mode_panel(wave: WaveformResult, analytic: SweepResult, label: str,
                mode: MixerMode, powers: np.ndarray) -> ModeIip3Result:
    """One panel: read the mode's curves off the grids and fit the intercept."""
    fundamental = wave.values("fundamental_dbm", design=label, mode=mode)
    im3 = wave.values("im3_dbm", design=label, mode=mode)
    fit = fit_intercept_point(powers, fundamental, im3, intermod_order=3)
    return ModeIip3Result(
        mode=mode,
        input_powers_dbm=powers,
        fundamental_dbm=fundamental,
        im3_dbm=im3,
        iip3_dbm=fit.intercept_input_dbm,
        oip3_dbm=fit.intercept_output_dbm,
        analytic_iip3_dbm=analytic.value("iip3_dbm", design=label, mode=mode),
    )


def run_fig10(design: MixerDesign | None = None,
              lo_frequency_hz: float = ghz(2.4),
              tone_1_hz: float = ghz(2.4) + mhz(5.0),
              tone_2_hz: float = ghz(2.4) + mhz(7.0),
              input_powers_dbm: np.ndarray | None = None,
              sample_rate: float = DEFAULT_SAMPLE_RATE,
              num_samples: int = DEFAULT_NUM_SAMPLES,
              workers: int | None = None,
              cache: SpecCache | str | bool | None = None) -> Fig10Result:
    """Regenerate both panels of Fig. 10 (two-tone IIP3, 2.4 GHz LO).

    ``workers`` / ``cache`` apply to the analytic reference sweep *and* the
    waveform bench: a warm cache skips the sizing bisections and serves the
    measured spectra without a single FFT evaluation.
    """
    return sweep_fig10({"nominal": resolve_design(design)},
                       lo_frequency_hz=lo_frequency_hz,
                       tone_1_hz=tone_1_hz, tone_2_hz=tone_2_hz,
                       input_powers_dbm=input_powers_dbm,
                       sample_rate=sample_rate, num_samples=num_samples,
                       workers=workers, cache=cache)["nominal"]


def sweep_fig10(designs: Mapping[str, MixerDesign],
                lo_frequency_hz: float = ghz(2.4),
                tone_1_hz: float = ghz(2.4) + mhz(5.0),
                tone_2_hz: float = ghz(2.4) + mhz(7.0),
                input_powers_dbm: np.ndarray | None = None,
                sample_rate: float = DEFAULT_SAMPLE_RATE,
                num_samples: int = DEFAULT_NUM_SAMPLES,
                workers: int | None = None,
                cache: SpecCache | str | bool | None = None
                ) -> dict[str, Fig10Result]:
    """The Fig. 10 measurement for many designs as **one** design axis.

    All designs share the stimulus plan and run through a single
    waveform-engine call (and a single analytic reference sweep), so
    ``workers=`` shards the whole population across processes; each
    per-design result is bit-identical to a solo :func:`run_fig10` call
    (every (design, mode) cell is evaluated independently).  This is the
    batch adapter :class:`~repro.api.service.MixerService` fans design
    populations out through.
    """
    if not designs:
        raise ValueError("sweep_fig10 needs at least one design")
    if input_powers_dbm is None:
        input_powers_dbm = np.arange(-45.0, -19.0, 2.0)
    powers = np.asarray(input_powers_dbm, dtype=float)
    if powers.size < 4:
        raise ValueError("the intercept fit needs at least 4 swept powers")

    baseline, runner = design_and_runner(next(iter(designs.values())),
                                         specs=("iip3_dbm",),
                                         workers=workers, cache=cache)
    analytic = runner.run(modes=(MixerMode.PASSIVE, MixerMode.ACTIVE),
                          designs=dict(designs))
    plan = two_tone_plan(tone_1_hz, tone_2_hz, powers, sample_rate,
                         num_samples, lo_frequency=lo_frequency_hz)
    wave = make_waveform_runner(baseline, workers=workers, cache=cache).run(
        plan, modes=(MixerMode.PASSIVE, MixerMode.ACTIVE),
        designs=dict(designs))

    results: dict[str, Fig10Result] = {}
    for label in designs:
        results[label] = Fig10Result(
            passive=_mode_panel(wave, analytic, label, MixerMode.PASSIVE,
                                powers),
            active=_mode_panel(wave, analytic, label, MixerMode.ACTIVE,
                               powers),
            lo_frequency_hz=lo_frequency_hz,
            tone_1_hz=tone_1_hz,
            tone_2_hz=tone_2_hz,
        )
    return results


def format_report(result: Fig10Result) -> str:
    """Text rendering of the Fig. 10 intercept construction."""
    lines = [
        "Fig. 10 — two-tone linearity (LO = "
        f"{result.lo_frequency_hz / 1e9:.2f} GHz, tones at "
        f"{result.tone_1_hz / 1e9:.4f} / {result.tone_2_hz / 1e9:.4f} GHz)"
    ]
    for panel, label in ((result.passive, "(a) passive"),
                         (result.active, "(b) active")):
        lines.append(
            f"  {label:>11}: measured IIP3 {panel.iip3_dbm:6.2f} dBm "
            f"(analytic {panel.analytic_iip3_dbm:6.2f} dBm), "
            f"OIP3 {panel.oip3_dbm:6.2f} dBm")
    lines.append(f"  passive-over-active IIP3 advantage: "
                 f"{result.iip3_gap_db:.1f} dB")
    return "\n".join(lines)


register_experiment(
    name="fig10",
    artefact="Fig. 10(a)/(b) — two-tone IIP3 of both modes",
    summary="Waveform-level two-tone intercept construction, both panels",
    runner=run_fig10,
    batch_runner=sweep_fig10,
    result_type=Fig10Result,
    report=format_report,
    default_grid={"lo_frequency_hz": ghz(2.4),
                  "tone_1_hz": ghz(2.4) + mhz(5.0),
                  "tone_2_hz": ghz(2.4) + mhz(7.0),
                  "input_powers_dbm": None,
                  "sample_rate": DEFAULT_SAMPLE_RATE,
                  "num_samples": DEFAULT_NUM_SAMPLES},
    payload_types=(ModeIip3Result,),
)
