"""Transient analysis: fixed-step integration with companion models.

Capacitors and inductors use trapezoidal companion models whose history is
kept in a per-run ``state`` dictionary; nonlinear devices are re-linearised
with a short Newton loop inside every time step.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.circuit.dc import DCSolution, dc_operating_point
from repro.circuit.mna import MnaSystem, SolutionView
from repro.circuit.netlist import Circuit


@dataclass
class TransientSolution:
    """Result of a transient run: node voltages vs time."""

    circuit: Circuit
    times: np.ndarray
    solutions: np.ndarray  # shape (num_steps, system_size)

    def voltage(self, node: str) -> np.ndarray:
        """Voltage waveform at ``node``."""
        view = SolutionView(self.circuit, self.solutions[0])
        if node == "0":
            return np.zeros(len(self.times))
        index = view._node_map[node]  # noqa: SLF001 - internal, stable
        return self.solutions[:, index]

    def voltage_between(self, node_pos: str, node_neg: str) -> np.ndarray:
        """Differential voltage waveform."""
        return self.voltage(node_pos) - self.voltage(node_neg)

    @property
    def timestep(self) -> float:
        """The (fixed) integration step."""
        if len(self.times) < 2:
            return 0.0
        return float(self.times[1] - self.times[0])


def transient(circuit: Circuit, stop_time: float, timestep: float,
              dc_solution: DCSolution | None = None,
              newton_iterations: int = 12,
              newton_tolerance: float = 1e-7) -> TransientSolution:
    """Integrate ``circuit`` from 0 to ``stop_time`` with a fixed ``timestep``.

    The initial condition is the DC operating point (computed when not
    supplied), which avoids start-up transients in periodic steady-state
    measurements.
    """
    if stop_time <= 0 or timestep <= 0:
        raise ValueError("stop_time and timestep must be positive")
    if timestep >= stop_time:
        raise ValueError("timestep must be smaller than stop_time")

    circuit.validate()
    dc = dc_solution if dc_solution is not None else dc_operating_point(circuit)

    times = np.arange(0.0, stop_time + 0.5 * timestep, timestep)
    size = circuit.system_size()
    solutions = np.zeros((times.size, size))
    solutions[0] = np.real(dc.view.vector)

    state: dict = {}
    # Seed companion-model state from the DC point.
    initial_view = SolutionView(circuit, solutions[0])
    for element in circuit.elements:
        element.update_state(initial_view, timestep, state)
        # Capacitor companion currents must start at zero, not at the value
        # implied by a fictitious step into the DC point.
        state[(element.name, "current")] = 0.0 \
            if (element.name, "current") in state else state.get(
                (element.name, "current"), 0.0)

    x = solutions[0].copy()
    for step_index in range(1, times.size):
        time = float(times[step_index])
        previous_view = SolutionView(circuit, solutions[step_index - 1])
        # Newton loop within the step (linear circuits converge immediately).
        for _ in range(newton_iterations):
            system = MnaSystem(circuit, dtype=float)
            guess_view = SolutionView(circuit, x)
            for element in circuit.elements:
                element.stamp_transient(system, previous_view, guess_view,
                                        timestep, time, state)
            x_new = system.solve()
            delta = float(np.max(np.abs(x_new - x))) if x.size else 0.0
            x = x_new
            if delta < newton_tolerance:
                break
        solutions[step_index] = x
        # Advance companion-model history.
        step_view = SolutionView(circuit, x)
        for element in circuit.elements:
            element.update_state(step_view, timestep, state)

    return TransientSolution(circuit=circuit, times=times, solutions=solutions)
