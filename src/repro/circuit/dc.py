"""DC operating-point analysis (Newton-Raphson on the MNA system)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.circuit.mna import MnaSystem, SolutionView
from repro.circuit.netlist import Circuit


class ConvergenceError(RuntimeError):
    """Raised when the Newton iteration fails to converge."""


@dataclass
class DCSolution:
    """Result of a DC operating-point analysis."""

    circuit: Circuit
    view: SolutionView
    iterations: int
    residual: float

    def voltage(self, node: str) -> float:
        """DC voltage at ``node``."""
        return float(self.view.voltage(node))

    def voltage_between(self, node_pos: str, node_neg: str) -> float:
        """DC differential voltage."""
        return float(self.view.voltage_between(node_pos, node_neg))

    def branch_current(self, element_name: str) -> float:
        """DC current through a voltage-source-like element."""
        return float(self.view.branch_current(element_name))

    def node_voltages(self) -> dict[str, float]:
        """All node voltages."""
        return {k: float(v) for k, v in self.view.node_voltages().items()}

    def supply_power(self, source_names: list[str] | None = None) -> float:
        """Total power delivered by the listed voltage sources (W).

        With no argument, every :class:`VoltageSource` in the circuit is
        counted.  The sign convention makes power *delivered by* the source
        positive (a source forcing current out of its positive terminal).
        """
        from repro.circuit.elements import VoltageSource

        names = source_names
        if names is None:
            names = [e.name for e in self.circuit.elements
                     if isinstance(e, VoltageSource)]
        total = 0.0
        for name in names:
            element = self.circuit.element(name)
            voltage = element.dc  # type: ignore[attr-defined]
            current = self.branch_current(name)
            # MNA branch current flows from the + node through the source to
            # the - node; a negative value therefore means the source is
            # delivering current into the circuit from its + terminal.
            total += voltage * (-current)
        return total


def dc_operating_point(circuit: Circuit, max_iterations: int = 200,
                       tolerance: float = 1e-9, damping: float = 0.6,
                       initial: np.ndarray | None = None) -> DCSolution:
    """Solve the DC operating point of ``circuit`` by damped Newton iteration.

    Linear circuits converge in one iteration; circuits with MOSFETs are
    iterated with a damped update until the solution vector stops moving.

    Raises
    ------
    ConvergenceError
        If the iteration has not settled after ``max_iterations``.
    """
    circuit.validate()
    size = circuit.system_size()
    x = np.zeros(size) if initial is None else np.array(initial, dtype=float)
    if x.shape != (size,):
        raise ValueError("initial vector has the wrong size")

    last_delta = np.inf
    for iteration in range(1, max_iterations + 1):
        system = MnaSystem(circuit, dtype=float)
        guess_view = SolutionView(circuit, x)
        for element in circuit.elements:
            element.stamp_dc(system, guess_view)
        x_new = system.solve()
        delta = x_new - x
        max_delta = float(np.max(np.abs(delta))) if delta.size else 0.0
        # Damped update: full steps for nearly-converged systems, damped
        # steps while far away (keeps MOSFET stacks from oscillating).
        step = 1.0 if max_delta < 0.1 else damping
        x = x + step * delta
        last_delta = max_delta
        if max_delta < tolerance:
            return DCSolution(circuit=circuit, view=SolutionView(circuit, x),
                              iterations=iteration, residual=max_delta)
    raise ConvergenceError(
        f"DC analysis of {circuit.name!r} did not converge after "
        f"{max_iterations} iterations (last delta {last_delta:.3g} V)"
    )
