"""A small modified-nodal-analysis (MNA) circuit simulation substrate.

The paper evaluates its mixer with a commercial transistor-level simulator
(Spectre on the UMC 65 nm PDK).  That tool chain is unavailable here, so this
package provides the minimum credible replacement: a netlist container,
element stamps, a Newton-Raphson DC operating-point solver, a complex
small-signal AC sweep and a trapezoidal transient integrator.

It is used by the component-level parts of the reproduction — biasing the
transconductor, extracting the transmission-gate resistance, sweeping the
closed-loop TIA input impedance of equation (4), verifying the OTA response —
while the figure-level mixer experiments use the faster behavioural models
in :mod:`repro.core`.

Public API
----------
* :class:`Circuit` — netlist container (:mod:`repro.circuit.netlist`);
* element classes in :mod:`repro.circuit.elements`;
* :func:`dc_operating_point` (:mod:`repro.circuit.dc`);
* :func:`ac_sweep` / :class:`ACSolution` (:mod:`repro.circuit.ac`);
* :func:`transient` / :class:`TransientSolution` (:mod:`repro.circuit.transient`);
* :class:`TwoPort` extraction helpers (:mod:`repro.circuit.twoport`).
"""

from repro.circuit.netlist import Circuit, GROUND
from repro.circuit.elements import (
    ResistorElement,
    CapacitorElement,
    InductorElement,
    VoltageSource,
    CurrentSource,
    VCCS,
    VCVS,
    MosfetElement,
)
from repro.circuit.dc import dc_operating_point, DCSolution, ConvergenceError
from repro.circuit.ac import ac_sweep, ACSolution
from repro.circuit.transient import transient, TransientSolution
from repro.circuit.twoport import TwoPort, impedance_at_port

__all__ = [
    "Circuit",
    "GROUND",
    "ResistorElement",
    "CapacitorElement",
    "InductorElement",
    "VoltageSource",
    "CurrentSource",
    "VCCS",
    "VCVS",
    "MosfetElement",
    "dc_operating_point",
    "DCSolution",
    "ConvergenceError",
    "ac_sweep",
    "ACSolution",
    "transient",
    "TransientSolution",
    "TwoPort",
    "impedance_at_port",
]
