"""Small-signal AC analysis: linearise at the DC point, sweep frequency."""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.circuit.dc import DCSolution, dc_operating_point
from repro.circuit.mna import MnaSystem, SolutionView
from repro.circuit.netlist import Circuit


@dataclass
class ACSolution:
    """Result of an AC sweep: complex node voltages vs frequency."""

    circuit: Circuit
    frequencies: np.ndarray
    solutions: np.ndarray  # shape (num_freqs, system_size), complex
    dc: DCSolution

    def _view(self, index: int) -> SolutionView:
        return SolutionView(self.circuit, self.solutions[index])

    def voltage(self, node: str) -> np.ndarray:
        """Complex voltage phasor at ``node`` across the sweep."""
        return np.array([self._view(i).voltage(node)
                         for i in range(len(self.frequencies))])

    def voltage_between(self, node_pos: str, node_neg: str) -> np.ndarray:
        """Complex differential voltage across the sweep."""
        return self.voltage(node_pos) - self.voltage(node_neg)

    def branch_current(self, element_name: str) -> np.ndarray:
        """Complex branch current of a voltage-source-like element."""
        return np.array([self._view(i).branch_current(element_name)
                         for i in range(len(self.frequencies))])

    def transfer_db(self, node_out: str, node_in: str) -> np.ndarray:
        """Voltage transfer ``|v(out)/v(in)|`` in dB across the sweep."""
        vin = self.voltage(node_in)
        vout = self.voltage(node_out)
        with np.errstate(divide="ignore", invalid="ignore"):
            ratio = np.abs(vout) / np.abs(vin)
        return 20.0 * np.log10(ratio)

    def minus_3db_frequency(self, node_out: str, node_in: str) -> float:
        """First frequency where the transfer drops 3 dB below its low-end value."""
        gain_db = self.transfer_db(node_out, node_in)
        reference = gain_db[0]
        below = np.nonzero(gain_db <= reference - 3.0)[0]
        if below.size == 0:
            return float(self.frequencies[-1])
        return float(self.frequencies[below[0]])


def ac_sweep(circuit: Circuit, frequencies: np.ndarray,
             dc_solution: DCSolution | None = None) -> ACSolution:
    """Run a small-signal AC sweep over ``frequencies`` (Hz).

    The circuit is linearised around ``dc_solution`` (computed on demand when
    not supplied).  Source excitations come from each source's ``ac`` value.
    """
    freqs = np.asarray(frequencies, dtype=float)
    if freqs.ndim != 1 or freqs.size == 0:
        raise ValueError("frequencies must be a non-empty 1-D array")
    if np.any(freqs < 0):
        raise ValueError("frequencies must be non-negative")

    dc = dc_solution if dc_solution is not None else dc_operating_point(circuit)
    solutions = np.zeros((freqs.size, circuit.system_size()), dtype=complex)
    for index, frequency in enumerate(freqs):
        omega = 2.0 * math.pi * frequency
        system = MnaSystem(circuit, dtype=complex)
        for element in circuit.elements:
            element.stamp_ac(system, omega, dc.view)
        solutions[index] = system.solve()
    return ACSolution(circuit=circuit, frequencies=freqs, solutions=solutions, dc=dc)
