"""Modified-nodal-analysis system assembly.

:class:`MnaSystem` is the matrix/right-hand-side pair that element stamps
write into.  It hides the ground-node bookkeeping: stamping against the
ground node is silently dropped, which keeps the element code free of index
special cases.
"""

from __future__ import annotations

import numpy as np

from repro.circuit.netlist import Circuit, GROUND


class MnaSystem:
    """An MNA matrix equation ``A x = z`` under assembly.

    Parameters
    ----------
    circuit:
        The netlist being analysed (used for node/branch index maps).
    dtype:
        ``float`` for DC/transient, ``complex`` for AC.
    gmin:
        A small conductance added from every node to ground to keep the
        matrix non-singular when nodes are left floating by off devices
        (standard SPICE practice).
    """

    def __init__(self, circuit: Circuit, dtype=float, gmin: float = 1e-12) -> None:
        self.circuit = circuit
        self.node_map = circuit.node_index_map()
        self.branch_map = circuit.branch_index_map()
        self.num_nodes = len(self.node_map)
        self.num_branches = len(self.branch_map)
        self.size = self.num_nodes + self.num_branches
        self.dtype = dtype
        self.gmin = gmin
        self.matrix = np.zeros((self.size, self.size), dtype=dtype)
        self.rhs = np.zeros(self.size, dtype=dtype)
        if gmin > 0:
            for index in range(self.num_nodes):
                self.matrix[index, index] += gmin

    # -- index helpers ------------------------------------------------------

    def node_index(self, node: str) -> int:
        """MNA row of a node, or -1 for ground."""
        if node == GROUND:
            return -1
        return self.node_map[node]

    def branch_index(self, element_name: str) -> int:
        """MNA row of an element's branch-current unknown."""
        return self.num_nodes + self.branch_map[element_name]

    # -- stamping primitives -------------------------------------------------

    def add_conductance(self, node_a: str, node_b: str, conductance) -> None:
        """Stamp a two-terminal conductance/admittance between two nodes."""
        a = self.node_index(node_a)
        b = self.node_index(node_b)
        if a >= 0:
            self.matrix[a, a] += conductance
        if b >= 0:
            self.matrix[b, b] += conductance
        if a >= 0 and b >= 0:
            self.matrix[a, b] -= conductance
            self.matrix[b, a] -= conductance

    def add_current(self, node: str, current) -> None:
        """Stamp an independent current flowing *into* ``node``."""
        index = self.node_index(node)
        if index >= 0:
            self.rhs[index] += current

    def add_vccs(self, out_pos: str, out_neg: str,
                 in_pos: str, in_neg: str, transconductance) -> None:
        """Stamp a voltage-controlled current source.

        A current ``gm * (v_in_pos - v_in_neg)`` flows from ``out_pos`` to
        ``out_neg`` (i.e. out of ``out_pos``'s node equation).
        """
        op = self.node_index(out_pos)
        on = self.node_index(out_neg)
        ip = self.node_index(in_pos)
        in_ = self.node_index(in_neg)
        for out_idx, out_sign in ((op, +1.0), (on, -1.0)):
            if out_idx < 0:
                continue
            if ip >= 0:
                self.matrix[out_idx, ip] += out_sign * transconductance
            if in_ >= 0:
                self.matrix[out_idx, in_] -= out_sign * transconductance

    def stamp_voltage_branch(self, element_name: str, node_pos: str,
                             node_neg: str, voltage, gain_terms=None) -> None:
        """Stamp a branch equation forcing ``v(pos) - v(neg) = voltage``.

        ``gain_terms`` optionally adds controlled terms to the branch
        equation (used by VCVS): an iterable of ``(node, coefficient)`` pairs
        subtracted from the constraint.
        """
        branch = self.branch_index(element_name)
        pos = self.node_index(node_pos)
        neg = self.node_index(node_neg)
        if pos >= 0:
            self.matrix[pos, branch] += 1.0
            self.matrix[branch, pos] += 1.0
        if neg >= 0:
            self.matrix[neg, branch] -= 1.0
            self.matrix[branch, neg] -= 1.0
        if gain_terms:
            for node, coefficient in gain_terms:
                index = self.node_index(node)
                if index >= 0:
                    self.matrix[branch, index] -= coefficient
        self.rhs[branch] += voltage

    # -- solving --------------------------------------------------------------

    def solve(self) -> np.ndarray:
        """Solve the assembled system, falling back to least squares if singular."""
        try:
            return np.linalg.solve(self.matrix, self.rhs)
        except np.linalg.LinAlgError:
            solution, *_ = np.linalg.lstsq(self.matrix, self.rhs, rcond=None)
            return solution


class SolutionView:
    """Read node voltages / branch currents out of a raw solution vector."""

    def __init__(self, circuit: Circuit, vector: np.ndarray) -> None:
        self._node_map = circuit.node_index_map()
        self._branch_map = circuit.branch_index_map()
        self._num_nodes = len(self._node_map)
        self.vector = vector

    def voltage(self, node: str):
        """Voltage at ``node`` (0 for ground)."""
        if node == GROUND:
            return type(self.vector[0])(0.0) if len(self.vector) else 0.0
        return self.vector[self._node_map[node]]

    def voltage_between(self, node_pos: str, node_neg: str):
        """Differential voltage ``v(pos) - v(neg)``."""
        return self.voltage(node_pos) - self.voltage(node_neg)

    def branch_current(self, element_name: str):
        """Branch current of a voltage-source-like element."""
        return self.vector[self._num_nodes + self._branch_map[element_name]]

    def node_voltages(self) -> dict[str, float]:
        """All node voltages as a dict."""
        return {node: self.vector[idx] for node, idx in self._node_map.items()}
