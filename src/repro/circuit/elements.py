"""Circuit elements and their MNA stamps.

Each element knows how to stamp itself for the three analyses:

* ``stamp_dc``     — DC operating point (capacitors open, inductors short,
  nonlinear devices linearised around the current Newton guess);
* ``stamp_ac``     — complex small-signal stamp at an angular frequency,
  linearised around the DC solution;
* ``stamp_transient`` — companion-model stamp for one trapezoidal/backward-
  Euler time step.

The ground node is handled by :class:`repro.circuit.mna.MnaSystem`; elements
never special-case it.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.circuit.mna import MnaSystem, SolutionView
from repro.devices.mosfet import Mosfet, MosfetOperatingPoint


class Element:
    """Base class for all circuit elements."""

    #: Whether this element introduces an extra MNA branch-current unknown.
    needs_branch_current: bool = False

    def __init__(self, name: str, nodes: tuple[str, ...]) -> None:
        if not name:
            raise ValueError("element name must be non-empty")
        self.name = name
        self.nodes = nodes

    # The default stamps do nothing; concrete elements override the ones
    # that apply to them.

    def stamp_dc(self, system: MnaSystem, guess: SolutionView) -> None:
        """Stamp for the DC operating-point (Newton iteration) system."""

    def stamp_ac(self, system: MnaSystem, omega: float,
                 dc_solution: SolutionView) -> None:
        """Stamp for the small-signal AC system at angular frequency ``omega``."""

    def stamp_transient(self, system: MnaSystem, previous: SolutionView,
                        guess: SolutionView, dt: float, time: float,
                        state: dict) -> None:
        """Stamp for one transient time step ending at ``time``."""

    def update_state(self, solution: SolutionView, dt: float,
                     state: dict) -> None:
        """Update per-element integration state after a transient step."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.name!r}, nodes={self.nodes})"


# ---------------------------------------------------------------------------
# linear two-terminal elements
# ---------------------------------------------------------------------------

class ResistorElement(Element):
    """An ideal resistor."""

    def __init__(self, name: str, node_a: str, node_b: str, resistance: float) -> None:
        if resistance <= 0:
            raise ValueError("resistance must be positive")
        super().__init__(name, (node_a, node_b))
        self.resistance = resistance

    @property
    def conductance(self) -> float:
        return 1.0 / self.resistance

    def stamp_dc(self, system: MnaSystem, guess: SolutionView) -> None:
        system.add_conductance(self.nodes[0], self.nodes[1], self.conductance)

    def stamp_ac(self, system: MnaSystem, omega: float,
                 dc_solution: SolutionView) -> None:
        system.add_conductance(self.nodes[0], self.nodes[1], self.conductance)

    def stamp_transient(self, system, previous, guess, dt, time, state) -> None:
        system.add_conductance(self.nodes[0], self.nodes[1], self.conductance)


class CapacitorElement(Element):
    """An ideal capacitor (open at DC, trapezoidal companion in transient)."""

    def __init__(self, name: str, node_a: str, node_b: str, capacitance: float,
                 initial_voltage: float = 0.0) -> None:
        if capacitance <= 0:
            raise ValueError("capacitance must be positive")
        super().__init__(name, (node_a, node_b))
        self.capacitance = capacitance
        self.initial_voltage = initial_voltage

    def stamp_ac(self, system: MnaSystem, omega: float,
                 dc_solution: SolutionView) -> None:
        system.add_conductance(self.nodes[0], self.nodes[1],
                               1j * omega * self.capacitance)

    def stamp_transient(self, system, previous, guess, dt, time, state) -> None:
        v_prev = previous.voltage_between(self.nodes[0], self.nodes[1])
        i_prev = state.get((self.name, "current"), 0.0)
        # Trapezoidal companion: geq = 2C/dt, ieq pushes the history forward.
        geq = 2.0 * self.capacitance / dt
        ieq = geq * v_prev + i_prev
        system.add_conductance(self.nodes[0], self.nodes[1], geq)
        system.add_current(self.nodes[0], ieq)
        system.add_current(self.nodes[1], -ieq)

    def update_state(self, solution: SolutionView, dt: float, state: dict) -> None:
        v_now = solution.voltage_between(self.nodes[0], self.nodes[1])
        v_prev = state.get((self.name, "voltage"), self.initial_voltage)
        i_prev = state.get((self.name, "current"), 0.0)
        geq = 2.0 * self.capacitance / dt
        i_now = geq * (v_now - v_prev) - i_prev
        state[(self.name, "voltage")] = v_now
        state[(self.name, "current")] = i_now


class InductorElement(Element):
    """An ideal inductor (short at DC, branch-current unknown)."""

    needs_branch_current = True

    def __init__(self, name: str, node_a: str, node_b: str, inductance: float) -> None:
        if inductance <= 0:
            raise ValueError("inductance must be positive")
        super().__init__(name, (node_a, node_b))
        self.inductance = inductance

    def stamp_dc(self, system: MnaSystem, guess: SolutionView) -> None:
        # DC short: enforce v(a) - v(b) = 0 through the branch equation.
        system.stamp_voltage_branch(self.name, self.nodes[0], self.nodes[1], 0.0)

    def stamp_ac(self, system: MnaSystem, omega: float,
                 dc_solution: SolutionView) -> None:
        branch = system.branch_index(self.name)
        system.stamp_voltage_branch(self.name, self.nodes[0], self.nodes[1], 0.0)
        system.matrix[branch, branch] -= 1j * omega * self.inductance

    def stamp_transient(self, system, previous, guess, dt, time, state) -> None:
        branch = system.branch_index(self.name)
        i_prev = state.get((self.name, "current"), 0.0)
        v_prev = state.get((self.name, "voltage"), 0.0)
        # Trapezoidal: v = L di/dt  ->  v_n + v_{n-1} = (2L/dt)(i_n - i_{n-1})
        req = 2.0 * self.inductance / dt
        system.stamp_voltage_branch(self.name, self.nodes[0], self.nodes[1],
                                    -v_prev + req * (-i_prev))
        system.matrix[branch, branch] -= req

    def update_state(self, solution: SolutionView, dt: float, state: dict) -> None:
        state[(self.name, "current")] = solution.branch_current(self.name)
        state[(self.name, "voltage")] = solution.voltage_between(
            self.nodes[0], self.nodes[1])


# ---------------------------------------------------------------------------
# sources
# ---------------------------------------------------------------------------

class VoltageSource(Element):
    """An independent voltage source with DC, AC and time-domain values."""

    needs_branch_current = True

    def __init__(self, name: str, node_pos: str, node_neg: str, dc: float = 0.0,
                 ac: float = 0.0,
                 waveform: Callable[[float], float] | None = None) -> None:
        super().__init__(name, (node_pos, node_neg))
        self.dc = dc
        self.ac = ac
        self.waveform = waveform

    def value_at(self, time: float) -> float:
        """Instantaneous value in a transient analysis."""
        if self.waveform is not None:
            return self.waveform(time)
        return self.dc

    def stamp_dc(self, system: MnaSystem, guess: SolutionView) -> None:
        system.stamp_voltage_branch(self.name, self.nodes[0], self.nodes[1], self.dc)

    def stamp_ac(self, system: MnaSystem, omega: float,
                 dc_solution: SolutionView) -> None:
        system.stamp_voltage_branch(self.name, self.nodes[0], self.nodes[1], self.ac)

    def stamp_transient(self, system, previous, guess, dt, time, state) -> None:
        system.stamp_voltage_branch(self.name, self.nodes[0], self.nodes[1],
                                    self.value_at(time))


class CurrentSource(Element):
    """An independent current source (flows from ``node_pos`` to ``node_neg``)."""

    def __init__(self, name: str, node_pos: str, node_neg: str, dc: float = 0.0,
                 ac: float = 0.0,
                 waveform: Callable[[float], float] | None = None) -> None:
        super().__init__(name, (node_pos, node_neg))
        self.dc = dc
        self.ac = ac
        self.waveform = waveform

    def value_at(self, time: float) -> float:
        """Instantaneous value in a transient analysis."""
        if self.waveform is not None:
            return self.waveform(time)
        return self.dc

    def _stamp_value(self, system: MnaSystem, value) -> None:
        # Current leaves node_pos and enters node_neg.
        system.add_current(self.nodes[0], -value)
        system.add_current(self.nodes[1], +value)

    def stamp_dc(self, system: MnaSystem, guess: SolutionView) -> None:
        self._stamp_value(system, self.dc)

    def stamp_ac(self, system: MnaSystem, omega: float,
                 dc_solution: SolutionView) -> None:
        self._stamp_value(system, self.ac)

    def stamp_transient(self, system, previous, guess, dt, time, state) -> None:
        self._stamp_value(system, self.value_at(time))


# ---------------------------------------------------------------------------
# controlled sources
# ---------------------------------------------------------------------------

class VCCS(Element):
    """Voltage-controlled current source: ``i = gm * (v_cp - v_cn)``."""

    def __init__(self, name: str, out_pos: str, out_neg: str,
                 ctrl_pos: str, ctrl_neg: str, transconductance: float) -> None:
        super().__init__(name, (out_pos, out_neg, ctrl_pos, ctrl_neg))
        self.transconductance = transconductance

    def _stamp(self, system: MnaSystem) -> None:
        system.add_vccs(self.nodes[0], self.nodes[1], self.nodes[2], self.nodes[3],
                        self.transconductance)

    def stamp_dc(self, system: MnaSystem, guess: SolutionView) -> None:
        self._stamp(system)

    def stamp_ac(self, system: MnaSystem, omega: float,
                 dc_solution: SolutionView) -> None:
        self._stamp(system)

    def stamp_transient(self, system, previous, guess, dt, time, state) -> None:
        self._stamp(system)


class VCVS(Element):
    """Voltage-controlled voltage source: ``v_out = gain * (v_cp - v_cn)``."""

    needs_branch_current = True

    def __init__(self, name: str, out_pos: str, out_neg: str,
                 ctrl_pos: str, ctrl_neg: str, gain: float) -> None:
        super().__init__(name, (out_pos, out_neg, ctrl_pos, ctrl_neg))
        self.gain = gain

    def _stamp(self, system: MnaSystem) -> None:
        gain_terms = [(self.nodes[2], self.gain), (self.nodes[3], -self.gain)]
        system.stamp_voltage_branch(self.name, self.nodes[0], self.nodes[1], 0.0,
                                    gain_terms=gain_terms)

    def stamp_dc(self, system: MnaSystem, guess: SolutionView) -> None:
        self._stamp(system)

    def stamp_ac(self, system: MnaSystem, omega: float,
                 dc_solution: SolutionView) -> None:
        self._stamp(system)

    def stamp_transient(self, system, previous, guess, dt, time, state) -> None:
        self._stamp(system)


# ---------------------------------------------------------------------------
# MOSFET
# ---------------------------------------------------------------------------

class MosfetElement(Element):
    """A behavioural MOSFET between (drain, gate, source) nodes.

    DC and transient analyses linearise the device around the current Newton
    guess (companion model: ``gds`` between drain/source, ``gm`` VCCS from the
    gate, plus an equivalent current source).  AC analysis linearises around
    the DC operating point and optionally includes C_gs / C_gd.
    """

    def __init__(self, name: str, drain: str, gate: str, source: str,
                 device: Mosfet, include_capacitance: bool = True) -> None:
        super().__init__(name, (drain, gate, source))
        self.device = device
        self.include_capacitance = include_capacitance

    # Terminal helpers -------------------------------------------------------

    @property
    def drain(self) -> str:
        return self.nodes[0]

    @property
    def gate(self) -> str:
        return self.nodes[1]

    @property
    def source(self) -> str:
        return self.nodes[2]

    def _terminal_voltages(self, view: SolutionView) -> tuple[float, float]:
        vg = float(np.real(view.voltage(self.gate)))
        vd = float(np.real(view.voltage(self.drain)))
        vs = float(np.real(view.voltage(self.source)))
        return vg - vs, vd - vs

    def operating_point(self, view: SolutionView) -> MosfetOperatingPoint:
        """Device operating point at the node voltages in ``view``."""
        vgs, vds = self._terminal_voltages(view)
        return self.device.operating_point(vgs, vds)

    def _current_sign(self) -> float:
        """+1 if positive drain current flows drain->source (NMOS), else -1."""
        from repro.devices.mosfet import MosfetPolarity
        return 1.0 if self.device.params.polarity is MosfetPolarity.NMOS else -1.0

    def _stamp_linearised(self, system: MnaSystem, view: SolutionView) -> None:
        vgs, vds = self._terminal_voltages(view)
        op = self.device.operating_point(vgs, vds)
        sign = self._current_sign()
        gm = op.gm
        gds = op.gds
        # Companion current: the device current minus the linear terms, so the
        # linearised branch reproduces the nonlinear current at the guess.
        i_nonlinear = sign * op.id
        i_linear = sign * (gm * vgs + gds * vds)
        i_eq = i_nonlinear - i_linear
        system.add_conductance(self.drain, self.source, gds)
        system.add_vccs(self.drain, self.source, self.gate, self.source, sign * gm)
        # i_eq flows drain -> source.
        system.add_current(self.drain, -i_eq)
        system.add_current(self.source, +i_eq)

    def stamp_dc(self, system: MnaSystem, guess: SolutionView) -> None:
        self._stamp_linearised(system, guess)

    def stamp_transient(self, system, previous, guess, dt, time, state) -> None:
        self._stamp_linearised(system, guess)

    def stamp_ac(self, system: MnaSystem, omega: float,
                 dc_solution: SolutionView) -> None:
        vgs, vds = self._terminal_voltages(dc_solution)
        op = self.device.operating_point(vgs, vds)
        sign = self._current_sign()
        system.add_conductance(self.drain, self.source, op.gds)
        system.add_vccs(self.drain, self.source, self.gate, self.source,
                        sign * op.gm)
        if self.include_capacitance:
            c_total = self.device.params.gate_capacitance
            # Simple Meyer-style split in saturation: 2/3 to C_gs, a small
            # overlap-like fraction to C_gd.
            c_gs = (2.0 / 3.0) * c_total
            c_gd = 0.15 * c_total
            system.add_conductance(self.gate, self.source, 1j * omega * c_gs)
            system.add_conductance(self.gate, self.drain, 1j * omega * c_gd)
