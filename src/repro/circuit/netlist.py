"""Netlist container: named nodes, registered elements, index assignment.

Nodes are plain strings; the ground node is the constant :data:`GROUND`
(``"0"``).  Elements are added through :meth:`Circuit.add` and keep their own
node names — the circuit assigns integer MNA indices lazily when an analysis
asks for them, so elements can be added in any order.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Iterator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.circuit.elements import Element

#: Name of the reference (ground) node.
GROUND = "0"


class Circuit:
    """A container of nodes and circuit elements.

    Example
    -------
    >>> from repro.circuit import Circuit, ResistorElement, VoltageSource
    >>> ckt = Circuit("divider")
    >>> ckt.add(VoltageSource("V1", "in", "0", dc=1.0))
    >>> ckt.add(ResistorElement("R1", "in", "out", 1e3))
    >>> ckt.add(ResistorElement("R2", "out", "0", 1e3))
    """

    def __init__(self, name: str = "circuit") -> None:
        self.name = name
        self._elements: list["Element"] = []
        self._element_names: set[str] = set()

    # -- construction -------------------------------------------------------

    def add(self, element: "Element") -> "Element":
        """Add an element; names must be unique within the circuit."""
        if element.name in self._element_names:
            raise ValueError(f"duplicate element name: {element.name!r}")
        self._element_names.add(element.name)
        self._elements.append(element)
        return element

    def extend(self, elements: Iterable["Element"]) -> None:
        """Add several elements."""
        for element in elements:
            self.add(element)

    # -- introspection ------------------------------------------------------

    @property
    def elements(self) -> tuple["Element", ...]:
        """All elements in insertion order."""
        return tuple(self._elements)

    def element(self, name: str) -> "Element":
        """Look up an element by name."""
        for candidate in self._elements:
            if candidate.name == name:
                return candidate
        raise KeyError(f"no element named {name!r}")

    def __contains__(self, name: str) -> bool:
        return name in self._element_names

    def __iter__(self) -> Iterator["Element"]:
        return iter(self._elements)

    def __len__(self) -> int:
        return len(self._elements)

    def nodes(self) -> tuple[str, ...]:
        """All non-ground node names, in first-appearance order."""
        seen: dict[str, None] = {}
        for element in self._elements:
            for node in element.nodes:
                if node != GROUND and node not in seen:
                    seen[node] = None
        return tuple(seen)

    def node_index_map(self) -> dict[str, int]:
        """Map node name -> MNA row index (ground excluded, 0-based)."""
        return {node: index for index, node in enumerate(self.nodes())}

    def branch_elements(self) -> tuple["Element", ...]:
        """Elements that need an extra MNA branch-current unknown."""
        return tuple(e for e in self._elements if e.needs_branch_current)

    def branch_index_map(self) -> dict[str, int]:
        """Map element name -> branch index (0-based, appended after nodes)."""
        return {e.name: i for i, e in enumerate(self.branch_elements())}

    def system_size(self) -> int:
        """Total number of MNA unknowns (node voltages + branch currents)."""
        return len(self.nodes()) + len(self.branch_elements())

    def validate(self) -> None:
        """Sanity checks: at least one element, ground referenced somewhere."""
        if not self._elements:
            raise ValueError(f"circuit {self.name!r} has no elements")
        referenced_ground = any(
            GROUND in element.nodes for element in self._elements
        )
        if not referenced_ground:
            raise ValueError(
                f"circuit {self.name!r} never references the ground node {GROUND!r}"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Circuit({self.name!r}, {len(self._elements)} elements, "
            f"{len(self.nodes())} nodes)"
        )
