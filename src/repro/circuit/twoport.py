"""Two-port and driving-point impedance extraction from AC analyses.

The paper quotes the TIA input impedance (equation 4) and relies on a 50 ohm
input termination at the RF port; these helpers turn AC sweeps into the
impedance/S-parameter quantities those discussions use.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.circuit.ac import ac_sweep
from repro.circuit.dc import dc_operating_point
from repro.circuit.elements import CurrentSource
from repro.circuit.netlist import Circuit
from repro.units import REFERENCE_IMPEDANCE


@dataclass
class TwoPort:
    """Frequency-dependent two-port described by its Z-parameters."""

    frequencies: np.ndarray
    z11: np.ndarray
    z12: np.ndarray
    z21: np.ndarray
    z22: np.ndarray

    def s_parameters(self, z0: float = REFERENCE_IMPEDANCE
                     ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Convert to S-parameters referenced to ``z0``.

        Returns ``(s11, s12, s21, s22)`` arrays over the sweep.
        """
        z11, z12, z21, z22 = self.z11, self.z12, self.z21, self.z22
        delta = (z11 + z0) * (z22 + z0) - z12 * z21
        s11 = ((z11 - z0) * (z22 + z0) - z12 * z21) / delta
        s12 = 2.0 * z12 * z0 / delta
        s21 = 2.0 * z21 * z0 / delta
        s22 = ((z11 + z0) * (z22 - z0) - z12 * z21) / delta
        return s11, s12, s21, s22

    def input_impedance(self, load: complex = REFERENCE_IMPEDANCE) -> np.ndarray:
        """Input impedance with the output port terminated in ``load``."""
        return self.z11 - (self.z12 * self.z21) / (self.z22 + load)

    def voltage_gain(self, load: complex = REFERENCE_IMPEDANCE) -> np.ndarray:
        """Voltage gain v2/v1 with the output terminated in ``load``."""
        return (self.z21 * load) / ((self.z22 + load) * self.z11 - self.z12 * self.z21)


def impedance_at_port(circuit: Circuit, node_pos: str, node_neg: str,
                      frequencies: np.ndarray,
                      probe_name: str = "_zprobe") -> np.ndarray:
    """Driving-point impedance seen between two nodes across a frequency sweep.

    A 1 A AC test current is injected between the nodes and the resulting
    voltage phasor read back; the circuit is not modified (a copy of the
    element list is used).
    """
    probe = CurrentSource(probe_name, node_neg, node_pos, dc=0.0, ac=1.0)
    probed = Circuit(circuit.name + "+probe")
    probed.extend(list(circuit.elements))
    probed.add(probe)
    dc = dc_operating_point(probed)
    ac = ac_sweep(probed, frequencies, dc_solution=dc)
    return ac.voltage_between(node_pos, node_neg)


def two_port_from_circuit(circuit: Circuit,
                          port1: tuple[str, str], port2: tuple[str, str],
                          frequencies: np.ndarray) -> TwoPort:
    """Extract Z-parameters by exciting each port in turn with a 1 A source."""
    freqs = np.asarray(frequencies, dtype=float)

    def _excite(active_port: tuple[str, str]) -> tuple[np.ndarray, np.ndarray]:
        probed = Circuit(circuit.name + "+zparam")
        probed.extend(list(circuit.elements))
        probed.add(CurrentSource("_zp_drive", active_port[1], active_port[0],
                                 dc=0.0, ac=1.0))
        dc = dc_operating_point(probed)
        ac = ac_sweep(probed, freqs, dc_solution=dc)
        v1 = ac.voltage_between(port1[0], port1[1])
        v2 = ac.voltage_between(port2[0], port2[1])
        return v1, v2

    v1_p1, v2_p1 = _excite(port1)
    v1_p2, v2_p2 = _excite(port2)
    return TwoPort(frequencies=freqs, z11=v1_p1, z21=v2_p1, z12=v1_p2, z22=v2_p2)
