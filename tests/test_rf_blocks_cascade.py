"""Tests for behavioural RF blocks and the cascade formulas."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.rf.blocks import BehavioralBlock, cascade
from repro.rf.noise_figure import friis_cascade_nf
from repro.rf.signal import sample_times, sine_wave
from repro.rf.spectrum import Spectrum
from repro.units import vpeak_from_dbm


class TestBehavioralBlock:
    def test_linear_gain_from_db(self):
        block = BehavioralBlock("amp", gain_db=20.0)
        assert block.linear_gain == pytest.approx(10.0)
        assert block.a1 == pytest.approx(10.0)

    def test_a3_sign_is_compressive(self):
        block = BehavioralBlock("amp", gain_db=10.0, iip3_dbm=0.0)
        assert block.a3 < 0.0

    def test_a3_zero_for_linear_block(self):
        assert BehavioralBlock("lin", gain_db=10.0).a3 == 0.0
        assert BehavioralBlock("lin", gain_db=10.0, iip3_dbm=math.inf).a3 == 0.0

    def test_transfer_small_signal_matches_gain(self):
        block = BehavioralBlock("amp", gain_db=20.0, iip3_dbm=10.0)
        wave = np.array([1e-4, -1e-4])
        np.testing.assert_allclose(block.transfer(wave), 10.0 * wave, rtol=1e-4)

    def test_transfer_respects_swing_limit(self):
        block = BehavioralBlock("amp", gain_db=20.0, output_swing_limit=1.0)
        out = block.transfer(np.array([10.0, -10.0]))
        assert np.all(np.abs(out) <= 1.0)

    def test_iip3_recovered_from_two_tone_on_transfer(self):
        iip3 = -5.0
        block = BehavioralBlock("amp", gain_db=15.0, iip3_dbm=iip3)
        fs, n = 1.024e9, 8192
        bin_width = fs / n
        f1, f2 = 1000 * bin_width, 1010 * bin_width
        amplitude = float(vpeak_from_dbm(-40.0))
        times = sample_times(fs, n)
        wave = sine_wave(f1, amplitude, times) + sine_wave(f2, amplitude, times)
        spectrum = Spectrum(block.transfer(wave), fs)
        p_fund = spectrum.power_dbm_at(f1)
        p_im3 = spectrum.power_dbm_at(2 * f1 - f2)
        measured_iip3 = -40.0 + 0.5 * (p_fund - p_im3)
        assert measured_iip3 == pytest.approx(iip3, abs=0.3)

    def test_oip3_is_iip3_plus_gain(self):
        block = BehavioralBlock("amp", gain_db=12.0, iip3_dbm=-3.0)
        assert block.oip3_dbm == pytest.approx(9.0)

    def test_p1db_estimate_below_iip3(self):
        block = BehavioralBlock("amp", gain_db=12.0, iip3_dbm=0.0)
        assert block.input_p1db_estimate_dbm() == pytest.approx(-9.6)

    def test_p1db_estimate_uses_swing_when_tighter(self):
        block = BehavioralBlock("amp", gain_db=30.0, iip3_dbm=20.0,
                                output_swing_limit=1.0)
        estimate = block.input_p1db_estimate_dbm()
        assert estimate is not None
        assert estimate < 20.0 - 9.6

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            BehavioralBlock("bad", gain_db=10.0, nf_db=-1.0)
        with pytest.raises(ValueError):
            BehavioralBlock("bad", gain_db=10.0, output_swing_limit=0.0)

    def test_scaled_gain(self):
        block = BehavioralBlock("amp", gain_db=10.0)
        assert block.scaled_gain(+5.0).gain_db == pytest.approx(15.0)


class TestCascade:
    def test_gain_adds_in_db(self):
        chain = [BehavioralBlock("a", 10.0), BehavioralBlock("b", 15.0)]
        assert cascade(chain).gain_db == pytest.approx(25.0)

    def test_friis_first_stage_dominates(self):
        low_noise_first = cascade([
            BehavioralBlock("lna", gain_db=20.0, nf_db=2.0),
            BehavioralBlock("mixer", gain_db=10.0, nf_db=10.0),
        ])
        noisy_first = cascade([
            BehavioralBlock("mixer", gain_db=10.0, nf_db=10.0),
            BehavioralBlock("lna", gain_db=20.0, nf_db=2.0),
        ])
        assert low_noise_first.nf_db < noisy_first.nf_db
        assert low_noise_first.nf_db == pytest.approx(2.1, abs=0.3)

    def test_matches_friis_helper(self):
        blocks = [BehavioralBlock("a", 12.0, nf_db=3.0),
                  BehavioralBlock("b", 8.0, nf_db=9.0),
                  BehavioralBlock("c", 20.0, nf_db=15.0)]
        assert cascade(blocks).nf_db == pytest.approx(
            friis_cascade_nf([3.0, 9.0, 15.0], [12.0, 8.0, 20.0]))

    def test_iip3_dominated_by_late_stages(self):
        chain = [BehavioralBlock("lna", gain_db=20.0, nf_db=2.0, iip3_dbm=10.0),
                 BehavioralBlock("mixer", gain_db=10.0, nf_db=10.0, iip3_dbm=5.0)]
        total = cascade(chain)
        # Input-referred: the mixer's 5 dBm looks like -15 dBm through 20 dB
        # of preceding gain, so the total must be close to (below) that.
        assert total.iip3_dbm < -13.0
        assert total.iip3_dbm <= 10.0

    def test_all_linear_cascade_has_infinite_iip3(self):
        total = cascade([BehavioralBlock("a", 10.0), BehavioralBlock("b", 5.0)])
        assert math.isinf(total.iip3_dbm)

    def test_single_block_cascade_is_identity(self):
        block = BehavioralBlock("only", gain_db=7.0, nf_db=4.0, iip3_dbm=1.0)
        total = cascade([block])
        assert total.gain_db == pytest.approx(7.0)
        assert total.nf_db == pytest.approx(4.0)
        assert total.iip3_dbm == pytest.approx(1.0)
        assert total.oip3_dbm == pytest.approx(8.0)

    def test_empty_cascade_rejected(self):
        with pytest.raises(ValueError):
            cascade([])
