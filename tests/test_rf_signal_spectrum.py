"""Tests for RF signal sources and spectral analysis."""

from __future__ import annotations


import numpy as np
import pytest

from repro.rf.signal import (
    Tone,
    TwoToneSource,
    coherent_sample_count,
    differential_pair,
    sample_times,
    sine_wave,
    square_lo,
)
from repro.rf.spectrum import Spectrum, fundamental_power_dbm, power_dbm_at
from repro.units import dbm_from_vpeak, vpeak_from_dbm


class TestTone:
    def test_amplitude_matches_power(self):
        tone = Tone(frequency=1e9, power_dbm=0.0)
        assert tone.amplitude == pytest.approx(0.3162, abs=1e-3)

    def test_waveform_peak(self):
        tone = Tone(frequency=10e6, power_dbm=-10.0)
        times = sample_times(1e9, 1000)
        waveform = tone.waveform(times)
        assert np.max(np.abs(waveform)) == pytest.approx(tone.amplitude, rel=1e-3)

    def test_rejects_nonpositive_frequency(self):
        with pytest.raises(ValueError):
            Tone(frequency=0.0, power_dbm=0.0)


class TestTwoToneSource:
    def test_waveform_is_sum_of_tones(self):
        source = TwoToneSource(10e6, 12e6, -10.0)
        times = sample_times(1e9, 2048)
        combined = source.waveform(times)
        tone_a, tone_b = source.tones
        np.testing.assert_allclose(combined,
                                   tone_a.waveform(times) + tone_b.waveform(times))

    def test_spacing_and_with_power(self):
        source = TwoToneSource(2.405e9, 2.407e9, -30.0)
        assert source.spacing == pytest.approx(2e6)
        assert source.with_power(-20.0).power_dbm == -20.0

    def test_rejects_equal_frequencies(self):
        with pytest.raises(ValueError):
            TwoToneSource(1e9, 1e9, -10.0)


class TestSamplingHelpers:
    def test_sample_times_spacing(self):
        times = sample_times(1e9, 10)
        assert times[1] - times[0] == pytest.approx(1e-9)
        assert len(times) == 10

    def test_coherent_sample_count_puts_tone_on_bin(self):
        fs = 10.24e9
        count = coherent_sample_count([2.405e9, 2.407e9], fs)
        for frequency in (2.405e9, 2.407e9):
            cycles = frequency * count / fs
            assert cycles == pytest.approx(round(cycles), abs=1e-6)

    def test_coherent_sample_count_respects_minimum(self):
        count = coherent_sample_count([1e6], 1e9, minimum_samples=5000)
        assert count >= 5000

    def test_square_lo_levels(self):
        times = sample_times(1e9, 1000)
        lo = square_lo(50e6, times)
        assert set(np.unique(np.sign(lo[lo != 0]))) <= {-1.0, 1.0}
        assert np.max(lo) == pytest.approx(1.0)

    def test_differential_pair_is_balanced(self):
        wave = sine_wave(1e6, 1.0, sample_times(1e8, 256))
        plus, minus = differential_pair(wave)
        np.testing.assert_allclose(plus + minus, 0.0, atol=1e-15)
        np.testing.assert_allclose(plus - minus, wave)


class TestSpectrum:
    def test_single_tone_power_recovered(self):
        fs, n = 1.024e9, 4096
        for dbm in (-40.0, -20.0, 0.0):
            amplitude = float(vpeak_from_dbm(dbm))
            # 250 kHz bins; put the tone exactly on a bin.
            frequency = 100 * fs / n
            wave = sine_wave(frequency, amplitude, sample_times(fs, n))
            spectrum = Spectrum(wave, fs)
            assert spectrum.power_dbm_at(frequency) == pytest.approx(dbm, abs=0.01)

    def test_two_tone_powers_independent(self):
        fs, n = 1.024e9, 4096
        bin_width = fs / n
        f1, f2 = 100 * bin_width, 150 * bin_width
        wave = sine_wave(f1, 0.1, sample_times(fs, n)) + \
            sine_wave(f2, 0.01, sample_times(fs, n))
        spectrum = Spectrum(wave, fs)
        assert spectrum.power_dbm_at(f1) - spectrum.power_dbm_at(f2) == \
            pytest.approx(20.0, abs=0.1)

    def test_total_power_accounts_for_all_tones(self):
        fs, n = 1.024e9, 4096
        bin_width = fs / n
        wave = sine_wave(100 * bin_width, 0.1, sample_times(fs, n)) + \
            sine_wave(200 * bin_width, 0.1, sample_times(fs, n))
        spectrum = Spectrum(wave, fs)
        single = float(dbm_from_vpeak(0.1))
        assert spectrum.total_power_dbm() == pytest.approx(single + 3.0, abs=0.1)

    def test_hann_window_reduces_leakage(self):
        fs, n = 1.024e9, 4096
        frequency = 100.5 * fs / n  # deliberately off-bin
        wave = sine_wave(frequency, 0.1, sample_times(fs, n))
        rect = Spectrum(wave, fs, window="rect")
        hann = Spectrum(wave, fs, window="hann")
        probe = 120 * fs / n
        assert hann.power_dbm_at(probe) < rect.power_dbm_at(probe)

    def test_peaks_ranked_by_amplitude(self):
        fs, n = 1.024e9, 4096
        bin_width = fs / n
        wave = sine_wave(100 * bin_width, 0.2, sample_times(fs, n)) + \
            sine_wave(300 * bin_width, 0.05, sample_times(fs, n))
        peaks = Spectrum(wave, fs).peaks(2)
        assert peaks[0].frequency == pytest.approx(100 * bin_width)
        assert peaks[1].frequency == pytest.approx(300 * bin_width)

    def test_sfdr_of_clean_tone_is_large(self):
        fs, n = 1.024e9, 4096
        frequency = 100 * fs / n
        wave = sine_wave(frequency, 0.1, sample_times(fs, n))
        assert Spectrum(wave, fs).spur_free_dynamic_range_db(frequency) > 100.0

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            Spectrum(np.zeros(4), 1e9)
        with pytest.raises(ValueError):
            Spectrum(np.zeros(64), -1.0)
        with pytest.raises(ValueError):
            Spectrum(np.zeros(64), 1e9, window="blackman")
        spectrum = Spectrum(np.random.default_rng(0).normal(size=64), 1e9)
        with pytest.raises(ValueError):
            spectrum.bin_of(1e10)

    def test_module_level_helpers(self):
        fs, n = 1.024e9, 4096
        frequency = 100 * fs / n
        wave = sine_wave(frequency, 0.1, sample_times(fs, n))
        assert power_dbm_at(wave, fs, frequency) == pytest.approx(
            float(dbm_from_vpeak(0.1)), abs=0.01)
        found_freq, found_power = fundamental_power_dbm(wave, fs)
        assert found_freq == pytest.approx(frequency)
        assert found_power == pytest.approx(float(dbm_from_vpeak(0.1)), abs=0.01)
