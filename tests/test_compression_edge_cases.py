"""Edge-case and property tests for the compression and intercept benches.

The 1 dB compression fit has real corner cases — sweeps that never reach
compression, gain curves that expand before they compress, measurement
ripple around the -1 dB line — and the single-point intercept formulas
carry exact slope identities (3:1 for IM3, 2:1 for IM2).  These tests pin
all of them so a refactor of the fit or the formulas cannot quietly change
which point the bench reports.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.rf.blocks import BehavioralBlock
from repro.rf.compression import (
    CompressionResult,
    compression_from_gains,
    measure_compression_point,
)
from repro.rf.twotone import iip2_from_powers, iip3_from_powers

COMMON_SETTINGS = settings(max_examples=60, deadline=None)

FS, N = 1.024e9, 4096
TONE = 100 * FS / N  # bin-exact test tone


class TestCompressionNotFound:
    def test_linear_device_reports_inf_point(self):
        device = BehavioralBlock("dut", gain_db=10.0).transfer
        result = measure_compression_point(device, TONE,
                                           np.arange(-40.0, -10.0, 2.0),
                                           FS, N)
        assert not result.compression_found
        assert math.isinf(result.input_p1db_dbm)
        assert math.isinf(result.output_p1db_dbm)
        # The sweep data itself is still fully populated.
        assert result.gains_db.shape == result.input_powers_dbm.shape
        assert result.small_signal_gain_db == pytest.approx(10.0, abs=0.1)

    def test_sweep_stopping_short_of_compression(self):
        # A compressive device swept only at small signal: the 1 dB point
        # exists physically but is outside the sweep, so it is not found.
        device = BehavioralBlock("dut", gain_db=20.0,
                                 output_swing_limit=1.0).transfer
        result = measure_compression_point(device, TONE,
                                           np.arange(-60.0, -40.0, 2.0),
                                           FS, N)
        assert not result.compression_found

    def test_compression_found_flag_tracks_finiteness(self):
        found = CompressionResult(
            input_powers_dbm=np.zeros(3), output_powers_dbm=np.zeros(3),
            gains_db=np.zeros(3), small_signal_gain_db=0.0,
            input_p1db_dbm=-15.0, output_p1db_dbm=4.0)
        missing = CompressionResult(
            input_powers_dbm=np.zeros(3), output_powers_dbm=np.zeros(3),
            gains_db=np.zeros(3), small_signal_gain_db=0.0,
            input_p1db_dbm=math.inf, output_p1db_dbm=math.inf)
        assert found.compression_found and not missing.compression_found


class TestNonMonotoneGainCurves:
    def test_expansion_before_compression_finds_first_crossing(self):
        # Gain expands by 0.5 dB before compressing: the -1 dB line (from
        # the small-signal anchor) is crossed once, on the way down.
        powers = np.arange(-40.0, -18.0, 2.0)
        gains = np.array([20.0, 20.0, 20.1, 20.3, 20.5, 20.4,
                          20.0, 19.4, 18.6, 17.6, 16.4])
        small_signal, input_p1db, output_p1db = \
            compression_from_gains(powers, gains)
        assert small_signal == pytest.approx(20.0, abs=1e-9)
        # The crossing of 19.0 dB sits between -26 dBm (19.4) and -24 dBm
        # (18.6): linear interpolation gives -25 dBm.
        assert input_p1db == pytest.approx(-25.0, abs=1e-9)
        assert output_p1db == pytest.approx(input_p1db + 19.0, abs=1e-9)

    def test_ripple_through_the_line_picks_the_first_crossing(self):
        # Measurement ripple dips below -1 dB, recovers, then compresses
        # for real; the fit must report the first genuine crossing, not the
        # later (higher-power) one.
        powers = np.arange(-40.0, -24.0, 2.0)
        gains = np.array([10.0, 10.0, 10.0, 8.5, 9.6, 9.4, 8.0, 6.0])
        _, input_p1db, _ = compression_from_gains(powers, gains)
        # First crossing of 9.0 dB: between -36 dBm (10.0) and -34 dBm (8.5).
        assert -36.0 < input_p1db < -34.0

    def test_unsorted_power_sweep_is_ordered_before_fitting(self):
        powers = np.array([-20.0, -40.0, -30.0, -36.0, -24.0, -28.0])
        gains_by_power = {-40.0: 15.0, -36.0: 15.0, -30.0: 14.8,
                          -28.0: 14.5, -24.0: 13.0, -20.0: 10.0}
        gains = np.array([gains_by_power[p] for p in powers])
        _, input_p1db, _ = compression_from_gains(powers, gains)
        ordered = np.sort(powers)
        ordered_gains = np.array([gains_by_power[p] for p in ordered])
        _, expected, _ = compression_from_gains(ordered, ordered_gains)
        assert input_p1db == expected

    def test_shape_validation(self):
        with pytest.raises(ValueError, match="equal length"):
            compression_from_gains(np.zeros(4), np.zeros(5))
        with pytest.raises(ValueError, match="at least 3"):
            compression_from_gains(np.array([-30.0, -20.0]),
                                   np.array([10.0, 9.0]))


class TestInterceptSlopeIdentities:
    """Hypothesis pins on the 3:1 / 2:1 slope algebra of the formulas."""

    power = st.floats(min_value=-80.0, max_value=0.0)
    gain = st.floats(min_value=-20.0, max_value=40.0)
    intercept = st.floats(min_value=-30.0, max_value=30.0)
    step = st.floats(min_value=0.1, max_value=20.0)

    @COMMON_SETTINGS
    @given(p_in=power, gain=gain, iip3=intercept)
    def test_iip3_recovered_exactly_from_ideal_slopes(self, p_in, gain, iip3):
        # On ideal lines: Pfund = Pin + G, Pim3 = 3 Pin + G - 2 IIP3; the
        # single-point formula must return IIP3 for any point on them.
        p_fund = p_in + gain
        p_im3 = 3.0 * p_in + gain - 2.0 * iip3
        assert iip3_from_powers(p_in, p_fund, p_im3) == \
            pytest.approx(iip3, abs=1e-9)

    @COMMON_SETTINGS
    @given(p_in=power, gain=gain, iip2=intercept)
    def test_iip2_recovered_exactly_from_ideal_slopes(self, p_in, gain, iip2):
        # Ideal 2:1 lines: Pim2 = 2 Pin + G - IIP2.
        p_fund = p_in + gain
        p_im2 = 2.0 * p_in + gain - iip2
        assert iip2_from_powers(p_in, p_fund, p_im2) == \
            pytest.approx(iip2, abs=1e-9)

    @COMMON_SETTINGS
    @given(p_in=power, p_fund=power, p_im3=power, delta=step)
    def test_iip3_invariant_along_the_3_to_1_slope(self, p_in, p_fund,
                                                   p_im3, delta):
        # Raising the input by d moves the fundamental by d and the IM3 by
        # 3d; the inferred intercept must not move (the 3:1 identity).
        base = iip3_from_powers(p_in, p_fund, p_im3)
        moved = iip3_from_powers(p_in + delta, p_fund + delta,
                                 p_im3 + 3.0 * delta)
        assert moved == pytest.approx(base, abs=1e-9)

    @COMMON_SETTINGS
    @given(p_in=power, p_fund=power, p_im2=power, delta=step)
    def test_iip2_invariant_along_the_2_to_1_slope(self, p_in, p_fund,
                                                   p_im2, delta):
        base = iip2_from_powers(p_in, p_fund, p_im2)
        moved = iip2_from_powers(p_in + delta, p_fund + delta,
                                 p_im2 + 2.0 * delta)
        assert moved == pytest.approx(base, abs=1e-9)

    @COMMON_SETTINGS
    @given(p_in=power, p_fund=power, p_im3=power)
    def test_intercept_sits_above_the_input_when_im3_is_below_fund(
            self, p_in, p_fund, p_im3):
        # Whenever the IM3 product is weaker than the fundamental the
        # extrapolated intercept lies above the measurement input power.
        # The gap must be resolvable in float64 *at p_in's magnitude*: a
        # tiny difference (e.g. p_im3 = -4e-169 against p_fund = 0.0) is
        # positive in isolation but vanishes below one ulp when added to
        # p_in = -1.0, so the strict inequality cannot hold there.
        if p_im3 < p_fund and p_in + 0.5 * (p_fund - p_im3) > p_in:
            assert iip3_from_powers(p_in, p_fund, p_im3) > p_in
            assert iip2_from_powers(p_in, p_fund, p_im3) > p_in
