"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.core.config import MixerDesign, MixerMode
from repro.core.reconfigurable_mixer import ReconfigurableMixer


@pytest.fixture(scope="session")
def design() -> MixerDesign:
    """Default design point (the paper's operating point)."""
    return MixerDesign()


@pytest.fixture(scope="session")
def active_mixer(design: MixerDesign) -> ReconfigurableMixer:
    """The mixer configured in active (Gilbert-cell) mode."""
    return ReconfigurableMixer(design, MixerMode.ACTIVE)


@pytest.fixture(scope="session")
def passive_mixer(design: MixerDesign) -> ReconfigurableMixer:
    """The mixer configured in passive (current-commutating) mode."""
    return ReconfigurableMixer(design, MixerMode.PASSIVE)


#: Sampling grid shared by waveform-level tests: 10.24 GS/s, 1 MHz bins.
SAMPLE_RATE = 10.24e9
NUM_SAMPLES = 10240


@pytest.fixture(scope="session")
def sample_rate() -> float:
    """Waveform test sample rate (Hz)."""
    return SAMPLE_RATE


@pytest.fixture(scope="session")
def num_samples() -> int:
    """Waveform test record length (samples)."""
    return NUM_SAMPLES
