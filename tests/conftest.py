"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from api_test_helpers import SMALL_GRIDS

from repro.api import encode
from repro.api.registry import default_registry
from repro.core.config import MixerDesign, MixerMode
from repro.core.reconfigurable_mixer import ReconfigurableMixer


@pytest.fixture(scope="session")
def registry():
    """The fully populated experiment registry."""
    return default_registry()


@pytest.fixture(scope="session")
def direct_payloads(registry):
    """Encoded direct ``run_*`` results on the small grids, computed once.

    Returned as a callable so each test only pays for the experiments it
    actually compares against.
    """
    cache: dict[str, dict] = {}

    def compute(name: str) -> dict:
        if name not in cache:
            spec = registry.get(name)
            grid = {**spec.default_grid, **SMALL_GRIDS[name]}
            cache[name] = encode(spec.runner(MixerDesign(), **grid))
        return cache[name]

    return compute


@pytest.fixture(scope="session")
def design() -> MixerDesign:
    """Default design point (the paper's operating point)."""
    return MixerDesign()


@pytest.fixture(scope="session")
def active_mixer(design: MixerDesign) -> ReconfigurableMixer:
    """The mixer configured in active (Gilbert-cell) mode."""
    return ReconfigurableMixer(design, MixerMode.ACTIVE)


@pytest.fixture(scope="session")
def passive_mixer(design: MixerDesign) -> ReconfigurableMixer:
    """The mixer configured in passive (current-commutating) mode."""
    return ReconfigurableMixer(design, MixerMode.PASSIVE)


#: Sampling grid shared by waveform-level tests: 10.24 GS/s, 1 MHz bins.
SAMPLE_RATE = 10.24e9
NUM_SAMPLES = 10240


@pytest.fixture(scope="session")
def sample_rate() -> float:
    """Waveform test sample rate (Hz)."""
    return SAMPLE_RATE


@pytest.fixture(scope="session")
def num_samples() -> int:
    """Waveform test record length (samples)."""
    return NUM_SAMPLES
