"""Vectorized-vs-scalar equivalence for the spec accessors and the sweep engine.

The scalar spec accessors are thin wrappers over the array variants, so the
two paths must agree to machine precision — these tests pin that contract at
1e-9 across modes, frequency decades and design variations, both by dense
grid sampling and (when hypothesis is installed) by property-based search
over the frequency plane.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import MixerDesign, MixerMode
from repro.core.reconfigurable_mixer import ReconfigurableMixer
from repro.devices.technology import fast_corner, slow_corner
from repro.sweep import SweepRunner

TOLERANCE = 1e-9

#: Design variations the equivalence must hold for: the nominal point, a
#: re-tuned gain setting, a strongly degenerated passive path, and the two
#: process corners.
def _design_variations() -> dict[str, MixerDesign]:
    from dataclasses import replace

    nominal = MixerDesign()
    return {
        "nominal": nominal,
        "low-gain": nominal.with_gain_setting(0.5),
        "strong-degeneration": replace(nominal, degeneration_resistance=200.0),
        "slow-corner": replace(nominal, technology=slow_corner()),
        "fast-corner": replace(nominal, technology=fast_corner()),
    }


DESIGN_VARIATIONS = _design_variations()

#: One memoized mixer per design variation (sizing is the expensive part).
_MIXERS: dict[str, ReconfigurableMixer] = {
    label: ReconfigurableMixer(design)
    for label, design in DESIGN_VARIATIONS.items()
}

RF_GRID = np.logspace(np.log10(0.2e9), np.log10(8e9), 41)
IF_GRID = np.logspace(np.log10(10e3), np.log10(100e6), 37)


@pytest.mark.parametrize("label", sorted(DESIGN_VARIATIONS))
@pytest.mark.parametrize("mode", [MixerMode.ACTIVE, MixerMode.PASSIVE])
class TestGridSampledEquivalence:
    """Dense-grid agreement between the scalar and array accessors."""

    def test_conversion_gain_plane(self, label: str, mode: MixerMode) -> None:
        mixer = _MIXERS[label]
        mixer.set_mode(mode)
        plane = mixer.conversion_gain_db_array(RF_GRID[:, None],
                                               IF_GRID[None, :])
        assert plane.shape == (RF_GRID.size, IF_GRID.size)
        for i in range(0, RF_GRID.size, 8):
            for j in range(0, IF_GRID.size, 8):
                scalar = mixer.conversion_gain_db(RF_GRID[i], IF_GRID[j])
                assert abs(plane[i, j] - scalar) <= TOLERANCE

    def test_noise_figure_curve(self, label: str, mode: MixerMode) -> None:
        mixer = _MIXERS[label]
        mixer.set_mode(mode)
        curve = mixer.noise_figure_db_array(IF_GRID)
        scalars = np.array([mixer.noise_figure_db(f) for f in IF_GRID])
        assert np.max(np.abs(curve - scalars)) <= TOLERANCE

    def test_flat_specs_match_scalar_accessors(self, label: str,
                                               mode: MixerMode) -> None:
        mixer = _MIXERS[label]
        mixer.set_mode(mode)
        intermediates = mixer.spec_intermediates()
        assert intermediates.iip3_dbm == mixer.iip3_dbm()
        assert intermediates.p1db_dbm == mixer.p1db_dbm()
        assert intermediates.power_mw == mixer.power_mw()
        assert (intermediates.band_low_hz, intermediates.band_high_hz) == \
            mixer.band_edges()


class TestRunnerEquivalence:
    """The sweep engine reproduces the scalar per-point loop exactly."""

    def test_fig8_grid_against_scalar_loop(self) -> None:
        design = MixerDesign()
        frequencies = np.logspace(np.log10(0.3e9), np.log10(7e9), 120)
        sweep = SweepRunner(design, specs=("conversion_gain_db",)).run(
            rf_frequencies=frequencies, if_frequencies=[5e6])
        for mode in (MixerMode.ACTIVE, MixerMode.PASSIVE):
            mixer = ReconfigurableMixer(design, mode)
            scalar = np.array([mixer.conversion_gain_db(f, 5e6)
                               for f in frequencies])
            _, vectorized = sweep.curve("conversion_gain_db",
                                        "rf_frequency_hz", mode=mode)
            assert np.max(np.abs(vectorized - scalar)) <= TOLERANCE

    def test_design_axis_against_fresh_mixers(self) -> None:
        sweep = SweepRunner(MixerDesign(),
                            specs=("noise_figure_db", "iip3_dbm")).run(
            if_frequencies=IF_GRID[::6], designs=DESIGN_VARIATIONS)
        for label, design in DESIGN_VARIATIONS.items():
            for mode in (MixerMode.ACTIVE, MixerMode.PASSIVE):
                mixer = ReconfigurableMixer(design, mode)
                _, nf_curve = sweep.curve("noise_figure_db",
                                          "if_frequency_hz",
                                          design=label, mode=mode)
                scalars = np.array([mixer.noise_figure_db(f)
                                    for f in IF_GRID[::6]])
                assert np.max(np.abs(nf_curve - scalars)) <= TOLERANCE
                assert sweep.value("iip3_dbm", design=label, mode=mode,
                                   if_frequency_hz=5e6) == \
                    pytest.approx(mixer.iip3_dbm(), abs=TOLERANCE)


# -- property-based search over the frequency plane -------------------------

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402


@settings(max_examples=60, deadline=None)
@given(
    rf_hz=st.floats(min_value=1e8, max_value=1e10),
    if_hz=st.floats(min_value=1e3, max_value=2e8),
    mode=st.sampled_from([MixerMode.ACTIVE, MixerMode.PASSIVE]),
)
def test_property_conversion_gain_equivalence(rf_hz: float, if_hz: float,
                                              mode: MixerMode) -> None:
    """Any (rf, if, mode) point: scalar wrapper == array variant to 1e-9."""
    mixer = _MIXERS["nominal"]
    mixer.set_mode(mode)
    scalar = mixer.conversion_gain_db(rf_hz, if_hz)
    array = mixer.conversion_gain_db_array(np.array([rf_hz]),
                                           np.array([if_hz]))
    assert abs(float(array[0]) - scalar) <= TOLERANCE


@settings(max_examples=60, deadline=None)
@given(
    if_hz=st.floats(min_value=1e3, max_value=2e8),
    mode=st.sampled_from([MixerMode.ACTIVE, MixerMode.PASSIVE]),
)
def test_property_noise_figure_equivalence(if_hz: float,
                                           mode: MixerMode) -> None:
    """Any (if, mode) point: scalar NF == array NF to 1e-9."""
    mixer = _MIXERS["nominal"]
    mixer.set_mode(mode)
    scalar = mixer.noise_figure_db(if_hz)
    array = mixer.noise_figure_db_array(np.array([if_hz]))
    assert abs(float(array[0]) - scalar) <= TOLERANCE
