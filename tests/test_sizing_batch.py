"""Scalar-vs-batched equivalence suite for the array sizing solver.

The batched :func:`~repro.core.transconductance.solve_widths` path promises
**bit-identical** results to the lazy scalar bisection it replaces — that
contract is what keeps every golden spec pin and design fingerprint
unchanged when the sweep and waveform engines pre-size whole design blocks.
This suite pins the contract at every layer: the :class:`MosfetArray`
device model against the scalar :class:`Mosfet`, the array bias solve
against the scalar one, the width solver against
:meth:`TransconductanceAmplifier._size_device`, and the per-element error
path of an unreachable target.  It also carries the regression test for the
degenerated-bias fixed-point loop, which now raises instead of silently
returning a stale current when it fails to converge.
"""

from __future__ import annotations

import math
from dataclasses import replace

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.config import MixerDesign, MixerMode
from repro.core.reconfigurable_mixer import ReconfigurableMixer
from repro.core.transconductance import (
    TransconductanceAmplifier,
    batched_sizing_solve_count,
    sizing_solve_count,
    solve_widths,
)
from repro.devices.mosfet import Mosfet, MosfetArray
from repro.devices.technology import UMC65_LIKE, fast_corner, slow_corner
from repro.sweep.montecarlo import DeviceSpread, sample_design

# Sizing solves are deterministic but not instant; keep example counts sane.
COMMON_SETTINGS = settings(max_examples=25, deadline=None)

#: Multiplicative perturbations of the sizing-relevant design knobs — wide
#: enough to move the solved width by decades, narrow enough to stay
#: reachable within the width bracket.
_SCALES = st.tuples(st.floats(min_value=0.5, max_value=1.6),
                    st.floats(min_value=0.6, max_value=1.5))


def _perturbed(design: MixerDesign, gm_scale: float,
               bias_scale: float) -> MixerDesign:
    return replace(design, tca_gm=design.tca_gm * gm_scale,
                   tca_bias_current=design.tca_bias_current * bias_scale)


def _scalar_width(design: MixerDesign) -> float:
    return TransconductanceAmplifier(design).device.params.width


def _mc_designs(count: int, seed: int = 19) -> list[MixerDesign]:
    design = MixerDesign()
    rng = np.random.default_rng(seed)
    spread = DeviceSpread()
    return [sample_design(design, rng, spread, f"mc-{i:03d}")
            for i in range(count)]


class TestMosfetArrayEquivalence:
    """MosfetArray evaluates every element exactly like a scalar Mosfet."""

    @COMMON_SETTINGS
    @given(vgs=st.floats(min_value=0.0, max_value=1.2),
           vds=st.floats(min_value=-0.1, max_value=1.2),
           width=st.floats(min_value=2e-6, max_value=2000e-6))
    def test_operating_point_matches_scalar_nmos(self, vgs, vds, width):
        scalar = Mosfet.nmos(width, 100e-9)
        bank = MosfetArray.nmos(np.array([width, 20e-6]),
                                np.array([100e-9, 100e-9]))
        scalar_op = scalar.operating_point(vgs, vds)
        bank_op = bank.operating_point(vgs, vds)
        for field in ("id", "gm", "gds", "vgs", "vds", "vov"):
            assert getattr(bank_op, field)[0] == getattr(scalar_op, field), field
        assert bank_op.regions[0] is scalar_op.region

    @COMMON_SETTINGS
    @given(vgs=st.floats(min_value=-1.2, max_value=0.0),
           vds=st.floats(min_value=-1.2, max_value=0.1))
    def test_operating_point_matches_scalar_pmos(self, vgs, vds):
        scalar = Mosfet.pmos(40e-6, 100e-9)
        bank = MosfetArray.pmos(np.array([40e-6]), np.array([100e-9]))
        scalar_op = scalar.operating_point(vgs, vds)
        bank_op = bank.operating_point(vgs, vds)
        for field in ("id", "gm", "gds", "vgs", "vds", "vov"):
            assert getattr(bank_op, field)[0] == getattr(scalar_op, field), field
        assert bank_op.regions[0] is scalar_op.region

    def test_per_element_technologies(self):
        corners = [slow_corner(), UMC65_LIKE, fast_corner()]
        bank = MosfetArray.nmos(np.full(3, 20e-6), np.full(3, 100e-9),
                                technologies=corners)
        banked = bank.operating_point(0.8, 0.6)
        for index, corner in enumerate(corners):
            scalar = Mosfet.nmos(20e-6, 100e-9, corner)
            assert banked.gm[index] == scalar.operating_point(0.8, 0.6).gm

    @COMMON_SETTINGS
    @given(target=st.floats(min_value=1e-6, max_value=3e-3),
           width=st.floats(min_value=5e-6, max_value=500e-6))
    def test_vgs_for_current_matches_scalar(self, target, width):
        scalar = Mosfet.nmos(width, 100e-9)
        bank = MosfetArray.nmos(np.array([width]), np.array([100e-9]))
        assert bank.vgs_for_current(np.array([target]), 0.6)[0] == \
            scalar.vgs_for_current(target, 0.6)

    def test_vgs_for_current_zero_target_is_zero(self):
        bank = MosfetArray.nmos(np.array([20e-6, 20e-6]), np.array([100e-9]))
        vgs = bank.vgs_for_current(np.array([0.0, 1e-4]), 0.6)
        assert vgs[0] == 0.0
        assert vgs[1] > 0.0

    def test_vgs_for_current_unreachable_names_elements(self):
        bank = MosfetArray.nmos(np.array([20e-6, 2e-6]), np.array([100e-9]))
        with pytest.raises(ValueError, match=r"\[1\]"):
            bank.vgs_for_current(np.array([1e-4, 10.0]), 0.6)

    def test_element_round_trip(self):
        bank = MosfetArray.nmos(np.array([10e-6, 30e-6]), np.array([100e-9]))
        assert bank.element(1).params.width == 30e-6
        assert len(bank) == 2


class TestSolveWidthsEquivalence:
    """The batched width solver is bit-identical to N scalar bisections."""

    @COMMON_SETTINGS
    @given(scales=st.lists(_SCALES, min_size=2, max_size=6))
    def test_widths_match_scalar_bitwise(self, scales):
        design = MixerDesign()
        grid = [_perturbed(design, gm, bias) for gm, bias in scales]
        batched = solve_widths(grid)
        scalar = np.array([_scalar_width(record) for record in grid])
        assert np.array_equal(batched, scalar)

    def test_monte_carlo_grid_matches_scalar(self):
        grid = _mc_designs(24)
        batched = solve_widths(grid)
        for index, record in enumerate(grid):
            tca = TransconductanceAmplifier(record)
            assert batched[index] == tca.device.params.width
            # The bias point downstream of the width is equally identical.
            seeded = TransconductanceAmplifier(record)
            seeded.seed_device(Mosfet.nmos(float(batched[index]),
                                           record.gm_device_length,
                                           record.technology))
            assert seeded.bias_point == tca.bias_point
            assert seeded.raw_gm == tca.raw_gm

    def test_mixer_intermediates_match_lazy_path(self):
        # Seeding a mixer with the batched width reproduces the lazy
        # mixer's spec intermediates field for field, both modes.
        for record in _mc_designs(4, seed=5):
            width = float(solve_widths([record, record])[0])
            seeded, lazy = ReconfigurableMixer(record), ReconfigurableMixer(record)
            seeded.seed_gm_width(width)
            assert seeded.gm_device_sized()
            for mode in (MixerMode.ACTIVE, MixerMode.PASSIVE):
                seeded.set_mode(mode)
                lazy.set_mode(mode)
                assert seeded.spec_intermediates() == lazy.spec_intermediates()

    def test_counters(self):
        grid = _mc_designs(5, seed=3)
        solves, batches = sizing_solve_count(), batched_sizing_solve_count()
        solve_widths(grid)
        assert sizing_solve_count() == solves + len(grid)
        assert batched_sizing_solve_count() == batches + 1

    def test_empty_input(self):
        solves = sizing_solve_count()
        assert solve_widths([]).shape == (0,)
        assert sizing_solve_count() == solves

    def test_label_count_mismatch(self):
        with pytest.raises(ValueError, match="labels"):
            solve_widths(_mc_designs(3), labels=["a", "b"])

    def test_unreachable_names_offending_label_only(self):
        design = MixerDesign()
        grid = [design, replace(design, tca_gm=1.0), design]
        with pytest.raises(ValueError) as excinfo:
            solve_widths(grid, labels=["good-0", "greedy", "good-1"])
        message = str(excinfo.value)
        assert "target gm unreachable" in message
        assert "greedy" in message
        assert "good-0" not in message and "good-1" not in message

    def test_unreachable_without_labels_names_index_and_fingerprint(self):
        design = MixerDesign()
        bad = replace(design, tca_gm=1.0)
        with pytest.raises(ValueError) as excinfo:
            solve_widths([design, bad])
        message = str(excinfo.value)
        assert "design[1]" in message
        assert bad.fingerprint()[:12] in message

    def test_scalar_error_message_unchanged(self):
        with pytest.raises(ValueError,
                           match="target gm unreachable within the width "
                                 "search range"):
            TransconductanceAmplifier(
                replace(MixerDesign(), tca_gm=1.0)).device


class TestSeedDevice:
    def test_seed_skips_the_solve(self):
        design = MixerDesign()
        device = TransconductanceAmplifier(design).device
        solves = sizing_solve_count()
        tca = TransconductanceAmplifier(design)
        assert not tca.device_sized
        tca.seed_device(device)
        assert tca.device_sized
        assert tca.device is device
        assert sizing_solve_count() == solves

    def test_seed_rejects_non_mosfet(self):
        with pytest.raises(TypeError):
            TransconductanceAmplifier(MixerDesign()).seed_device(object())


class TestTaylorConvergenceGuard:
    """Regression: the fixed-point bias loop raises instead of going stale."""

    def test_nominal_degeneration_converges(self):
        design = MixerDesign()
        tca = TransconductanceAmplifier(
            design, degeneration_resistance=design.degeneration_resistance)
        assert math.isfinite(tca.taylor_coefficients().g1)

    def test_moderate_degeneration_converges(self):
        tca = TransconductanceAmplifier(MixerDesign(),
                                        degeneration_resistance=80.0)
        assert tca.taylor_coefficients().g1 > 0.0

    def test_divergent_degeneration_raises(self):
        tca = TransconductanceAmplifier(MixerDesign(),
                                        degeneration_resistance=1e6)
        with pytest.raises(RuntimeError, match="failed to converge"):
            tca.taylor_coefficients()
