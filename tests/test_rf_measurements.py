"""Tests for the RF measurement benches: two-tone, compression, NF, gain, filters."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.rf.blocks import BehavioralBlock
from repro.rf.compression import measure_compression_point
from repro.rf.conversion_gain import (
    SWITCHING_FACTOR,
    active_mixer_gain_db,
    passive_mixer_gain_db,
    switching_mixer_voltage_gain,
)
from repro.rf.filters import FirstOrderLowPass, rc_pole_frequency
from repro.rf.network import (
    available_power_dbm,
    balun_output_amplitudes,
    delivered_power_dbm,
    mismatch_loss_db,
    reflection_coefficient,
    return_loss_db,
    vswr,
)
from repro.rf.noise_figure import (
    dsb_from_ssb,
    flicker_corner_from_nf,
    friis_cascade_nf,
    nf_with_flicker,
    noise_factor_from_figure,
    noise_figure_from_factor,
    ssb_from_dsb,
)
from repro.rf.signal import TwoToneSource
from repro.rf.twotone import (
    fit_intercept_point,
    iip2_from_powers,
    iip3_from_powers,
    intermod_frequencies,
    measure_two_tone,
    sweep_two_tone,
)


class TestIntermodFrequencies:
    def test_rf_band_products(self):
        products = intermod_frequencies(2.405e9, 2.407e9)
        assert products["im3_low"] == pytest.approx(2.403e9)
        assert products["im3_high"] == pytest.approx(2.409e9)
        assert products["im2"] == pytest.approx(2e6)

    def test_if_band_products_with_lo(self):
        products = intermod_frequencies(2.405e9, 2.407e9, lo_frequency=2.4e9)
        assert products["fundamental"] == pytest.approx(5e6)
        assert products["fundamental_2"] == pytest.approx(7e6)
        assert products["im3_low"] == pytest.approx(3e6)
        assert products["im3_high"] == pytest.approx(9e6)

    def test_rejects_degenerate_tones(self):
        with pytest.raises(ValueError):
            intermod_frequencies(1e9, 1e9)


class TestInterceptArithmetic:
    def test_single_point_formulas(self):
        assert iip3_from_powers(-30.0, -10.0, -70.0) == pytest.approx(0.0)
        assert iip2_from_powers(-30.0, -10.0, -90.0) == pytest.approx(50.0)

    def test_fit_recovers_known_intercept(self):
        iip3, gain = 2.0, 15.0
        p_in = np.arange(-45.0, -20.0, 2.0)
        fundamental = p_in + gain
        im3 = 3.0 * p_in + (gain - 2.0 * iip3)
        fit = fit_intercept_point(p_in, fundamental, im3)
        assert fit.intercept_input_dbm == pytest.approx(iip3, abs=0.01)
        assert fit.intercept_output_dbm == pytest.approx(iip3 + gain, abs=0.01)

    def test_fit_rejects_short_sweeps(self):
        with pytest.raises(ValueError):
            fit_intercept_point([0.0, 1.0], [0.0, 1.0], [0.0, 1.0])


class TestTwoToneBench:
    def _amplifier_device(self, iip3_dbm: float, gain_db: float = 15.0):
        return BehavioralBlock("dut", gain_db=gain_db, iip3_dbm=iip3_dbm).transfer

    def test_measured_iip3_matches_block_definition(self):
        fs, n = 1.024e9, 8192
        bin_width = fs / n
        source = TwoToneSource(1000 * bin_width, 1010 * bin_width, -40.0)
        device = self._amplifier_device(iip3_dbm=-2.0)
        result = measure_two_tone(device, source, fs, n)
        assert result.iip3_dbm == pytest.approx(-2.0, abs=0.5)
        assert result.gain_db == pytest.approx(15.0, abs=0.2)

    def test_sweep_monotone_and_3to1_slope(self):
        fs, n = 1.024e9, 8192
        bin_width = fs / n
        source = TwoToneSource(1000 * bin_width, 1010 * bin_width, -40.0)
        device = self._amplifier_device(iip3_dbm=0.0)
        powers = np.arange(-45.0, -25.0, 5.0)
        sweep = sweep_two_tone(device, source, powers, fs, n)
        fundamentals = [r.fundamental_output_dbm for r in sweep]
        im3s = [r.im3_output_dbm for r in sweep]
        fund_slope = np.polyfit(powers, fundamentals, 1)[0]
        im3_slope = np.polyfit(powers, im3s, 1)[0]
        assert fund_slope == pytest.approx(1.0, abs=0.05)
        assert im3_slope == pytest.approx(3.0, abs=0.2)


class TestCompressionBench:
    def test_swing_limited_compression_point(self):
        gain_db, swing = 20.0, 1.0
        device = BehavioralBlock("dut", gain_db=gain_db,
                                 output_swing_limit=swing).transfer
        fs, n = 1.024e9, 4096
        frequency = 100 * fs / n
        result = measure_compression_point(device, frequency,
                                           np.arange(-40.0, 0.0, 1.0), fs, n)
        assert result.compression_found
        assert result.small_signal_gain_db == pytest.approx(gain_db, abs=0.2)
        # tanh limiter compresses 1 dB when the ideal output reaches ~0.66 L.
        from repro.units import dbm_from_vpeak
        expected = float(dbm_from_vpeak(0.66 * swing / 10.0 ** (gain_db / 20.0)))
        assert result.input_p1db_dbm == pytest.approx(expected, abs=1.0)

    def test_linear_device_never_compresses(self):
        device = BehavioralBlock("dut", gain_db=10.0).transfer
        fs, n = 1.024e9, 4096
        frequency = 100 * fs / n
        result = measure_compression_point(device, frequency,
                                           np.arange(-40.0, -10.0, 2.0), fs, n)
        assert not result.compression_found
        assert math.isinf(result.input_p1db_dbm)


class TestNoiseFigureAlgebra:
    def test_factor_figure_round_trip(self):
        assert noise_figure_from_factor(noise_factor_from_figure(7.6)) == \
            pytest.approx(7.6)

    def test_factor_below_one_rejected(self):
        with pytest.raises(ValueError):
            noise_figure_from_factor(0.5)

    def test_friis_reduces_to_first_stage_for_high_gain(self):
        assert friis_cascade_nf([2.0, 20.0], [40.0, 10.0]) == pytest.approx(2.0, abs=0.1)

    def test_nf_with_flicker_rises_below_corner(self):
        nf_high = nf_with_flicker(10.0, 100e3, 10e6)
        nf_low = nf_with_flicker(10.0, 100e3, 10e3)
        assert nf_high == pytest.approx(10.0, abs=0.1)
        assert nf_low > nf_high + 5.0

    def test_flicker_corner_extraction_round_trip(self):
        corner = 80e3
        freqs = np.logspace(3, 8, 400)
        nf = nf_with_flicker(10.0, corner, freqs)
        estimated = flicker_corner_from_nf(freqs, nf)
        assert estimated == pytest.approx(corner, rel=0.35)

    def test_dsb_ssb_conversions(self):
        assert dsb_from_ssb(10.0) == 7.0
        assert ssb_from_dsb(7.0) == 10.0


class TestConversionGainTheory:
    def test_switching_factor_value(self):
        assert SWITCHING_FACTOR == pytest.approx(2.0 / math.pi)

    def test_equation_3_gain(self):
        gain = switching_mixer_voltage_gain(gm=15e-3, load_impedance=3.45e3)
        assert gain == pytest.approx((2.0 / math.pi) * 15e-3 * 3.45e3)

    def test_passive_gain_rolls_off_past_feedback_pole(self):
        low = passive_mixer_gain_db(8.6e-3, 3.7e3, 2.3e-12, 1e6)
        pole = rc_pole_frequency(3.7e3, 2.3e-12)
        at_pole = passive_mixer_gain_db(8.6e-3, 3.7e3, 2.3e-12, pole)
        assert at_pole == pytest.approx(low - 3.0, abs=0.2)

    def test_active_gain_with_and_without_capacitor(self):
        flat = active_mixer_gain_db(15e-3, 3.45e3)
        rolled = active_mixer_gain_db(15e-3, 3.45e3, 2.6e-12, 100e6)
        assert rolled < flat

    def test_invalid_arguments_rejected(self):
        with pytest.raises(ValueError):
            switching_mixer_voltage_gain(-1.0, 1e3)
        with pytest.raises(ValueError):
            switching_mixer_voltage_gain(1e-3, 0.0)


class TestFilters:
    def test_magnitude_at_pole_is_minus_3db(self):
        lp = FirstOrderLowPass(dc_gain=1.0, pole_frequency=1e6)
        assert lp.magnitude_db(1e6) == pytest.approx(-3.0103, abs=0.01)

    def test_from_rc_matches_pole_formula(self):
        lp = FirstOrderLowPass.from_rc(1e3, 1e-9)
        assert lp.pole_frequency == pytest.approx(rc_pole_frequency(1e3, 1e-9))

    def test_apply_attenuates_out_of_band_tone(self):
        from repro.rf.signal import sample_times, sine_wave
        from repro.rf.spectrum import Spectrum

        fs, n = 1.024e9, 8192
        bin_width = fs / n
        lp = FirstOrderLowPass(dc_gain=1.0, pole_frequency=50 * bin_width)
        in_band, out_band = 10 * bin_width, 1000 * bin_width
        times = sample_times(fs, n)
        wave = sine_wave(in_band, 0.1, times) + sine_wave(out_band, 0.1, times)
        spectrum = Spectrum(lp.apply(wave, fs), fs)
        assert spectrum.power_dbm_at(in_band) > spectrum.power_dbm_at(out_band) + 20.0

    def test_group_delay_peaks_at_dc(self):
        lp = FirstOrderLowPass(dc_gain=1.0, pole_frequency=1e6)
        assert lp.group_delay(0.0) > lp.group_delay(10e6)


class TestNetwork:
    def test_matched_load_has_no_reflection(self):
        assert abs(reflection_coefficient(50.0)) == pytest.approx(0.0)
        assert math.isinf(return_loss_db(50.0))
        assert vswr(50.0) == pytest.approx(1.0)
        assert mismatch_loss_db(50.0) == pytest.approx(0.0)

    def test_open_and_short_fully_reflect(self):
        assert abs(reflection_coefficient(1e12)) == pytest.approx(1.0, abs=1e-6)
        assert abs(reflection_coefficient(0.0)) == pytest.approx(1.0)

    def test_vswr_of_2to1_mismatch(self):
        assert vswr(100.0) == pytest.approx(2.0)

    def test_available_vs_delivered_power(self):
        available = available_power_dbm(1.0)
        delivered_matched = delivered_power_dbm(1.0, 50.0)
        delivered_mismatched = delivered_power_dbm(1.0, 200.0)
        assert delivered_matched == pytest.approx(available, abs=1e-9)
        assert delivered_mismatched < available

    def test_balun_split(self):
        plus, minus = balun_output_amplitudes(1.0, loss_db=0.0, imbalance_db=0.0)
        assert plus == pytest.approx(0.5)
        assert minus == pytest.approx(0.5)
        lossy_plus, _ = balun_output_amplitudes(1.0, loss_db=6.02)
        assert lossy_plus == pytest.approx(0.25, rel=1e-3)
