"""Tests for the on-disk spec cache (fingerprints, hits, invalidation)."""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

import repro.sweep.cache as cache_module
from repro.core.config import MixerDesign, MixerMode
from repro.core.reconfigurable_mixer import SpecIntermediates
from repro.core.transconductance import sizing_solve_count
from repro.sweep import SpecCache, SweepRunner, resolve_cache, run_monte_carlo


class TestFingerprint:
    def test_stable_and_content_addressed(self, design):
        assert design.fingerprint() == design.fingerprint()
        assert design.fingerprint() == MixerDesign().fingerprint()
        assert len(design.fingerprint()) == 64

    def test_any_parameter_change_moves_the_fingerprint(self, design):
        assert replace(design, load_resistance=3.46e3).fingerprint() != \
            design.fingerprint()
        corner = replace(design, technology=design.technology.corner(
            "ss", vth_shift=0.04))
        assert corner.fingerprint() != design.fingerprint()

    def test_canonical_dict_covers_technology(self, design):
        payload = design.canonical_dict()
        assert payload["technology"]["vth_n"] == design.technology.vth_n
        assert payload["load_resistance"] == design.load_resistance


class TestSpecCacheEntries:
    def test_store_then_load_round_trips(self, design, tmp_path):
        cache = SpecCache(tmp_path)
        mode = MixerMode.PASSIVE
        from repro.core.reconfigurable_mixer import ReconfigurableMixer
        intermediates = ReconfigurableMixer(design, mode).spec_intermediates()
        cache.store(design, mode, intermediates)
        assert cache.stores == 1
        loaded = cache.load(design, mode)
        assert loaded == intermediates
        assert cache.hits == 1

    def test_modes_and_designs_key_separately(self, design, tmp_path):
        cache = SpecCache(tmp_path)
        variant = replace(design, degeneration_resistance=75.0)
        keys = {cache.entry_key(design, MixerMode.ACTIVE),
                cache.entry_key(design, MixerMode.PASSIVE),
                cache.entry_key(variant, MixerMode.ACTIVE)}
        assert len(keys) == 3

    def test_store_rejects_mode_mismatch(self, design, tmp_path):
        cache = SpecCache(tmp_path)
        from repro.core.reconfigurable_mixer import ReconfigurableMixer
        intermediates = ReconfigurableMixer(
            design, MixerMode.ACTIVE).spec_intermediates()
        with pytest.raises(ValueError, match="mode"):
            cache.store(design, MixerMode.PASSIVE, intermediates)


class TestRunnerIntegration:
    def test_cold_vs_warm_equality_and_no_sizing(self, design, tmp_path):
        """The acceptance gate: a warm cache skips every sizing bisection."""
        grid = dict(rf_frequencies=[1e9, 2.405e9], if_frequencies=[5e6])
        cold_runner = SweepRunner(design, cache=tmp_path)
        before = sizing_solve_count()
        cold = cold_runner.run(**grid)
        assert sizing_solve_count() - before > 0
        assert cold_runner.cache.stores == 2  # one entry per mode

        warm_runner = SweepRunner(design, cache=tmp_path)
        before = sizing_solve_count()
        warm = warm_runner.run(**grid)
        assert sizing_solve_count() - before == 0
        assert warm_runner.cache.hits == 2
        for spec in cold.spec_names:
            np.testing.assert_array_equal(warm.data[spec], cold.data[spec])

    def test_version_bump_invalidates_stale_entries(self, design, tmp_path,
                                                    monkeypatch):
        grid = dict(rf_frequencies=[2.405e9])
        cold = SweepRunner(design, cache=tmp_path).run(**grid)

        monkeypatch.setattr(cache_module, "CACHE_VERSION",
                            cache_module.CACHE_VERSION + 1)
        bumped_runner = SweepRunner(design, cache=tmp_path)
        before = sizing_solve_count()
        bumped = bumped_runner.run(**grid)
        # Stale entries were not used: the cell re-solved and re-stored.
        assert sizing_solve_count() - before > 0
        assert bumped_runner.cache.hits == 0
        assert bumped_runner.cache.stores == 2
        for spec in cold.spec_names:
            np.testing.assert_array_equal(bumped.data[spec], cold.data[spec])

    def test_corrupted_entry_falls_back_to_recompute(self, design, tmp_path):
        runner = SweepRunner(design, cache=tmp_path)
        cold = runner.run(modes=[MixerMode.ACTIVE])
        entry = runner.cache.entry_path(design, MixerMode.ACTIVE)
        entry.write_text("{not json", encoding="utf-8")

        recovering = SweepRunner(design, cache=tmp_path)
        recovered = recovering.run(modes=[MixerMode.ACTIVE])
        assert recovering.cache.corrupt == 1
        assert recovering.cache.stores == 1  # entry was rewritten
        np.testing.assert_array_equal(
            recovered.data["conversion_gain_db"],
            cold.data["conversion_gain_db"])
        # The rewritten entry is healthy again.
        assert SpecCache(tmp_path).load(design, MixerMode.ACTIVE) is not None

    def test_tampered_payload_fields_are_rejected(self, design, tmp_path):
        cache = SpecCache(tmp_path)
        from repro.core.reconfigurable_mixer import ReconfigurableMixer
        intermediates = ReconfigurableMixer(
            design, MixerMode.ACTIVE).spec_intermediates()
        cache.store(design, MixerMode.ACTIVE, intermediates)
        path = cache.entry_path(design, MixerMode.ACTIVE)
        path.write_text(
            path.read_text(encoding="utf-8").replace(
                '"power_mw"', '"renamed_field"'),
            encoding="utf-8")
        assert cache.load(design, MixerMode.ACTIVE) is None
        assert cache.corrupt == 1


class TestSpecIntermediatesSerialization:
    def test_round_trip(self, active_mixer):
        intermediates = active_mixer.spec_intermediates()
        assert SpecIntermediates.from_dict(
            intermediates.to_dict()) == intermediates

    def test_from_dict_rejects_bad_payloads(self, active_mixer):
        payload = active_mixer.spec_intermediates().to_dict()
        with pytest.raises(KeyError):
            SpecIntermediates.from_dict(
                {k: v for k, v in payload.items() if k != "iip3_dbm"})
        bad = dict(payload, power_mw="9.36")
        with pytest.raises(TypeError):
            SpecIntermediates.from_dict(bad)
        with pytest.raises(ValueError):
            SpecIntermediates.from_dict(dict(payload, mode="triode"))


class TestResolveCacheAndEnvSwitch:
    def test_resolve_cache_forms(self, tmp_path):
        assert resolve_cache(None) is None
        assert resolve_cache(False) is None
        cache = SpecCache(tmp_path)
        assert resolve_cache(cache) is cache
        assert resolve_cache(str(tmp_path)).directory == tmp_path
        assert resolve_cache(tmp_path).directory == tmp_path
        with pytest.raises(TypeError):
            resolve_cache(42)

    def test_true_uses_default_directory(self, tmp_path, monkeypatch):
        monkeypatch.setenv(cache_module.DIRECTORY_ENV, str(tmp_path / "d"))
        resolved = resolve_cache(True)
        assert resolved is not None
        assert resolved.directory == tmp_path / "d"

    def test_env_switch_force_disables(self, tmp_path, monkeypatch):
        monkeypatch.setenv(cache_module.DISABLE_ENV, "off")
        assert resolve_cache(True) is None
        assert resolve_cache(str(tmp_path)) is None
        runner = SweepRunner(cache=str(tmp_path))
        assert runner.cache is None

    def test_env_switch_ignores_other_values(self, monkeypatch):
        monkeypatch.setenv(cache_module.DISABLE_ENV, "on")
        assert not cache_module.cache_disabled_by_env()


class TestMonteCarloCache:
    def test_cached_rerun_matches_and_skips_sizing(self, design, tmp_path):
        cold = run_monte_carlo(design, num_samples=4, seed=13, cache=tmp_path)
        before = sizing_solve_count()
        warm = run_monte_carlo(design, num_samples=4, seed=13, cache=tmp_path)
        assert sizing_solve_count() - before == 0
        for spec in cold.sweep.spec_names:
            np.testing.assert_array_equal(warm.sweep.data[spec],
                                          cold.sweep.data[spec])
