"""Tests for the MNA circuit substrate: netlist, DC, AC, transient, two-port."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.circuit import (
    CapacitorElement,
    Circuit,
    CurrentSource,
    InductorElement,
    MosfetElement,
    ResistorElement,
    VCCS,
    VCVS,
    VoltageSource,
    ac_sweep,
    dc_operating_point,
    impedance_at_port,
    transient,
)
from repro.circuit.dc import ConvergenceError
from repro.circuit.twoport import two_port_from_circuit
from repro.devices.mosfet import Mosfet, MosfetRegion


def resistor_divider() -> Circuit:
    circuit = Circuit("divider")
    circuit.add(VoltageSource("v1", "in", "0", dc=1.2))
    circuit.add(ResistorElement("r1", "in", "mid", 1e3))
    circuit.add(ResistorElement("r2", "mid", "0", 3e3))
    return circuit


class TestNetlist:
    def test_duplicate_names_rejected(self):
        circuit = Circuit()
        circuit.add(ResistorElement("r1", "a", "0", 1e3))
        with pytest.raises(ValueError):
            circuit.add(ResistorElement("r1", "b", "0", 1e3))

    def test_node_enumeration_excludes_ground(self):
        circuit = resistor_divider()
        assert set(circuit.nodes()) == {"in", "mid"}
        assert circuit.system_size() == 2 + 1  # two nodes + one branch current

    def test_element_lookup(self):
        circuit = resistor_divider()
        assert circuit.element("r1").resistance == 1e3
        with pytest.raises(KeyError):
            circuit.element("missing")
        assert "r2" in circuit
        assert len(circuit) == 3

    def test_validate_requires_ground_reference(self):
        circuit = Circuit("floating")
        circuit.add(ResistorElement("r1", "a", "b", 1e3))
        with pytest.raises(ValueError):
            circuit.validate()

    def test_validate_requires_elements(self):
        with pytest.raises(ValueError):
            Circuit("empty").validate()


class TestDCAnalysis:
    def test_resistor_divider(self):
        solution = dc_operating_point(resistor_divider())
        assert solution.voltage("mid") == pytest.approx(0.9)
        assert solution.voltage("in") == pytest.approx(1.2)

    def test_branch_current_and_supply_power(self):
        solution = dc_operating_point(resistor_divider())
        current = solution.branch_current("v1")
        # The solver adds a gmin of 1e-12 S per node, so agreement is to ~1e-6.
        assert abs(current) == pytest.approx(1.2 / 4e3, rel=1e-5)
        assert solution.supply_power() == pytest.approx(1.2 ** 2 / 4e3, rel=1e-5)

    def test_current_source_into_resistor(self):
        circuit = Circuit("i-r")
        circuit.add(CurrentSource("i1", "0", "out", dc=1e-3))
        circuit.add(ResistorElement("r1", "out", "0", 2e3))
        solution = dc_operating_point(circuit)
        assert solution.voltage("out") == pytest.approx(2.0)

    def test_vccs_gain_stage(self):
        circuit = Circuit("gm-stage")
        circuit.add(VoltageSource("vin", "in", "0", dc=0.01))
        circuit.add(VCCS("gm", "out", "0", "in", "0", transconductance=10e-3))
        circuit.add(ResistorElement("rl", "out", "0", 1e3))
        solution = dc_operating_point(circuit)
        # v_out = -gm * v_in * R_L
        assert solution.voltage("out") == pytest.approx(-0.1, rel=1e-6)

    def test_vcvs_amplifier(self):
        circuit = Circuit("vcvs")
        circuit.add(VoltageSource("vin", "in", "0", dc=0.05))
        circuit.add(VCVS("a1", "out", "0", "in", "0", gain=20.0))
        circuit.add(ResistorElement("rl", "out", "0", 1e3))
        solution = dc_operating_point(circuit)
        assert solution.voltage("out") == pytest.approx(1.0, rel=1e-9)

    def test_inductor_is_dc_short(self):
        circuit = Circuit("lr")
        circuit.add(VoltageSource("v1", "in", "0", dc=1.0))
        circuit.add(InductorElement("l1", "in", "out", 1e-9))
        circuit.add(ResistorElement("r1", "out", "0", 1e3))
        solution = dc_operating_point(circuit)
        assert solution.voltage("out") == pytest.approx(1.0, rel=1e-6)

    def test_diode_connected_mosfet_bias(self):
        circuit = Circuit("diode-connected")
        circuit.add(VoltageSource("vdd", "vdd", "0", dc=1.2))
        circuit.add(ResistorElement("rb", "vdd", "g", 2e3))
        device = Mosfet.nmos(30e-6, 100e-9)
        circuit.add(MosfetElement("m1", "g", "g", "0", device))
        solution = dc_operating_point(circuit)
        vgs = solution.voltage("g")
        assert device.params.vth < vgs < 1.2
        op = device.operating_point(vgs, vgs)
        # KCL: resistor current equals device current.
        assert op.id == pytest.approx((1.2 - vgs) / 2e3, rel=1e-3)
        assert op.region is MosfetRegion.SATURATION

    def test_common_source_amplifier_dc(self):
        circuit = Circuit("common-source")
        circuit.add(VoltageSource("vdd", "vdd", "0", dc=1.2))
        circuit.add(VoltageSource("vg", "g", "0", dc=0.55))
        circuit.add(ResistorElement("rd", "vdd", "d", 2e3))
        circuit.add(MosfetElement("m1", "d", "g", "0", Mosfet.nmos(20e-6, 100e-9)))
        solution = dc_operating_point(circuit)
        assert 0.0 < solution.voltage("d") < 1.2

    def test_nonconvergence_raises(self):
        circuit = resistor_divider()
        with pytest.raises(ConvergenceError):
            dc_operating_point(circuit, max_iterations=0 + 1, tolerance=0.0)


class TestACAnalysis:
    def test_rc_lowpass_minus_3db_at_pole(self):
        r, c = 1e3, 1e-9
        pole = 1.0 / (2.0 * math.pi * r * c)
        circuit = Circuit("rc")
        circuit.add(VoltageSource("vin", "in", "0", dc=0.0, ac=1.0))
        circuit.add(ResistorElement("r1", "in", "out", r))
        circuit.add(CapacitorElement("c1", "out", "0", c))
        ac = ac_sweep(circuit, np.array([pole / 100.0, pole, pole * 100.0]))
        gain = np.abs(ac.voltage("out"))
        assert gain[0] == pytest.approx(1.0, abs=1e-3)
        assert gain[1] == pytest.approx(1.0 / math.sqrt(2.0), rel=1e-3)
        assert gain[2] == pytest.approx(0.01, rel=0.05)

    def test_transfer_db_and_corner_finder(self):
        r, c = 1e3, 1e-9
        pole = 1.0 / (2.0 * math.pi * r * c)
        circuit = Circuit("rc")
        circuit.add(VoltageSource("vin", "in", "0", dc=0.0, ac=1.0))
        circuit.add(ResistorElement("r1", "in", "out", r))
        circuit.add(CapacitorElement("c1", "out", "0", c))
        freqs = np.logspace(math.log10(pole / 100), math.log10(pole * 100), 201)
        ac = ac_sweep(circuit, freqs)
        assert ac.minus_3db_frequency("out", "in") == pytest.approx(pole, rel=0.05)

    def test_common_source_small_signal_gain(self):
        circuit = Circuit("cs-amp")
        circuit.add(VoltageSource("vdd", "vdd", "0", dc=1.2))
        circuit.add(VoltageSource("vg", "g", "0", dc=0.55, ac=1.0))
        circuit.add(ResistorElement("rd", "vdd", "d", 2e3))
        device = Mosfet.nmos(20e-6, 100e-9)
        circuit.add(MosfetElement("m1", "d", "g", "0", device,
                                  include_capacitance=False))
        dc = dc_operating_point(circuit)
        op = device.operating_point(dc.voltage("g"), dc.voltage("d"))
        ac = ac_sweep(circuit, np.array([1e6]), dc_solution=dc)
        measured_gain = abs(ac.voltage("d")[0])
        expected = op.gm * (1.0 / (1.0 / 2e3 + op.gds))
        assert measured_gain == pytest.approx(expected, rel=1e-3)

    def test_mosfet_capacitance_rolls_off_gain(self):
        def gain_at(freq: float, include_cap: bool) -> float:
            circuit = Circuit("cs-amp")
            circuit.add(VoltageSource("vdd", "vdd", "0", dc=1.2))
            circuit.add(VoltageSource("vg", "g", "0", dc=0.55, ac=1.0))
            circuit.add(ResistorElement("rs", "g", "gi", 100e3))
            circuit.add(ResistorElement("rd", "vdd", "d", 2e3))
            circuit.add(MosfetElement("m1", "d", "gi", "0",
                                      Mosfet.nmos(200e-6, 100e-9),
                                      include_capacitance=include_cap))
            ac = ac_sweep(circuit, np.array([freq]))
            return float(abs(ac.voltage("d")[0]))

        assert gain_at(10e9, True) < gain_at(1e6, True)
        assert gain_at(10e9, False) == pytest.approx(gain_at(1e6, False), rel=0.01)


class TestTransient:
    def test_rc_step_response_time_constant(self):
        r, c = 1e3, 1e-9
        tau = r * c
        circuit = Circuit("rc-step")
        circuit.add(VoltageSource("vin", "in", "0", dc=0.0,
                                  waveform=lambda t: 1.0))
        circuit.add(ResistorElement("r1", "in", "out", r))
        circuit.add(CapacitorElement("c1", "out", "0", c))
        result = transient(circuit, stop_time=5 * tau, timestep=tau / 200.0)
        v_out = result.voltage("out")
        # After one time constant the output should be ~63 % of the step.
        index = int(round(tau / result.timestep))
        assert v_out[index] == pytest.approx(1.0 - math.exp(-1.0), abs=0.03)
        assert v_out[-1] == pytest.approx(1.0, abs=0.02)

    def test_sine_through_resistor_is_undistorted(self):
        circuit = Circuit("sine")
        amplitude, frequency = 0.5, 1e6
        circuit.add(VoltageSource(
            "vin", "in", "0", dc=0.0,
            waveform=lambda t: amplitude * math.sin(2 * math.pi * frequency * t)))
        circuit.add(ResistorElement("r1", "in", "out", 1e3))
        circuit.add(ResistorElement("r2", "out", "0", 1e3))
        result = transient(circuit, stop_time=2e-6, timestep=1e-9)
        assert np.max(result.voltage("out")) == pytest.approx(amplitude / 2, rel=0.01)

    def test_rejects_bad_time_parameters(self):
        circuit = resistor_divider()
        with pytest.raises(ValueError):
            transient(circuit, stop_time=0.0, timestep=1e-9)
        with pytest.raises(ValueError):
            transient(circuit, stop_time=1e-9, timestep=1e-6)


class TestTwoPort:
    def test_driving_point_impedance_of_divider(self):
        circuit = Circuit("r-only")
        circuit.add(ResistorElement("r1", "port", "0", 75.0))
        z = impedance_at_port(circuit, "port", "0", np.array([1e6, 1e9]))
        np.testing.assert_allclose(np.abs(z), [75.0, 75.0], rtol=1e-6)

    def test_two_port_z_parameters_of_tee(self):
        # Symmetric resistive tee: Z11 = Z22 = Ra + Rc, Z12 = Z21 = Rc.
        ra, rc = 100.0, 50.0
        circuit = Circuit("tee")
        circuit.add(ResistorElement("ra", "p1", "mid", ra))
        circuit.add(ResistorElement("rb", "mid", "p2", ra))
        circuit.add(ResistorElement("rc", "mid", "0", rc))
        result = two_port_from_circuit(circuit, ("p1", "0"), ("p2", "0"),
                                       np.array([1e6]))
        assert abs(result.z11[0]) == pytest.approx(ra + rc, rel=1e-6)
        assert abs(result.z21[0]) == pytest.approx(rc, rel=1e-6)
        s11, s12, s21, s22 = result.s_parameters()
        assert abs(s21[0]) <= 1.0
