"""Integration tests: every experiment driver runs and reproduces the paper's shape.

The heavy waveform experiments (Fig. 10, IIP2) are run here with reduced
sweeps so the test suite stays fast; the full-resolution versions live in the
benchmark harness.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import MixerMode
from repro.experiments import (
    run_fig8,
    run_fig9,
    run_fig10,
    run_iip2,
    run_power_budget,
    run_table1,
    run_tia_response,
)
from repro.experiments.fig8_gain_vs_rf import format_report as fig8_report
from repro.experiments.fig9_nf_vs_if import format_report as fig9_report
from repro.experiments.fig10_iip3 import format_report as fig10_report
from repro.experiments.iip2 import format_report as iip2_report
from repro.experiments.power_budget import format_report as power_report
from repro.experiments.table1_comparison import format_report as table1_report
from repro.experiments.tia_response import format_report as tia_report


class TestFig8:
    def test_shape_and_report(self, design):
        result = run_fig8(design, points=80)
        assert result.peak_gain_db(MixerMode.ACTIVE) > \
            result.peak_gain_db(MixerMode.PASSIVE)
        low, high = result.band_edges_hz(MixerMode.ACTIVE)
        assert 0.5e9 < low < 1.5e9
        assert 4.0e9 < high < 7.0e9
        report = fig8_report(result)
        assert "Fig. 8" in report and "active" in report

    def test_rejects_tiny_sweeps(self, design):
        with pytest.raises(ValueError):
            run_fig8(design, points=3)


class TestFig9:
    def test_shape_and_report(self, design):
        result = run_fig9(design, points=80)
        assert result.value_at(MixerMode.ACTIVE, "nf", 5e6) < \
            result.value_at(MixerMode.PASSIVE, "nf", 5e6)
        assert result.flicker_corner_hz(MixerMode.PASSIVE) < 100e3
        report = fig9_report(result)
        assert "flicker corner" in report

    def test_gain_series_tracks_if_rolloff(self, design):
        result = run_fig9(design, points=80)
        assert result.value_at(MixerMode.PASSIVE, "gain", 1e5) > \
            result.value_at(MixerMode.PASSIVE, "gain", 9e7)


class TestFig10AndIip2:
    @pytest.fixture(scope="class")
    def fig10(self, design):
        powers = np.arange(-45.0, -27.0, 4.0)
        return run_fig10(design, input_powers_dbm=powers)

    def test_intercepts_reproduce_paper_shape(self, fig10):
        assert fig10.passive.iip3_dbm > fig10.active.iip3_dbm + 10.0
        assert fig10.passive.iip3_dbm == pytest.approx(6.57, abs=3.0)
        assert fig10.active.iip3_dbm == pytest.approx(-11.9, abs=3.0)
        assert "IIP3" in fig10_report(fig10)

    def test_for_mode_accessor(self, fig10):
        assert fig10.for_mode(MixerMode.ACTIVE) is fig10.active
        assert fig10.for_mode(MixerMode.PASSIVE) is fig10.passive

    def test_rejects_short_power_sweeps(self, design):
        with pytest.raises(ValueError):
            run_fig10(design, input_powers_dbm=np.array([-40.0, -30.0]))

    def test_iip2_above_floor(self, design):
        result = run_iip2(design,
                          input_powers_dbm=np.arange(-45.0, -33.0, 4.0))
        assert result.both_meet_paper_floor
        assert "PASS" in iip2_report(result)


class TestTable1:
    def test_full_table_and_deviations(self, design):
        result = run_table1(design)
        assert len(result.columns) == 10
        deviations = result.deviations_from_paper()
        assert abs(deviations["active"]["gain_db"]) < 1.0
        assert abs(deviations["passive"]["nf_db"]) < 1.0
        assert result.column("[5]")["gain_db"] == pytest.approx(21.0)
        with pytest.raises(KeyError):
            result.column("nonexistent")
        report = table1_report(result)
        assert "Table I" in report and "This work (active)" in report

    def test_comparative_claims(self, design):
        result = run_table1(design)
        assert result.highest_gain_design() == "[4]"
        assert result.best_iip3_design() not in ("This work (active)",)


class TestPowerAndTia:
    def test_power_budget(self, design):
        result = run_power_budget(design)
        assert result.active_total_mw == pytest.approx(9.36, abs=0.01)
        assert result.passive_total_mw == pytest.approx(9.24, abs=0.01)
        deltas = result.delta_vs_paper_mw()
        assert abs(deltas["active"]) < 0.05
        assert "TIA" in power_report(result)

    def test_tia_response_agreement(self, design):
        result = run_tia_response(design, points=25)
        assert result.worst_relative_error < 0.10
        assert result.zin_at(1e5) < design.feedback_resistance / 100.0
        assert "Equation (4)" in tia_report(result)
