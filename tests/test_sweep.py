"""Unit tests for the vectorized sweep engine (grid, result, runner, MC)."""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from repro.core.config import MixerMode
from repro.sweep import (
    ALL_SPECS,
    DeviceSpread,
    SweepAxis,
    SweepResult,
    SweepRunner,
    run_monte_carlo,
    sample_design,
)


class TestSweepAxis:
    def test_numeric_axis_selects_nearest(self):
        axis = SweepAxis.numeric("rf_frequency_hz", [1e9, 2e9, 4e9])
        assert axis.index_of(1.9e9) == 1
        assert axis.index_of(5e9) == 2
        assert axis.is_numeric
        assert len(axis) == 3

    def test_categorical_axis_exact_match_and_enum(self):
        axis = SweepAxis.categorical("mode", [MixerMode.ACTIVE,
                                              MixerMode.PASSIVE])
        assert axis.values == ("active", "passive")
        assert axis.index_of("passive") == 1
        assert axis.index_of(MixerMode.ACTIVE) == 0
        with pytest.raises(KeyError, match="known values"):
            axis.index_of("triode")

    def test_rejects_empty_and_duplicate_axes(self):
        with pytest.raises(ValueError):
            SweepAxis("rf", ())
        with pytest.raises(ValueError, match="duplicate"):
            SweepAxis.categorical("design", ["a", "a"])

    def test_categorical_axis_has_no_array_view(self):
        axis = SweepAxis.categorical("design", ["nominal"])
        with pytest.raises(TypeError):
            axis.as_array()

    def test_to_dict(self):
        axis = SweepAxis.numeric("if_frequency_hz", [5e6])
        assert axis.to_dict() == {"name": "if_frequency_hz", "values": [5e6]}

    def test_from_dict_recovers_kind(self):
        numeric = SweepAxis.numeric("if_frequency_hz", [5e6, 7e6])
        assert SweepAxis.from_dict(numeric.to_dict()) == numeric
        categorical = SweepAxis.categorical("mode", [MixerMode.ACTIVE])
        rebuilt = SweepAxis.from_dict(categorical.to_dict())
        assert rebuilt == categorical and not rebuilt.is_numeric


class TestSweepResult:
    @pytest.fixture()
    def result(self) -> SweepResult:
        axes = (SweepAxis.categorical("mode", ["active", "passive"]),
                SweepAxis.numeric("rf_frequency_hz", [1e9, 2e9, 3e9]))
        data = {"gain_db": np.arange(6.0).reshape(2, 3)}
        return SweepResult(axes, data)

    def test_shape_and_lookup(self, result):
        assert result.shape == (2, 3)
        assert result.spec_names == ("gain_db",)
        assert result.axis("mode").values == ("active", "passive")
        with pytest.raises(KeyError):
            result.axis("if_frequency_hz")

    def test_values_drops_selected_axes(self, result):
        curve = result.values("gain_db", mode="passive")
        np.testing.assert_allclose(curve, [3.0, 4.0, 5.0])
        scalar = result.values("gain_db", mode="active",
                               rf_frequency_hz=2.1e9)
        assert scalar == 1.0

    def test_value_requires_full_selection(self, result):
        assert result.value("gain_db", mode="active",
                            rf_frequency_hz=1e9) == 0.0
        with pytest.raises(ValueError, match="rf_frequency_hz"):
            result.value("gain_db", mode="active")

    def test_curve_and_selector_errors(self, result):
        f, series = result.curve("gain_db", "rf_frequency_hz", mode="active")
        np.testing.assert_allclose(f, [1e9, 2e9, 3e9])
        np.testing.assert_allclose(series, [0.0, 1.0, 2.0])
        with pytest.raises(ValueError, match="select one"):
            result.curve("gain_db", "rf_frequency_hz")
        with pytest.raises(ValueError, match="sweep along and select"):
            result.curve("gain_db", "rf_frequency_hz", mode="active",
                         rf_frequency_hz=1e9)
        with pytest.raises(KeyError, match="no spec"):
            result.values("nf_db")

    def test_shape_mismatch_rejected(self):
        axes = (SweepAxis.numeric("rf_frequency_hz", [1e9, 2e9]),)
        with pytest.raises(ValueError, match="shape"):
            SweepResult(axes, {"gain_db": np.zeros(3)})

    def test_to_dict_round_trips_axes_and_data(self, result):
        exported = result.to_dict()
        assert [a["name"] for a in exported["axes"]] == \
            ["mode", "rf_frequency_hz"]
        assert exported["specs"]["gain_db"] == [[0.0, 1.0, 2.0],
                                                [3.0, 4.0, 5.0]]

    def test_from_dict_round_trips_through_json(self, result):
        """to_dict -> json -> from_dict must reload bit-identically."""
        import json

        rebuilt = SweepResult.from_dict(json.loads(json.dumps(result.to_dict())))
        assert rebuilt.shape == result.shape
        assert rebuilt.spec_names == result.spec_names
        assert [a.to_dict() for a in rebuilt.axes] == \
            [a.to_dict() for a in result.axes]
        np.testing.assert_array_equal(rebuilt.data["gain_db"],
                                      result.data["gain_db"])
        # The reloaded result answers selections exactly like the original.
        assert rebuilt.value("gain_db", mode="passive",
                             rf_frequency_hz=2e9) == 4.0


class TestSweepRunner:
    def test_rejects_unknown_specs(self, design):
        with pytest.raises(ValueError, match="unknown specs"):
            SweepRunner(design, specs=("s_parameters",))
        with pytest.raises(ValueError, match="at least one spec"):
            SweepRunner(design, specs=())

    def test_default_run_is_a_nominal_spot_sweep(self, design):
        sweep = SweepRunner(design).run()
        assert sweep.shape == (1, 2, 1, 1)
        assert sweep.axis("design").values == ("nominal",)
        assert sweep.axis("mode").values == ("active", "passive")
        assert sweep.axis("rf_frequency_hz").values[0] == design.rf_frequency
        # Mode ordering is respected and specs differ across modes.
        assert sweep.value("power_mw", mode="active") == \
            pytest.approx(9.36, abs=1e-6)
        assert sweep.value("power_mw", mode="passive") == \
            pytest.approx(9.24, abs=1e-6)

    def test_all_specs_produce_full_grid(self, design):
        rf = np.array([1e9, 2.4e9])
        if_ = np.array([1e6, 5e6, 20e6])
        sweep = SweepRunner(design, specs=ALL_SPECS).run(
            rf_frequencies=rf, if_frequencies=if_, modes=(MixerMode.PASSIVE,))
        assert sweep.shape == (1, 1, 2, 3)
        for spec in ALL_SPECS:
            assert sweep.values(spec).shape == (1, 1, 2, 3)
        # Flat specs really are flat across the frequency plane.
        iip3 = sweep.values("iip3_dbm", design="nominal", mode="passive")
        assert np.ptp(iip3) == 0.0

    def test_rejects_bad_grids_and_axes(self, design):
        runner = SweepRunner(design)
        with pytest.raises(ValueError, match="positive"):
            runner.run(rf_frequencies=[-1e9])
        with pytest.raises(ValueError, match="mode axis"):
            runner.run(modes=())
        with pytest.raises(TypeError, match="MixerMode"):
            runner.run(modes=("active",))
        with pytest.raises(ValueError, match="design axis"):
            runner.run(designs={})
        with pytest.raises(TypeError, match="MixerDesign"):
            runner.run(designs=["not-a-design"])

    def test_mixers_are_memoized_across_runs(self, design):
        runner = SweepRunner(design, specs=("conversion_gain_db",))
        runner.run(rf_frequencies=[1e9, 2e9])
        assert runner.cached_design_count == 1
        runner.run(rf_frequencies=[3e9, 4e9])
        assert runner.cached_design_count == 1
        variant = replace(design, degeneration_resistance=100.0)
        runner.run(designs=[design, variant])
        assert runner.cached_design_count == 2

    def test_sequence_designs_get_stable_labels(self, design):
        variant = replace(design, degeneration_resistance=75.0)
        sweep = SweepRunner(design, specs=("iip3_dbm",)).run(
            designs=[design, variant], modes=(MixerMode.PASSIVE,))
        assert sweep.axis("design").values == ("design-0", "design-1")
        # Stronger degeneration must improve the passive gm-stage linearity.
        assert sweep.value("iip3_dbm", design="design-1", mode="passive") > \
            sweep.value("iip3_dbm", design="design-0", mode="passive")


class TestMonteCarlo:
    @pytest.fixture(scope="class")
    def mc(self, design):
        return run_monte_carlo(design, num_samples=8, seed=7)

    def test_sampled_designs_differ_but_stay_physical(self, design):
        rng = np.random.default_rng(3)
        sampled = sample_design(design, rng, DeviceSpread(), "mc-test")
        assert sampled != design
        assert sampled.technology.u_cox_n > 0
        assert sampled.feedback_resistance > 0
        assert sampled.technology.name.endswith("mc-test")

    def test_zero_spread_reproduces_nominal(self, design):
        rng = np.random.default_rng(3)
        spread = DeviceSpread(vth_sigma_v=0.0, mobility_sigma=0.0,
                              resistor_sigma=0.0, capacitor_sigma=0.0)
        sampled = sample_design(design, rng, spread, "mc-flat")
        assert sampled.feedback_resistance == design.feedback_resistance
        assert sampled.technology.vth_n == design.technology.vth_n

    def test_negative_spread_rejected(self):
        with pytest.raises(ValueError):
            DeviceSpread(vth_sigma_v=-0.01)

    def test_distributions_centre_near_nominal(self, mc, design):
        from repro.core.reconfigurable_mixer import ReconfigurableMixer

        nominal = ReconfigurableMixer(design, MixerMode.ACTIVE)
        stats = mc.statistics("conversion_gain_db", MixerMode.ACTIVE)
        assert stats.std > 0.0
        assert abs(stats.mean - nominal.conversion_gain_db()) < 1.0
        assert stats.minimum <= stats.p05 <= stats.mean <= stats.p95 \
            <= stats.maximum

    def test_yield_fraction_bounds_and_validation(self, mc):
        everything = mc.yield_fraction("conversion_gain_db", MixerMode.ACTIVE,
                                       minimum=-1e3, maximum=1e3)
        assert everything == 1.0
        nothing = mc.yield_fraction("conversion_gain_db", MixerMode.ACTIVE,
                                    minimum=1e3)
        assert nothing == 0.0
        with pytest.raises(ValueError):
            mc.yield_fraction("conversion_gain_db", MixerMode.ACTIVE)

    def test_same_seed_is_deterministic(self, design, mc):
        again = run_monte_carlo(design, num_samples=8, seed=7)
        np.testing.assert_array_equal(
            mc.samples("conversion_gain_db", MixerMode.ACTIVE),
            again.samples("conversion_gain_db", MixerMode.ACTIVE))

    def test_requires_minimum_samples(self, design):
        with pytest.raises(ValueError):
            run_monte_carlo(design, num_samples=1)

    def test_report_lists_every_mode_and_spec(self, mc):
        from repro.sweep.montecarlo import format_report

        report = format_report(mc)
        assert "Monte-Carlo" in report
        assert "active" in report and "passive" in report
        assert "conversion_gain_db" in report
