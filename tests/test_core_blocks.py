"""Tests for the mixer's building blocks: switches, TCA, quad, TIA, load, power."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.config import MixerMode
from repro.core.load import TransmissionGateLoad
from repro.core.power import PowerBudget
from repro.core.switches import NmosSwitch, PmosSwitch, SwitchState, TransmissionGate
from repro.core.switching_quad import LoDrive, SwitchingQuad
from repro.core.tia import TransimpedanceAmplifier, TwoStageOTA
from repro.core.transconductance import TransconductanceAmplifier
from repro.rf.signal import sample_times, sine_wave
from repro.rf.spectrum import Spectrum


class TestSwitches:
    def test_nmos_switch_control_sense(self, design):
        switch = NmosSwitch(width=10e-6, length=65e-9, technology=design.technology)
        assert switch.state(control_high=True) is SwitchState.ON
        assert switch.state(control_high=False) is SwitchState.OFF
        assert math.isfinite(switch.on_resistance())
        assert math.isinf(switch.resistance(control_high=False))

    def test_pmos_switch_control_sense(self, design):
        switch = PmosSwitch(width=20e-6, length=65e-9, technology=design.technology)
        # PMOS conducts when its control (gate) is low: passive mode, Vlogic=0.
        assert switch.state(control_high=False) is SwitchState.ON
        assert switch.state(control_high=True) is SwitchState.OFF

    def test_pmos_sized_for_degeneration_hits_target(self, design):
        switch = PmosSwitch.sized_for_degeneration(50.0,
                                                   technology=design.technology)
        assert switch.on_resistance() == pytest.approx(50.0, rel=0.25)

    def test_transmission_gate_resistance_flatness(self, design):
        tg = TransmissionGate.sized_for_load(3.3e3, technology=design.technology)
        # A TG stays usable across the signal range; a single NMOS of similar
        # mid-rail resistance blows up towards the top rail.
        assert tg.resistance_flatness() < 3.5
        mid = tg.on_resistance()
        assert tg.on_resistance(0.15) < 10.0 * mid
        assert tg.on_resistance(1.05) < 10.0 * mid

    def test_transmission_gate_sizing_hits_target(self, design):
        tg = TransmissionGate.sized_for_load(3.3e3, technology=design.technology)
        assert tg.on_resistance() == pytest.approx(3.3e3, rel=0.3)

    def test_transmission_gate_off_state(self, design):
        tg = TransmissionGate.sized_for_load(3.3e3, technology=design.technology)
        assert tg.state(False) is SwitchState.OFF
        assert math.isinf(tg.resistance(False))

    def test_rejects_bad_dimensions(self, design):
        with pytest.raises(ValueError):
            TransmissionGate(nmos_width=0.0, pmos_width=1e-6, length=65e-9)


class TestTransconductanceAmplifier:
    def test_sizing_hits_target_gm(self, design):
        tca = TransconductanceAmplifier(design)
        assert tca.raw_gm == pytest.approx(design.tca_gm, rel=0.02)

    def test_bias_point_is_in_saturation_at_design_current(self, design):
        tca = TransconductanceAmplifier(design)
        point = tca.bias_point
        assert point.id == pytest.approx(design.tca_bias_current / 2.0, rel=1e-3)
        assert point.vov > 0.05

    def test_degeneration_reduces_effective_gm(self, design):
        plain = TransconductanceAmplifier(design)
        degenerated = TransconductanceAmplifier(design, degeneration_resistance=50.0)
        expected = plain.raw_gm / (1.0 + plain.raw_gm * 50.0)
        assert degenerated.effective_gm == pytest.approx(expected, rel=0.01)
        assert degenerated.effective_gm < plain.effective_gm

    def test_gain_tuning_through_bias_voltage(self, design):
        tca = TransconductanceAmplifier(design)
        nominal = tca.bias_point.vgs
        assert tca.gm_for_bias_voltage(nominal + 0.1) > tca.gm_for_bias_voltage(nominal)
        assert tca.gm_for_bias_voltage(0.1) == 0.0

    def test_taylor_coefficients_signs(self, design):
        coefficients = TransconductanceAmplifier(design).taylor_coefficients()
        assert coefficients.g1 > 0.0          # transconductance
        assert coefficients.g2 > 0.0          # square-law curvature
        assert coefficients.g3 < 0.0          # compressive (mobility degradation)
        assert coefficients.iip3_dbm() > 0.0  # a bare gm stage is quite linear

    def test_iip3_finite_and_reasonable(self, design):
        iip3 = TransconductanceAmplifier(design).iip3_dbm()
        assert 0.0 < iip3 < 25.0

    def test_noise_sources_and_flicker_corner(self, design):
        tca = TransconductanceAmplifier(design)
        thermal, flicker = tca.input_noise_sources()
        assert thermal.voltage_psd(1e6) > 0.0
        assert flicker.voltage_psd(1e3) > flicker.voltage_psd(1e6)
        assert tca.flicker_corner() > 0.0

    def test_band_response_shape(self, design):
        tca = TransconductanceAmplifier(design)
        coupling = design.coupling_capacitance_active
        node_r = design.band_node_resistance_active
        low, high = tca.band_edges(coupling, node_r)
        assert low < high
        mid = math.sqrt(low * high)
        assert tca.band_response(mid, coupling, node_r) > 0.85
        assert tca.band_response(low / 10.0, coupling, node_r) < 0.2
        assert tca.band_response(high * 4.0, coupling, node_r) < 0.2

    def test_rejects_negative_degeneration(self, design):
        with pytest.raises(ValueError):
            TransconductanceAmplifier(design, degeneration_resistance=-1.0)


class TestSwitchingQuad:
    def test_conversion_factor_is_two_over_pi(self, design):
        quad = SwitchingQuad(design)
        assert quad.conversion_factor == pytest.approx(2.0 / math.pi)
        assert quad.conversion_loss_db() == pytest.approx(3.92, abs=0.05)

    def test_switch_on_resistance_reasonable(self, design):
        quad = SwitchingQuad(design)
        assert 5.0 < quad.switch_on_resistance < 200.0

    def test_commutation_produces_if_and_image(self, design):
        fs, n = 10.24e9, 10240
        quad = SwitchingQuad(design, LoDrive(frequency=2.4e9))
        times = sample_times(fs, n)
        rf = sine_wave(2.405e9, 0.1, times)
        spectrum = Spectrum(quad.commutate(rf, times), fs)
        if_power = spectrum.power_dbm_at(5e6)
        rf_feedthrough = spectrum.power_dbm_at(2.405e9)
        # IF tone at 2/pi of the input amplitude; dBm(vpeak) = 20log10(v) + 10
        # in a 50 ohm reference.
        expected_if = 20.0 * math.log10(0.1 * 2.0 / math.pi) + 10.0
        assert if_power == pytest.approx(expected_if, abs=0.2)
        assert if_power > rf_feedthrough + 30.0

    def test_commutation_rejects_too_low_sample_rate(self, design):
        quad = SwitchingQuad(design, LoDrive(frequency=2.4e9))
        times = sample_times(1e9, 1024)  # Nyquist below the LO
        with pytest.raises(ValueError):
            quad.commutate(np.zeros_like(times), times)

    def test_mode_dependent_noise_and_flicker(self, design):
        quad = SwitchingQuad(design)
        assert quad.noise_excess_factor(MixerMode.ACTIVE) > \
            quad.noise_excess_factor(MixerMode.PASSIVE)
        assert quad.flicker_corner(MixerMode.PASSIVE) < 100e3
        assert quad.flicker_corner(MixerMode.ACTIVE) > \
            quad.flicker_corner(MixerMode.PASSIVE)

    def test_mode_dependent_linearity(self, design):
        quad = SwitchingQuad(design)
        assert math.isinf(quad.iip3_dbm(MixerMode.ACTIVE))
        assert math.isfinite(quad.iip3_dbm(MixerMode.PASSIVE))


class TestTIA:
    def test_ota_open_loop_gain_rolloff(self, design):
        ota = TwoStageOTA.from_design(design)
        assert ota.open_loop_gain_db(1e3) == pytest.approx(design.ota_dc_gain_db,
                                                           abs=0.1)
        assert abs(ota.open_loop_gain(ota.gain_bandwidth)) == pytest.approx(1.0,
                                                                            rel=0.05)
        assert ota.phase_margin_degrees() == pytest.approx(90.0)
        assert ota.phase_margin_degrees(load_pole=ota.gain_bandwidth) == \
            pytest.approx(45.0)

    def test_equation_4_input_impedance(self, design):
        tia = TransimpedanceAmplifier(design)
        r_f, c_f = design.feedback_resistance, design.feedback_capacitance
        frequency = 1e6
        a = abs(tia.ota.open_loop_gain(frequency))
        expected = abs((2.0 / a) * r_f /
                       (1.0 + 1j * 2.0 * math.pi * frequency * r_f * c_f))
        assert abs(tia.input_impedance(frequency)) == pytest.approx(expected,
                                                                    rel=1e-9)
        # Virtual ground: far below R_F.
        assert abs(tia.input_impedance(1e6)) < r_f / 50.0

    def test_transimpedance_close_to_feedback_impedance(self, design):
        tia = TransimpedanceAmplifier(design)
        assert abs(tia.transimpedance(1e6)) == pytest.approx(
            abs(tia.feedback_impedance(1e6)), rel=0.05)

    def test_if_bandwidth_from_rfcf(self, design):
        tia = TransimpedanceAmplifier(design)
        expected = 1.0 / (2.0 * math.pi * design.feedback_resistance
                          * design.feedback_capacitance)
        assert tia.if_bandwidth == pytest.approx(expected)

    def test_tia_enabled_only_in_passive_mode(self, design):
        tia = TransimpedanceAmplifier(design)
        assert tia.enabled_in_mode(MixerMode.PASSIVE)
        assert not tia.enabled_in_mode(MixerMode.ACTIVE)
        assert tia.power_mw == pytest.approx(3.3 * 1.2, rel=1e-6)

    def test_gain_tuning_range(self, design):
        tia = TransimpedanceAmplifier(design)
        assert tia.gain_tuning_range_db(0.5, 2.0) == pytest.approx(12.04, abs=0.1)

    def test_output_noise_positive(self, design):
        assert TransimpedanceAmplifier(design).output_noise_density(1e6) > 0.0


class TestLoadAndPower:
    def test_load_bandwidth_and_impedance(self, design):
        load = TransmissionGateLoad(design)
        expected_bw = 1.0 / (2.0 * math.pi * design.load_resistance
                             * design.load_capacitance)
        assert load.if_bandwidth == pytest.approx(expected_bw)
        assert abs(load.impedance(0.0)) == pytest.approx(design.load_resistance)
        assert abs(load.impedance(10 * expected_bw)) < design.load_resistance / 5.0

    def test_realised_transmission_gate_close_to_design_value(self, design):
        load = TransmissionGateLoad(design)
        assert load.realised_resistance == pytest.approx(design.load_resistance,
                                                         rel=0.3)

    def test_gain_step(self, design):
        load = TransmissionGateLoad(design)
        assert load.gain_step_db(2.0) == pytest.approx(6.02, abs=0.01)

    def test_output_intercept_scales_with_supply(self, design):
        load = TransmissionGateLoad(design)
        assert load.output_intercept_vpeak() == pytest.approx(
            design.active_output_ip3_factor * design.vdd)

    def test_power_budget_matches_paper(self, design):
        budget = PowerBudget(design)
        assert budget.total_mw(MixerMode.ACTIVE) == pytest.approx(9.36, abs=0.01)
        assert budget.total_mw(MixerMode.PASSIVE) == pytest.approx(9.24, abs=0.01)
        assert budget.tia_power_mw() == pytest.approx(3.96, abs=0.01)
        assert budget.saving_when_active_mw() == pytest.approx(3.96, abs=0.01)

    def test_power_breakdown_branches(self, design):
        budget = PowerBudget(design)
        active = budget.breakdown(MixerMode.ACTIVE)
        passive = budget.breakdown(MixerMode.PASSIVE)
        assert active.tia_a == 0.0
        assert passive.gilbert_core_a == 0.0
        assert active.total_current_a == pytest.approx(7.8e-3, rel=1e-6)
        assert passive.total_current_a == pytest.approx(7.7e-3, rel=1e-6)
        assert len(active.as_rows()) == 4
