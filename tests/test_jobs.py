"""Tests for the async job manager and the progress-reporting channel.

The serve-layer HTTP tests (``tests/test_serve.py``) cover the endpoints;
this module covers the machinery underneath: :mod:`repro.api.progress`
scoping semantics, :class:`repro.serve.jobs.JobManager` lifecycle /
backpressure / failure classification, the locked
:meth:`ResponseCache.stats` snapshot, and shared process-pool reuse in the
sweep engine.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.api import MixerService, SpecRequest, progress_scope
from repro.api.progress import current_callback, report_progress
from repro.api.request import RequestValidationError
from repro.api.response_cache import ResponseCache
from repro.serve.jobs import (
    JOB_DONE,
    JOB_FAILED,
    JobManager,
    JobQueueFullError,
)

from api_test_helpers import echo_registry, open_gate

#: Generous bound for job completion in tests; real runs take milliseconds.
WAIT_S = 30.0


@pytest.fixture()
def manager():
    manager = JobManager(MixerService(registry=echo_registry()),
                         workers=2, queue_limit=4)
    yield manager
    manager.shutdown()


def echo(value: float, **grid) -> SpecRequest:
    return SpecRequest(experiment="echo", grid={"value": value, **grid})


class TestProgressScope:
    def test_noop_without_scope(self):
        assert current_callback() is None
        report_progress(anything=1)  # must not raise

    def test_scope_routes_and_restores(self):
        seen: list[dict] = []
        with progress_scope(seen.append):
            report_progress(step=1)
            report_progress(step=2, extra="x")
        report_progress(step=3)  # after the scope: dropped
        assert seen == [{"step": 1}, {"step": 2, "extra": "x"}]
        assert current_callback() is None

    def test_nested_scope_shadows_outer(self):
        outer: list[dict] = []
        inner: list[dict] = []
        with progress_scope(outer.append):
            report_progress(level="outer")
            with progress_scope(inner.append):
                report_progress(level="inner")
            report_progress(level="outer-again")
        assert [f["level"] for f in outer] == ["outer", "outer-again"]
        assert [f["level"] for f in inner] == ["inner"]

    def test_observer_errors_are_swallowed(self):
        def bad(_fields: dict) -> None:
            raise ValueError("observer bug")

        with progress_scope(bad):
            report_progress(step=1)  # must not raise

    def test_scopes_are_per_thread(self):
        seen: list[dict] = []
        leaked: list[dict] = []

        def other_thread() -> None:
            with progress_scope(leaked.append):
                time.sleep(0.05)

        thread = threading.Thread(target=other_thread)
        with progress_scope(seen.append):
            thread.start()
            report_progress(mine=True)
            thread.join()
        assert seen == [{"mine": True}]
        assert leaked == []


class TestJobLifecycle:
    def test_submit_wait_done_result_matches_sync(self, manager):
        job = manager.submit(echo(2.5))
        manager.wait(job, timeout=WAIT_S)
        assert job.state == JOB_DONE
        expected = manager.service.submit(echo(2.5)).to_dict()
        assert job.result["result"] == expected["result"]
        assert job.result["result_schema"] == "EchoResult"

    def test_describe_shape(self, manager):
        job = manager.submit(echo(1.25))
        manager.wait(job, timeout=WAIT_S)
        payload = job.describe()
        assert payload["state"] == JOB_DONE
        assert payload["kind"] == "spec"
        assert payload["experiments"] == ["echo"]
        assert payload["queued_s"] >= 0.0
        assert payload["running_s"] >= 0.0
        assert payload["result"]["result"]["fields"]["value"] == 1.25
        summary = job.describe(include_result=False)
        assert "result" not in summary

    def test_batch_job_preserves_order(self, manager):
        job = manager.submit_batch([echo(float(v)).to_dict()
                                    for v in (3.0, 1.0, 2.0)])
        manager.wait(job, timeout=WAIT_S)
        assert job.state == JOB_DONE
        values = [entry["result"]["fields"]["value"]
                  for entry in job.result["responses"]]
        assert values == [3.0, 1.0, 2.0]

    def test_malformed_submit_is_synchronous_validation_error(self, manager):
        with pytest.raises(RequestValidationError):
            manager.submit({"no_experiment": True})
        with pytest.raises(RequestValidationError):
            manager.submit_batch("not-a-list")
        assert manager.stats()["submitted"] == 0

    def test_unknown_experiment_fails_as_validation(self, manager):
        job = manager.submit({"experiment": "fig99"})
        manager.wait(job, timeout=WAIT_S)
        assert job.state == JOB_FAILED
        assert job.error_kind == "validation"
        assert "unknown experiment" in job.error

    def test_runner_exception_fails_as_internal(self, manager):
        job = manager.submit(echo(1.0, fail=True))
        manager.wait(job, timeout=WAIT_S)
        assert job.state == JOB_FAILED
        assert job.error_kind == "internal"
        assert "injected runner failure" in job.error

    def test_progress_visible_while_running(self, manager):
        gate = open_gate("jobs-progress")
        job = manager.submit(echo(4.0, gate="jobs-progress"))
        deadline = time.monotonic() + WAIT_S
        while not job.progress and time.monotonic() < deadline:
            time.sleep(0.005)
        try:
            assert job.state == "running"
            assert job.progress["stage"] == "echo"
            assert job.progress["gate"] == "jobs-progress"
            assert job.result is None
        finally:
            gate.set()
        manager.wait(job, timeout=WAIT_S)
        assert job.state == JOB_DONE
        # The last progress snapshot survives completion for late pollers.
        assert job.progress["checkpoint"] == 1


class TestBackpressure:
    def test_queue_bound_sheds_with_error(self):
        manager = JobManager(MixerService(registry=echo_registry()),
                             workers=1, queue_limit=2)
        gate = open_gate("jobs-shed")
        try:
            running = manager.submit(echo(1.0, gate="jobs-shed"))
            deadline = time.monotonic() + WAIT_S
            while running.state != "running" \
                    and time.monotonic() < deadline:
                time.sleep(0.005)
            queued = [manager.submit(echo(float(i))) for i in (2, 3)]
            with pytest.raises(JobQueueFullError):
                manager.submit(echo(9.0))
            stats = manager.stats()
            assert stats["shed"] == 1
            assert stats["queued"] == 2
            assert stats["running"] == 1
        finally:
            gate.set()
        for job in [running, *queued]:
            manager.wait(job, timeout=WAIT_S)
            assert job.state == JOB_DONE
        manager.shutdown()

    def test_finished_jobs_evicted_past_history_limit(self):
        manager = JobManager(MixerService(registry=echo_registry()),
                             workers=1, queue_limit=8, history_limit=2)
        jobs = []
        for value in range(5):
            job = manager.submit(echo(float(value)))
            manager.wait(job, timeout=WAIT_S)
            jobs.append(job)
        # Eviction happens on submit; one more pushes the oldest out.
        trigger = manager.submit(echo(99.0))
        manager.wait(trigger, timeout=WAIT_S)
        with pytest.raises(KeyError):
            manager.get(jobs[0].id)
        assert manager.get(trigger.id) is trigger
        manager.shutdown()


class TestYieldOptProgress:
    def test_iteration_history_streams(self):
        from repro.optimize import run_yield_opt
        from api_test_helpers import ACTIVE_TARGETS

        seen: list[dict] = []
        with progress_scope(seen.append):
            result = run_yield_opt(population=2, iterations=2, num_samples=2,
                                   targets=ACTIVE_TARGETS)
        iteration_frames = [f for f in seen if f.get("stage") == "yield_opt"]
        assert [f["iteration"] for f in iteration_frames] == [1, 2]
        assert [len(f["history"]) for f in iteration_frames] == [1, 2]
        # The streamed history is exactly the result's history, as it grew.
        assert iteration_frames[-1]["history"] == list(result.history)
        assert iteration_frames[-1]["best_yield"] == result.best_yield


class TestResponseCacheStats:
    def test_stats_snapshot_counts(self, tmp_path):
        cache = ResponseCache(tmp_path, lru_size=4)
        entry = {"request_key": "k1", "payload": 1}
        assert cache.load("k1") is None
        cache.store("k1", entry)
        assert cache.load("k1") == (entry, "memory")
        cache.clear_memory()
        assert cache.load("k1") == (entry, "disk")
        stats = cache.stats()
        assert stats == {
            "memory_entries": 1,
            "lru_size": 4,
            "disk_tier": True,
            "memory_hits": 1,
            "disk_hits": 1,
            "misses": 1,
            "stores": 1,
            "corrupt": 0,
            "hit_rate": 2 / 3,
        }

    def test_memory_size_and_stats_under_concurrent_traffic(self):
        cache = ResponseCache(lru_size=8)
        stop = threading.Event()

        def writer() -> None:
            index = 0
            while not stop.is_set():
                key = f"k{index % 16}"
                cache.store(key, {"request_key": key})
                cache.load(key)
                index += 1

        threads = [threading.Thread(target=writer) for _ in range(4)]
        for thread in threads:
            thread.start()
        try:
            for _ in range(200):
                assert 0 <= cache.memory_size <= 8
                stats = cache.stats()
                assert stats["memory_entries"] <= 8
                assert stats["hit_rate"] <= 1.0
        finally:
            stop.set()
            for thread in threads:
                thread.join()


class TestSharedPools:
    def test_reuse_is_bit_identical_and_reuses_executor(self):
        import numpy as np
        from repro.sweep.parallel import (
            ParallelSweepRunner,
            pool_reuse_enabled,
            set_pool_reuse,
            shared_executor,
            shutdown_shared_pools,
        )
        from repro.core.config import MixerDesign

        designs = {"a": MixerDesign(),
                   "b": MixerDesign().with_gain_setting(1.05)}
        runner = ParallelSweepRunner(workers=2, cache=False)
        baseline = runner.run(rf_frequencies=[2.4e9], designs=designs)
        assert not pool_reuse_enabled()
        set_pool_reuse(True)
        try:
            first_pool = shared_executor(2)
            shared = runner.run(rf_frequencies=[2.4e9], designs=designs)
            assert shared_executor(2) is first_pool  # reused, not respawned
            for spec in baseline.spec_names:
                np.testing.assert_array_equal(shared.data[spec],
                                              baseline.data[spec])
        finally:
            set_pool_reuse(False)
            shutdown_shared_pools()
