"""Tests for the async job manager and the progress-reporting channel.

The serve-layer HTTP tests (``tests/test_serve.py``) cover the endpoints;
this module covers the machinery underneath: :mod:`repro.api.progress`
scoping semantics, :class:`repro.serve.jobs.JobManager` lifecycle /
backpressure / failure classification, the locked
:meth:`ResponseCache.stats` snapshot, and shared process-pool reuse in the
sweep engine.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.api import MixerService, SpecRequest, progress_scope
from repro.api.progress import current_callback, report_progress
from repro.api.request import RequestValidationError
from repro.api.response_cache import ResponseCache
from repro.serve.jobs import (
    JOB_DONE,
    JOB_FAILED,
    JobManager,
    JobQueueFullError,
)

from repro.core.config import MixerDesign

from api_test_helpers import CALLS, echo_registry, open_gate

#: Generous bound for job completion in tests; real runs take milliseconds.
WAIT_S = 30.0


@pytest.fixture()
def manager():
    manager = JobManager(MixerService(registry=echo_registry()),
                         workers=2, queue_limit=4)
    yield manager
    manager.shutdown()


def echo(value: float, **grid) -> SpecRequest:
    return SpecRequest(experiment="echo", grid={"value": value, **grid})


class TestProgressScope:
    def test_noop_without_scope(self):
        assert current_callback() is None
        report_progress(anything=1)  # must not raise

    def test_scope_routes_and_restores(self):
        seen: list[dict] = []
        with progress_scope(seen.append):
            report_progress(step=1)
            report_progress(step=2, extra="x")
        report_progress(step=3)  # after the scope: dropped
        assert seen == [{"step": 1}, {"step": 2, "extra": "x"}]
        assert current_callback() is None

    def test_nested_scope_shadows_outer(self):
        outer: list[dict] = []
        inner: list[dict] = []
        with progress_scope(outer.append):
            report_progress(level="outer")
            with progress_scope(inner.append):
                report_progress(level="inner")
            report_progress(level="outer-again")
        assert [f["level"] for f in outer] == ["outer", "outer-again"]
        assert [f["level"] for f in inner] == ["inner"]

    def test_observer_errors_are_swallowed(self):
        def bad(_fields: dict) -> None:
            raise ValueError("observer bug")

        with progress_scope(bad):
            report_progress(step=1)  # must not raise

    def test_scopes_are_per_thread(self):
        seen: list[dict] = []
        leaked: list[dict] = []

        def other_thread() -> None:
            with progress_scope(leaked.append):
                time.sleep(0.05)

        thread = threading.Thread(target=other_thread)
        with progress_scope(seen.append):
            thread.start()
            report_progress(mine=True)
            thread.join()
        assert seen == [{"mine": True}]
        assert leaked == []


class TestJobLifecycle:
    def test_submit_wait_done_result_matches_sync(self, manager):
        job = manager.submit(echo(2.5))
        manager.wait(job, timeout=WAIT_S)
        assert job.state == JOB_DONE
        expected = manager.service.submit(echo(2.5)).to_dict()
        assert job.result["result"] == expected["result"]
        assert job.result["result_schema"] == "EchoResult"

    def test_describe_shape(self, manager):
        job = manager.submit(echo(1.25))
        manager.wait(job, timeout=WAIT_S)
        payload = job.describe()
        assert payload["state"] == JOB_DONE
        assert payload["kind"] == "spec"
        assert payload["experiments"] == ["echo"]
        assert payload["queued_s"] >= 0.0
        assert payload["running_s"] >= 0.0
        assert payload["result"]["result"]["fields"]["value"] == 1.25
        summary = job.describe(include_result=False)
        assert "result" not in summary

    def test_batch_job_preserves_order(self, manager):
        job = manager.submit_batch([echo(float(v)).to_dict()
                                    for v in (3.0, 1.0, 2.0)])
        manager.wait(job, timeout=WAIT_S)
        assert job.state == JOB_DONE
        values = [entry["result"]["fields"]["value"]
                  for entry in job.result["responses"]]
        assert values == [3.0, 1.0, 2.0]

    def test_malformed_submit_is_synchronous_validation_error(self, manager):
        with pytest.raises(RequestValidationError):
            manager.submit({"no_experiment": True})
        with pytest.raises(RequestValidationError):
            manager.submit_batch("not-a-list")
        assert manager.stats()["submitted"] == 0

    def test_unknown_experiment_fails_as_validation(self, manager):
        job = manager.submit({"experiment": "fig99"})
        manager.wait(job, timeout=WAIT_S)
        assert job.state == JOB_FAILED
        assert job.error_kind == "validation"
        assert "unknown experiment" in job.error

    def test_runner_exception_fails_as_internal(self, manager):
        job = manager.submit(echo(1.0, fail=True))
        manager.wait(job, timeout=WAIT_S)
        assert job.state == JOB_FAILED
        assert job.error_kind == "internal"
        assert "injected runner failure" in job.error

    def test_progress_visible_while_running(self, manager):
        gate = open_gate("jobs-progress")
        job = manager.submit(echo(4.0, gate="jobs-progress"))
        deadline = time.monotonic() + WAIT_S
        while not job.progress and time.monotonic() < deadline:
            time.sleep(0.005)
        try:
            assert job.state == "running"
            assert job.progress["stage"] == "echo"
            assert job.progress["gate"] == "jobs-progress"
            assert job.result is None
        finally:
            gate.set()
        manager.wait(job, timeout=WAIT_S)
        assert job.state == JOB_DONE
        # The last progress snapshot survives completion for late pollers.
        assert job.progress["checkpoint"] == 1


class TestBackpressure:
    def test_queue_bound_sheds_with_error(self):
        manager = JobManager(MixerService(registry=echo_registry()),
                             workers=1, queue_limit=2)
        gate = open_gate("jobs-shed")
        try:
            running = manager.submit(echo(1.0, gate="jobs-shed"))
            deadline = time.monotonic() + WAIT_S
            while running.state != "running" \
                    and time.monotonic() < deadline:
                time.sleep(0.005)
            queued = [manager.submit(echo(float(i))) for i in (2, 3)]
            with pytest.raises(JobQueueFullError):
                manager.submit(echo(9.0))
            stats = manager.stats()
            assert stats["shed"] == 1
            assert stats["queued"] == 2
            assert stats["running"] == 1
        finally:
            gate.set()
        for job in [running, *queued]:
            manager.wait(job, timeout=WAIT_S)
            assert job.state == JOB_DONE
        manager.shutdown()

    def test_finished_jobs_evicted_past_history_limit(self):
        manager = JobManager(MixerService(registry=echo_registry()),
                             workers=1, queue_limit=8, history_limit=2)
        jobs = []
        for value in range(5):
            job = manager.submit(echo(float(value)))
            manager.wait(job, timeout=WAIT_S)
            jobs.append(job)
        # Eviction happens on submit; one more pushes the oldest out.
        trigger = manager.submit(echo(99.0))
        manager.wait(trigger, timeout=WAIT_S)
        with pytest.raises(KeyError):
            manager.get(jobs[0].id)
        assert manager.get(trigger.id) is trigger
        manager.shutdown()


def batch_echo_request(value: float = 1.0, design: MixerDesign | None = None,
                       **grid) -> SpecRequest:
    return SpecRequest(experiment="echo_batch",
                       design=design if design is not None else MixerDesign(),
                       grid={"value": value, **grid})


def _distinct_designs(count: int) -> list[MixerDesign]:
    return [MixerDesign().with_gain_setting(1.0 + 0.002 * i)
            for i in range(count)]


def _wait_running(job, deadline_s: float = WAIT_S) -> None:
    deadline = time.monotonic() + deadline_s
    while job.state != "running" and time.monotonic() < deadline:
        time.sleep(0.002)
    assert job.state == "running"


class TestCoalescing:
    """The micro-batching drain: what merges, what never does.

    Every test parks the single worker on a gated job first, queues the
    jobs under test while the worker is busy, then releases the gate — so
    the drain always sees the full candidate set and the outcome is
    deterministic, not a race against the coalesce window.
    """

    def _manager(self, **kwargs) -> JobManager:
        kwargs.setdefault("workers", 1)
        kwargs.setdefault("queue_limit", 16)
        return JobManager(
            MixerService(registry=echo_registry(), response_cache=False),
            **kwargs)

    def test_compatible_jobs_merge_into_one_batch_call(self):
        manager = self._manager(coalesce_window_ms=200.0, max_coalesce=3)
        gate = open_gate("coalesce-merge")
        CALLS.clear()
        try:
            blocker = manager.submit(echo(9.0, gate="coalesce-merge"))
            _wait_running(blocker)
            jobs = [manager.submit(batch_echo_request(design=design))
                    for design in _distinct_designs(3)]
            gate.set()
            for job in [blocker, *jobs]:
                manager.wait(job, timeout=WAIT_S)
                assert job.state == JOB_DONE
            # One engine call answered all three jobs: the blocker ran the
            # solo runner once, the merged group ran the batch runner once
            # (which evaluates its three designs through the same runner).
            assert CALLS["batch"] == 1
            assert CALLS["run"] == 4
            labels = [job.result["result"]["fields"]["label"]
                      for job in jobs]
            assert len(set(labels)) == 3  # each job got its own design back
            coalesce = manager.stats()["coalesce"]
            assert coalesce["enabled"] is True
            assert coalesce["coalesced_batches"] == 1
            assert coalesce["coalesced_jobs"] == 3
            assert coalesce["singleflight_hits"] == 0
        finally:
            gate.set()
            manager.shutdown()

    def test_merged_responses_match_solo_submits(self):
        designs = _distinct_designs(3)
        solo = MixerService(registry=echo_registry(), response_cache=False)
        expected = [solo.submit(batch_echo_request(design=design)).to_dict()
                    for design in designs]
        manager = self._manager(coalesce_window_ms=200.0, max_coalesce=3)
        gate = open_gate("coalesce-identity")
        try:
            blocker = manager.submit(echo(9.0, gate="coalesce-identity"))
            _wait_running(blocker)
            jobs = [manager.submit(batch_echo_request(design=design))
                    for design in designs]
            gate.set()
            for job, want in zip(jobs, expected):
                manager.wait(job, timeout=WAIT_S)
                got = dict(job.result)
                # Wall-clock timing is the only field allowed to differ.
                got.pop("elapsed_s"), want.pop("elapsed_s")
                assert got == want
        finally:
            gate.set()
            manager.shutdown()

    def test_incompatible_grids_never_merge(self):
        manager = self._manager(coalesce_window_ms=50.0)
        gate = open_gate("coalesce-grids")
        CALLS.clear()
        try:
            blocker = manager.submit(echo(9.0, gate="coalesce-grids"))
            _wait_running(blocker)
            designs = _distinct_designs(2)
            jobs = [manager.submit(batch_echo_request(1.0, designs[0])),
                    manager.submit(batch_echo_request(2.0, designs[1]))]
            gate.set()
            for job in jobs:
                manager.wait(job, timeout=WAIT_S)
                assert job.state == JOB_DONE
            assert CALLS["batch"] == 0  # two solo runs, no group formed
            assert manager.stats()["coalesce"]["coalesced_batches"] == 0
        finally:
            gate.set()
            manager.shutdown()

    def test_incompatible_options_never_merge(self):
        manager = self._manager(coalesce_window_ms=50.0)
        gate = open_gate("coalesce-options")
        CALLS.clear()
        try:
            blocker = manager.submit(echo(9.0, gate="coalesce-options"))
            _wait_running(blocker)
            designs = _distinct_designs(2)
            # Same experiment, same grid — but one pins workers=2, so the
            # execution-option identity differs and the jobs must not merge.
            jobs = [manager.submit(SpecRequest(experiment="echo_opts",
                                               design=designs[0],
                                               grid={"value": 1.0})),
                    manager.submit(SpecRequest(experiment="echo_opts",
                                               design=designs[1],
                                               grid={"value": 1.0},
                                               workers=2))]
            gate.set()
            for job in jobs:
                manager.wait(job, timeout=WAIT_S)
                assert job.state == JOB_DONE
            assert CALLS["batch"] == 0
            assert manager.stats()["coalesce"]["coalesced_batches"] == 0
        finally:
            gate.set()
            manager.shutdown()

    def test_window_zero_disables_coalescing_and_singleflight(self):
        manager = self._manager()  # default window: 0
        gate = open_gate("coalesce-off")
        CALLS.clear()
        try:
            blocker = manager.submit(echo(9.0, gate="coalesce-off"))
            _wait_running(blocker)
            jobs = [manager.submit(echo(5.0)) for _ in range(2)]
            gate.set()
            for job in jobs:
                manager.wait(job, timeout=WAIT_S)
                assert job.state == JOB_DONE
            # Identical jobs, but with the window at 0 each pays its own
            # engine run — exactly the pre-coalescing behaviour.
            assert CALLS["run"] == 3
            coalesce = manager.stats()["coalesce"]
            assert coalesce["enabled"] is False
            assert coalesce["singleflight_hits"] == 0
            assert coalesce["coalesced_batches"] == 0
        finally:
            gate.set()
            manager.shutdown()

    def test_progress_channels_stay_per_job(self):
        manager = self._manager(coalesce_window_ms=200.0, max_coalesce=2)
        lead_gate = open_gate("coalesce-lead")
        run_gate = open_gate("coalesce-progress")
        try:
            blocker = manager.submit(echo(9.0, gate="coalesce-lead"))
            _wait_running(blocker)
            designs = _distinct_designs(2)
            jobs = [manager.submit(batch_echo_request(
                        design=design, gate="coalesce-progress"))
                    for design in designs]
            lead_gate.set()
            deadline = time.monotonic() + WAIT_S
            while not all(job.progress for job in jobs) \
                    and time.monotonic() < deadline:
                time.sleep(0.002)
            # The merged run broadcast its frames into each job's own
            # private progress dict, observable per job id.
            for job in jobs:
                assert job.progress["stage"] == "echo"
            assert jobs[0].progress is not jobs[1].progress
            run_gate.set()
            labels = set()
            for job in jobs:
                manager.wait(job, timeout=WAIT_S)
                assert job.state == JOB_DONE
                labels.add(job.result["result"]["fields"]["label"])
            assert len(labels) == 2
        finally:
            lead_gate.set()
            run_gate.set()
            manager.shutdown()


class TestSingleflight:
    def _manager(self, response_cache=False, **kwargs) -> JobManager:
        kwargs.setdefault("workers", 1)
        kwargs.setdefault("queue_limit", 16)
        kwargs.setdefault("coalesce_window_ms", 50.0)
        return JobManager(
            MixerService(registry=echo_registry(),
                         response_cache=response_cache),
            **kwargs)

    def test_identical_burst_executes_engine_once(self):
        manager = self._manager()
        gate = open_gate("sf-burst")
        CALLS.clear()
        try:
            blocker = manager.submit(echo(9.0, gate="sf-burst"))
            _wait_running(blocker)
            jobs = [manager.submit(echo(5.0)) for _ in range(4)]
            gate.set()
            for job in jobs:
                manager.wait(job, timeout=WAIT_S)
                assert job.state == JOB_DONE
            # Response cache is OFF: only singleflight can explain a single
            # engine run answering four identical jobs.
            assert CALLS["run"] == 2  # the blocker + one for the burst
            assert manager.stats()["coalesce"]["singleflight_hits"] == 3
            results = [job.result for job in jobs]
            for left, right in zip(results, results[1:]):
                assert left == right        # same payload content...
                assert left is not right    # ...own object per waiter
        finally:
            gate.set()
            manager.shutdown()

    def test_late_identical_arrival_parks_on_inflight_leader(self):
        manager = self._manager(workers=2)
        gate = open_gate("sf-inflight")
        CALLS.clear()
        try:
            leader = manager.submit(echo(5.0, gate="sf-inflight"))
            # Wait for the runner's progress frame, not just state=running:
            # the frame proves the drain window closed and the leader is
            # executing (and therefore registered as in-flight).
            deadline = time.monotonic() + WAIT_S
            while not leader.progress and time.monotonic() < deadline:
                time.sleep(0.002)
            assert leader.progress
            follower = manager.submit(echo(5.0, gate="sf-inflight"))
            deadline = time.monotonic() + WAIT_S
            while manager.stats()["coalesce"]["singleflight_hits"] < 1 \
                    and time.monotonic() < deadline:
                time.sleep(0.002)
            # The second worker dequeued the duplicate and parked it on the
            # running leader instead of starting a second engine run.
            assert manager.stats()["coalesce"]["singleflight_hits"] == 1
            gate.set()
            for job in (leader, follower):
                manager.wait(job, timeout=WAIT_S)
                assert job.state == JOB_DONE
            assert CALLS["run"] == 1
            assert follower.result == leader.result
        finally:
            gate.set()
            manager.shutdown()

    def test_failure_propagates_to_every_waiter(self):
        manager = self._manager()
        gate = open_gate("sf-fail")
        try:
            blocker = manager.submit(echo(9.0, gate="sf-fail"))
            _wait_running(blocker)
            jobs = [manager.submit(echo(5.0, fail=True)) for _ in range(3)]
            gate.set()
            for job in jobs:
                manager.wait(job, timeout=WAIT_S)
                assert job.state == JOB_FAILED
                assert job.error_kind == "internal"
                assert "injected runner failure" in job.error
        finally:
            gate.set()
            manager.shutdown()

    def test_cache_stores_one_entry_for_identical_burst(self):
        manager = self._manager(response_cache=None)  # memory LRU on
        gate = open_gate("sf-cache")
        try:
            blocker = manager.submit(echo(9.0, gate="sf-cache"))
            _wait_running(blocker)
            jobs = [manager.submit(echo(5.0)) for _ in range(4)]
            gate.set()
            for job in [blocker, *jobs]:
                manager.wait(job, timeout=WAIT_S)
                assert job.state == JOB_DONE
            # Exactly two stores: the blocker's own entry plus ONE entry
            # for the whole identical burst — the leader stored, the three
            # followers never touched the cache.
            assert manager.service.response_cache.stats()["stores"] == 2
        finally:
            gate.set()
            manager.shutdown()


class TestWaitTimeout:
    def test_timeout_reports_coherent_state(self):
        manager = JobManager(MixerService(registry=echo_registry()),
                             workers=1, queue_limit=4)
        gate = open_gate("wait-timeout")
        try:
            job = manager.submit(echo(1.0, gate="wait-timeout"))
            with pytest.raises(TimeoutError) as excinfo:
                manager.wait(job, timeout=0.05)
            message = str(excinfo.value)
            assert job.id in message
            assert ("queued" in message) or ("running" in message)
        finally:
            gate.set()
            manager.shutdown()


class TestYieldOptProgress:
    def test_iteration_history_streams(self):
        from repro.optimize import run_yield_opt
        from api_test_helpers import ACTIVE_TARGETS

        seen: list[dict] = []
        with progress_scope(seen.append):
            result = run_yield_opt(population=2, iterations=2, num_samples=2,
                                   targets=ACTIVE_TARGETS)
        iteration_frames = [f for f in seen if f.get("stage") == "yield_opt"]
        assert [f["iteration"] for f in iteration_frames] == [1, 2]
        assert [len(f["history"]) for f in iteration_frames] == [1, 2]
        # The streamed history is exactly the result's history, as it grew.
        assert iteration_frames[-1]["history"] == list(result.history)
        assert iteration_frames[-1]["best_yield"] == result.best_yield


class TestResponseCacheStats:
    def test_stats_snapshot_counts(self, tmp_path):
        cache = ResponseCache(tmp_path, lru_size=4)
        entry = {"request_key": "k1", "payload": 1}
        assert cache.load("k1") is None
        cache.store("k1", entry)
        assert cache.load("k1") == (entry, "memory")
        cache.clear_memory()
        assert cache.load("k1") == (entry, "disk")
        stats = cache.stats()
        assert stats == {
            "memory_entries": 1,
            "lru_size": 4,
            "disk_tier": True,
            "memory_hits": 1,
            "disk_hits": 1,
            "misses": 1,
            "stores": 1,
            "corrupt": 0,
            "hit_rate": 2 / 3,
        }

    def test_memory_size_and_stats_under_concurrent_traffic(self):
        cache = ResponseCache(lru_size=8)
        stop = threading.Event()

        def writer() -> None:
            index = 0
            while not stop.is_set():
                key = f"k{index % 16}"
                cache.store(key, {"request_key": key})
                cache.load(key)
                index += 1

        threads = [threading.Thread(target=writer) for _ in range(4)]
        for thread in threads:
            thread.start()
        try:
            for _ in range(200):
                assert 0 <= cache.memory_size <= 8
                stats = cache.stats()
                assert stats["memory_entries"] <= 8
                assert stats["hit_rate"] <= 1.0
        finally:
            stop.set()
            for thread in threads:
                thread.join()


class TestSharedPools:
    def test_reuse_is_bit_identical_and_reuses_executor(self):
        import numpy as np
        from repro.sweep.parallel import (
            ParallelSweepRunner,
            pool_reuse_enabled,
            set_pool_reuse,
            shared_executor,
            shutdown_shared_pools,
        )
        from repro.core.config import MixerDesign

        designs = {"a": MixerDesign(),
                   "b": MixerDesign().with_gain_setting(1.05)}
        runner = ParallelSweepRunner(workers=2, cache=False)
        baseline = runner.run(rf_frequencies=[2.4e9], designs=designs)
        assert not pool_reuse_enabled()
        set_pool_reuse(True)
        try:
            first_pool = shared_executor(2)
            shared = runner.run(rf_frequencies=[2.4e9], designs=designs)
            assert shared_executor(2) is first_pool  # reused, not respawned
            for spec in baseline.spec_names:
                np.testing.assert_array_equal(shared.data[spec],
                                              baseline.data[spec])
        finally:
            set_pool_reuse(False)
            shutdown_shared_pools()
