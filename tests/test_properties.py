"""Property-based tests (hypothesis) on the core substrates and invariants."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import units
from repro.circuit import (
    Circuit,
    CurrentSource,
    ResistorElement,
    VoltageSource,
    dc_operating_point,
)
from repro.devices.mosfet import Mosfet
from repro.rf.blocks import BehavioralBlock, cascade
from repro.rf.filters import FirstOrderLowPass
from repro.rf.noise_figure import (
    friis_cascade_nf,
    nf_with_flicker,
    noise_factor_from_figure,
)
from repro.rf.twotone import fit_intercept_point

# Keep hypothesis deadlines generous: some examples solve small circuits.
COMMON_SETTINGS = settings(max_examples=60, deadline=None)


class TestUnitProperties:
    @COMMON_SETTINGS
    @given(st.floats(min_value=-80.0, max_value=40.0))
    def test_dbm_vpeak_round_trip(self, dbm):
        assert float(units.dbm_from_vpeak(units.vpeak_from_dbm(dbm))) == \
            pytest.approx(dbm, abs=1e-9)

    @COMMON_SETTINGS
    @given(st.floats(min_value=1e-3, max_value=1e6),
           st.floats(min_value=1e-3, max_value=1e6))
    def test_parallel_is_smaller_than_either_and_commutative(self, a, b):
        p = units.parallel(a, b)
        assert p <= min(a, b) + 1e-12
        assert p == pytest.approx(units.parallel(b, a))

    @COMMON_SETTINGS
    @given(st.floats(min_value=-60.0, max_value=60.0))
    def test_db_round_trip(self, db):
        assert float(units.db_from_power_ratio(units.power_ratio_from_db(db))) == \
            pytest.approx(db, abs=1e-9)


class TestDeviceProperties:
    @COMMON_SETTINGS
    @given(vgs=st.floats(min_value=0.36, max_value=1.2),
           vds=st.floats(min_value=0.0, max_value=1.2))
    def test_current_and_gm_are_nonnegative(self, vgs, vds):
        device = Mosfet.nmos(20e-6, 100e-9)
        op = device.operating_point(vgs, vds)
        assert op.id >= 0.0
        assert op.gm >= 0.0
        assert op.gds >= 0.0

    @COMMON_SETTINGS
    @given(vds=st.floats(min_value=0.3, max_value=1.2),
           step=st.floats(min_value=0.01, max_value=0.3))
    def test_current_monotone_in_vgs(self, vds, step):
        device = Mosfet.nmos(20e-6, 100e-9)
        base = 0.4
        assert device.drain_current(base + step, vds) >= \
            device.drain_current(base, vds)

    @COMMON_SETTINGS
    @given(target=st.floats(min_value=1e-5, max_value=3e-3))
    def test_bias_solver_round_trip(self, target):
        device = Mosfet.nmos(40e-6, 100e-9)
        vgs = device.vgs_for_current(target, vds=0.6)
        assert device.drain_current(vgs, 0.6) == pytest.approx(target, rel=1e-3)


class TestCircuitProperties:
    @COMMON_SETTINGS
    @given(r1=st.floats(min_value=10.0, max_value=1e6),
           r2=st.floats(min_value=10.0, max_value=1e6),
           vin=st.floats(min_value=-5.0, max_value=5.0))
    def test_mna_solves_arbitrary_divider(self, r1, r2, vin):
        circuit = Circuit("divider")
        circuit.add(VoltageSource("v1", "in", "0", dc=vin))
        circuit.add(ResistorElement("r1", "in", "out", r1))
        circuit.add(ResistorElement("r2", "out", "0", r2))
        solution = dc_operating_point(circuit)
        assert solution.voltage("out") == pytest.approx(vin * r2 / (r1 + r2),
                                                        rel=1e-6, abs=1e-9)

    @COMMON_SETTINGS
    @given(current=st.floats(min_value=1e-6, max_value=1e-2),
           resistance=st.floats(min_value=10.0, max_value=1e5))
    def test_superposition_of_current_sources(self, current, resistance):
        def solve(i_a: float, i_b: float) -> float:
            circuit = Circuit("superposition")
            circuit.add(CurrentSource("ia", "0", "n", dc=i_a))
            circuit.add(CurrentSource("ib", "0", "n", dc=i_b))
            circuit.add(ResistorElement("r", "n", "0", resistance))
            return dc_operating_point(circuit).voltage("n")

        combined = solve(current, 2.0 * current)
        separate = solve(current, 0.0) + solve(0.0, 2.0 * current)
        assert combined == pytest.approx(separate, rel=1e-9, abs=1e-12)


class TestRFProperties:
    @COMMON_SETTINGS
    @given(nf=st.lists(st.floats(min_value=0.1, max_value=20.0), min_size=1,
                       max_size=5),
           gain=st.lists(st.floats(min_value=-5.0, max_value=30.0), min_size=1,
                         max_size=5))
    def test_friis_cascade_nf_at_least_first_stage_floor(self, nf, gain):
        n = min(len(nf), len(gain))
        nf, gain = nf[:n], gain[:n]
        total = friis_cascade_nf(nf, gain)
        # A cascade can never be quieter than its first stage.
        assert total >= nf[0] - 1e-9
        # And the corresponding factor is physical.
        assert noise_factor_from_figure(total) >= 1.0

    @COMMON_SETTINGS
    @given(white=st.floats(min_value=1.0, max_value=15.0),
           corner=st.floats(min_value=1e3, max_value=1e6),
           frequency=st.floats(min_value=1e3, max_value=1e8))
    def test_flicker_nf_never_below_white_floor(self, white, corner, frequency):
        assert nf_with_flicker(white, corner, frequency) >= white - 1e-9

    @COMMON_SETTINGS
    @given(gains=st.lists(st.floats(min_value=-10.0, max_value=25.0), min_size=1,
                          max_size=4))
    def test_cascade_gain_is_associative(self, gains):
        blocks = [BehavioralBlock(f"b{i}", gain_db=g, nf_db=3.0)
                  for i, g in enumerate(gains)]
        total = cascade(blocks)
        assert total.gain_db == pytest.approx(sum(gains), abs=1e-9)

    @COMMON_SETTINGS
    @given(gain=st.floats(min_value=0.0, max_value=30.0),
           iip3=st.floats(min_value=-20.0, max_value=20.0),
           offset=st.floats(min_value=5.0, max_value=30.0))
    def test_intercept_fit_recovers_synthetic_lines(self, gain, iip3, offset):
        p_in = np.linspace(iip3 - offset - 20.0, iip3 - offset, 12)
        fundamental = p_in + gain
        im3 = 3.0 * p_in + gain - 2.0 * iip3
        fit = fit_intercept_point(p_in, fundamental, im3)
        assert fit.intercept_input_dbm == pytest.approx(iip3, abs=0.05)

    @COMMON_SETTINGS
    @given(pole=st.floats(min_value=1e3, max_value=1e9),
           frequency=st.floats(min_value=1.0, max_value=1e10))
    def test_lowpass_magnitude_bounded_and_monotone(self, pole, frequency):
        lp = FirstOrderLowPass(dc_gain=1.0, pole_frequency=pole)
        magnitude = lp.magnitude(frequency)
        assert 0.0 < magnitude <= 1.0
        assert lp.magnitude(frequency * 2.0) <= magnitude + 1e-12


class TestMixerProperties:
    @COMMON_SETTINGS
    @given(scale=st.floats(min_value=0.25, max_value=4.0))
    def test_gain_setting_moves_gain_by_expected_db(self, scale, design):
        from repro.core.config import MixerMode
        from repro.core.reconfigurable_mixer import ReconfigurableMixer

        base = ReconfigurableMixer(design, MixerMode.ACTIVE).peak_conversion_gain_db()
        scaled = ReconfigurableMixer(design.with_gain_setting(scale),
                                     MixerMode.ACTIVE).peak_conversion_gain_db()
        assert scaled - base == pytest.approx(20.0 * math.log10(scale), abs=1e-6)

    @COMMON_SETTINGS
    @given(if_frequency=st.floats(min_value=1e4, max_value=5e7))
    def test_noise_figure_monotone_decreasing_with_if(self, if_frequency, design):
        from repro.core.config import MixerMode
        from repro.core.reconfigurable_mixer import ReconfigurableMixer

        mixer = ReconfigurableMixer(design, MixerMode.PASSIVE)
        assert mixer.noise_figure_db(if_frequency) >= \
            mixer.noise_figure_db(if_frequency * 2.0) - 1e-9
