"""Tests for the fixed-point digital-IF building blocks (:mod:`repro.digital`).

The acceptance bars, straight from the blocks' contract:

* every vectorized block is **bit-identical** to its per-sample reference
  twin (the RTL-simulation-loop implementations), including when registers
  genuinely overflow — exactness is the whole point of the integer model;
* the phase accumulator's closed form matches the iterative register
  transfer for arbitrary increments/widths (hypothesis-driven);
* clipping, guard-bit overflow and register wrap behave like hardware:
  out-of-range values saturate (ADC) or re-enter from the other side
  (mixer/CIC registers), and the overflow fraction reports it;
* at wide widths the whole integer chain converges to the float reference
  below 1e-9 V — the quantized chain measures quantization, not bugs.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.digital import (
    DigitalIfPlan,
    cic_decimate,
    cic_decimate_float,
    cic_decimate_reference,
    cic_growth_bits,
    evaluate_digital,
    float_lo,
    mix_complex,
    nco_lo_codes,
    nco_phases,
    nco_phases_reference,
    phase_increment,
    quantize_midrise,
    quantize_midrise_reference,
    round_shift,
    wrap_to_width,
)
from repro.waveform import single_tone_plan

COMMON_SETTINGS = settings(max_examples=60, deadline=None)


class TestQuantizeMidrise:
    def test_known_codes_and_midrise_offset(self):
        # LSB = 2*1.0/2**3 = 0.25; mid-rise: floor(v / lsb), no code at 0 V.
        volts = np.array([-1.0, -0.26, -0.01, 0.0, 0.01, 0.26, 0.74])
        codes = quantize_midrise(volts, 3, 1.0)
        assert codes.tolist() == [-4, -2, -1, 0, 0, 1, 2]

    def test_clipping_saturates_at_register_bounds(self):
        volts = np.array([-5.0, 5.0, -1.0, 0.999])
        codes = quantize_midrise(volts, 4, 1.0)
        assert codes.tolist() == [-8, 7, -8, 7]

    def test_bit_width_column_broadcasts(self):
        volts = np.linspace(-1.2, 1.2, 257)
        bits = np.array([[4], [8], [12]])
        stacked = quantize_midrise(volts[None, :], bits, 1.0)
        for row, width in enumerate((4, 8, 12)):
            assert np.array_equal(stacked[row],
                                  quantize_midrise(volts, width, 1.0))

    def test_matches_per_sample_reference(self):
        rng = np.random.default_rng(7)
        volts = rng.uniform(-1.5, 1.5, size=500)
        for bits in (2, 5, 9, 14):
            assert quantize_midrise(volts, bits, 1.25).tolist() == \
                quantize_midrise_reference(volts, bits, 1.25)


class TestNco:
    def test_phase_increment_exact_and_refuses_off_grid(self):
        assert phase_increment(3.75e6, 160e6, 32) == 3 * 2 ** 25
        with pytest.raises(ValueError, match="not representable"):
            phase_increment(3.75e6 + 0.3, 160e6, 32)

    @COMMON_SETTINGS
    @given(increment=st.integers(min_value=0, max_value=2 ** 48 - 1),
           phase_bits=st.integers(min_value=1, max_value=48),
           count=st.integers(min_value=1, max_value=400))
    def test_accumulator_closed_form_matches_register_loop(self, increment,
                                                           phase_bits, count):
        increment %= 1 << phase_bits
        closed = nco_phases(increment, count, phase_bits)
        assert closed.tolist() == \
            nco_phases_reference(increment, count, phase_bits)

    def test_lo_codes_never_reach_negative_full_scale(self):
        phases = nco_phases(phase_increment(3.75e6, 160e6, 32), 4096, 32)
        i_codes, q_codes = nco_lo_codes(phases, 32, 14, 8)
        floor = -(1 << 7)
        assert int(np.min(i_codes)) > floor and int(np.min(q_codes)) > floor
        assert int(np.max(np.abs(i_codes))) == (1 << 7) - 1

    def test_float_lo_realizes_the_same_frequency(self):
        increment = phase_increment(5e6, 160e6, 32)
        phases = nco_phases(increment, 64, 32)
        ideal = np.exp(-2j * np.pi * 5e6 / 160e6 * np.arange(64))
        assert np.max(np.abs(float_lo(phases, 32) - ideal)) < 1e-9


class TestBitManipulation:
    def test_round_shift_rounds_half_up_and_keeps_zero_identity(self):
        values = np.array([5, -5, 6, -6, 7, -7])
        assert round_shift(values, 2).tolist() == [1, -1, 2, -1, 2, -2]
        assert round_shift(values, 0).tolist() == values.tolist()
        with pytest.raises(ValueError, match="non-negative"):
            round_shift(values, -1)

    def test_wrap_to_width_is_twos_complement(self):
        assert wrap_to_width(np.array([7, 8, -9, 15, -8]), 4).tolist() == \
            [7, -8, 7, -1, -8]
        # uint64 input (the CIC's modulo-2**64 domain) wraps identically.
        unsigned = np.array([2 ** 64 - 1], dtype=np.uint64)
        assert wrap_to_width(unsigned, 8).tolist() == [-1]
        with pytest.raises(ValueError, match=r"\[2, 62\]"):
            wrap_to_width(np.array([1]), 63)

    @COMMON_SETTINGS
    @given(value=st.integers(min_value=-2 ** 40, max_value=2 ** 40),
           width=st.integers(min_value=2, max_value=42))
    def test_wrap_matches_modular_arithmetic(self, value, width):
        half, modulus = 1 << (width - 1), 1 << width
        expected = ((value + half) % modulus) - half
        assert int(wrap_to_width(np.array([value]), width)[0]) == expected


class TestMixComplex:
    def _lo(self, count, lo_bits):
        phases = nco_phases(phase_increment(3.75e6, 160e6, 32), count, 32)
        return nco_lo_codes(phases, 32, 14, lo_bits)

    def test_full_scale_product_fits_with_a_guard_bit(self):
        lo_i, lo_q = self._lo(800, 16)
        codes = np.full(800, (1 << 7) - 1, dtype=np.int64)
        _, _, overflow = mix_complex(codes, lo_i, lo_q, 8, 16, 1)
        assert float(overflow) == 0.0

    def test_no_guard_bits_overflows_and_wraps(self):
        lo_i, lo_q = self._lo(800, 16)
        codes = np.full(800, -(1 << 7), dtype=np.int64)  # negative full scale
        i_mix, _, overflow = mix_complex(codes, lo_i, lo_q, 8, 16, 0)
        assert float(overflow) > 0.0
        # Wrapped values re-entered the 8-bit register from the other side.
        assert int(np.max(i_mix)) <= 127 and int(np.min(i_mix)) >= -128

    def test_guard_budget_is_validated(self):
        lo_i, lo_q = self._lo(8, 8)
        with pytest.raises(ValueError, match="guard_bits"):
            mix_complex(np.ones(8, dtype=np.int64), lo_i, lo_q, 8, 8, 8)


class TestCicDecimate:
    def test_growth_bits_is_hogenauer(self):
        assert cic_growth_bits(3, 20) == 13
        assert cic_growth_bits(4, 20) == 18
        assert cic_growth_bits(2, 8) == 6
        assert cic_growth_bits(1, 1) == 0

    def test_dc_gain_is_decimation_to_the_stages(self):
        ones = np.ones(400, dtype=np.int64)
        out = cic_decimate(ones, 8, 3, 32)
        assert out[-1] == 8 ** 3

    def test_matches_reference_loop(self):
        rng = np.random.default_rng(11)
        values = rng.integers(-2000, 2000, size=600)
        vector = cic_decimate(values, 10, 3, 24)
        assert vector.tolist() == cic_decimate_reference(values, 10, 3, 24)

    def test_matches_reference_under_genuine_overflow(self):
        # 12-bit register, DC gain 8**3 = 512 on full-scale input: the true
        # output needs ~19 bits, so the register wraps — identically.
        values = np.full(320, 2047, dtype=np.int64)
        vector = cic_decimate(values, 8, 3, 12)
        assert vector.tolist() == cic_decimate_reference(values, 8, 3, 12)
        assert int(np.max(np.abs(vector))) < (1 << 11) + 1  # wrapped, in range

    def test_float_cic_converges_to_integer_cic(self):
        rng = np.random.default_rng(3)
        values = rng.integers(-10 ** 6, 10 ** 6, size=800)
        exact = cic_decimate(values, 8, 2, 50).astype(float)
        floats = cic_decimate_float(values.astype(float), 8, 2)
        assert np.max(np.abs(exact - floats)) == 0.0


class TestWideWidthConvergence:
    """The integer chain against the float reference at generous widths."""

    def test_full_chain_converges_below_1e_9(self):
        # A synthetic 5 MHz IF block on the canonical analog grid; widths
        # chosen so every stage's quantization error sits below nano-volts
        # (30-bit ADC on 1 mV full scale, 26-bit LO, no mixer truncation).
        stimulus = single_tone_plan(2.405e9, [-40.0], 10.24e9, 10240,
                                    lo_frequency=2.4e9)
        plan = DigitalIfPlan(
            stimulus=stimulus, adc_stride=64, records=4, adc_bits=(30,),
            adc_full_scale=1e-3, lo_bits=26, phase_bits=40, table_bits=40,
            guard_bits=25, cic_stages=2, cic_decimation=8, output_bits=62,
            nco_frequency_hz=5e6)
        times = np.arange(10240) / 10.24e9
        block = 3e-4 * np.cos(2.0 * np.pi * 5e6 * times)
        measures = evaluate_digital(plan, block)
        assert float(measures["float_error_peak"][0]) < 1e-9
        assert float(measures["overflow_fraction"][0]) == 0.0

    def test_engine_reports_the_same_error_measure(self):
        # The canonical plan's float_error_peak must shrink monotonically
        # with ADC width until the fixed NCO/LO quantization floors it.
        from repro.digital import digital_if_plan

        plan = digital_if_plan(adc_bits=(6, 10, 14))
        times = np.arange(10240) / 10.24e9
        block = 0.4 * np.cos(2.0 * np.pi * 5e6 * times)
        errors = evaluate_digital(plan, block)["float_error_peak"]
        assert errors[0] > errors[1] > errors[2] > 0.0
