"""Unit tests for the behavioural MOSFET model."""

from __future__ import annotations

import math

import pytest

from repro.devices.mosfet import (
    Mosfet,
    MosfetParameters,
    MosfetPolarity,
    MosfetRegion,
)
from repro.devices.technology import UMC65_LIKE, fast_corner, slow_corner


@pytest.fixture
def nmos() -> Mosfet:
    return Mosfet.nmos(20e-6, 100e-9)


@pytest.fixture
def pmos() -> Mosfet:
    return Mosfet.pmos(40e-6, 100e-9)


class TestParameters:
    def test_rejects_nonpositive_geometry(self):
        with pytest.raises(ValueError):
            MosfetParameters(width=-1e-6, length=65e-9)
        with pytest.raises(ValueError):
            MosfetParameters(width=1e-6, length=0.0)

    def test_rejects_sub_minimum_length(self):
        with pytest.raises(ValueError):
            MosfetParameters(width=1e-6, length=30e-9)

    def test_polarity_specific_constants(self):
        n = MosfetParameters(1e-6, 65e-9, MosfetPolarity.NMOS)
        p = MosfetParameters(1e-6, 65e-9, MosfetPolarity.PMOS)
        assert n.vth == UMC65_LIKE.vth_n
        assert p.vth == UMC65_LIKE.vth_p
        assert n.u_cox > p.u_cox  # electrons are faster than holes

    def test_gate_capacitance_scales_with_area(self):
        small = MosfetParameters(1e-6, 65e-9)
        large = MosfetParameters(2e-6, 65e-9)
        assert large.gate_capacitance == pytest.approx(2.0 * small.gate_capacitance)


class TestRegions:
    def test_cutoff_below_threshold(self, nmos: Mosfet):
        op = nmos.operating_point(vgs=0.1, vds=0.6)
        assert op.region is MosfetRegion.CUTOFF
        assert op.id == 0.0
        assert op.gm == 0.0
        assert math.isinf(op.ro)

    def test_saturation_at_high_vds(self, nmos: Mosfet):
        op = nmos.operating_point(vgs=0.6, vds=0.6)
        assert op.region is MosfetRegion.SATURATION
        assert op.id > 0.0
        assert op.gm > 0.0
        assert op.gds > 0.0

    def test_triode_at_low_vds(self, nmos: Mosfet):
        op = nmos.operating_point(vgs=0.9, vds=0.05)
        assert op.region is MosfetRegion.TRIODE

    def test_pmos_mirrors_nmos_sign_convention(self, pmos: Mosfet):
        op = pmos.operating_point(vgs=-0.6, vds=-0.6)
        assert op.region is MosfetRegion.SATURATION
        assert op.id > 0.0


class TestMonotonicity:
    def test_current_increases_with_vgs(self, nmos: Mosfet):
        currents = [nmos.drain_current(v, 0.6) for v in (0.4, 0.5, 0.6, 0.7)]
        assert all(b > a for a, b in zip(currents, currents[1:]))

    def test_gm_increases_with_overdrive(self, nmos: Mosfet):
        gms = [nmos.operating_point(v, 0.6).gm for v in (0.45, 0.55, 0.65)]
        assert all(b > a for a, b in zip(gms, gms[1:]))

    def test_current_continuous_across_triode_saturation_boundary(self, nmos):
        vgs = 0.6
        vov = vgs - nmos.params.vth
        i_below = nmos.drain_current(vgs, vov * 0.999)
        i_above = nmos.drain_current(vgs, vov * 1.001)
        assert i_below == pytest.approx(i_above, rel=0.01)

    def test_mobility_degradation_reduces_current(self):
        base = Mosfet.nmos(20e-6, 100e-9)
        id_with_theta = base.drain_current(0.9, 0.6)
        # Square-law value with no degradation would be higher.
        p = base.params
        vov = 0.9 - p.vth
        ideal = 0.5 * p.beta * vov ** 2 * (1.0 + p.lambda_clm * 0.6)
        assert id_with_theta < ideal


class TestSwitchBehaviour:
    def test_on_resistance_decreases_with_width(self):
        narrow = Mosfet.nmos(5e-6, 65e-9)
        wide = Mosfet.nmos(50e-6, 65e-9)
        assert wide.on_resistance(0.6) < narrow.on_resistance(0.6)

    def test_off_switch_has_infinite_resistance(self, nmos: Mosfet):
        assert math.isinf(nmos.on_resistance(0.1))

    def test_pmos_on_resistance_accepts_positive_vds_magnitude(self, pmos: Mosfet):
        # The helper normalises the vds sign for PMOS.
        assert math.isfinite(pmos.on_resistance(-0.6))

    def test_is_on_threshold(self, nmos: Mosfet, pmos: Mosfet):
        assert nmos.is_on(0.6)
        assert not nmos.is_on(0.2)
        assert pmos.is_on(-0.6)
        assert not pmos.is_on(-0.2)

    def test_width_for_resistance_round_trip(self):
        probe = Mosfet.nmos(1e-6, 65e-9)
        width = probe.width_for_resistance(100.0, vgs=0.6)
        sized = Mosfet.nmos(width, 65e-9)
        assert sized.on_resistance(0.6) == pytest.approx(100.0, rel=0.15)

    def test_width_for_resistance_rejects_off_device(self):
        probe = Mosfet.nmos(1e-6, 65e-9)
        with pytest.raises(ValueError):
            probe.width_for_resistance(100.0, vgs=0.1)


class TestBiasSolving:
    def test_vgs_for_current_round_trip(self, nmos: Mosfet):
        target = 1.0e-3
        vgs = nmos.vgs_for_current(target, vds=0.6)
        assert nmos.drain_current(vgs, 0.6) == pytest.approx(target, rel=1e-3)

    def test_vgs_for_current_pmos_sign(self, pmos: Mosfet):
        vgs = pmos.vgs_for_current(0.5e-3, vds=0.6)
        assert vgs < 0.0

    def test_unreachable_current_raises(self):
        tiny = Mosfet.nmos(0.2e-6, 200e-9)
        with pytest.raises(ValueError):
            tiny.vgs_for_current(50e-3, vds=0.6)


class TestNoise:
    def test_thermal_noise_scales_with_gm(self, nmos: Mosfet):
        assert nmos.thermal_noise_current_density(20e-3) > \
            nmos.thermal_noise_current_density(5e-3)

    def test_flicker_noise_decreases_with_frequency(self, nmos: Mosfet):
        assert nmos.flicker_noise_voltage_density(1e3) > \
            nmos.flicker_noise_voltage_density(1e6)

    def test_flicker_corner_positive_for_biased_device(self, nmos: Mosfet):
        corner = nmos.flicker_corner_frequency(gm=15e-3)
        assert corner > 0.0
        assert nmos.flicker_corner_frequency(gm=0.0) == 0.0


class TestCorners:
    def test_corner_shifts_threshold_and_mobility(self):
        nominal = Mosfet.nmos(20e-6, 100e-9)
        slow = Mosfet.nmos(20e-6, 100e-9, slow_corner())
        fast = Mosfet.nmos(20e-6, 100e-9, fast_corner())
        vgs, vds = 0.6, 0.6
        assert slow.drain_current(vgs, vds) < nominal.drain_current(vgs, vds)
        assert fast.drain_current(vgs, vds) > nominal.drain_current(vgs, vds)
